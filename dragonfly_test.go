package dragonfly_test

import (
	"math"
	"testing"

	dragonfly "repro"
)

// fast returns a reduced-latency h=2 configuration for quick API tests.
func fast(m dragonfly.Mechanism) dragonfly.Config {
	cfg := dragonfly.PaperVCT(2)
	cfg.Mechanism = m
	cfg.LatLocal, cfg.LatGlobal = 4, 16
	cfg.Warmup, cfg.Measure = 500, 1200
	cfg.Seed = 11
	return cfg
}

func TestMechanismNames(t *testing.T) {
	want := map[dragonfly.Mechanism]string{
		dragonfly.Minimal:      "Minimal",
		dragonfly.Valiant:      "Valiant",
		dragonfly.Piggybacking: "PiggyBacking",
		dragonfly.PAR62:        "PAR-6/2",
		dragonfly.RLM:          "RLM",
		dragonfly.OLM:          "OLM",
		dragonfly.RLMSignOnly:  "RLM-signonly",
		dragonfly.OFAR:         "OFAR",
	}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), name)
		}
		back, err := dragonfly.ParseMechanism(name)
		if err != nil || back != m {
			t.Errorf("ParseMechanism(%q) = %v, %v", name, back, err)
		}
	}
	if _, err := dragonfly.ParseMechanism("nope"); err == nil {
		t.Error("ParseMechanism accepted garbage")
	}
}

func TestMechanismProperties(t *testing.T) {
	if !dragonfly.OLM.RequiresVCT() {
		t.Error("OLM must require VCT")
	}
	if dragonfly.RLM.RequiresVCT() {
		t.Error("RLM must not require VCT")
	}
	l, g := dragonfly.PAR62.VCs()
	if l != 6 || g != 2 {
		t.Errorf("PAR-6/2 VCs = %d/%d", l, g)
	}
	l, g = dragonfly.OLM.VCs()
	if l != 3 || g != 2 {
		t.Errorf("OLM VCs = %d/%d", l, g)
	}
}

func TestFlowControlParse(t *testing.T) {
	for _, s := range []string{"VCT", "WH"} {
		f, err := dragonfly.ParseFlowControl(s)
		if err != nil || f.String() != s {
			t.Errorf("ParseFlowControl(%q) = %v, %v", s, f, err)
		}
	}
	if _, err := dragonfly.ParseFlowControl("XY"); err == nil {
		t.Error("bad flow control accepted")
	}
}

func TestNetworkSize(t *testing.T) {
	r, n, g, err := dragonfly.NetworkSize(8)
	if err != nil {
		t.Fatal(err)
	}
	if r != 2064 || n != 16512 || g != 129 {
		t.Fatalf("h=8 size = %d routers, %d nodes, %d groups", r, n, g)
	}
	if _, _, _, err := dragonfly.NetworkSize(0); err == nil {
		t.Fatal("h=0 accepted")
	}
}

func TestRunBasic(t *testing.T) {
	cfg := fast(dragonfly.OLM)
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
	cfg.Load = 0.2
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock || res.Delivered == 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Mechanism != "OLM" || res.Pattern != "UN" || res.FlowControl != "VCT" {
		t.Fatalf("labels: %q %q %q", res.Mechanism, res.Pattern, res.FlowControl)
	}
	if res.OfferedLoad != 0.2 {
		t.Fatalf("offered load %v", res.OfferedLoad)
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	cfg := fast(dragonfly.OLM)
	cfg.FlowControl = dragonfly.WH // OLM needs VCT
	if _, err := dragonfly.Run(cfg); err == nil {
		t.Error("OLM under WH accepted")
	}

	cfg = fast(dragonfly.Minimal)
	cfg.H = -1
	if _, err := dragonfly.Run(cfg); err == nil {
		t.Error("negative h accepted")
	}

	cfg = fast(dragonfly.Minimal)
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 9999}
	if _, err := dragonfly.Run(cfg); err == nil {
		t.Error("out-of-range ADVG offset accepted")
	}

	cfg = fast(dragonfly.Minimal)
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.TrafficKind(42)}
	if _, err := dragonfly.Run(cfg); err == nil {
		t.Error("unknown traffic kind accepted")
	}
}

func TestTrafficNames(t *testing.T) {
	cases := []struct {
		tr   dragonfly.Traffic
		want string
	}{
		{dragonfly.Traffic{Kind: dragonfly.UN}, "UN"},
		{dragonfly.Traffic{Kind: dragonfly.ADVG}, "ADVG+1"},
		{dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 8}, "ADVG+8"},
		{dragonfly.Traffic{Kind: dragonfly.ADVL}, "ADVL+1"},
	}
	for _, c := range cases {
		got, err := c.tr.Name(8)
		if err != nil || got != c.want {
			t.Errorf("Name = %q, %v, want %q", got, err, c.want)
		}
	}
	// Unknown kinds are an error, not a silent "unknown" label.
	if name, err := (dragonfly.Traffic{Kind: dragonfly.TrafficKind(42)}).Name(8); err == nil {
		t.Errorf("Name accepted an unknown kind (returned %q)", name)
	}
}

func TestWHPacketDefault(t *testing.T) {
	cfg := dragonfly.PaperWH(2)
	cfg.Mechanism = dragonfly.RLM
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
	cfg.Load = 0.05
	cfg.Warmup, cfg.Measure = 500, 1000
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock || res.Delivered == 0 {
		t.Fatalf("WH run failed: %+v", res)
	}
	if res.FlowControl != "WH" {
		t.Fatalf("flow control %q", res.FlowControl)
	}
}

func TestBurstViaFacade(t *testing.T) {
	cfg := fast(dragonfly.RLM)
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 50}
	cfg.BurstPackets = 5
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConsumptionCycles <= 0 {
		t.Fatalf("consumption %d", res.ConsumptionCycles)
	}
	if res.Delivered != int64(5*res.Nodes) {
		t.Fatalf("delivered %d of %d", res.Delivered, 5*res.Nodes)
	}
}

func TestDeterministicFacade(t *testing.T) {
	cfg := fast(dragonfly.RLM)
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
	cfg.Load = 0.3
	a, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AcceptedLoad != b.AcceptedLoad || a.Delivered != b.Delivered {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestConservationViaFacade(t *testing.T) {
	cfg := fast(dragonfly.OLM)
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
	cfg.Load = 0.3
	cfg.Warmup = 0 // count every event
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inFlight := res.Generated - res.InjectionLost - res.Delivered
	if inFlight < 0 {
		t.Fatalf("negative in-flight count: %+v", res)
	}
	// In-flight packets are bounded by total buffering.
	if float64(inFlight) > 0.5*float64(res.Generated) {
		t.Fatalf("implausible in-flight fraction: %d of %d", inFlight, res.Generated)
	}
}

func TestParityFacade(t *testing.T) {
	rows := dragonfly.ParityTableRows()
	if len(rows) != 16 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	allowed := 0
	for _, r := range rows {
		if r.Allowed {
			allowed++
		}
	}
	if allowed != 10 {
		t.Fatalf("Table I allows %d combinations, want 10", allowed)
	}
	if got := dragonfly.LocalHopType(5, 2); got != "odd-" {
		t.Fatalf("LocalHopType(5,2) = %q, want odd-", got)
	}
	if got := dragonfly.LocalHopType(1, 7); got != "even+" {
		t.Fatalf("LocalHopType(1,7) = %q, want even+", got)
	}
	// The paper's Figure 2: exactly h-1 = 3 restricted routes from 5 to 0.
	ks := dragonfly.RestrictedIntermediates(5, 0, 4)
	if len(ks) != 3 {
		t.Fatalf("RestrictedIntermediates(5,0,4) = %v, want 3 routes", ks)
	}
}

func TestOFARViaFacade(t *testing.T) {
	cfg := fast(dragonfly.OFAR)
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 2}
	cfg.Load = 0.3
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock || res.Delivered == 0 {
		t.Fatalf("OFAR run failed: %+v", res)
	}
	if res.EscapeHopRate <= 0 {
		t.Fatalf("OFAR never used its escape ring under adversarial load")
	}
	// The escape ring needs VCT.
	cfg.FlowControl = dragonfly.WH
	if _, err := dragonfly.Run(cfg); err == nil {
		t.Fatal("OFAR accepted wormhole flow control")
	}
}

func TestHopBoundsViaFacade(t *testing.T) {
	// Saturate an adversarial pattern and confirm average hop counts
	// respect the l-l-g-l-l-g-l-l ceiling (6 local, 2 global).
	cfg := fast(dragonfly.OLM)
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
	cfg.Load = 0.8
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLocalHops > 6 || res.AvgGlobalHops > 2 {
		t.Fatalf("hop bound exceeded: %f local, %f global",
			res.AvgLocalHops, res.AvgGlobalHops)
	}
	if math.IsNaN(res.P99Latency) {
		t.Fatal("p99 latency NaN with deliveries")
	}
}
