package dragonfly_test

// One benchmark per table/figure of the paper. Each benchmark iteration
// runs a reduced-scale version of the corresponding experiment (h=2 or
// h=3, shortened latencies) and reports the figure's metric via
// b.ReportMetric, so `go test -bench=.` regenerates a miniature of the
// whole evaluation. cmd/paperfigs produces the full-resolution series.

import (
	"testing"

	dragonfly "repro"
)

// benchBase is the reduced-scale environment shared by figure benches.
func benchBase(h int, flow dragonfly.FlowControl) dragonfly.Config {
	var cfg dragonfly.Config
	if flow == dragonfly.WH {
		cfg = dragonfly.PaperWH(h)
		cfg.PacketPhits = 40
	} else {
		cfg = dragonfly.PaperVCT(h)
	}
	cfg.LatLocal, cfg.LatGlobal = 4, 16
	cfg.Warmup, cfg.Measure = 600, 1500
	cfg.Seed = 1
	return cfg
}

// reportPoint runs cfg once per b.N iteration and reports the metrics the
// figure plots.
func reportPoint(b *testing.B, cfg dragonfly.Config) {
	b.Helper()
	var last dragonfly.Result
	for i := 0; i < b.N; i++ {
		res, err := dragonfly.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Deadlock {
			b.Fatalf("%s deadlocked", res.Mechanism)
		}
		last = res
	}
	b.ReportMetric(last.AcceptedLoad, "accepted")
	b.ReportMetric(last.AvgTotalLatency, "latency_cyc")
	if last.ConsumptionCycles > 0 {
		b.ReportMetric(float64(last.ConsumptionCycles), "drain_cyc")
	}
}

// BenchmarkTableIParityTable regenerates and verifies Table I.
func BenchmarkTableIParityTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := dragonfly.ParityTableRows()
		if len(out) != 16 {
			b.Fatalf("Table I has %d rows", len(out))
		}
	}
}

// figureLoadBench emits one sub-benchmark per mechanism at a near-saturation
// load — the regime the paper's throughput panels compare.
func figureLoadBench(b *testing.B, flow dragonfly.FlowControl, tr dragonfly.Traffic, load float64, mechs []dragonfly.Mechanism) {
	for _, m := range mechs {
		b.Run(m.String(), func(b *testing.B) {
			cfg := benchBase(3, flow)
			cfg.Mechanism = m
			cfg.Traffic = tr
			cfg.Load = load
			reportPoint(b, cfg)
		})
	}
}

var vctUNMechs = []dragonfly.Mechanism{
	dragonfly.PAR62, dragonfly.OLM, dragonfly.RLM, dragonfly.Minimal, dragonfly.Piggybacking,
}

var vctADVMechs = []dragonfly.Mechanism{
	dragonfly.PAR62, dragonfly.OLM, dragonfly.RLM, dragonfly.Valiant, dragonfly.Piggybacking,
}

var whUNMechs = []dragonfly.Mechanism{
	dragonfly.PAR62, dragonfly.RLM, dragonfly.Minimal, dragonfly.Piggybacking,
}

var whADVMechs = []dragonfly.Mechanism{
	dragonfly.PAR62, dragonfly.RLM, dragonfly.Valiant, dragonfly.Piggybacking,
}

// Figures 4a/5a: UN, VCT.
func BenchmarkFig4a5aUniformVCT(b *testing.B) {
	figureLoadBench(b, dragonfly.VCT, dragonfly.Traffic{Kind: dragonfly.UN}, 0.45, vctUNMechs)
}

// Figures 4b/5b: ADVG+1, VCT.
func BenchmarkFig4b5bADVG1VCT(b *testing.B) {
	figureLoadBench(b, dragonfly.VCT, dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, 0.8, vctADVMechs)
}

// Figures 4c/5c: ADVG+h, VCT.
func BenchmarkFig4c5cADVGhVCT(b *testing.B) {
	figureLoadBench(b, dragonfly.VCT, dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 3}, 0.8, vctADVMechs)
}

// Figure 6a: mixed ADVG+h/ADVL+1 throughput at full load, VCT.
func BenchmarkFig6aMixVCT(b *testing.B) {
	for _, m := range []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.OLM, dragonfly.RLM, dragonfly.Piggybacking} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := benchBase(3, dragonfly.VCT)
			cfg.Mechanism = m
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 40}
			cfg.Load = 1.0
			reportPoint(b, cfg)
		})
	}
}

// Figure 6b: burst consumption, VCT.
func BenchmarkFig6bBurstVCT(b *testing.B) {
	for _, m := range []dragonfly.Mechanism{dragonfly.OLM, dragonfly.RLM, dragonfly.Piggybacking} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := benchBase(3, dragonfly.VCT)
			cfg.Mechanism = m
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 40}
			cfg.BurstPackets = 30
			reportPoint(b, cfg)
		})
	}
}

// Figures 7a/8a: UN, WH.
func BenchmarkFig7a8aUniformWH(b *testing.B) {
	figureLoadBench(b, dragonfly.WH, dragonfly.Traffic{Kind: dragonfly.UN}, 0.35, whUNMechs)
}

// Figures 7b/8b: ADVG+1, WH.
func BenchmarkFig7b8bADVG1WH(b *testing.B) {
	figureLoadBench(b, dragonfly.WH, dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, 0.6, whADVMechs)
}

// Figures 7c/8c: ADVG+h, WH.
func BenchmarkFig7c8cADVGhWH(b *testing.B) {
	figureLoadBench(b, dragonfly.WH, dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 3}, 0.6, whADVMechs)
}

// Figure 9a: mixed traffic, WH.
func BenchmarkFig9aMixWH(b *testing.B) {
	for _, m := range []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.RLM, dragonfly.Piggybacking} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := benchBase(3, dragonfly.WH)
			cfg.Mechanism = m
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 40}
			cfg.Load = 1.0
			reportPoint(b, cfg)
		})
	}
}

// Figure 9b: burst consumption, WH.
func BenchmarkFig9bBurstWH(b *testing.B) {
	for _, m := range []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.RLM, dragonfly.Piggybacking} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := benchBase(3, dragonfly.WH)
			cfg.Mechanism = m
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 40}
			cfg.BurstPackets = 6
			reportPoint(b, cfg)
		})
	}
}

// Figures 10/11: RLM threshold sensitivity under UN and ADVG+1.
func BenchmarkFig10ThresholdUN(b *testing.B) {
	benchThreshold(b, dragonfly.Traffic{Kind: dragonfly.UN}, 0.5)
}

func BenchmarkFig11ThresholdADVG1(b *testing.B) {
	benchThreshold(b, dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, 0.7)
}

func benchThreshold(b *testing.B, tr dragonfly.Traffic, load float64) {
	for _, th := range []float64{0.30, 0.45, 0.60} {
		b.Run(fmtThreshold(th), func(b *testing.B) {
			cfg := benchBase(3, dragonfly.VCT)
			cfg.Mechanism = dragonfly.RLM
			cfg.Threshold = th
			cfg.Traffic = tr
			cfg.Load = load
			reportPoint(b, cfg)
		})
	}
}

func fmtThreshold(th float64) string {
	return map[float64]string{0.30: "th30", 0.45: "th45", 0.60: "th60"}[th]
}

// BenchmarkAblationOFARvsOLM reproduces the paper's motivation against the
// prior escape-ring scheme: under the pathological ADVG+h pattern, OLM's
// in-network escape paths should beat OFAR, whose low-capacity ring
// congests (paper Section II).
func BenchmarkAblationOFARvsOLM(b *testing.B) {
	for _, m := range []dragonfly.Mechanism{dragonfly.OFAR, dragonfly.OLM} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := benchBase(3, dragonfly.VCT)
			cfg.Mechanism = m
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 3}
			cfg.Load = 0.8
			reportPoint(b, cfg)
		})
	}
}

// BenchmarkAblationSignOnly contrasts the paper's parity-sign restriction
// with the rejected sign-only one under ADVL+1, where route balance
// matters most (Section III-B).
func BenchmarkAblationSignOnly(b *testing.B) {
	for _, m := range []dragonfly.Mechanism{dragonfly.RLM, dragonfly.RLMSignOnly} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := benchBase(3, dragonfly.VCT)
			cfg.Mechanism = m
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: 1}
			cfg.Load = 1.0
			reportPoint(b, cfg)
		})
	}
}

// BenchmarkAblationRemoteCandidates measures the value of PAR-style
// redirects through remote global channels (the l-l-g path shapes) under
// ADVG+1.
func BenchmarkAblationRemoteCandidates(b *testing.B) {
	for _, rc := range []int{-1, 2, 6} { // -1 disables sampling
		name := map[int]string{-1: "own-ports-only", 2: "remote2", 6: "remote6"}[rc]
		b.Run(name, func(b *testing.B) {
			cfg := benchBase(3, dragonfly.VCT)
			cfg.Mechanism = dragonfly.OLM
			cfg.RemoteCandidates = rc // -1 = own global ports only
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
			cfg.Load = 0.8
			reportPoint(b, cfg)
		})
	}
}

// BenchmarkEngineScaling reports simulated cycles per second at increasing
// network sizes (serial).
func BenchmarkEngineScaling(b *testing.B) {
	for _, h := range []int{2, 3, 4} {
		b.Run(fmtH(h), func(b *testing.B) {
			cfg := benchBase(h, dragonfly.VCT)
			cfg.Mechanism = dragonfly.RLM
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
			cfg.Load = 0.3
			cfg.Warmup, cfg.Measure = 0, 500
			for i := 0; i < b.N; i++ {
				if _, err := dragonfly.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			routers, _, _, _ := dragonfly.NetworkSize(h)
			b.ReportMetric(float64(routers), "routers")
		})
	}
}

func fmtH(h int) string { return map[int]string{2: "h2", 3: "h3", 4: "h4"}[h] }

// BenchmarkEngineParallel compares 1 vs 2 intra-simulation workers.
func BenchmarkEngineParallel(b *testing.B) {
	for _, w := range []int{1, 2} {
		b.Run(map[int]string{1: "serial", 2: "workers2"}[w], func(b *testing.B) {
			cfg := benchBase(4, dragonfly.VCT)
			cfg.Mechanism = dragonfly.RLM
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
			cfg.Load = 0.3
			cfg.Warmup, cfg.Measure = 0, 500
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := dragonfly.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
