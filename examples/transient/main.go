// Transient traffic-change study: how routing mechanisms react when the
// workload shifts under them — the scenario that separates adaptive
// mechanisms from oblivious ones.
//
// Every node runs benign uniform traffic, then switches abruptly to the
// pathological ADVG+h pattern mid-run. The phased workload API expresses
// the switch as a two-phase schedule, and the per-window timeline shows
// the reaction: Minimal routing collapses onto the single minimal global
// channel (~1/(2h²) accepted load) and never recovers, while OLM detects
// the congestion in-transit and restores nearly the full offered load
// within a few hundred cycles.
//
// Run with:
//
//	go run ./examples/transient [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	dragonfly "repro"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scale for smoke tests")
	flag.Parse()

	h, warmup, measure := 4, 2000, int64(6000)
	if *quick {
		h, warmup, measure = 3, 1000, 2500
	}
	load := 0.2
	switchAt := int64(warmup) + measure/2
	window := (int64(warmup) + measure) / 16

	fmt.Printf("UN -> ADVG+%d switch at cycle %d (load %.2f, h=%d, %d-cycle windows)\n\n",
		h, switchAt, load, h, window)

	for _, m := range []dragonfly.Mechanism{dragonfly.Minimal, dragonfly.OLM} {
		cfg := dragonfly.PaperVCT(h)
		cfg.Mechanism = m
		cfg.LatLocal, cfg.LatGlobal = 4, 16
		cfg.Warmup, cfg.Measure = int64(warmup), measure
		cfg.Seed = 42
		cfg.Phases = []dragonfly.PhaseSpec{
			{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, Load: load, Duration: switchAt},
			{Traffic: dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: h}, Load: load},
		}
		cfg.WindowCycles = window

		res, err := dragonfly.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s (pattern %s)\n", m, res.Pattern)
		for _, ph := range res.PhaseDigests {
			fmt.Printf("  phase %-12s cycles [%5d, %5d): accepted %.4f, latency %.0f\n",
				ph.Label, ph.Start, ph.End, ph.AcceptedLoad, ph.AvgTotalLatency)
		}
		fmt.Println("  accepted load per window (| marks the switch):")
		for _, w := range res.Timeline.Windows {
			bar := strings.Repeat("#", int(w.AcceptedLoad*120))
			mark := " "
			if w.Start <= switchAt && switchAt < w.End {
				mark = "|"
			}
			fmt.Printf("  %6d %s %-26s %.4f\n", w.Start, mark, bar, w.AcceptedLoad)
		}
		fmt.Println()
	}
	fmt.Println("Minimal never recovers from the switch; OLM re-routes around the")
	fmt.Println("congested channel in-transit and restores the offered load.")
}
