// Threshold tuning study (the paper's Section IV-C, Figures 10 and 11).
//
// The misrouting threshold trades uniform-traffic efficiency against
// adversarial-traffic responsiveness: a permissive (high) threshold
// misroutes eagerly — good when the minimal path is systematically
// saturated, wasteful when congestion is transient. This example sweeps
// the threshold for RLM under both UN and ADVG+1 and prints a compact
// table, showing why the paper settles on 45%.
//
// Run with:
//
//	go run ./examples/threshold
package main

import (
	"flag"
	"fmt"
	"log"

	dragonfly "repro"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scale for smoke tests")
	flag.Parse()
	h, warmup, measure := 3, int64(2000), int64(4000) // small network keeps the sweep quick
	thresholds := []float64{0.30, 0.40, 0.45, 0.50, 0.60}
	if *quick {
		h, warmup, measure = 2, 500, 1000
		thresholds = []float64{0.30, 0.45, 0.60}
	}

	type point struct{ acc, lat, mis float64 }
	run := func(th float64, tr dragonfly.Traffic, load float64) point {
		cfg := dragonfly.PaperVCT(h)
		cfg.Mechanism = dragonfly.RLM
		cfg.Threshold = th
		cfg.Traffic = tr
		cfg.Load = load
		cfg.Warmup, cfg.Measure = warmup, measure
		cfg.Seed = 3
		res, err := dragonfly.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return point{res.AcceptedLoad, res.AvgTotalLatency,
			res.LocalMisrouteRate + res.GlobalMisrouteRate}
	}

	un := dragonfly.Traffic{Kind: dragonfly.UN}
	advg := dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}

	fmt.Println("RLM misrouting threshold sweep (VCT)")
	fmt.Printf("%-10s | %-28s | %-28s\n", "", "UN @ 0.55 load", "ADVG+1 @ 0.8 load")
	fmt.Printf("%-10s | %8s %8s %8s | %8s %8s %8s\n",
		"threshold", "accepted", "latency", "misrte", "accepted", "latency", "misrte")
	for _, th := range thresholds {
		u := run(th, un, 0.55)
		a := run(th, advg, 0.8)
		fmt.Printf("%9.0f%% | %8.4f %8.1f %8.2f | %8.4f %8.1f %8.2f\n",
			th*100, u.acc, u.lat, u.mis, a.acc, a.lat, a.mis)
	}
	fmt.Println("\nLow thresholds favor uniform traffic; high thresholds favor")
	fmt.Println("adversarial traffic. The paper picks 45% as the compromise.")
}
