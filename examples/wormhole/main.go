// Wormhole study: large packets, small buffers (the paper's Section IV-B,
// a PERCS-like environment).
//
// Under wormhole flow control an 80-phit packet does not fit in a 32-phit
// local buffer, so blocked packets string across routers and deadlock
// avoidance gets harder: OLM's escape-path argument needs whole-packet
// buffering (VCT) and is therefore unavailable — the library rejects the
// combination. RLM's route restriction works under any flow control; this
// example shows it beating Valiant and Piggybacking under adversarial
// traffic while staying deadlock-free, and demonstrates the rejected
// OLM+WH configuration.
//
// Run with:
//
//	go run ./examples/wormhole
package main

import (
	"flag"
	"fmt"
	"log"

	dragonfly "repro"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scale for smoke tests")
	flag.Parse()
	h, warmup, measure := 3, int64(2500), int64(5000)
	if *quick {
		h, warmup, measure = 2, 600, 1200
	}

	// First: the library refuses OLM under WH (deadlock-unsafe).
	bad := dragonfly.PaperWH(h)
	bad.Mechanism = dragonfly.OLM
	bad.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
	bad.Load = 0.1
	if _, err := dragonfly.Run(bad); err != nil {
		fmt.Printf("OLM under wormhole is rejected as expected:\n  %v\n\n", err)
	} else {
		log.Fatal("OLM+WH was unexpectedly accepted")
	}

	fmt.Printf("wormhole, %d-phit packets, 32-phit local buffers (packets span routers)\n\n",
		dragonfly.PaperWH(h).PacketPhits)
	for _, tr := range []dragonfly.Traffic{
		{Kind: dragonfly.UN},
		{Kind: dragonfly.ADVG, Offset: 1},
	} {
		trName, err := tr.Name(h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("traffic %s:\n", trName)
		for _, m := range []dragonfly.Mechanism{
			dragonfly.Minimal, dragonfly.Valiant, dragonfly.Piggybacking,
			dragonfly.PAR62, dragonfly.RLM,
		} {
			cfg := dragonfly.PaperWH(h)
			cfg.Mechanism = m
			cfg.Traffic = tr
			cfg.Load = 0.7
			cfg.Warmup, cfg.Measure = warmup, measure
			cfg.Seed = 12
			res, err := dragonfly.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			status := "deadlock-free"
			if res.Deadlock {
				status = "DEADLOCK"
			}
			fmt.Printf("  %-13s accepted %.4f  latency %7.1f  (%s)\n",
				m, res.AcceptedLoad, res.AvgTotalLatency, status)
		}
		fmt.Println()
	}
	fmt.Println("RLM supports both local and global misrouting with 3/2 VCs under")
	fmt.Println("wormhole; PAR-6/2 needs twice the local VCs for the same freedom.")
}
