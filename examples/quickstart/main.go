// Quickstart: simulate one dragonfly configuration and read the result.
//
// Builds a reduced-scale (h=4: 264 routers, 1,056 nodes) dragonfly with
// the paper's buffer sizes and link latencies, drives it with uniform
// traffic at half load under the OLM routing mechanism, and prints the
// metrics a network architect would look at first.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	dragonfly "repro"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scale for smoke tests")
	flag.Parse()
	h := 4
	if *quick {
		h = 2
	}

	cfg := dragonfly.PaperVCT(h) // the paper's VCT environment, reduced scale
	cfg.Mechanism = dragonfly.OLM
	cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
	cfg.Load = 0.5     // phits/(node*cycle)
	cfg.Warmup = 2000  // cycles before measurement
	cfg.Measure = 4000 // measured cycles
	cfg.Seed = 1       // simulations are fully deterministic per seed
	if *quick {
		cfg.Warmup, cfg.Measure = 500, 1000
	}

	routers, nodes, groups, err := dragonfly.NetworkSize(cfg.H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulating h=%d dragonfly: %d routers in %d groups, %d nodes\n",
		cfg.H, routers, groups, nodes)

	res, err := dragonfly.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mechanism        %s (%s flow control)\n", res.Mechanism, res.FlowControl)
	fmt.Printf("offered load     %.3f phits/(node*cycle)\n", res.OfferedLoad)
	fmt.Printf("accepted load    %.3f phits/(node*cycle)\n", res.AcceptedLoad)
	fmt.Printf("avg latency      %.1f cycles (p99 %.0f)\n", res.AvgTotalLatency, res.P99Latency)
	fmt.Printf("hops per packet  %.2f local + %.2f global\n", res.AvgLocalHops, res.AvgGlobalHops)
	fmt.Printf("misroutes        %.3f local, %.3f global per packet\n",
		res.LocalMisrouteRate, res.GlobalMisrouteRate)

	// On-the-fly adaptive routing should deliver nearly all offered
	// uniform traffic at this load with rare misrouting.
	if res.AcceptedLoad < 0.9*res.OfferedLoad {
		fmt.Println("note: the network is saturating at this load")
	}
}
