// Adversarial traffic study: why dragonflies need local AND global
// misrouting (the paper's central motivation).
//
// This example reproduces, at reduced scale, the three pathologies of
// Section II:
//
//  1. ADVG+1 — every group sends to its neighbor group: the single global
//     channel between two groups caps minimal routing at 1/(2h²);
//  2. ADVG+h — the Valiant fix for (1) saturates one ring-local link in
//     every intermediate group, capping any global-only scheme at 1/h;
//  3. ADVL+1 — every router sends to its neighbor router: the single
//     local link caps everything without local misrouting at 1/h.
//
// For each pattern it prints the accepted throughput of Minimal, Valiant,
// Piggybacking and the paper's OLM, with the theoretical caps.
//
// Run with:
//
//	go run ./examples/adversarial
package main

import (
	"flag"
	"fmt"
	"log"

	dragonfly "repro"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scale for smoke tests")
	flag.Parse()
	h, warmup, measure := 4, int64(2000), int64(4000)
	if *quick {
		h, warmup, measure = 2, 500, 1000
	}
	patterns := []struct {
		name    string
		traffic dragonfly.Traffic
		capDesc string
		cap     float64
	}{
		{"ADVG+1", dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1},
			"1/(2h^2) without global misrouting", 1.0 / float64(2*h*h)},
		{"ADVG+h", dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: h},
			"1/h without local misrouting", 1.0 / float64(h)},
		{"ADVL+1", dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: 1},
			"1/h without misrouting", 1.0 / float64(h)},
	}
	mechanisms := []dragonfly.Mechanism{
		dragonfly.Minimal, dragonfly.Valiant, dragonfly.Piggybacking, dragonfly.OLM,
	}

	for _, p := range patterns {
		fmt.Printf("\n%s (cap: %s = %.4f)\n", p.name, p.capDesc, p.cap)
		for _, m := range mechanisms {
			cfg := dragonfly.PaperVCT(h)
			cfg.Mechanism = m
			cfg.Traffic = p.traffic
			cfg.Load = 1.0 // saturate to find maximum throughput
			cfg.Warmup, cfg.Measure = warmup, measure
			cfg.Seed = 7
			res, err := dragonfly.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			marker := ""
			if res.AcceptedLoad > p.cap*1.05 {
				marker = "  <- breaks the cap"
			}
			fmt.Printf("  %-13s accepted %.4f  (misroutes: %.2f local, %.2f global)%s\n",
				m, res.AcceptedLoad, res.LocalMisrouteRate, res.GlobalMisrouteRate, marker)
		}
	}
	fmt.Println("\nOLM circumvents every pathology with the same 3/2 virtual channels")
	fmt.Println("as minimal-only routing — that is the paper's contribution.")
}
