package dragonfly

import "repro/internal/core"

// ParityRow is one row of the paper's Table I: whether a 2-hop local route
// whose hops have the given link types is permitted by the parity-sign
// restriction of RLM.
type ParityRow struct {
	First   string // link type of the first hop: "odd-", "even+", "odd+", "even-"
	Second  string // link type of the second hop
	Allowed bool
}

// ParityTableRows regenerates Table I of the paper: the 16 possible 2-hop
// combinations in the paper's row order with their verdicts.
func ParityTableRows() []ParityRow {
	tab := core.NewParityTable()
	order := []core.LinkType{core.OddNeg, core.EvenPos, core.OddPos, core.EvenNeg}
	rows := make([]ParityRow, 0, 16)
	for _, first := range order {
		for _, second := range order {
			rows = append(rows, ParityRow{
				First:   first.String(),
				Second:  second.String(),
				Allowed: tab.Allowed(first, second),
			})
		}
	}
	return rows
}

// LocalHopType classifies a directed local hop between router indices i
// and j of one group by the parity-sign scheme ("odd-", "even+", ...).
func LocalHopType(i, j int) string { return core.ClassifyHop(i, j).String() }

// RestrictedIntermediates returns the intermediate routers k through which
// a 2-hop local route i -> k -> j is permitted by RLM's parity-sign rule
// in a group of 2h routers. The paper guarantees at least h-1 of them for
// every pair.
func RestrictedIntermediates(i, j, h int) []int {
	return core.NewParityTable().Intermediates(nil, i, j, 2*h)
}
