package dragonfly_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	dragonfly "repro"
	"repro/internal/exp"
)

// TestFaultSpecValidation covers the new Config.Faults checks.
func TestFaultSpecValidation(t *testing.T) {
	base := fast(dragonfly.Minimal)
	base.Load = 0.2

	cases := []struct {
		name   string
		faults *dragonfly.FaultSpec
	}{
		{"fraction >= 1", &dragonfly.FaultSpec{GlobalFraction: 1}},
		{"negative fraction", &dragonfly.FaultSpec{LocalFraction: -0.1}},
		{"NaN global fraction", &dragonfly.FaultSpec{GlobalFraction: math.NaN()}},
		{"NaN local fraction", &dragonfly.FaultSpec{LocalFraction: math.NaN()}},
		{"router out of range", &dragonfly.FaultSpec{Links: []dragonfly.LinkID{{Router: 10_000, Port: 0}}}},
		{"ejection port", &dragonfly.FaultSpec{Links: []dragonfly.LinkID{{Router: 0, Port: 3*2 - 1}}}},
		{"negative event cycle", &dragonfly.FaultSpec{Events: []dragonfly.FaultEvent{
			{At: -5, Link: dragonfly.LinkID{Router: 0, Port: 0}},
		}}},
		{"router fault out of range", &dragonfly.FaultSpec{Routers: []dragonfly.RouterFault{{Router: 10_000}}}},
		{"negative router fault", &dragonfly.FaultSpec{Routers: []dragonfly.RouterFault{{Router: -1}}}},
		{"router fault negative cycle", &dragonfly.FaultSpec{Routers: []dragonfly.RouterFault{{Router: 3, At: -7}}}},
		{"router repaired before failing", &dragonfly.FaultSpec{Routers: []dragonfly.RouterFault{
			{Router: 3, At: 500, Until: 500},
		}}},
		{"bundle group out of range", &dragonfly.FaultSpec{Bundles: []dragonfly.BundleFault{{Group: 99}}}},
		{"bundle degenerate local range", &dragonfly.FaultSpec{Bundles: []dragonfly.BundleFault{
			{Group: 1, First: 2, Last: 2},
		}}},
		{"bundle local range past group", &dragonfly.FaultSpec{Bundles: []dragonfly.BundleFault{
			{Group: 1, First: 0, Last: 4}, // h=2: router indices are [0, 4)
		}}},
		{"flap down >= period", &dragonfly.FaultSpec{Flaps: []dragonfly.FlapSpec{
			{Link: dragonfly.LinkID{Router: 0, Port: 0}, Period: 100, Down: 100, Count: 4},
		}}},
		{"flap zero count", &dragonfly.FaultSpec{Flaps: []dragonfly.FlapSpec{
			{Link: dragonfly.LinkID{Router: 0, Port: 0}, Period: 100, Down: 10},
		}}},
		{"flap count too large", &dragonfly.FaultSpec{Flaps: []dragonfly.FlapSpec{
			{Link: dragonfly.LinkID{Router: 0, Port: 0}, Period: 100, Down: 10, Count: 100_001},
		}}},
		{"flap on ejection port", &dragonfly.FaultSpec{Flaps: []dragonfly.FlapSpec{
			{Link: dragonfly.LinkID{Router: 0, Port: 3*2 - 1}, Period: 100, Down: 10, Count: 4},
		}}},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Faults = tc.faults
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validation accepted %+v", tc.name, tc.faults)
		}
	}

	cfg := base
	cfg.Faults = &dragonfly.FaultSpec{
		GlobalFraction: 0.1,
		Links:          []dragonfly.LinkID{{Router: 0, Port: 0}},
		Events: []dragonfly.FaultEvent{
			{At: 100, Link: dragonfly.LinkID{Router: 1, Port: 1}},
			{At: 200, Repair: true, Link: dragonfly.LinkID{Router: 1, Port: 1}},
		},
		Routers: []dragonfly.RouterFault{{Router: 7, At: 1000, Until: 2000}},
		Bundles: []dragonfly.BundleFault{{Group: 3}, {Group: 1, First: 0, Last: 2, At: 500}},
		Flaps: []dragonfly.FlapSpec{
			{Link: dragonfly.LinkID{Router: 2, Port: 3}, At: 400, Period: 200, Down: 50, Count: 6},
		},
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid fault spec rejected: %v", err)
	}
}

// TestPartitionedFaultConfigRejected: a fault set that disconnects the
// network must be refused before any simulation runs — here, every link of
// router 0 (its 3 local links and 2 global channels at h=2... port list is
// all link ports).
func TestPartitionedFaultConfigRejected(t *testing.T) {
	cfg := fast(dragonfly.Minimal)
	cfg.Load = 0.2
	var links []dragonfly.LinkID
	for port := 0; port < 3*2-1; port++ { // all 5 link ports of router 0
		links = append(links, dragonfly.LinkID{Router: 0, Port: port})
	}
	cfg.Faults = &dragonfly.FaultSpec{Links: links}
	if _, err := dragonfly.Run(cfg); err == nil {
		t.Fatal("partitioned fault config accepted")
	}

	// Dynamic partition is rejected too.
	cfg.Faults = &dragonfly.FaultSpec{}
	for port := 0; port < 3*2-1; port++ {
		cfg.Faults.Events = append(cfg.Faults.Events,
			dragonfly.FaultEvent{At: 100, Link: dragonfly.LinkID{Router: 0, Port: port}})
	}
	if _, err := dragonfly.Run(cfg); err == nil {
		t.Fatal("dynamically partitioning fault config accepted")
	}

	// Only the state at each event-cycle boundary matters: isolating
	// router 0 and reconnecting it in the same cycle is legal (the engine
	// applies all same-cycle events before any routing runs).
	cfg.Faults.Events = append(cfg.Faults.Events,
		dragonfly.FaultEvent{At: 100, Repair: true, Link: dragonfly.LinkID{Router: 0, Port: 0}})
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatalf("same-cycle kill+repair batch with a connected end state rejected: %v", err)
	}
	if res.Deadlock {
		t.Fatal("same-cycle batch run deadlocked")
	}
}

// TestFaultCanonicalization: the two spellings of one link (either end)
// and shuffled event order must hash to the same cache key, and an empty
// spec must hash like no spec at all.
func TestFaultCanonicalization(t *testing.T) {
	cache := &exp.Cache{}
	base := fast(dragonfly.OLM)
	base.Load = 0.3

	plain := base
	empty := base
	empty.Faults = &dragonfly.FaultSpec{}
	if cache.Key(plain) != cache.Key(empty) {
		t.Error("empty fault spec changed the cache key")
	}

	// Link 0-(port 0) seen from router 0 and from its remote end.
	a := base
	a.Faults = &dragonfly.FaultSpec{Links: []dragonfly.LinkID{{Router: 0, Port: 0}}}
	canon := a.Canonical()
	if canon.Faults == nil || len(canon.Faults.Links) != 1 {
		t.Fatalf("canonical lost the fault link: %+v", canon.Faults)
	}
	cl := canon.Faults.Links[0]
	b := base
	b.Faults = &dragonfly.FaultSpec{Links: []dragonfly.LinkID{remoteEnd(t, cl)}}
	if cache.Key(a) != cache.Key(b) {
		t.Error("the two ends of one link hash differently")
	}
	if a.Faults.Links[0] != (dragonfly.LinkID{Router: 0, Port: 0}) {
		t.Error("Canonical mutated the caller's spec")
	}

	// Event order: same events, shuffled.
	e1 := dragonfly.FaultEvent{At: 100, Link: dragonfly.LinkID{Router: 0, Port: 0}}
	e2 := dragonfly.FaultEvent{At: 100, Link: dragonfly.LinkID{Router: 3, Port: 1}}
	c1, c2 := base, base
	c1.Faults = &dragonfly.FaultSpec{Events: []dragonfly.FaultEvent{e1, e2}}
	c2.Faults = &dragonfly.FaultSpec{Events: []dragonfly.FaultEvent{e2, e1}}
	if cache.Key(c1) != cache.Key(c2) {
		t.Error("same-cycle event order changed the cache key")
	}

	// Different fault specs must not collide.
	d := base
	d.Faults = &dragonfly.FaultSpec{GlobalFraction: 0.1}
	if cache.Key(d) == cache.Key(plain) {
		t.Error("a fault fraction did not change the cache key")
	}

	// Whole-router failures: listing order and duplicates are spelling,
	// "failed from the start" has one spelling regardless of sign.
	r1 := base
	r1.Faults = &dragonfly.FaultSpec{Routers: []dragonfly.RouterFault{
		{Router: 9, At: 500}, {Router: 3}, {Router: 3, At: -4},
	}}
	r2 := base
	r2.Faults = &dragonfly.FaultSpec{Routers: []dragonfly.RouterFault{
		{Router: 3, At: -100}, {Router: 9, At: 500},
	}}
	if cache.Key(r1) != cache.Key(r2) {
		t.Error("equivalent router-fault spellings hash differently")
	}
	if cache.Key(r1) == cache.Key(plain) {
		t.Error("router faults did not change the cache key")
	}

	// Bundle ranges: the two orientations of one local segment are one
	// bundle.
	b1, b2 := base, base
	b1.Faults = &dragonfly.FaultSpec{Bundles: []dragonfly.BundleFault{{Group: 2, First: 0, Last: 3}}}
	b2.Faults = &dragonfly.FaultSpec{Bundles: []dragonfly.BundleFault{{Group: 2, First: 3, Last: 0}}}
	if cache.Key(b1) != cache.Key(b2) {
		t.Error("the two orientations of a bundle range hash differently")
	}

	// Flaps: either end of the link names the same flap.
	f1 := base
	f1.Faults = &dragonfly.FaultSpec{Flaps: []dragonfly.FlapSpec{
		{Link: dragonfly.LinkID{Router: 0, Port: 0}, At: 100, Period: 200, Down: 50, Count: 4},
	}}
	cfl := f1.Canonical().Faults.Flaps[0]
	f2 := base
	f2.Faults = &dragonfly.FaultSpec{Flaps: []dragonfly.FlapSpec{
		{Link: remoteEnd(t, cfl.Link), At: 100, Period: 200, Down: 50, Count: 4},
	}}
	if cache.Key(f1) != cache.Key(f2) {
		t.Error("the two ends of a flapping link hash differently")
	}
}

// TestFaultCanonicalFixedPoint: Canonical must be idempotent on the richest
// spec we can spell — the second application may not change anything, or
// cache keys would drift between a config and its canonical form.
func TestFaultCanonicalFixedPoint(t *testing.T) {
	cfg := fast(dragonfly.OLM)
	cfg.Load = 0.3
	cfg.StaleCycles = 150
	cfg.Faults = &dragonfly.FaultSpec{
		GlobalFraction: 0.05,
		LocalFraction:  0.02,
		Links:          []dragonfly.LinkID{{Router: 5, Port: 1}, {Router: 0, Port: 3}},
		Events: []dragonfly.FaultEvent{
			{At: 900, Link: dragonfly.LinkID{Router: 4, Port: 2}},
			{At: 300, Link: dragonfly.LinkID{Router: 1, Port: 0}},
			{At: 900, Repair: true, Link: dragonfly.LinkID{Router: 4, Port: 2}},
		},
		Routers: []dragonfly.RouterFault{{Router: 11, At: -3}, {Router: 2, At: 700, Until: 1400}},
		Bundles: []dragonfly.BundleFault{{Group: 4, First: 3, Last: 1}, {Group: 6, At: 250}},
		Flaps: []dragonfly.FlapSpec{
			{Link: dragonfly.LinkID{Router: 8, Port: 4}, At: 100, Period: 300, Down: 60, Count: 12},
			{Link: dragonfly.LinkID{Router: 8, Port: 4}, At: 100, Period: 300, Down: 60, Count: 12},
		},
	}
	once := cfg.Canonical()
	twice := once.Canonical()
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("Canonical is not a fixed point:\nonce:  %+v\ntwice: %+v", once.Faults, twice.Faults)
	}
	cache := &exp.Cache{}
	if cache.Key(cfg) != cache.Key(once) {
		t.Fatal("a config and its canonical form hash differently")
	}
	if len(once.Faults.Flaps) != 1 {
		t.Fatalf("duplicate flap survived canonicalization: %+v", once.Faults.Flaps)
	}
}

// remoteEnd resolves the other end of a canonical link via the public
// topology accessors (NetworkSize gives no ports, so walk candidates).
func remoteEnd(t *testing.T, l dragonfly.LinkID) dragonfly.LinkID {
	t.Helper()
	// Brute-force: the remote end is the unique other LinkID whose
	// canonical form equals l's.
	base := fast(dragonfly.Minimal)
	base.Load = 0.2
	routers, _, _, err := dragonfly.NetworkSize(2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < routers; r++ {
		for port := 0; port < 3*2-1; port++ {
			cand := dragonfly.LinkID{Router: r, Port: port}
			if cand == l {
				continue
			}
			cfg := base
			cfg.Faults = &dragonfly.FaultSpec{Links: []dragonfly.LinkID{cand}}
			canon := cfg.Canonical()
			if len(canon.Faults.Links) == 1 && canon.Faults.Links[0] == l {
				return cand
			}
		}
	}
	t.Fatalf("no remote end found for %+v", l)
	return dragonfly.LinkID{}
}

// TestFaultRunConservation: at the public API level, a faulted steady run
// accounts every generated packet as delivered, fault-dropped, lost at
// injection, or still in flight at quiesce.
func TestFaultRunConservation(t *testing.T) {
	cfg := fast(dragonfly.Minimal)
	cfg.Load = 0.25
	cfg.Warmup = 0 // count every event from cycle 0
	cfg.Faults = &dragonfly.FaultSpec{GlobalFraction: 0.2}
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("faulted run deadlocked")
	}
	if res.FaultDrops == 0 {
		t.Fatal("Minimal dropped nothing with 20% of global links down")
	}
	inFlight := res.Generated - res.InjectionLost - res.Delivered - res.FaultDrops
	if inFlight < 0 {
		t.Fatalf("conservation violated: generated %d < lost %d + delivered %d + dropped %d",
			res.Generated, res.InjectionLost, res.Delivered, res.FaultDrops)
	}
	// The in-flight residue is bounded by what the network can hold.
	if inFlight > int64(res.Nodes)*20 {
		t.Fatalf("implausible in-flight residue %d", inFlight)
	}
}

// TestFaultedRunsDiffer: the same config with and without faults must
// differ (the faults really bite), and two different fault seeds differ.
func TestFaultedRunsDiffer(t *testing.T) {
	cfg := fast(dragonfly.OLM)
	cfg.Load = 0.3
	plain, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &dragonfly.FaultSpec{GlobalFraction: 0.25}
	faulted, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GlobalMisrouteRate == faulted.GlobalMisrouteRate &&
		plain.AvgTotalLatency == faulted.AvgTotalLatency {
		t.Fatal("25% global faults left OLM's behavior unchanged (suspicious)")
	}
}

// TestStaleCyclesConfig covers the stale-link-state knob's config surface:
// negative values are rejected, staleness without fault events is
// canonicalized away (it cannot affect results, so the spellings share a
// cache key), and staleness with events survives canonicalization.
func TestStaleCyclesConfig(t *testing.T) {
	cfg := fast(dragonfly.Minimal)
	cfg.Load = 0.2
	cfg.StaleCycles = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative StaleCycles accepted")
	}

	cfg.StaleCycles = 400
	if got := cfg.Canonical().StaleCycles; got != 0 {
		t.Errorf("StaleCycles %d survived canonicalization without fault events", got)
	}
	cfg.Faults = &dragonfly.FaultSpec{GlobalFraction: 0.1}
	if got := cfg.Canonical().StaleCycles; got != 0 {
		t.Errorf("StaleCycles %d survived canonicalization with static faults only", got)
	}
	cfg.Faults.Events = []dragonfly.FaultEvent{{At: 100, Link: dragonfly.LinkID{Router: 0, Port: 0}}}
	if got := cfg.Canonical().StaleCycles; got != 400 {
		t.Errorf("Canonical dropped StaleCycles with fault events present (got %d)", got)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid stale config rejected: %v", err)
	}
}

// TestDegradedRunConservation: with a whole-router failure plus a flapping
// global channel, the public Result must still account every generation
// event — delivered, fault-dropped, lost at injection, suppressed at a
// parked source, or in flight at quiesce — and the parked router's nodes
// must actually have been suppressed.
func TestDegradedRunConservation(t *testing.T) {
	cfg := fast(dragonfly.OLM)
	cfg.Load = 0.25
	cfg.Warmup = 0 // count every event from cycle 0
	cfg.Faults = &dragonfly.FaultSpec{
		Routers: []dragonfly.RouterFault{{Router: 3, At: 500}},
		Flaps: []dragonfly.FlapSpec{
			{Link: dragonfly.LinkID{Router: 0, Port: 3}, At: 400, Period: 300, Down: 80, Count: 10},
		},
	}
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("degraded run deadlocked")
	}
	if res.Suppressed == 0 {
		t.Fatal("a failed router parked no injections")
	}
	if res.FaultDrops == 0 {
		t.Fatal("a failed router plus a flapping channel dropped nothing")
	}
	inFlight := res.Generated - res.InjectionLost - res.Suppressed - res.Delivered - res.FaultDrops
	if inFlight < 0 {
		t.Fatalf("conservation violated: generated %d < lost %d + suppressed %d + delivered %d + dropped %d",
			res.Generated, res.InjectionLost, res.Suppressed, res.Delivered, res.FaultDrops)
	}
	if inFlight > int64(res.Nodes)*20 {
		t.Fatalf("implausible in-flight residue %d", inFlight)
	}
}

// TestLongFlapPrepareBounded is the regression for the deduped
// connectivity re-check: a maximal flap schedule expands to 200k fault
// events but only ever revisits two distinct link states, so validation
// must run O(distinct states) BFS passes, not O(events). Before the
// dedupe, this config re-ran the reachability sweep per event and took
// minutes at h=4; with it, Prepare is dominated by building the network.
func TestLongFlapPrepareBounded(t *testing.T) {
	cfg := dragonfly.PaperVCT(4)
	cfg.Load = 0.1
	cfg.Warmup, cfg.Measure = 100, 100
	cfg.Faults = &dragonfly.FaultSpec{
		Flaps: []dragonfly.FlapSpec{
			{Link: dragonfly.LinkID{Router: 0, Port: 7}, At: 0, Period: 4, Down: 2, Count: 100_000},
		},
	}
	start := time.Now()
	if _, err := dragonfly.Prepare(cfg); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("Prepare took %v on a 200k-event flap schedule; the connectivity dedupe has regressed", d)
	}
}
