package dragonfly_test

import (
	"math"
	"testing"

	dragonfly "repro"
	"repro/internal/exp"
)

// TestFaultSpecValidation covers the new Config.Faults checks.
func TestFaultSpecValidation(t *testing.T) {
	base := fast(dragonfly.Minimal)
	base.Load = 0.2

	cases := []struct {
		name   string
		faults *dragonfly.FaultSpec
	}{
		{"fraction >= 1", &dragonfly.FaultSpec{GlobalFraction: 1}},
		{"negative fraction", &dragonfly.FaultSpec{LocalFraction: -0.1}},
		{"NaN global fraction", &dragonfly.FaultSpec{GlobalFraction: math.NaN()}},
		{"NaN local fraction", &dragonfly.FaultSpec{LocalFraction: math.NaN()}},
		{"router out of range", &dragonfly.FaultSpec{Links: []dragonfly.LinkID{{Router: 10_000, Port: 0}}}},
		{"ejection port", &dragonfly.FaultSpec{Links: []dragonfly.LinkID{{Router: 0, Port: 3*2 - 1}}}},
		{"negative event cycle", &dragonfly.FaultSpec{Events: []dragonfly.FaultEvent{
			{At: -5, Link: dragonfly.LinkID{Router: 0, Port: 0}},
		}}},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Faults = tc.faults
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validation accepted %+v", tc.name, tc.faults)
		}
	}

	cfg := base
	cfg.Faults = &dragonfly.FaultSpec{
		GlobalFraction: 0.1,
		Links:          []dragonfly.LinkID{{Router: 0, Port: 0}},
		Events: []dragonfly.FaultEvent{
			{At: 100, Link: dragonfly.LinkID{Router: 1, Port: 1}},
			{At: 200, Repair: true, Link: dragonfly.LinkID{Router: 1, Port: 1}},
		},
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid fault spec rejected: %v", err)
	}
}

// TestPartitionedFaultConfigRejected: a fault set that disconnects the
// network must be refused before any simulation runs — here, every link of
// router 0 (its 3 local links and 2 global channels at h=2... port list is
// all link ports).
func TestPartitionedFaultConfigRejected(t *testing.T) {
	cfg := fast(dragonfly.Minimal)
	cfg.Load = 0.2
	var links []dragonfly.LinkID
	for port := 0; port < 3*2-1; port++ { // all 5 link ports of router 0
		links = append(links, dragonfly.LinkID{Router: 0, Port: port})
	}
	cfg.Faults = &dragonfly.FaultSpec{Links: links}
	if _, err := dragonfly.Run(cfg); err == nil {
		t.Fatal("partitioned fault config accepted")
	}

	// Dynamic partition is rejected too.
	cfg.Faults = &dragonfly.FaultSpec{}
	for port := 0; port < 3*2-1; port++ {
		cfg.Faults.Events = append(cfg.Faults.Events,
			dragonfly.FaultEvent{At: 100, Link: dragonfly.LinkID{Router: 0, Port: port}})
	}
	if _, err := dragonfly.Run(cfg); err == nil {
		t.Fatal("dynamically partitioning fault config accepted")
	}

	// Only the state at each event-cycle boundary matters: isolating
	// router 0 and reconnecting it in the same cycle is legal (the engine
	// applies all same-cycle events before any routing runs).
	cfg.Faults.Events = append(cfg.Faults.Events,
		dragonfly.FaultEvent{At: 100, Repair: true, Link: dragonfly.LinkID{Router: 0, Port: 0}})
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatalf("same-cycle kill+repair batch with a connected end state rejected: %v", err)
	}
	if res.Deadlock {
		t.Fatal("same-cycle batch run deadlocked")
	}
}

// TestFaultCanonicalization: the two spellings of one link (either end)
// and shuffled event order must hash to the same cache key, and an empty
// spec must hash like no spec at all.
func TestFaultCanonicalization(t *testing.T) {
	cache := &exp.Cache{}
	base := fast(dragonfly.OLM)
	base.Load = 0.3

	plain := base
	empty := base
	empty.Faults = &dragonfly.FaultSpec{}
	if cache.Key(plain) != cache.Key(empty) {
		t.Error("empty fault spec changed the cache key")
	}

	// Link 0-(port 0) seen from router 0 and from its remote end.
	a := base
	a.Faults = &dragonfly.FaultSpec{Links: []dragonfly.LinkID{{Router: 0, Port: 0}}}
	canon := a.Canonical()
	if canon.Faults == nil || len(canon.Faults.Links) != 1 {
		t.Fatalf("canonical lost the fault link: %+v", canon.Faults)
	}
	cl := canon.Faults.Links[0]
	b := base
	b.Faults = &dragonfly.FaultSpec{Links: []dragonfly.LinkID{remoteEnd(t, cl)}}
	if cache.Key(a) != cache.Key(b) {
		t.Error("the two ends of one link hash differently")
	}
	if a.Faults.Links[0] != (dragonfly.LinkID{Router: 0, Port: 0}) {
		t.Error("Canonical mutated the caller's spec")
	}

	// Event order: same events, shuffled.
	e1 := dragonfly.FaultEvent{At: 100, Link: dragonfly.LinkID{Router: 0, Port: 0}}
	e2 := dragonfly.FaultEvent{At: 100, Link: dragonfly.LinkID{Router: 3, Port: 1}}
	c1, c2 := base, base
	c1.Faults = &dragonfly.FaultSpec{Events: []dragonfly.FaultEvent{e1, e2}}
	c2.Faults = &dragonfly.FaultSpec{Events: []dragonfly.FaultEvent{e2, e1}}
	if cache.Key(c1) != cache.Key(c2) {
		t.Error("same-cycle event order changed the cache key")
	}

	// Different fault specs must not collide.
	d := base
	d.Faults = &dragonfly.FaultSpec{GlobalFraction: 0.1}
	if cache.Key(d) == cache.Key(plain) {
		t.Error("a fault fraction did not change the cache key")
	}
}

// remoteEnd resolves the other end of a canonical link via the public
// topology accessors (NetworkSize gives no ports, so walk candidates).
func remoteEnd(t *testing.T, l dragonfly.LinkID) dragonfly.LinkID {
	t.Helper()
	// Brute-force: the remote end is the unique other LinkID whose
	// canonical form equals l's.
	base := fast(dragonfly.Minimal)
	base.Load = 0.2
	routers, _, _, err := dragonfly.NetworkSize(2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < routers; r++ {
		for port := 0; port < 3*2-1; port++ {
			cand := dragonfly.LinkID{Router: r, Port: port}
			if cand == l {
				continue
			}
			cfg := base
			cfg.Faults = &dragonfly.FaultSpec{Links: []dragonfly.LinkID{cand}}
			canon := cfg.Canonical()
			if len(canon.Faults.Links) == 1 && canon.Faults.Links[0] == l {
				return cand
			}
		}
	}
	t.Fatalf("no remote end found for %+v", l)
	return dragonfly.LinkID{}
}

// TestFaultRunConservation: at the public API level, a faulted steady run
// accounts every generated packet as delivered, fault-dropped, lost at
// injection, or still in flight at quiesce.
func TestFaultRunConservation(t *testing.T) {
	cfg := fast(dragonfly.Minimal)
	cfg.Load = 0.25
	cfg.Warmup = 0 // count every event from cycle 0
	cfg.Faults = &dragonfly.FaultSpec{GlobalFraction: 0.2}
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("faulted run deadlocked")
	}
	if res.FaultDrops == 0 {
		t.Fatal("Minimal dropped nothing with 20% of global links down")
	}
	inFlight := res.Generated - res.InjectionLost - res.Delivered - res.FaultDrops
	if inFlight < 0 {
		t.Fatalf("conservation violated: generated %d < lost %d + delivered %d + dropped %d",
			res.Generated, res.InjectionLost, res.Delivered, res.FaultDrops)
	}
	// The in-flight residue is bounded by what the network can hold.
	if inFlight > int64(res.Nodes)*20 {
		t.Fatalf("implausible in-flight residue %d", inFlight)
	}
}

// TestFaultedRunsDiffer: the same config with and without faults must
// differ (the faults really bite), and two different fault seeds differ.
func TestFaultedRunsDiffer(t *testing.T) {
	cfg := fast(dragonfly.OLM)
	cfg.Load = 0.3
	plain, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &dragonfly.FaultSpec{GlobalFraction: 0.25}
	faulted, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GlobalMisrouteRate == faulted.GlobalMisrouteRate &&
		plain.AvgTotalLatency == faulted.AvgTotalLatency {
		t.Fatal("25% global faults left OLM's behavior unchanged (suspicious)")
	}
}

// TestStaleCyclesConfig covers the stale-link-state knob's config surface:
// negative values are rejected, staleness without fault events is
// canonicalized away (it cannot affect results, so the spellings share a
// cache key), and staleness with events survives canonicalization.
func TestStaleCyclesConfig(t *testing.T) {
	cfg := fast(dragonfly.Minimal)
	cfg.Load = 0.2
	cfg.StaleCycles = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative StaleCycles accepted")
	}

	cfg.StaleCycles = 400
	if got := cfg.Canonical().StaleCycles; got != 0 {
		t.Errorf("StaleCycles %d survived canonicalization without fault events", got)
	}
	cfg.Faults = &dragonfly.FaultSpec{GlobalFraction: 0.1}
	if got := cfg.Canonical().StaleCycles; got != 0 {
		t.Errorf("StaleCycles %d survived canonicalization with static faults only", got)
	}
	cfg.Faults.Events = []dragonfly.FaultEvent{{At: 100, Link: dragonfly.LinkID{Router: 0, Port: 0}}}
	if got := cfg.Canonical().StaleCycles; got != 400 {
		t.Errorf("Canonical dropped StaleCycles with fault events present (got %d)", got)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid stale config rejected: %v", err)
	}
}
