// routetab.go is the precomputed routing-table layer: flat, read-only
// lookup tables derived once from the closed-form dragonfly arithmetic of
// topology.go, so per-packet route evaluation becomes index walks instead
// of repeated div/mod chains. Real dragonfly routers work exactly this way
// — a fabric manager computes routing tables at boot (and recomputes them
// on faults); the per-packet data path only consults them.
//
// All tables are pure functions of the topology parameter h. They are
// immutable after NewRouteTable, so one instance is shared read-only by
// every router of a simulation (and by every worker of the parallel
// executor) without synchronization. Fault state deliberately lives
// elsewhere: the engine keeps its own fault-view tables and recomputes
// them incrementally when links die or recover (see internal/engine).
package topology

// MinHop is one entry of the minimal-route table: the next-hop output port
// a router uses toward a target group, whether that hop is global, and the
// in-group index of the exit router the hop steers to (the global channel
// owner; -1 when the hop is the global channel itself).
type MinHop struct {
	Port   int16
	Exit   int16 // exit router index within the group; -1 on global hops
	Global bool
}

// RouteTable holds the precomputed tables of one dragonfly instance.
type RouteTable struct {
	p *P

	// groupOf and indexOf replace the div/mod of GroupOf / IndexInGroup
	// with one indexed load on the per-packet paths.
	groupOf []int32 // router id -> group
	indexOf []int32 // router id -> index within its group

	// minRows is the minimal next-hop table, flattened [RoutersPerGroup x
	// Groups]: minRows[idx*Groups+d] is the hop router index idx takes
	// toward the group at cyclic offset d = (tg-g) mod Groups (d >= 1).
	// The entry depends only on (idx, d), never on the absolute group, so
	// one row set serves every group of the machine. Entry d=0 is invalid
	// (a router never steers "toward" its own group through this table).
	minRows []MinHop

	// ownerOf[d] is the in-group index of the router owning the global
	// channel toward offset d (the channel d-1); ownerOf[0] is -1.
	ownerOf []int16

	// gpm is the global-port matrix, flattened [RoutersPerGroup x Groups]:
	// gpm[idx*Groups+d] is the global output port of router index idx
	// driving the channel toward offset d, or -1 when idx does not own
	// that channel. gpm[idx*Groups+0] is -1.
	gpm []int16

	// localPort is flattened [RoutersPerGroup x RoutersPerGroup]:
	// localPort[from*RPG+to] is the local output port from router index
	// from to index to (-1 on the diagonal).
	localPort []int16

	// localTarget is flattened [RoutersPerGroup x LocalPorts]:
	// localTarget[idx*LocalPorts+port] is the in-group index reached
	// through local port of router index idx.
	localTarget []int16

	// ringPort[idx] is the output port of OFAR's escape-ring hop at a
	// router with in-group index idx: descending local hops, router 0
	// crossing on global channel 0.
	ringPort []int16
}

// NewRouteTable computes the full table set for p. Construction is
// O(RoutersPerGroup x Groups) — microseconds even at paper scale — and is
// done once per simulation.
func NewRouteTable(p *P) *RouteTable {
	rpg, groups := p.RoutersPerGroup, p.Groups
	t := &RouteTable{
		p:           p,
		groupOf:     make([]int32, p.Routers),
		indexOf:     make([]int32, p.Routers),
		minRows:     make([]MinHop, rpg*groups),
		ownerOf:     make([]int16, groups),
		gpm:         make([]int16, rpg*groups),
		localPort:   make([]int16, rpg*rpg),
		localTarget: make([]int16, rpg*p.LocalPorts),
		ringPort:    make([]int16, rpg),
	}
	for r := 0; r < p.Routers; r++ {
		t.groupOf[r] = int32(p.GroupOf(r))
		t.indexOf[r] = int32(p.IndexInGroup(r))
	}
	t.ownerOf[0] = -1
	for d := 1; d < groups; d++ {
		owner, _ := p.GlobalPortOfChannel(d - 1)
		t.ownerOf[d] = int16(owner)
	}
	for from := 0; from < rpg; from++ {
		for to := 0; to < rpg; to++ {
			if from == to {
				t.localPort[from*rpg+to] = -1
				continue
			}
			t.localPort[from*rpg+to] = int16(p.LocalPort(from, to))
		}
		for port := 0; port < p.LocalPorts; port++ {
			t.localTarget[from*p.LocalPorts+port] = int16(p.LocalPortTarget(from, port))
		}
	}
	for idx := 0; idx < rpg; idx++ {
		t.minRows[idx*groups] = MinHop{Port: -1, Exit: -1}
		t.gpm[idx*groups] = -1
		for d := 1; d < groups; d++ {
			k := d - 1
			owner, gport := p.GlobalPortOfChannel(k)
			e := MinHop{Exit: int16(owner)}
			if owner == idx {
				e.Port = int16(gport)
				e.Exit = -1
				e.Global = true
				t.gpm[idx*groups+d] = int16(gport)
			} else {
				e.Port = int16(p.LocalPort(idx, owner))
				t.gpm[idx*groups+d] = -1
			}
			t.minRows[idx*groups+d] = e
		}
		if idx > 0 {
			t.ringPort[idx] = int16(p.LocalPort(idx, idx-1))
		} else {
			t.ringPort[idx] = int16(p.GlobalPortBase())
		}
	}
	return t
}

// Topology returns the dragonfly the tables describe.
func (t *RouteTable) Topology() *P { return t.p }

// GroupOf returns the group of router r by table lookup.
func (t *RouteTable) GroupOf(r int) int { return int(t.groupOf[r]) }

// IndexOf returns router r's index within its group by table lookup.
func (t *RouteTable) IndexOf(r int) int { return int(t.indexOf[r]) }

// GroupOffset returns the cyclic offset d = (tg-g) mod Groups without a
// division (both arguments are in [0, Groups)).
func (t *RouteTable) GroupOffset(g, tg int) int {
	d := tg - g
	if d < 0 {
		d += t.p.Groups
	}
	return d
}

// MinHopTo returns the minimal next hop of a router with in-group index
// idx toward the group at cyclic offset d >= 1.
func (t *RouteTable) MinHopTo(idx, d int) MinHop {
	return t.minRows[idx*t.p.Groups+d]
}

// OwnerOf returns the in-group index of the router owning the global
// channel toward cyclic offset d >= 1.
func (t *RouteTable) OwnerOf(d int) int { return int(t.ownerOf[d]) }

// GlobalPortTo returns the global output port of router index idx driving
// the channel toward cyclic offset d, or -1 when idx does not own it.
func (t *RouteTable) GlobalPortTo(idx, d int) int { return int(t.gpm[idx*t.p.Groups+d]) }

// LocalPortTo returns the local output port from in-group index from to
// index to (-1 when from == to).
func (t *RouteTable) LocalPortTo(from, to int) int {
	return int(t.localPort[from*t.p.RoutersPerGroup+to])
}

// LocalTargetOf returns the in-group index reached through local port of
// router index idx.
func (t *RouteTable) LocalTargetOf(idx, port int) int {
	return int(t.localTarget[idx*t.p.LocalPorts+port])
}

// RingPortOf returns the escape-ring output port at in-group index idx.
func (t *RouteTable) RingPortOf(idx int) int { return int(t.ringPort[idx]) }
