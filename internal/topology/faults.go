package topology

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// FaultSet tracks which links of a dragonfly are failed, as one output-port
// bitmask per router. A link is a full-duplex physical channel: failing it
// always removes both directions, so the masks of the two endpoint routers
// stay symmetric. The engine mirrors these masks into its routers and
// consults them on every route evaluation; the routing mechanisms see them
// through core.View (link-state knowledge, the information a subnet manager
// broadcasting failed links would give recomputed routing tables).
//
// A FaultSet is plain data with no synchronization: the engine only mutates
// it in the serial section between cycles.
type FaultSet struct {
	p    *P
	down []uint64 // per-router output-port mask, bit set = link failed

	downGlobal int // failed global links (physical, both directions = one)
	downLocal  int // failed local links
}

// NewFaultSet returns an all-links-alive fault set for topology p.
func NewFaultSet(p *P) *FaultSet {
	return &FaultSet{p: p, down: make([]uint64, p.Routers)}
}

// Topology returns the dragonfly the set describes.
func (f *FaultSet) Topology() *P { return f.p }

// Clone returns an independent copy.
func (f *FaultSet) Clone() *FaultSet {
	c := &FaultSet{
		p:          f.p,
		down:       make([]uint64, len(f.down)),
		downGlobal: f.downGlobal,
		downLocal:  f.downLocal,
	}
	copy(c.down, f.down)
	return c
}

// SetLink fails (down=true) or repairs (down=false) the physical link
// driven by the given output port of router r, in both directions. Setting
// a link to its current state is a no-op. It panics on ejection ports,
// which have no link.
func (f *FaultSet) SetLink(r, port int, down bool) {
	if !f.p.IsLocalPort(port) && !f.p.IsGlobalPort(port) {
		panic(fmt.Sprintf("topology: SetLink(%d, %d): not a link port", r, port))
	}
	if f.Down(r, port) == down {
		return
	}
	rr, rp := f.p.LinkTarget(r, port)
	bit, rbit := uint64(1)<<uint(port), uint64(1)<<uint(rp)
	if down {
		f.down[r] |= bit
		f.down[rr] |= rbit
	} else {
		f.down[r] &^= bit
		f.down[rr] &^= rbit
	}
	delta := 1
	if !down {
		delta = -1
	}
	if f.p.IsGlobalPort(port) {
		f.downGlobal += delta
	} else {
		f.downLocal += delta
	}
}

// Down reports whether the link on output port of router r is failed.
func (f *FaultSet) Down(r, port int) bool {
	return f.down[r]&(1<<uint(port)) != 0
}

// PortMask returns router r's failed-port bitmask.
func (f *FaultSet) PortMask(r int) uint64 { return f.down[r] }

// DownGlobal and DownLocal count the failed physical links per class.
func (f *FaultSet) DownGlobal() int { return f.downGlobal }

// DownLocal counts the failed local links.
func (f *FaultSet) DownLocal() int { return f.downLocal }

// Empty reports whether every link is alive.
func (f *FaultSet) Empty() bool { return f.downGlobal == 0 && f.downLocal == 0 }

// RouteDown reports whether the single global channel from group g to group
// tg is failed. It is the group-pair reachability question every mechanism
// asks when steering toward a remote group.
func (f *FaultSet) RouteDown(g, tg int) bool {
	if g == tg {
		return false
	}
	k := f.p.ChannelToGroup(g, tg)
	idx, port := f.p.GlobalPortOfChannel(k)
	return f.Down(f.p.RouterID(g, idx), port)
}

// LocalRouteDown reports whether the local link between router indices i
// and j of group is failed.
func (f *FaultSet) LocalRouteDown(group, i, j int) bool {
	if i == j {
		return false
	}
	return f.Down(f.p.RouterID(group, i), f.p.LocalPort(i, j))
}

// TotalGlobalLinks returns the number of physical global links of p: one
// per unordered group pair.
func TotalGlobalLinks(p *P) int { return p.Groups * (p.Groups - 1) / 2 }

// TotalLocalLinks returns the number of physical local links of p: one per
// unordered router pair inside each group.
func TotalLocalLinks(p *P) int {
	return p.Groups * p.RoutersPerGroup * (p.RoutersPerGroup - 1) / 2
}

// Connected reports whether every router can still reach every other over
// the surviving links. Configurations that fail this check cannot be
// simulated meaningfully (some traffic has no path at all), so callers
// reject them up front.
func (f *FaultSet) Connected() bool {
	p := f.p
	seen := make([]bool, p.Routers)
	queue := make([]int, 0, p.Routers)
	seen[0] = true
	queue = append(queue, 0)
	visited := 1
	for len(queue) > 0 {
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for port := 0; port < p.EjectPortBase(); port++ {
			if f.Down(r, port) {
				continue
			}
			rr, _ := p.LinkTarget(r, port)
			if !seen[rr] {
				seen[rr] = true
				visited++
				queue = append(queue, rr)
			}
		}
	}
	return visited == p.Routers
}

// RandomFaults fails a deterministic pseudo-random selection of links in f:
// round(globalFrac * TotalGlobalLinks) global links and round(localFrac *
// TotalLocalLinks) local links, drawn without replacement from a SplitMix
// stream of seed. The same (topology, fractions, seed) always yields the
// same failed set, so configurations remain content-addressable.
func RandomFaults(f *FaultSet, globalFrac, localFrac float64, seed uint64) error {
	// The negated form rejects NaN along with out-of-range values.
	if !(globalFrac >= 0 && globalFrac < 1) || !(localFrac >= 0 && localFrac < 1) {
		return fmt.Errorf("topology: fault fractions %v/%v outside [0, 1)", globalFrac, localFrac)
	}
	p := f.p
	// Streams 1e9+1/1e9+3 sit far from the engine's per-router (2id+1) and
	// per-node (2node+2e6) streams for every simulatable size.
	if globalFrac > 0 {
		r := rng.New(seed, 1_000_000_001)
		links := make([][2]int, 0, TotalGlobalLinks(p))
		for g := 0; g < p.Groups; g++ {
			for k := 0; k < p.ChannelsPerGrp; k++ {
				if p.TargetGroup(g, k) < g {
					continue // counted from the lower-numbered group
				}
				idx, port := p.GlobalPortOfChannel(k)
				links = append(links, [2]int{p.RouterID(g, idx), port})
			}
		}
		for _, l := range pickLinks(links, globalFrac, r) {
			f.SetLink(l[0], l[1], true)
		}
	}
	if localFrac > 0 {
		r := rng.New(seed, 1_000_000_003)
		links := make([][2]int, 0, TotalLocalLinks(p))
		for g := 0; g < p.Groups; g++ {
			for i := 0; i < p.RoutersPerGroup; i++ {
				for j := i + 1; j < p.RoutersPerGroup; j++ {
					links = append(links, [2]int{p.RouterID(g, i), p.LocalPort(i, j)})
				}
			}
		}
		for _, l := range pickLinks(links, localFrac, r) {
			f.SetLink(l[0], l[1], true)
		}
	}
	return nil
}

// pickLinks selects round(frac*len) links by partial Fisher-Yates shuffle.
func pickLinks(links [][2]int, frac float64, r *rng.PCG) [][2]int {
	n := int(math.Round(frac * float64(len(links))))
	if n > len(links) {
		n = len(links)
	}
	for i := 0; i < n; i++ {
		j := i + r.Intn(len(links)-i)
		links[i], links[j] = links[j], links[i]
	}
	return links[:n]
}
