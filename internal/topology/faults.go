package topology

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/rng"
)

// FaultSet tracks which links and routers of a dragonfly are failed. Link
// state is one output-port bitmask per router. A link is a full-duplex
// physical channel: failing it always removes both directions, so the masks
// of the two endpoint routers stay symmetric. The engine mirrors these
// masks into its routers and consults them on every route evaluation; the
// routing mechanisms see them through core.View (link-state knowledge, the
// information a subnet manager broadcasting failed links would give
// recomputed routing tables).
//
// Faults are layered: the effective state of a link is down when the link
// itself was failed (SetLink) or when either endpoint router is dead
// (SetRouter). The two layers are tracked separately so repairing a router
// revives exactly the links that have no other reason to stay down, and
// repairing a link under a dead router leaves the port dead until the
// router comes back.
//
// A FaultSet is plain data with no synchronization: the engine only mutates
// it in the serial section between cycles.
type FaultSet struct {
	p        *P
	down     []uint64 // effective per-router mask: link failed or an endpoint dead
	linkDown []uint64 // explicitly failed links only (SetLink layer)
	dead     []bool   // whole-router failures (SetRouter layer)

	downGlobal  int // effectively failed global links (both directions = one)
	downLocal   int // effectively failed local links
	downRouters int // dead routers
}

// NewFaultSet returns an all-alive fault set for topology p.
func NewFaultSet(p *P) *FaultSet {
	return &FaultSet{
		p:        p,
		down:     make([]uint64, p.Routers),
		linkDown: make([]uint64, p.Routers),
		dead:     make([]bool, p.Routers),
	}
}

// Topology returns the dragonfly the set describes.
func (f *FaultSet) Topology() *P { return f.p }

// Clone returns an independent copy.
func (f *FaultSet) Clone() *FaultSet {
	c := &FaultSet{
		p:           f.p,
		down:        make([]uint64, len(f.down)),
		linkDown:    make([]uint64, len(f.linkDown)),
		dead:        make([]bool, len(f.dead)),
		downGlobal:  f.downGlobal,
		downLocal:   f.downLocal,
		downRouters: f.downRouters,
	}
	copy(c.down, f.down)
	copy(c.linkDown, f.linkDown)
	copy(c.dead, f.dead)
	return c
}

// setEffective flips the effective state of the link (r, port)—(rr, rp) and
// keeps the per-class counters in step. The caller guarantees the state
// actually changes.
func (f *FaultSet) setEffective(r, port, rr, rp int, down bool) {
	bit, rbit := uint64(1)<<uint(port), uint64(1)<<uint(rp)
	delta := 1
	if down {
		f.down[r] |= bit
		f.down[rr] |= rbit
	} else {
		f.down[r] &^= bit
		f.down[rr] &^= rbit
		delta = -1
	}
	if f.p.IsGlobalPort(port) {
		f.downGlobal += delta
	} else {
		f.downLocal += delta
	}
}

// SetLink fails (down=true) or repairs (down=false) the physical link
// driven by the given output port of router r, in both directions. Setting
// a link to its current explicit state is a no-op. It panics on ejection
// ports, which have no link. The return value reports whether the
// effective state of the link changed: repairing or failing a link whose
// endpoint router is dead records the explicit state but leaves the link
// effectively down, so callers mirroring the set into a routing view can
// key on it.
func (f *FaultSet) SetLink(r, port int, down bool) bool {
	if !f.p.IsLocalPort(port) && !f.p.IsGlobalPort(port) {
		panic(fmt.Sprintf("topology: SetLink(%d, %d): not a link port", r, port))
	}
	bit := uint64(1) << uint(port)
	if f.linkDown[r]&bit != 0 == down {
		return false
	}
	rr, rp := f.p.LinkTarget(r, port)
	rbit := uint64(1) << uint(rp)
	if down {
		f.linkDown[r] |= bit
		f.linkDown[rr] |= rbit
	} else {
		f.linkDown[r] &^= bit
		f.linkDown[rr] &^= rbit
	}
	if f.dead[r] || f.dead[rr] {
		return false // pinned down by the dead endpoint either way
	}
	f.setEffective(r, port, rr, rp, down)
	return true
}

// SetRouter fails (down=true) or repairs (down=false) router r as a whole:
// every link port of the router goes down with it (its ejection ports have
// no link; the engine parks the attached nodes separately). Setting a
// router to its current state is a no-op. The returned mask holds r's
// ports whose effective link state changed — on repair, links that were
// also explicitly failed or whose far endpoint is still dead stay down and
// are not reported.
func (f *FaultSet) SetRouter(r int, down bool) uint64 {
	if f.dead[r] == down {
		return 0
	}
	f.dead[r] = down
	if down {
		f.downRouters++
	} else {
		f.downRouters--
	}
	var changed uint64
	for port := 0; port < f.p.EjectPortBase(); port++ {
		rr, rp := f.p.LinkTarget(r, port)
		bit := uint64(1) << uint(port)
		effDown := f.linkDown[r]&bit != 0 || f.dead[r] || f.dead[rr]
		if f.down[r]&bit != 0 == effDown {
			continue
		}
		f.setEffective(r, port, rr, rp, effDown)
		changed |= bit
	}
	return changed
}

// Down reports whether the link on output port of router r is effectively
// failed (explicitly, or via a dead endpoint router).
func (f *FaultSet) Down(r, port int) bool {
	return f.down[r]&(1<<uint(port)) != 0
}

// RouterDown reports whether router r is dead as a whole.
func (f *FaultSet) RouterDown(r int) bool { return f.dead[r] }

// PortMask returns router r's effective failed-port bitmask.
func (f *FaultSet) PortMask(r int) uint64 { return f.down[r] }

// DownGlobal and DownLocal count the failed physical links per class.
func (f *FaultSet) DownGlobal() int { return f.downGlobal }

// DownLocal counts the failed local links.
func (f *FaultSet) DownLocal() int { return f.downLocal }

// DownRouters counts the dead routers.
func (f *FaultSet) DownRouters() int { return f.downRouters }

// Empty reports whether every link and router is alive.
func (f *FaultSet) Empty() bool {
	return f.downGlobal == 0 && f.downLocal == 0 && f.downRouters == 0
}

// RouteDown reports whether the single global channel from group g to group
// tg is failed. It is the group-pair reachability question every mechanism
// asks when steering toward a remote group.
func (f *FaultSet) RouteDown(g, tg int) bool {
	if g == tg {
		return false
	}
	k := f.p.ChannelToGroup(g, tg)
	idx, port := f.p.GlobalPortOfChannel(k)
	return f.Down(f.p.RouterID(g, idx), port)
}

// LocalRouteDown reports whether the local link between router indices i
// and j of group is failed.
func (f *FaultSet) LocalRouteDown(group, i, j int) bool {
	if i == j {
		return false
	}
	return f.Down(f.p.RouterID(group, i), f.p.LocalPort(i, j))
}

// TotalGlobalLinks returns the number of physical global links of p: one
// per unordered group pair.
func TotalGlobalLinks(p *P) int { return p.Groups * (p.Groups - 1) / 2 }

// TotalLocalLinks returns the number of physical local links of p: one per
// unordered router pair inside each group.
func TotalLocalLinks(p *P) int {
	return p.Groups * p.RoutersPerGroup * (p.RoutersPerGroup - 1) / 2
}

// Partition probes reachability over the surviving links. Dead routers are
// out of the network by definition (every link port is down) and do not
// count as unreachable: the network is partitioned when two LIVE routers
// cannot reach each other. On a partition it returns a witness pair (a, b)
// — the BFS root and the first live router it cannot reach — for
// diagnostics; when every router is dead it returns (-1, -1, true).
func (f *FaultSet) Partition() (a, b int, partitioned bool) {
	p := f.p
	start := -1
	for r := 0; r < p.Routers; r++ {
		if !f.dead[r] {
			start = r
			break
		}
	}
	if start < 0 {
		return -1, -1, true
	}
	seen := make([]bool, p.Routers)
	queue := make([]int, 0, p.Routers)
	seen[start] = true
	queue = append(queue, start)
	visited := 1
	for len(queue) > 0 {
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		up := ^f.down[r] & (1<<uint(p.EjectPortBase()) - 1)
		for m := up; m != 0; m &= m - 1 {
			rr, _ := p.LinkTarget(r, bits.TrailingZeros64(m))
			if !seen[rr] {
				seen[rr] = true
				visited++
				queue = append(queue, rr)
			}
		}
	}
	if visited == p.Routers-f.downRouters {
		return 0, 0, false
	}
	for r := 0; r < p.Routers; r++ {
		if !seen[r] && !f.dead[r] {
			return start, r, true
		}
	}
	return 0, 0, false // unreachable: the counts guarantee a witness
}

// Connected reports whether every live router can still reach every other
// over the surviving links. Configurations that fail this check cannot be
// simulated meaningfully (some traffic has no path at all), so callers
// reject them up front.
func (f *FaultSet) Connected() bool {
	_, _, partitioned := f.Partition()
	return !partitioned
}

// StateKey returns an exact byte encoding of the effective fault state
// (link masks plus dead-router flags). Two sets over the same topology
// share a key iff they are indistinguishable to routing, so event-schedule
// validators can dedupe connectivity checks across repeated states — flap
// schedules revisit the same handful of states thousands of times.
func (f *FaultSet) StateKey() string {
	buf := make([]byte, 0, 8*len(f.down)+(len(f.dead)+7)/8)
	for _, m := range f.down {
		buf = append(buf,
			byte(m), byte(m>>8), byte(m>>16), byte(m>>24),
			byte(m>>32), byte(m>>40), byte(m>>48), byte(m>>56))
	}
	var acc byte
	for i, d := range f.dead {
		if d {
			acc |= 1 << uint(i%8)
		}
		if i%8 == 7 {
			buf = append(buf, acc)
			acc = 0
		}
	}
	if len(f.dead)%8 != 0 {
		buf = append(buf, acc)
	}
	return string(buf)
}

// RandomFaults fails a deterministic pseudo-random selection of links in f:
// round(globalFrac * TotalGlobalLinks) global links and round(localFrac *
// TotalLocalLinks) local links, drawn without replacement from a SplitMix
// stream of seed. The same (topology, fractions, seed) always yields the
// same failed set, so configurations remain content-addressable.
func RandomFaults(f *FaultSet, globalFrac, localFrac float64, seed uint64) error {
	// The negated form rejects NaN along with out-of-range values.
	if !(globalFrac >= 0 && globalFrac < 1) || !(localFrac >= 0 && localFrac < 1) {
		return fmt.Errorf("topology: fault fractions %v/%v outside [0, 1)", globalFrac, localFrac)
	}
	p := f.p
	// Streams 1e9+1/1e9+3 sit far from the engine's per-router (2id+1) and
	// per-node (2node+2e6) streams for every simulatable size.
	if globalFrac > 0 {
		r := rng.New(seed, 1_000_000_001)
		links := make([][2]int, 0, TotalGlobalLinks(p))
		for g := 0; g < p.Groups; g++ {
			for k := 0; k < p.ChannelsPerGrp; k++ {
				if p.TargetGroup(g, k) < g {
					continue // counted from the lower-numbered group
				}
				idx, port := p.GlobalPortOfChannel(k)
				links = append(links, [2]int{p.RouterID(g, idx), port})
			}
		}
		for _, l := range pickLinks(links, globalFrac, r) {
			f.SetLink(l[0], l[1], true)
		}
	}
	if localFrac > 0 {
		r := rng.New(seed, 1_000_000_003)
		links := make([][2]int, 0, TotalLocalLinks(p))
		for g := 0; g < p.Groups; g++ {
			for i := 0; i < p.RoutersPerGroup; i++ {
				for j := i + 1; j < p.RoutersPerGroup; j++ {
					links = append(links, [2]int{p.RouterID(g, i), p.LocalPort(i, j)})
				}
			}
		}
		for _, l := range pickLinks(links, localFrac, r) {
			f.SetLink(l[0], l[1], true)
		}
	}
	return nil
}

// pickLinks selects round(frac*len) links by partial Fisher-Yates shuffle.
func pickLinks(links [][2]int, frac float64, r *rng.PCG) [][2]int {
	n := int(math.Round(frac * float64(len(links))))
	if n > len(links) {
		n = len(links)
	}
	for i := 0; i < n; i++ {
		j := i + r.Intn(len(links)-i)
		links[i], links[j] = links[j], links[i]
	}
	return links[:n]
}
