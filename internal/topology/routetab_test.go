package topology

import "testing"

// TestRouteTableMatchesArithmetic checks every table entry against the
// closed-form arithmetic it replaces, exhaustively for h=2..8 (the range
// the simulator's property tests cover; h=8 is the paper's scale).
func TestRouteTableMatchesArithmetic(t *testing.T) {
	for h := 2; h <= 8; h++ {
		p := MustNew(h)
		rt := NewRouteTable(p)
		for r := 0; r < p.Routers; r++ {
			if rt.GroupOf(r) != p.GroupOf(r) || rt.IndexOf(r) != p.IndexInGroup(r) {
				t.Fatalf("h=%d router %d: group/index table mismatch", h, r)
			}
		}
		for from := 0; from < p.RoutersPerGroup; from++ {
			for to := 0; to < p.RoutersPerGroup; to++ {
				want := -1
				if from != to {
					want = p.LocalPort(from, to)
				}
				if got := rt.LocalPortTo(from, to); got != want {
					t.Fatalf("h=%d LocalPortTo(%d,%d) = %d, want %d", h, from, to, got, want)
				}
			}
			for port := 0; port < p.LocalPorts; port++ {
				if got, want := rt.LocalTargetOf(from, port), p.LocalPortTarget(from, port); got != want {
					t.Fatalf("h=%d LocalTargetOf(%d,%d) = %d, want %d", h, from, port, got, want)
				}
			}
		}
		for g := 0; g < p.Groups; g++ {
			for tg := 0; tg < p.Groups; tg++ {
				if tg == g {
					continue
				}
				d := rt.GroupOffset(g, tg)
				k := p.ChannelToGroup(g, tg)
				if d-1 != k {
					t.Fatalf("h=%d GroupOffset(%d,%d) = %d, channel %d", h, g, tg, d, k)
				}
				owner, gport := p.GlobalPortOfChannel(k)
				if rt.OwnerOf(d) != owner {
					t.Fatalf("h=%d OwnerOf(%d) = %d, want %d", h, d, rt.OwnerOf(d), owner)
				}
				for idx := 0; idx < p.RoutersPerGroup; idx++ {
					e := rt.MinHopTo(idx, d)
					cur := p.RouterID(g, idx)
					wantIdx := p.MinimalLocalTarget(cur, tg)
					if e.Global != (owner == idx) {
						t.Fatalf("h=%d MinHopTo(%d,%d).Global = %v", h, idx, d, e.Global)
					}
					if e.Global {
						if int(e.Port) != gport || e.Exit != -1 {
							t.Fatalf("h=%d MinHopTo(%d,%d) = %+v, want global port %d", h, idx, d, e, gport)
						}
						if rt.GlobalPortTo(idx, d) != gport {
							t.Fatalf("h=%d GlobalPortTo(%d,%d) = %d, want %d", h, idx, d, rt.GlobalPortTo(idx, d), gport)
						}
					} else {
						if int(e.Exit) != wantIdx || int(e.Port) != p.LocalPort(idx, wantIdx) {
							t.Fatalf("h=%d MinHopTo(%d,%d) = %+v, want exit %d port %d",
								h, idx, d, e, wantIdx, p.LocalPort(idx, wantIdx))
						}
						if rt.GlobalPortTo(idx, d) != -1 {
							t.Fatalf("h=%d GlobalPortTo(%d,%d) = %d on a non-owner", h, idx, d, rt.GlobalPortTo(idx, d))
						}
					}
				}
			}
		}
		for idx := 0; idx < p.RoutersPerGroup; idx++ {
			want := p.GlobalPortBase()
			if idx > 0 {
				want = p.LocalPort(idx, idx-1)
			}
			if got := rt.RingPortOf(idx); got != want {
				t.Fatalf("h=%d RingPortOf(%d) = %d, want %d", h, idx, got, want)
			}
		}
	}
}
