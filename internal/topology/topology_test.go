package topology

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadH(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(-3); err == nil {
		t.Fatal("New(-3) succeeded")
	}
}

func TestPaperScale(t *testing.T) {
	p := MustNew(8)
	if p.Routers != 2064 {
		t.Errorf("routers = %d, want 2064", p.Routers)
	}
	if p.Groups != 129 {
		t.Errorf("groups = %d, want 129", p.Groups)
	}
	if p.Nodes != 16512 {
		t.Errorf("nodes = %d, want 16512", p.Nodes)
	}
	if p.Ports != 31 {
		t.Errorf("ports = %d, want 31", p.Ports)
	}
	if p.RoutersPerGroup != 16 {
		t.Errorf("routers/group = %d, want 16", p.RoutersPerGroup)
	}
}

func TestPortClasses(t *testing.T) {
	for _, h := range []int{1, 2, 3, 4, 8} {
		p := MustNew(h)
		nLocal, nGlobal, nEject := 0, 0, 0
		for port := 0; port < p.Ports; port++ {
			switch {
			case p.IsLocalPort(port):
				nLocal++
			case p.IsGlobalPort(port):
				nGlobal++
			case p.IsEjectPort(port):
				nEject++
			default:
				t.Fatalf("h=%d: port %d in no class", h, port)
			}
		}
		if nLocal != p.LocalPorts || nGlobal != p.GlobalPorts || nEject != p.H {
			t.Fatalf("h=%d: classes %d/%d/%d, want %d/%d/%d",
				h, nLocal, nGlobal, nEject, p.LocalPorts, p.GlobalPorts, p.H)
		}
	}
}

func TestLocalPortRoundTrip(t *testing.T) {
	p := MustNew(4)
	for from := 0; from < p.RoutersPerGroup; from++ {
		seen := make(map[int]bool)
		for to := 0; to < p.RoutersPerGroup; to++ {
			if to == from {
				continue
			}
			port := p.LocalPort(from, to)
			if !p.IsLocalPort(port) {
				t.Fatalf("LocalPort(%d,%d)=%d not local", from, to, port)
			}
			if seen[port] {
				t.Fatalf("port %d reused by router %d", port, from)
			}
			seen[port] = true
			if got := p.LocalPortTarget(from, port); got != to {
				t.Fatalf("LocalPortTarget(%d,%d)=%d, want %d", from, port, got, to)
			}
		}
		if len(seen) != p.LocalPorts {
			t.Fatalf("router %d uses %d local ports, want %d", from, len(seen), p.LocalPorts)
		}
	}
}

func TestGlobalChannelPairingInvolution(t *testing.T) {
	for _, h := range []int{2, 3, 4, 8} {
		p := MustNew(h)
		for k := 0; k < p.ChannelsPerGrp; k++ {
			kp := p.PairedChannel(k)
			if kp < 0 || kp >= p.ChannelsPerGrp {
				t.Fatalf("h=%d: paired channel %d of %d out of range", h, kp, k)
			}
			if p.PairedChannel(kp) != k {
				t.Fatalf("h=%d: pairing not an involution at k=%d", h, k)
			}
		}
	}
}

func TestGlobalLinkSymmetry(t *testing.T) {
	for _, h := range []int{2, 3, 4} {
		p := MustNew(h)
		for r := 0; r < p.Routers; r++ {
			for port := p.GlobalPortBase(); port < p.EjectPortBase(); port++ {
				rr, rp := p.GlobalLink(r, port)
				if p.GroupOf(rr) == p.GroupOf(r) {
					t.Fatalf("h=%d: global link from %d stays in group", h, r)
				}
				back, backPort := p.GlobalLink(rr, rp)
				if back != r || backPort != port {
					t.Fatalf("h=%d: link (%d,%d)->(%d,%d) returns to (%d,%d)",
						h, r, port, rr, rp, back, backPort)
				}
			}
		}
	}
}

func TestLocalLinkSymmetry(t *testing.T) {
	p := MustNew(3)
	for r := 0; r < p.Routers; r++ {
		for port := 0; port < p.GlobalPortBase(); port++ {
			rr, rp := p.LocalLink(r, port)
			if p.GroupOf(rr) != p.GroupOf(r) {
				t.Fatalf("local link from %d leaves group", r)
			}
			back, backPort := p.LocalLink(rr, rp)
			if back != r || backPort != port {
				t.Fatalf("link (%d,%d)->(%d,%d) returns to (%d,%d)",
					r, port, rr, rp, back, backPort)
			}
		}
	}
}

// TestEveryGroupPairHasOneChannel checks the complete-graph global layout.
func TestEveryGroupPairHasOneChannel(t *testing.T) {
	for _, h := range []int{2, 3, 4} {
		p := MustNew(h)
		for g := 0; g < p.Groups; g++ {
			reached := make(map[int]int)
			for k := 0; k < p.ChannelsPerGrp; k++ {
				reached[p.TargetGroup(g, k)]++
			}
			if len(reached) != p.Groups-1 {
				t.Fatalf("h=%d: group %d reaches %d groups, want %d",
					h, g, len(reached), p.Groups-1)
			}
			for tg, cnt := range reached {
				if cnt != 1 {
					t.Fatalf("h=%d: group %d reaches %d via %d channels", h, g, tg, cnt)
				}
				if p.ChannelToGroup(g, tg) < 0 {
					t.Fatalf("negative channel")
				}
			}
		}
	}
}

func TestChannelToGroupInverse(t *testing.T) {
	p := MustNew(4)
	f := func(g, tg uint16) bool {
		a, b := int(g)%p.Groups, int(tg)%p.Groups
		if a == b {
			return true
		}
		return p.TargetGroup(a, p.ChannelToGroup(a, b)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeMapping(t *testing.T) {
	p := MustNew(3)
	for n := 0; n < p.Nodes; n++ {
		r := p.RouterOfNode(n)
		if r < 0 || r >= p.Routers {
			t.Fatalf("node %d maps to router %d", n, r)
		}
		if p.NodeID(r, p.NodeIndex(n)) != n {
			t.Fatalf("node mapping not invertible at %d", n)
		}
		ep := p.EjectPortOfNode(n)
		if !p.IsEjectPort(ep) {
			t.Fatalf("eject port %d of node %d not in eject class", ep, n)
		}
	}
}

func TestMinimalHops(t *testing.T) {
	p := MustNew(2)
	for a := 0; a < p.Routers; a++ {
		for b := 0; b < p.Routers; b++ {
			hops := p.MinimalHops(a, b)
			switch {
			case a == b && hops != 0:
				t.Fatalf("MinimalHops(%d,%d)=%d, want 0", a, b, hops)
			case a != b && p.GroupOf(a) == p.GroupOf(b) && hops != 1:
				t.Fatalf("MinimalHops(%d,%d)=%d, want 1", a, b, hops)
			case p.GroupOf(a) != p.GroupOf(b) && (hops < 1 || hops > 3):
				t.Fatalf("MinimalHops(%d,%d)=%d, want 1..3", a, b, hops)
			}
		}
	}
}

// TestADVGPlusHPathology verifies the property that makes ADVG+h traffic
// pathological with the consecutive channel assignment (paper Section II,
// citing García et al. ICPP 2012): for every source group g and every
// intermediate group m, the router a receiving traffic from g and the
// router b owning the channel toward g+h are adjacent ring routers
// (b == a+1 mod 2h), so all Valiant transit load in m concentrates on ring
// local links.
func TestADVGPlusHPathology(t *testing.T) {
	p := MustNew(8)
	h := p.H
	for g := 0; g < p.Groups; g++ {
		d := (g + h) % p.Groups
		for m := 0; m < p.Groups; m++ {
			if m == g || m == d {
				continue
			}
			// Arrival router in m for traffic from g.
			kIn := p.ChannelToGroup(g, m)
			aIdx, _ := p.GlobalPortOfChannel(p.PairedChannel(kIn))
			// Departure router in m toward d.
			kOut := p.ChannelToGroup(m, d)
			bIdx, _ := p.GlobalPortOfChannel(kOut)
			if aIdx == bIdx {
				continue // no local transit hop at all
			}
			if (aIdx+1)%p.RoutersPerGroup != bIdx {
				t.Fatalf("g=%d m=%d: arrival %d departure %d not ring-adjacent",
					g, m, aIdx, bIdx)
			}
		}
	}
}

func TestMinimalLocalTarget(t *testing.T) {
	p := MustNew(3)
	for r := 0; r < p.Routers; r++ {
		g := p.GroupOf(r)
		for tg := 0; tg < p.Groups; tg++ {
			if tg == g {
				continue
			}
			idx := p.MinimalLocalTarget(r, tg)
			// The router at idx must own a channel to tg.
			k := p.ChannelToGroup(g, tg)
			ownIdx, port := p.GlobalPortOfChannel(k)
			if idx != ownIdx {
				t.Fatalf("MinimalLocalTarget(%d,%d)=%d, want %d", r, tg, idx, ownIdx)
			}
			rr, _ := p.GlobalLink(p.RouterID(g, idx), port)
			if p.GroupOf(rr) != tg {
				t.Fatalf("channel of %d does not reach group %d", idx, tg)
			}
		}
	}
}

func TestLinkTargetPanicsOnEject(t *testing.T) {
	p := MustNew(2)
	defer func() {
		if recover() == nil {
			t.Fatal("LinkTarget on eject port did not panic")
		}
	}()
	p.LinkTarget(0, p.EjectPortBase())
}
