// Package topology models the canonical well-balanced Dragonfly network of
// Kim et al. as used by García et al. (ICPP 2013): supernodes (groups) of
// 2h routers fully connected by local links, and 2h²+1 groups fully
// connected by global links, with h compute nodes per router.
//
// Identifier conventions used across the simulator:
//
//   - routers are numbered 0..R-1 globally, router r belongs to group
//     r / (2h) and has index r % (2h) inside it;
//   - nodes are numbered 0..N-1 globally, node n attaches to router n / h;
//   - every router has 4h-1 ports, split into output classes
//     [0, 2h-1) local, [2h-1, 3h-1) global, [3h-1, 4h-1) ejection
//     (injection ports mirror ejection ports on the input side).
//
// Global channels use the "consecutive" assignment: channel k of group g
// (k in [0, 2h²)) connects to group (g+k+1) mod G and is owned by router
// index k/h on its port k%h. The paired channel on the remote side is
// G-2-k. This layout reproduces the pathological intermediate-group local
// link saturation under ADVG+h traffic described in the paper.
package topology

import "fmt"

// P holds the derived parameters of a dragonfly instance. All fields are
// immutable after New.
type P struct {
	H               int // the sizing parameter (nodes per router)
	RoutersPerGroup int // 2h
	Groups          int // 2h²+1
	Routers         int // RoutersPerGroup * Groups
	Nodes           int // Routers * H
	ChannelsPerGrp  int // 2h² global channels leaving each group

	LocalPorts  int // 2h-1 local output ports per router
	GlobalPorts int // h global output ports per router
	Ports       int // 4h-1 total output ports per router
}

// New builds the parameter set for a well-balanced dragonfly with the given
// h. It returns an error if h < 1.
func New(h int) (*P, error) {
	if h < 1 {
		return nil, fmt.Errorf("topology: h must be >= 1, got %d", h)
	}
	p := &P{
		H:               h,
		RoutersPerGroup: 2 * h,
		Groups:          2*h*h + 1,
		ChannelsPerGrp:  2 * h * h,
		LocalPorts:      2*h - 1,
		GlobalPorts:     h,
		Ports:           4*h - 1,
	}
	p.Routers = p.RoutersPerGroup * p.Groups
	p.Nodes = p.Routers * h
	return p, nil
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(h int) *P {
	p, err := New(h)
	if err != nil {
		panic(err)
	}
	return p
}

// GroupOf returns the group of router r.
func (p *P) GroupOf(r int) int { return r / p.RoutersPerGroup }

// IndexInGroup returns the index of router r inside its group.
func (p *P) IndexInGroup(r int) int { return r % p.RoutersPerGroup }

// RouterID returns the global router id for (group, index).
func (p *P) RouterID(group, idx int) int { return group*p.RoutersPerGroup + idx }

// RouterOfNode returns the router node n attaches to.
func (p *P) RouterOfNode(n int) int { return n / p.H }

// NodeID returns the global node id of the k-th node of router r.
func (p *P) NodeID(r, k int) int { return r*p.H + k }

// NodeIndex returns the index of node n at its router (0..h-1).
func (p *P) NodeIndex(n int) int { return n % p.H }

// Port class boundaries (output side). Input ports use the same layout with
// injection ports where ejection ports sit.

// LocalPortBase is the first local port (always 0).
const LocalPortBase = 0

// GlobalPortBase returns the first global port index.
func (p *P) GlobalPortBase() int { return 2*p.H - 1 }

// EjectPortBase returns the first ejection (output) / injection (input)
// port index.
func (p *P) EjectPortBase() int { return 3*p.H - 1 }

// IsLocalPort reports whether port is a local link port.
func (p *P) IsLocalPort(port int) bool { return port >= 0 && port < p.GlobalPortBase() }

// IsGlobalPort reports whether port is a global link port.
func (p *P) IsGlobalPort(port int) bool {
	return port >= p.GlobalPortBase() && port < p.EjectPortBase()
}

// IsEjectPort reports whether port is an ejection/injection port.
func (p *P) IsEjectPort(port int) bool {
	return port >= p.EjectPortBase() && port < p.Ports
}

// LocalPort returns the local output port router index from uses to reach
// router index to within the same group. It panics if from == to.
func (p *P) LocalPort(from, to int) int {
	if from == to {
		panic(fmt.Sprintf("topology: LocalPort(%d, %d) within one router", from, to))
	}
	if to < from {
		return to
	}
	return to - 1
}

// LocalPortTarget returns the in-group router index reached through local
// port of router index from.
func (p *P) LocalPortTarget(from, port int) int {
	if port < from {
		return port
	}
	return port + 1
}

// GlobalChannelOfPort returns the group-level global channel k served by
// the given global port of router index idx.
func (p *P) GlobalChannelOfPort(idx, port int) int {
	return idx*p.H + (port - p.GlobalPortBase())
}

// GlobalPortOfChannel returns the owning router index and port of channel k.
func (p *P) GlobalPortOfChannel(k int) (idx, port int) {
	return k / p.H, p.GlobalPortBase() + k%p.H
}

// TargetGroup returns the group reached through channel k of group g.
func (p *P) TargetGroup(g, k int) int {
	return (g + k + 1) % p.Groups
}

// ChannelToGroup returns the channel of group g that reaches group tg.
// It panics if g == tg (no self channel exists).
func (p *P) ChannelToGroup(g, tg int) int {
	if g == tg {
		panic(fmt.Sprintf("topology: ChannelToGroup(%d, %d) within one group", g, tg))
	}
	k := tg - g - 1
	if k < 0 {
		k += p.Groups
	}
	return k
}

// PairedChannel returns the channel k' on the remote side of channel k.
func (p *P) PairedChannel(k int) int { return p.Groups - 2 - k }

// GlobalLink resolves the remote endpoint of the global port of router r:
// the remote router id and its (global input/output) port.
func (p *P) GlobalLink(r, port int) (remote, remotePort int) {
	g := p.GroupOf(r)
	k := p.GlobalChannelOfPort(p.IndexInGroup(r), port)
	tg := p.TargetGroup(g, k)
	kp := p.PairedChannel(k)
	idx, rp := p.GlobalPortOfChannel(kp)
	return p.RouterID(tg, idx), rp
}

// LocalLink resolves the remote endpoint of the local port of router r:
// the remote router id and the symmetric port index at the remote side.
func (p *P) LocalLink(r, port int) (remote, remotePort int) {
	g, idx := p.GroupOf(r), p.IndexInGroup(r)
	tj := p.LocalPortTarget(idx, port)
	return p.RouterID(g, tj), p.LocalPort(tj, idx)
}

// LinkTarget resolves any non-ejection output port to its remote endpoint.
func (p *P) LinkTarget(r, port int) (remote, remotePort int) {
	if p.IsLocalPort(port) {
		return p.LocalLink(r, port)
	}
	if p.IsGlobalPort(port) {
		return p.GlobalLink(r, port)
	}
	panic(fmt.Sprintf("topology: LinkTarget(%d, %d): not a link port", r, port))
}

// EjectPortOfNode returns the ejection output port of node n at its router.
func (p *P) EjectPortOfNode(n int) int {
	return p.EjectPortBase() + p.NodeIndex(n)
}

// MinimalLocalTarget returns the router index (within the group of cur)
// a packet must reach so it can leave the group toward targetGroup, given
// the current router id cur. If the current group is the target group the
// notion is undefined here; callers handle the in-group case themselves.
func (p *P) MinimalLocalTarget(cur, targetGroup int) int {
	k := p.ChannelToGroup(p.GroupOf(cur), targetGroup)
	idx, _ := p.GlobalPortOfChannel(k)
	return idx
}

// MinimalHops returns the number of router-to-router hops on the minimal
// path between routers a and b (0..3).
func (p *P) MinimalHops(a, b int) int {
	if a == b {
		return 0
	}
	ga, gb := p.GroupOf(a), p.GroupOf(b)
	if ga == gb {
		return 1
	}
	hops := 1 // the global hop
	ka := p.ChannelToGroup(ga, gb)
	ia, _ := p.GlobalPortOfChannel(ka)
	if ia != p.IndexInGroup(a) {
		hops++
	}
	kb := p.PairedChannel(ka)
	ib, _ := p.GlobalPortOfChannel(kb)
	if ib != p.IndexInGroup(b) {
		hops++
	}
	return hops
}
