package topology

import "testing"

func TestFaultSetSymmetry(t *testing.T) {
	p := MustNew(2)
	f := NewFaultSet(p)
	if !f.Empty() || f.DownGlobal() != 0 || f.DownLocal() != 0 {
		t.Fatal("fresh fault set not empty")
	}
	// A global link, seen from either end.
	r, port := 0, p.GlobalPortBase()
	rr, rp := p.GlobalLink(r, port)
	f.SetLink(r, port, true)
	if !f.Down(r, port) || !f.Down(rr, rp) {
		t.Fatalf("global link (%d,%d)/(%d,%d) not down on both ends", r, port, rr, rp)
	}
	if f.DownGlobal() != 1 || f.DownLocal() != 0 {
		t.Fatalf("counts %d/%d after one global kill", f.DownGlobal(), f.DownLocal())
	}
	// Killing again is a no-op; repairing from the *other* end works.
	f.SetLink(r, port, true)
	if f.DownGlobal() != 1 {
		t.Fatal("double kill double-counted")
	}
	f.SetLink(rr, rp, false)
	if f.Down(r, port) || !f.Empty() {
		t.Fatal("repair from the remote end did not clear the link")
	}
	// A local link.
	f.SetLink(1, 0, true)
	lr, lp := p.LocalLink(1, 0)
	if !f.Down(lr, lp) || f.DownLocal() != 1 {
		t.Fatal("local link not symmetric")
	}
}

func TestFaultSetRouteQueries(t *testing.T) {
	p := MustNew(2)
	f := NewFaultSet(p)
	// Kill the channel from group 0 to group 3.
	k := p.ChannelToGroup(0, 3)
	idx, port := p.GlobalPortOfChannel(k)
	f.SetLink(p.RouterID(0, idx), port, true)
	if !f.RouteDown(0, 3) {
		t.Fatal("RouteDown misses the killed channel")
	}
	if !f.RouteDown(3, 0) {
		t.Fatal("RouteDown not symmetric (paired channel is the same wire)")
	}
	if f.RouteDown(0, 2) || f.RouteDown(0, 0) {
		t.Fatal("RouteDown true for a live or self route")
	}
	// Kill the local link 0-3 of group 1.
	f.SetLink(p.RouterID(1, 0), p.LocalPort(0, 3), true)
	if !f.LocalRouteDown(1, 0, 3) || !f.LocalRouteDown(1, 3, 0) {
		t.Fatal("LocalRouteDown misses the killed link")
	}
	if f.LocalRouteDown(1, 0, 2) || f.LocalRouteDown(0, 0, 3) || f.LocalRouteDown(1, 2, 2) {
		t.Fatal("LocalRouteDown true for a live link, other group, or self")
	}
}

func TestFaultSetConnected(t *testing.T) {
	p := MustNew(1) // 3 groups of 2 routers, 1 local link each
	f := NewFaultSet(p)
	if !f.Connected() {
		t.Fatal("pristine network reported disconnected")
	}
	// Cut every link of router 0: its local link and its global channel.
	f.SetLink(0, 0, true)
	if !f.Connected() {
		t.Fatal("one cut should leave the net connected")
	}
	f.SetLink(0, p.GlobalPortBase(), true)
	if f.Connected() {
		t.Fatal("isolated router not detected")
	}
	f.SetLink(0, 0, false)
	if !f.Connected() {
		t.Fatal("repair did not reconnect")
	}
}

func TestLinkTotals(t *testing.T) {
	for _, h := range []int{1, 2, 4} {
		p := MustNew(h)
		f := NewFaultSet(p)
		// Fail every link, from a sweep over all routers and ports; the
		// class counters must land exactly on the closed-form totals.
		for r := 0; r < p.Routers; r++ {
			for port := 0; port < p.EjectPortBase(); port++ {
				f.SetLink(r, port, true)
			}
		}
		if f.DownGlobal() != TotalGlobalLinks(p) {
			t.Errorf("h=%d: %d global links down, want %d", h, f.DownGlobal(), TotalGlobalLinks(p))
		}
		if f.DownLocal() != TotalLocalLinks(p) {
			t.Errorf("h=%d: %d local links down, want %d", h, f.DownLocal(), TotalLocalLinks(p))
		}
	}
}

func TestRandomFaultsDeterministicAndSized(t *testing.T) {
	p := MustNew(3)
	build := func(seed uint64) *FaultSet {
		f := NewFaultSet(p)
		if err := RandomFaults(f, 0.2, 0.1, seed); err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := build(7), build(7)
	for r := 0; r < p.Routers; r++ {
		if a.PortMask(r) != b.PortMask(r) {
			t.Fatalf("same seed drew different faults at router %d", r)
		}
	}
	wantG := int(0.2*float64(TotalGlobalLinks(p)) + 0.5)
	wantL := int(0.1*float64(TotalLocalLinks(p)) + 0.5)
	if a.DownGlobal() != wantG || a.DownLocal() != wantL {
		t.Fatalf("drew %d/%d links, want %d/%d", a.DownGlobal(), a.DownLocal(), wantG, wantL)
	}
	c := build(8)
	same := true
	for r := 0; r < p.Routers; r++ {
		if a.PortMask(r) != c.PortMask(r) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds drew identical faults (suspicious)")
	}
	if err := RandomFaults(NewFaultSet(p), 1.0, 0, 1); err == nil {
		t.Fatal("fraction 1.0 accepted")
	}
}

func TestFaultSetClone(t *testing.T) {
	p := MustNew(2)
	f := NewFaultSet(p)
	f.SetLink(0, 0, true)
	c := f.Clone()
	c.SetLink(5, 1, true)
	if f.Down(5, 1) {
		t.Fatal("clone writes leaked into the original")
	}
	if !c.Down(0, 0) || c.DownLocal() != 2 {
		t.Fatal("clone lost state")
	}
}
