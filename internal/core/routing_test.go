package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// fakeView is a scriptable core.View for unit tests.
type fakeView struct {
	p           *topology.P
	blocked     map[[2]int]bool // (port, vc) -> cannot claim
	occupancy   map[[2]int]int
	capacity    int
	congested   map[int]bool // PB bits
	queueOcc    int          // current input queue backlog
	queueCap    int
	headPartial bool // head packet not fully buffered yet

	// faults, when non-nil, makes the view faulty; router anchors the
	// router-relative queries (LinkDown, LocalDown) and must track the
	// router the algorithm is evaluated at.
	faults *topology.FaultSet
	router int
}

func newFakeView(p *topology.P) *fakeView {
	return &fakeView{
		p:         p,
		blocked:   make(map[[2]int]bool),
		occupancy: make(map[[2]int]int),
		capacity:  32,
		congested: make(map[int]bool),
	}
}

func (f *fakeView) CanClaim(port, vc, size int) bool {
	if f.faults != nil && f.faults.Down(f.router, port) {
		return false
	}
	return !f.blocked[[2]int{port, vc}]
}
func (f *fakeView) CanStart(port, vc, size int) bool {
	return f.capacity-f.occupancy[[2]int{port, vc}] >= size
}
func (f *fakeView) Occupancy(port, vc int) int { return f.occupancy[[2]int{port, vc}] }
func (f *fakeView) MinState(port, vc, size int) (int, bool, bool) {
	return f.Occupancy(port, vc), f.CanClaim(port, vc, size), f.CanStart(port, vc, size)
}
func (f *fakeView) OccClaim(port, vc, size int) (int, bool) {
	return f.Occupancy(port, vc), f.CanClaim(port, vc, size)
}
func (f *fakeView) CurrentQueue() (int, int)   { return f.queueOcc, f.queueCap }
func (f *fakeView) HeadFullyArrived() bool     { return !f.headPartial }
func (f *fakeView) Capacity(port, vc int) int  { return f.capacity }
func (f *fakeView) GlobalCongested(k int) bool { return f.congested[k] }
func (f *fakeView) Faulty() bool               { return f.faults != nil }
func (f *fakeView) LinkDown(port int) bool {
	return f.faults != nil && f.faults.Down(f.router, port)
}
func (f *fakeView) RouteDown(g, tg int) bool {
	return f.faults != nil && f.faults.RouteDown(g, tg)
}
func (f *fakeView) LocalDown(i, j int) bool {
	return f.faults != nil && f.faults.LocalRouteDown(f.p.GroupOf(f.router), i, j)
}
func (f *fakeView) PortDead(port int) bool {
	if f.faults == nil {
		return false
	}
	far, _ := f.p.LinkTarget(f.router, port)
	return f.faults.RouterDown(far)
}

func mustAlg(t *testing.T, spec Spec, p *topology.P) Algorithm {
	t.Helper()
	a, err := New(spec, Config{Topo: p, Threshold: 0.45, RemoteCandidates: 2})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParseSpecRoundTrip(t *testing.T) {
	for s := Minimal; s <= RLMSignOnly; s++ {
		got, err := ParseSpec(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSpec(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSpec("bogus"); err == nil {
		t.Error("ParseSpec accepted bogus")
	}
}

func TestVCsFor(t *testing.T) {
	for s := Minimal; s <= RLMSignOnly; s++ {
		l, g := VCsFor(s)
		wantL := 3
		if s == PAR62 {
			wantL = 6
		}
		if l != wantL || g != 2 {
			t.Errorf("VCsFor(%v) = %d/%d, want %d/2", s, l, g, wantL)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Minimal, Config{}); err == nil {
		t.Error("nil topology accepted")
	}
	p := topology.MustNew(2)
	if _, err := New(Minimal, Config{Topo: p, RemoteCandidates: -1}); err != nil {
		t.Errorf("RemoteCandidates=-1 (disable) rejected: %v", err)
	}
	if _, err := New(Spec(99), Config{Topo: p}); err == nil {
		t.Error("unknown spec accepted")
	}
}

// walkMinimal drives a packet through repeated Route/CommitHop on an
// unloaded network and returns the sequence of (isGlobal, vc) hops.
type hopRec struct {
	global bool
	vc     int
	router int // router the hop leaves from
}

func walk(t *testing.T, alg Algorithm, p *topology.P, v *fakeView, st *PacketState, r *rng.PCG, maxHops int) []hopRec {
	t.Helper()
	var hops []hopRec
	router := int(st.SrcRouter)
	for hop := 0; hop < maxHops; hop++ {
		if int32(router) == st.DstRouter {
			return hops
		}
		dec := alg.Route(v, st, router, 8, r)
		if dec.Wait {
			t.Fatalf("hop %d at router %d: unexpected Wait on empty network", hop, router)
		}
		hops = append(hops, hopRec{global: p.IsGlobalPort(dec.Port), vc: dec.VC, router: router})
		next, _ := p.LinkTarget(router, dec.Port)
		CommitHop(p, st, router, dec)
		router = next
	}
	t.Fatalf("packet did not arrive after %d hops (at router %d, dst %d)",
		maxHops, router, st.DstRouter)
	return nil
}

// TestMinimalPathsAndVCs checks every (src,dst) pair at h=2: minimal route
// shape l?-g?-l? and the ascending VC discipline lVC1-gVC1-lVC2.
func TestMinimalPathsAndVCs(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, Minimal, p)
	v := newFakeView(p)
	r := rng.New(1, 1)
	for src := 0; src < p.Routers; src += 3 {
		for dst := 0; dst < p.Routers; dst += 5 {
			var st PacketState
			st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
			hops := walk(t, alg, p, v, &st, r, 4)
			if len(hops) != p.MinimalHops(src, dst) {
				t.Fatalf("src %d dst %d: %d hops, minimal %d",
					src, dst, len(hops), p.MinimalHops(src, dst))
			}
			globals := 0
			for _, h := range hops {
				if h.global {
					if h.vc != 0 {
						t.Fatalf("global hop on gVC%d, want gVC1", h.vc+1)
					}
					globals++
				} else if h.vc != globals {
					t.Fatalf("local hop on lVC%d after %d globals", h.vc+1, globals)
				}
			}
		}
	}
}

// TestValiantPathShape checks the 5-hop bound and that the intermediate
// group differs from source and destination.
func TestValiantPathShape(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, Valiant, p)
	v := newFakeView(p)
	r := rng.New(7, 7)
	for trial := 0; trial < 200; trial++ {
		src := r.Intn(p.Routers)
		dst := r.Intn(p.Routers)
		if src == dst {
			continue
		}
		var st PacketState
		st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
		hops := walk(t, alg, p, v, &st, r, 6)
		if len(hops) > 5 {
			t.Fatalf("valiant path of %d hops", len(hops))
		}
		if st.GlobalHops > 2 {
			t.Fatalf("valiant took %d global hops", st.GlobalHops)
		}
		// VC sequence must be ascending in the order
		// lVC1<gVC1<lVC2<gVC2<lVC3.
		assertAscending(t, hops)
	}
}

// rank maps a hop to the paper's global VC order for 3/2 mechanisms.
func rank(h hopRec) int {
	if h.global {
		return 2*h.vc + 1 // gVC1=1, gVC2=3
	}
	return 2 * h.vc // lVC1=0, lVC2=2, lVC3=4
}

func assertAscending(t *testing.T, hops []hopRec) {
	t.Helper()
	for i := 1; i < len(hops); i++ {
		if rank(hops[i]) < rank(hops[i-1]) {
			t.Fatalf("VC order violated at hop %d: %+v", i, hops)
		}
	}
}

// TestAdaptiveMinimalWhenIdle: with empty queues every adaptive mechanism
// routes minimally (zero misroutes).
func TestAdaptiveMinimalWhenIdle(t *testing.T) {
	p := topology.MustNew(2)
	for _, spec := range []Spec{PAR62, RLM, OLM} {
		alg := mustAlg(t, spec, p)
		v := newFakeView(p)
		r := rng.New(3, 3)
		for trial := 0; trial < 100; trial++ {
			src := r.Intn(p.Routers)
			dst := r.Intn(p.Routers)
			if src == dst {
				continue
			}
			var st PacketState
			st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
			hops := walk(t, alg, p, v, &st, r, 4)
			if st.LocalMisCount != 0 || st.GlobalMisCount != 0 {
				t.Fatalf("%v misrouted on an idle network", spec)
			}
			if len(hops) != p.MinimalHops(src, dst) {
				t.Fatalf("%v: non-minimal path on idle network", spec)
			}
		}
	}
}

// blockMinimal makes the minimal output of st at router unclaimable and
// congested, so the trigger considers candidates.
func blockMinimal(v *fakeView, p *topology.P, alg Algorithm, st *PacketState, router int) {
	port, global, _ := minimalNext(p, st, router)
	var vcs int
	if global {
		vcs = alg.GlobalVCs()
	} else {
		vcs = alg.LocalVCs()
	}
	for vc := 0; vc < vcs; vc++ {
		v.blocked[[2]int{port, vc}] = true
		v.occupancy[[2]int{port, vc}] = 32
	}
}

// TestGlobalMisrouteTrigger: blocking the minimal global port at the source
// router must produce a Valiant commitment for adaptive mechanisms.
func TestGlobalMisrouteTrigger(t *testing.T) {
	p := topology.MustNew(2)
	for _, spec := range []Spec{PAR62, RLM, OLM} {
		alg := mustAlg(t, spec, p)
		v := newFakeView(p)
		r := rng.New(5, 5)
		// Source router 0 (group 0); destination in group reached via
		// router 0's own global port so the minimal hop is global.
		src := 0
		k := p.GlobalChannelOfPort(0, p.GlobalPortBase())
		dstGroup := p.TargetGroup(0, k)
		dst := p.RouterID(dstGroup, 1)
		var st PacketState
		st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
		blockMinimal(v, p, alg, &st, src)
		dec := alg.Route(v, &st, src, 8, r)
		if dec.Wait {
			t.Fatalf("%v waited instead of misrouting", spec)
		}
		if dec.Kind != KindGlobalMis {
			t.Fatalf("%v chose %v, want global misroute", spec, dec.Kind)
		}
		if dec.NewValiant < 0 || dec.NewValiant == dstGroup || dec.NewValiant == 0 {
			t.Fatalf("%v picked intermediate group %d", spec, dec.NewValiant)
		}
	}
}

// TestLocalMisrouteInDestinationGroup: blocking the direct local port in
// the destination group must produce a detour plus forced exit hop.
func TestLocalMisrouteInDestinationGroup(t *testing.T) {
	p := topology.MustNew(2)
	for _, spec := range []Spec{PAR62, RLM, OLM} {
		alg := mustAlg(t, spec, p)
		v := newFakeView(p)
		r := rng.New(9, 9)
		// Intra-group traffic: router 0 -> router 1, group 0 — the
		// source group is the destination group, so local misrouting
		// is allowed.
		var st PacketState
		st.Init(p, p.NodeID(0, 0), p.NodeID(1, 0))
		blockMinimal(v, p, alg, &st, 0)
		dec := alg.Route(v, &st, 0, 8, r)
		if dec.Wait {
			t.Fatalf("%v waited instead of local misrouting", spec)
		}
		if dec.Kind != KindLocalMis {
			t.Fatalf("%v chose kind %v, want local misroute", spec, dec.Kind)
		}
		if dec.LocalFinal != 1 {
			t.Fatalf("%v forced target %d, want 1", spec, dec.LocalFinal)
		}
		k := p.LocalPortTarget(0, dec.Port)
		if k == 0 || k == 1 {
			t.Fatalf("%v detoured through %d", spec, k)
		}
		if spec == RLM && !NewParityTable().AllowedHops(0, k, 1) {
			t.Fatalf("RLM detour 0->%d->1 violates the parity-sign rule", k)
		}
		// Commit and verify the forced hop.
		CommitHop(p, &st, 0, dec)
		if st.PendingLocal != 1 {
			t.Fatalf("pending local %d after misroute", st.PendingLocal)
		}
		kr := p.RouterID(0, k)
		dec2 := alg.Route(v, &st, kr, 8, r)
		if dec2.Wait {
			t.Fatalf("%v: forced hop waited", spec)
		}
		if got := p.LocalPortTarget(k, dec2.Port); got != 1 {
			t.Fatalf("%v: forced hop went to %d, want 1", spec, got)
		}
		CommitHop(p, &st, kr, dec2)
		if st.PendingLocal != -1 {
			t.Fatal("pending target not cleared")
		}
		if st.LocalMisCount != 1 {
			t.Fatalf("misroute count %d", st.LocalMisCount)
		}
	}
}

// TestNoLocalMisrouteInSourceGroupForRemoteTraffic: the paper allows local
// misrouting only in intermediate and destination supernodes.
func TestNoLocalMisrouteInSourceGroupForRemoteTraffic(t *testing.T) {
	p := topology.MustNew(2)
	for _, spec := range []Spec{PAR62, RLM, OLM} {
		alg := mustAlg(t, spec, p)
		v := newFakeView(p)
		r := rng.New(11, 3)
		// Destination remote; minimal first hop is local (to the
		// channel owner), which we block. Also block every global
		// port so global misrouting cannot fire.
		dstGroup := p.TargetGroup(0, p.ChannelsPerGrp-1) // owned by last router
		dst := p.RouterID(dstGroup, 0)
		var st PacketState
		st.Init(p, p.NodeID(0, 0), p.NodeID(dst, 0))
		blockMinimal(v, p, alg, &st, 0)
		for port := p.GlobalPortBase(); port < p.EjectPortBase(); port++ {
			for vc := 0; vc < alg.GlobalVCs(); vc++ {
				v.blocked[[2]int{port, vc}] = true
			}
		}
		// Remote-channel redirects may still fire; forbid them by
		// blocking all local ports except the minimal one... instead,
		// simply require that any non-wait decision is not a local
		// misroute.
		for i := 0; i < 50; i++ {
			dec := alg.Route(v, &st, 0, 8, r)
			if !dec.Wait && dec.Kind == KindLocalMis {
				t.Fatalf("%v local-misrouted in the source group", spec)
			}
		}
	}
}

// TestOLMVCDiscipline replays the paper's Figure 3 route c: global
// misrouting after a first minimal hop, local misroutes in the
// intermediate and destination groups, with the published VC sequence
// lVC1 lVC1 gVC1 lVC1 lVC2 gVC2 lVC{1,2} lVC3.
func TestOLMVCDiscipline(t *testing.T) {
	p := topology.MustNew(4) // need enough routers for detours
	alg := mustAlg(t, OLM, p)
	v := newFakeView(p)
	r := rng.New(13, 13)

	// Construct the walk manually, forcing misroutes by blocking minimal
	// outputs at each step.
	var st PacketState
	// dst in a remote group, reached via a channel NOT owned by the
	// source router, so the first minimal hop is local.
	src := p.RouterID(0, 0)
	dstGroup := p.TargetGroup(0, p.ChannelsPerGrp-1)
	dst := p.RouterID(dstGroup, 2)
	st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))

	// Hop 1: minimal local (lVC1).
	dec := alg.Route(v, &st, src, 8, r)
	if dec.Wait || p.IsGlobalPort(dec.Port) || dec.VC != 0 {
		t.Fatalf("hop 1: %+v", dec)
	}
	cur := commitAndMove(p, &st, src, dec)

	// Hop 2: block the minimal global port; expect a Valiant commit.
	blockMinimal(v, p, alg, &st, cur)
	dec = alg.Route(v, &st, cur, 8, r)
	if dec.Wait || dec.Kind != KindGlobalMis {
		t.Fatalf("hop 2: %+v", dec)
	}
	// Own-port global misroute uses gVC1; a remote-channel redirect uses
	// lVC1 first. Follow whichever was chosen until the packet leaves
	// the group.
	for !p.IsGlobalPort(dec.Port) {
		if dec.VC != 0 {
			t.Fatalf("source-group redirect must ride lVC1: %+v", dec)
		}
		cur = commitAndMove(p, &st, cur, dec)
		dec = alg.Route(v, &st, cur, 8, r)
		if dec.Wait {
			t.Fatal("redirect stalled")
		}
	}
	if dec.VC != 0 {
		t.Fatalf("first global hop on gVC%d", dec.VC+1)
	}
	cur = commitAndMove(p, &st, cur, dec)
	if st.GlobalHops != 1 {
		t.Fatalf("global hops %d", st.GlobalHops)
	}

	// Intermediate group: block the minimal local exit; expect a local
	// misroute on lVC1 and a forced hop on lVC2.
	blockMinimal(v, p, alg, &st, cur)
	dec = alg.Route(v, &st, cur, 8, r)
	if dec.Wait {
		t.Skip("intermediate arrival router owns the exit channel; geometry skip")
	}
	if dec.Kind != KindLocalMis || dec.VC != 0 {
		t.Fatalf("intermediate misroute: %+v", dec)
	}
	cur = commitAndMove(p, &st, cur, dec)
	dec = alg.Route(v, &st, cur, 8, r)
	if dec.Wait || dec.VC != 1 {
		t.Fatalf("intermediate forced hop must ride lVC2: %+v", dec)
	}
	cur = commitAndMove(p, &st, cur, dec)

	// Second global hop on gVC2.
	dec = alg.Route(v, &st, cur, 8, r)
	if dec.Wait || !p.IsGlobalPort(dec.Port) || dec.VC != 1 {
		t.Fatalf("second global hop: %+v", dec)
	}
	cur = commitAndMove(p, &st, cur, dec)
	if st.CurGroup != st.DstGroup {
		t.Fatalf("not in destination group")
	}

	// Destination group: block the direct port; expect a misroute on
	// lVC2 (preferred) or lVC1, then the final hop on lVC3.
	if int32(cur) != st.DstRouter {
		blockMinimal(v, p, alg, &st, cur)
		dec = alg.Route(v, &st, cur, 8, r)
		if dec.Wait || dec.Kind != KindLocalMis {
			t.Fatalf("destination misroute: %+v", dec)
		}
		if dec.VC != 1 && dec.VC != 0 {
			t.Fatalf("destination misroute on lVC%d", dec.VC+1)
		}
		cur = commitAndMove(p, &st, cur, dec)
		dec = alg.Route(v, &st, cur, 8, r)
		if dec.Wait || dec.VC != 2 {
			t.Fatalf("final hop must ride lVC3: %+v", dec)
		}
		cur = commitAndMove(p, &st, cur, dec)
	}
	if int32(cur) != st.DstRouter {
		t.Fatalf("did not arrive: at %d, dst %d", cur, st.DstRouter)
	}
	if st.LocalMisCount < 1 || st.GlobalMisCount != 1 {
		t.Fatalf("misroute counters: %d local, %d global", st.LocalMisCount, st.GlobalMisCount)
	}
}

func commitAndMove(p *topology.P, st *PacketState, router int, dec Decision) int {
	next, _ := p.LinkTarget(router, dec.Port)
	CommitHop(p, st, router, dec)
	return next
}

// TestRLMForcedPairLegality: every RLM local misroute decision satisfies
// the parity-sign restriction by construction; fuzz many blocked scenarios.
func TestRLMForcedPairLegality(t *testing.T) {
	p := topology.MustNew(4)
	alg := mustAlg(t, RLM, p)
	tab := NewParityTable()
	r := rng.New(17, 1)
	for trial := 0; trial < 500; trial++ {
		v := newFakeView(p)
		i := r.Intn(p.RoutersPerGroup)
		j := r.Intn(p.RoutersPerGroup)
		if i == j {
			continue
		}
		var st PacketState
		st.Init(p, p.NodeID(p.RouterID(0, i), 0), p.NodeID(p.RouterID(0, j), 0))
		blockMinimal(v, p, alg, &st, p.RouterID(0, i))
		// Randomly congest some other ports.
		for n := 0; n < 5; n++ {
			v.occupancy[[2]int{r.Intn(p.LocalPorts), 0}] = r.Intn(40)
		}
		dec := alg.Route(v, &st, p.RouterID(0, i), 8, r)
		if dec.Wait {
			continue
		}
		if dec.Kind != KindLocalMis {
			t.Fatalf("unexpected kind %v", dec.Kind)
		}
		k := p.LocalPortTarget(i, dec.Port)
		if !tab.AllowedHops(i, k, j) {
			t.Fatalf("RLM chose forbidden detour %d->%d->%d", i, k, j)
		}
	}
}

// TestPARAscendingVCs fuzzes PAR-6/2 walks with random blocking and checks
// the strict Günther order lVC1 lVC2 gVC1 lVC3 lVC4 gVC2 lVC5 lVC6.
func TestPARAscendingVCs(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, PAR62, p)
	r := rng.New(23, 5)
	parRank := func(h hopRec) int {
		if h.global {
			return []int{2, 5}[h.vc]
		}
		return []int{0, 1, 3, 4, 6, 7}[h.vc]
	}
	for trial := 0; trial < 300; trial++ {
		v := newFakeView(p)
		src := r.Intn(p.Routers)
		dst := r.Intn(p.Routers)
		if src == dst {
			continue
		}
		var st PacketState
		st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
		// Congest a random sample of ports to provoke misrouting.
		for n := 0; n < 6; n++ {
			port := r.Intn(p.EjectPortBase())
			for vc := 0; vc < 6; vc++ {
				v.blocked[[2]int{port, vc}] = true
				v.occupancy[[2]int{port, vc}] = 30
			}
		}
		router := src
		var hops []hopRec
		for hop := 0; hop < 10 && int32(router) != st.DstRouter; hop++ {
			dec := alg.Route(v, &st, router, 8, r)
			if dec.Wait {
				break // blocked; fine for this property test
			}
			hops = append(hops, hopRec{global: p.IsGlobalPort(dec.Port), vc: dec.VC, router: router})
			router = commitAndMove(p, &st, router, dec)
		}
		for i := 1; i < len(hops); i++ {
			if parRank(hops[i]) <= parRank(hops[i-1]) {
				t.Fatalf("PAR-6/2 VC order violated: %+v", hops)
			}
		}
		if st.GlobalHops > 2 || st.LocalHops > 6 {
			t.Fatalf("hop budget exceeded: %d locals, %d globals",
				st.LocalHops, st.GlobalHops)
		}
	}
}

// TestPBDivertsOnCongestion: with the minimal channel flagged congested,
// PB must take a Valiant route; without the flag it stays minimal.
func TestPBDivertsOnCongestion(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, PB, p)
	r := rng.New(29, 2)

	mk := func() PacketState {
		var st PacketState
		dstGroup := p.TargetGroup(0, 0) // channel 0, owned by router 0
		st.Init(p, p.NodeID(0, 0), p.NodeID(p.RouterID(dstGroup, 1), 0))
		return st
	}

	v := newFakeView(p)
	st := mk()
	dec := alg.Route(v, &st, 0, 8, r)
	if st.ValiantGroup >= 0 {
		t.Fatal("PB diverted without congestion")
	}
	if dec.Wait || !p.IsGlobalPort(dec.Port) {
		t.Fatalf("PB minimal decision: %+v", dec)
	}

	v = newFakeView(p)
	v.congested[0] = true // the minimal channel
	st = mk()
	_ = alg.Route(v, &st, 0, 8, r)
	if st.ValiantGroup < 0 {
		t.Fatal("PB did not divert off a congested channel")
	}
}

// TestCommitHopGroupTracking checks arrival bookkeeping on global hops.
func TestCommitHopGroupTracking(t *testing.T) {
	p := topology.MustNew(2)
	var st PacketState
	dstGroup := p.TargetGroup(0, 0)
	st.Init(p, p.NodeID(0, 0), p.NodeID(p.RouterID(dstGroup, 1), 0))
	st.LocalHopsInGroup = 1
	st.PrevRouter = 3
	dec := Decision{Port: p.GlobalPortBase(), VC: 0, Kind: KindMin, NewValiant: -1, LocalFinal: -1}
	CommitHop(p, &st, 0, dec)
	if st.CurGroup != int32(dstGroup) {
		t.Fatalf("group %d after global hop, want %d", st.CurGroup, dstGroup)
	}
	if st.LocalHopsInGroup != 0 || st.PrevRouter != -1 {
		t.Fatal("per-group state not reset on group change")
	}
	if st.GlobalHops != 1 {
		t.Fatalf("global hops %d", st.GlobalHops)
	}
}

func TestCommitHopPanicsOnEjectPort(t *testing.T) {
	p := topology.MustNew(2)
	var st PacketState
	st.Init(p, 0, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("CommitHop on eject port did not panic")
		}
	}()
	CommitHop(p, &st, 0, Decision{Port: p.EjectPortBase()})
}

func BenchmarkRouteMinimal(b *testing.B) {
	p := topology.MustNew(8)
	alg, _ := New(Minimal, Config{Topo: p})
	v := newFakeView(p)
	r := rng.New(1, 1)
	var st PacketState
	st.Init(p, 0, p.Nodes-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = alg.Route(v, &st, 0, 8, r)
	}
}

func BenchmarkRouteOLMBlocked(b *testing.B) {
	p := topology.MustNew(8)
	alg, _ := New(OLM, Config{Topo: p, Threshold: 0.45, RemoteCandidates: 2})
	v := newFakeView(p)
	r := rng.New(1, 1)
	var st PacketState
	st.Init(p, 0, p.Nodes-1)
	port, _, _ := minimalNext(p, &st, 0)
	for vc := 0; vc < 3; vc++ {
		v.blocked[[2]int{port, vc}] = true
		v.occupancy[[2]int{port, vc}] = 32
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = alg.Route(v, &st, 0, 8, r)
	}
}
