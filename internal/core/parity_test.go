package core

import (
	"testing"
	"testing/quick"
)

// TestTableIMatchesPaper compares the generated table against all 16 rows
// of Table I in the paper, in the paper's row order.
func TestTableIMatchesPaper(t *testing.T) {
	rows := []struct {
		first, second LinkType
		allowed       bool
	}{
		{OddNeg, EvenPos, true},
		{OddNeg, EvenNeg, true},
		{OddNeg, OddPos, true},
		{OddNeg, OddNeg, true},
		{EvenPos, EvenPos, true},
		{EvenPos, EvenNeg, true},
		{EvenPos, OddPos, true},
		{EvenPos, OddNeg, false},
		{OddPos, EvenPos, false},
		{OddPos, EvenNeg, true},
		{OddPos, OddPos, true},
		{OddPos, OddNeg, false},
		{EvenNeg, EvenPos, false},
		{EvenNeg, EvenNeg, true},
		{EvenNeg, OddPos, false},
		{EvenNeg, OddNeg, false},
	}
	tab := NewParityTable()
	for _, row := range rows {
		if got := tab.Allowed(row.first, row.second); got != row.allowed {
			t.Errorf("(%v, %v): allowed=%v, want %v", row.first, row.second, got, row.allowed)
		}
	}
}

func TestClassifyHop(t *testing.T) {
	cases := []struct {
		i, j int
		want LinkType
	}{
		{3, 6, OddPos},  // paper's example: 3->6 is positive; 3+6 odd
		{5, 2, OddNeg},  // paper: link 5-2 is odd
		{1, 7, EvenPos}, // paper: link 1-7 is even
		{5, 0, OddNeg},
		{0, 5, OddPos},
		{7, 1, EvenNeg},
		{2, 4, EvenPos},
	}
	for _, c := range cases {
		if got := ClassifyHop(c.i, c.j); got != c.want {
			t.Errorf("ClassifyHop(%d,%d)=%v, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestClassifyHopPanicsOnSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ClassifyHop(3,3) did not panic")
		}
	}()
	ClassifyHop(3, 3)
}

// TestPaperFigure2Examples checks the three hop combinations discussed
// around Figure 2 (h=4 supernode with routers 0..7).
func TestPaperFigure2Examples(t *testing.T) {
	tab := NewParityTable()
	// Combination 2: from 5 to 0 through 1 is [even-, odd-]: forbidden.
	if tab.AllowedHops(5, 1, 0) {
		t.Error("route 5->1->0 should be forbidden ([even-, odd-])")
	}
	// Paper: node 0 is reachable from 5 through 2, 4 ([odd-, odd-]) and
	// 6 ([odd+, odd-]).
	for _, k := range []int{2, 4} {
		if !tab.AllowedHops(5, k, 0) {
			t.Errorf("route 5->%d->0 should be allowed ([odd-, odd-])", k)
		}
	}
	if !tab.AllowedHops(5, 6, 0) {
		t.Error("route 5->6->0 should be allowed ([odd+, odd-])")
	}
	// That yields exactly h-1 = 3 two-hop routes from 5 to 0.
	ks := tab.Intermediates(nil, 5, 0, 8)
	if len(ks) != 3 {
		t.Errorf("intermediates(5,0) = %v, want 3 routes", ks)
	}
}

// TestAtLeastHMinusOneRoutes verifies the paper's balance guarantee: every
// ordered router pair has at least h-1 allowed 2-hop routes.
func TestAtLeastHMinusOneRoutes(t *testing.T) {
	for _, h := range []int{2, 3, 4, 8, 16} {
		tab := NewParityTable()
		n := 2 * h
		var buf []int
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				buf = tab.Intermediates(buf[:0], i, j, n)
				if len(buf) < h-1 {
					t.Errorf("h=%d: pair (%d,%d) has only %d routes, want >= %d",
						h, i, j, len(buf), h-1)
				}
			}
		}
	}
}

// TestSignOnlyUnbalanced verifies the paper's criticism of the sign-only
// restriction: some pairs (such as 0 -> 1) have no non-minimal route, while
// others have up to 2h-2.
func TestSignOnlyUnbalanced(t *testing.T) {
	s := NewSignOnlyTable()
	const h = 4
	n := 2 * h
	if got := s.Intermediates(nil, 0, 1, n); len(got) != 0 {
		t.Errorf("sign-only: pair (0,1) has %d routes, paper says none", len(got))
	}
	if got := s.Intermediates(nil, 0, n-1, n); len(got) != n-2 {
		t.Errorf("sign-only: pair (0,%d) has %d routes, want %d", n-1, len(got), n-2)
	}
}

// TestPairDigraphAcyclic builds the directed-link dependency graph in which
// an edge connects local link l1 to local link l2 when l2 may directly
// follow l1 under the restriction, and asserts it has no directed cycle.
// This is the deadlock-freedom argument of RLM: a cycle would require some
// allowed walk to return to (and thus repeat) its first link.
func TestPairDigraphAcyclic(t *testing.T) {
	for _, h := range []int{2, 3, 4, 8} {
		checkAcyclic(t, h, NewParityTable())
	}
	// The sign-only table must also be acyclic (it avoids deadlock; its
	// flaw is unbalance, not unsafety).
	checkAcyclic(t, 4, NewSignOnlyTable())
}

func checkAcyclic(t *testing.T, h int, tab restrictedPairChecker) {
	t.Helper()
	n := 2 * h
	// Link id for directed local link i->j.
	id := func(i, j int) int { return i*n + j }
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n*n)
	var visit func(i, j int) bool
	visit = func(i, j int) bool {
		l := id(i, j)
		color[l] = gray
		for k := 0; k < n; k++ {
			if k == j || k == i {
				continue
			}
			if !tab.AllowedHops(i, j, k) {
				continue
			}
			next := id(j, k)
			switch color[next] {
			case gray:
				return false // back edge: cycle
			case white:
				if !visit(j, k) {
					return false
				}
			}
		}
		color[l] = black
		return true
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || color[id(i, j)] != white {
				continue
			}
			if !visit(i, j) {
				t.Fatalf("h=%d: cycle found in allowed-pair digraph", h)
			}
		}
	}
}

// TestAnyMarkingOrderIsSafe property-checks that every one of the 24
// marking orders produces an acyclic (deadlock-free) table. Note that only
// some orders also preserve the h-1 route balance — the paper's order does
// (TestAtLeastHMinusOneRoutes); others degenerate like sign-only, which is
// exactly why the paper fixes the order it does.
func TestAnyMarkingOrderIsSafe(t *testing.T) {
	perms := permutations([]LinkType{OddNeg, EvenPos, OddPos, EvenNeg})
	const h = 4
	for _, perm := range perms {
		var order [4]LinkType
		copy(order[:], perm)
		tab := NewParityTableOrder(order)
		checkAcyclic(t, h, tab)
	}
}

func permutations(in []LinkType) [][]LinkType {
	if len(in) <= 1 {
		return [][]LinkType{append([]LinkType(nil), in...)}
	}
	var out [][]LinkType
	for i := range in {
		rest := make([]LinkType, 0, len(in)-1)
		rest = append(rest, in[:i]...)
		rest = append(rest, in[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]LinkType{in[i]}, p...))
		}
	}
	return out
}

// TestWalkNeverRevisitsFirstLink property-checks the key invariant the
// paper states: in any allowed (arbitrarily long) sequence of local hops,
// the last link is never the same (directed physical) link as the initial
// one — i.e., no allowed walk can close a cycle through its first link.
func TestWalkNeverRevisitsFirstLink(t *testing.T) {
	tab := NewParityTable()
	const h = 4
	n := 2 * h
	f := func(start uint8, steps []uint8) bool {
		i := int(start) % n
		j := (i + 1 + int(start)/n%(n-1)) % n
		if i == j {
			j = (j + 1) % n
		}
		firstI, firstJ := i, j
		for _, s := range steps {
			k := int(s) % n
			if k == j || k == i {
				continue
			}
			if !tab.AllowedHops(i, j, k) {
				continue
			}
			i, j = j, k
			if i == firstI && j == firstJ {
				return false // walk returned to its first link
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntermediates(b *testing.B) {
	tab := NewParityTable()
	var buf []int
	for i := 0; i < b.N; i++ {
		buf = tab.Intermediates(buf[:0], 5, 0, 16)
	}
}
