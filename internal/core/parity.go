// parity.go implements the parity-sign route restriction at the heart of
// Restricted Local Misrouting (RLM), paper Section III-B.
//
// Local hops inside a supernode are classified by sign — positive when the
// router index increases, negative when it decreases — and by parity — odd
// when the two endpoint indices have different parity, even when they have
// the same parity. A 2-hop local route (i -> k -> j) is permitted only if
// the ordered pair of its link types is marked Allowed by the table below,
// which is constructed exactly as the paper prescribes (marking order
// odd-, even+, odd+, even-) and matches the paper's Table I.
//
// Because no allowed sequence of local hops can end on a link of the same
// type it started with, the per-VC channel dependency graph inside a group
// is acyclic, making RLM deadlock free with a single local VC per group
// visit (see TestPairDigraphAcyclic).
package core

// LinkType classifies a directed local hop by parity and sign.
type LinkType uint8

// The four local link types, in the marking order used by the paper for
// Table I: odd-, even+, odd+, even-.
const (
	OddNeg LinkType = iota
	EvenPos
	OddPos
	EvenNeg
	numLinkTypes
)

// String returns the paper's notation for the link type.
func (t LinkType) String() string {
	switch t {
	case OddNeg:
		return "odd-"
	case EvenPos:
		return "even+"
	case OddPos:
		return "odd+"
	case EvenNeg:
		return "even-"
	}
	return "invalid"
}

// ClassifyHop returns the type of the local hop from router index i to
// router index j of the same group. It panics if i == j.
func ClassifyHop(i, j int) LinkType {
	if i == j {
		panic("core: ClassifyHop with i == j")
	}
	odd := (i+j)%2 != 0 // endpoints of different parity
	pos := j > i
	switch {
	case odd && pos:
		return OddPos
	case odd && !pos:
		return OddNeg
	case !odd && pos:
		return EvenPos
	default:
		return EvenNeg
	}
}

// ParityTable holds the 4x4 allowed-combination matrix of Table I.
// allowed[first][second] reports whether a 2-hop route whose first hop has
// type first and second hop has type second is permitted.
type ParityTable struct {
	allowed [numLinkTypes][numLinkTypes]bool
}

// NewParityTable constructs the table with the paper's marking order:
// (1) odd-, (2) even+, (3) odd+, (4) even-.
func NewParityTable() *ParityTable {
	return NewParityTableOrder([numLinkTypes]LinkType{OddNeg, EvenPos, OddPos, EvenNeg})
}

// NewParityTableOrder constructs a parity-sign table with an arbitrary
// marking order, following the paper's algorithm:
//
//  1. pairs with both hops of the same type are Allowed;
//  2. for each type t in order: still-blank pairs starting with t are
//     marked Allowed; then still-blank pairs ending with t are marked
//     Not Allowed.
//
// Any order yields a deadlock-free table; the default order reproduces
// Table I of the paper.
func NewParityTableOrder(order [numLinkTypes]LinkType) *ParityTable {
	var decided [numLinkTypes][numLinkTypes]bool
	t := &ParityTable{}
	for i := LinkType(0); i < numLinkTypes; i++ {
		t.allowed[i][i] = true
		decided[i][i] = true
	}
	for _, typ := range order {
		for second := LinkType(0); second < numLinkTypes; second++ {
			if !decided[typ][second] {
				decided[typ][second] = true
				t.allowed[typ][second] = true
			}
		}
		for first := LinkType(0); first < numLinkTypes; first++ {
			if !decided[first][typ] {
				decided[first][typ] = true
				t.allowed[first][typ] = false
			}
		}
	}
	return t
}

// Allowed reports whether a 2-hop combination (first, second) is permitted.
func (t *ParityTable) Allowed(first, second LinkType) bool {
	return t.allowed[first][second]
}

// AllowedHops reports whether the consecutive local hops i->k and k->j are
// permitted. It panics if the hops are degenerate (i==k or k==j).
func (t *ParityTable) AllowedHops(i, k, j int) bool {
	return t.Allowed(ClassifyHop(i, k), ClassifyHop(k, j))
}

// Intermediates returns the set of valid intermediate router indices k for
// a restricted 2-hop local route from i to j in a group of size routers
// (k != i, k != j, and the pair (i->k, k->j) allowed). The result is
// appended to dst to let callers reuse storage.
func (t *ParityTable) Intermediates(dst []int, i, j, routers int) []int {
	for k := 0; k < routers; k++ {
		if k == i || k == j {
			continue
		}
		if t.AllowedHops(i, k, j) {
			dst = append(dst, k)
		}
	}
	return dst
}

// restrictedPairChecker abstracts the pair rule so that RLM can run with
// either the parity-sign table or the sign-only ablation.
type restrictedPairChecker interface {
	AllowedHops(i, k, j int) bool
}
