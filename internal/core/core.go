package core
