// plan.go is the per-head routing plan: the static part of one head
// packet's routing decision, computed once when the packet reaches the
// front of its input VC and replayed every cycle until the head is
// claimed. A waiting head's PacketState cannot change (CommitHop runs only
// when the head is claimed, and the injection-time choices are made during
// the build), and the fault view is constant between routing-table
// recomputations — so everything except downstream occupancy, claimability
// and the random draws is decision-invariant and needs no re-derivation:
//
//   - the minimal output (port, VC, global?) and the forced-hop port;
//   - the eject port for arrived packets;
//   - whether global/local misrouting is armed, the misroute VCs, and the
//     full candidate geometry: own global ports (destination and dead
//     channels filtered out) and the pair-restricted local detour list
//     (dead links filtered out);
//   - the drop verdict for heads whose candidates can never materialize.
//
// The engine keeps one Plan per input (port, VC) and invalidates it when
// the buffer's head changes (vcBuffer.headSeq) or when fault events
// recompute the routing-view tables (the engine's route epoch) — the
// fabric-manager model: tables are recomputed on topology changes, and the
// per-packet data path only consults them. Crucially, replay never touches
// the Packet, whose cache lines dominated the old per-cycle re-evaluation.
//
// Replay order and RNG consumption are exactly those of the recomputing
// procedure, so decisions are bit-identical; Algorithm.Route is itself
// implemented as build-plus-replay, and TestPlanRouteEquivalence pins the
// plan path to an independently recomputing reference.
package core

import (
	"math"

	"repro/internal/rng"
)

// globalCand is one precomputed own-global-port Valiant candidate.
type globalCand struct {
	port int16
	tg   int32
}

// Plan is the cached static geometry of one waiting head's decision.
// HeadSeq, Epoch, Eject and EjectPort belong to the engine's cache
// bookkeeping; the remaining fields are written by BuildPlan and read by
// RoutePlanned.
type Plan struct {
	// HeadSeq is the vcBuffer head sequence number the plan was built
	// for; Epoch is the fault-view epoch. The engine rebuilds on any
	// mismatch. Both belong to the caller — core never reads them.
	HeadSeq int64
	Epoch   uint64
	// Eject marks a head that has reached its destination router; it
	// leaves through EjectPort with no routing evaluation. Maintained by
	// the engine (core's BuildPlan is never called for ejecting heads).
	Eject     bool
	EjectPort int16
	// DestDead marks a head whose destination router has failed entirely
	// under the routing view: no route can deliver it, so the engine
	// drops it without a routing evaluation. Engine-owned, like Eject.
	DestDead bool

	forced      bool // a committed post-misroute hop: no adaptivity
	dropNow     bool // statically unroutable under the current fault view
	minGlobal   bool
	deadMin     bool // minimal route dead (channel or next local leg)
	canGlobal   bool
	canLocal    bool
	dropIfEmpty bool // deadMin and no candidate can ever materialize
	budgetOK    bool // a redirect hop still fits the local-hop budget
	onEscape    bool // OFAR: head already rides the escape ring
	ringDead    bool // OFAR: the ring output is dead under the fault view
	ringSevered bool // OFAR: the ring successor router itself is dead

	minPort, minVC int16
	gvc, lvc       int16
	mvcs           [2]int16 // local-misroute VCs in preference order
	nmvcs          int8
	ringPort       int16
	ringVC         int16
	exitIdx        int16
	idx            int16 // this router's in-group index
	prevIdx        int16 // previous router's index for the pair rule; -1
	g              int32 // this router's group
	dstGroup       int32

	own      []globalCand // own-global-port candidates, dead/destination filtered
	local    []localCand  // local detours; shared table row, or localBuf when filtered
	localBuf []localCand  // plan-owned backing for fault-filtered detour lists
}

// reset clears the decision fields, retaining the candidate backing
// arrays. The engine-owned cache keys are left alone.
func (p *Plan) reset() {
	own, buf := p.own[:0], p.localBuf[:0]
	*p = Plan{HeadSeq: p.HeadSeq, Epoch: p.Epoch, own: own, localBuf: buf, prevIdx: -1}
}

// BuildPlan implements Algorithm for the adaptive mechanisms.
func (a *adaptive) BuildPlan(v View, st *PacketState, router, size int, r *rng.PCG, p *Plan) {
	t := a.tab
	p.reset()
	idx := t.rt.IndexOf(router)
	g := t.rt.GroupOf(router)
	faulty := v.Faulty()
	p.idx, p.g, p.dstGroup = int16(idx), int32(g), st.DstGroup

	if st.PendingLocal >= 0 {
		p.forced = true
		p.minPort = int16(t.rt.LocalPortTo(idx, int(st.PendingLocal)))
		p.minVC = int16(a.localVC(st))
		if faulty && v.LinkDown(int(p.minPort)) {
			p.dropNow = true // a forced hop cannot re-route
		}
		return
	}

	minPort, minGlobal, exitIdx := t.minimalHop(st, idx, g)
	p.minPort, p.minGlobal, p.exitIdx = int16(minPort), minGlobal, int16(exitIdx)
	minVC := a.localVC(st)
	if minGlobal {
		minVC = a.globalVC(st)
	}
	p.minVC = int16(minVC)

	// Fault state of the minimal route. deadRoute means the group's only
	// channel toward the target group is gone — no local detour can bring
	// it back; deadLocal means just the next local leg is gone, which a
	// local misroute can bypass.
	deadRoute, deadLocal := false, false
	if faulty {
		if tg := st.targetGroup(); g != tg && v.RouteDown(g, tg) {
			deadRoute = true
		} else if v.LinkDown(minPort) {
			if minGlobal {
				deadRoute = true // a dead global minPort is the channel itself
			} else {
				deadLocal = true
			}
		}
	}
	p.deadMin = deadRoute || deadLocal

	p.gvc, p.lvc = int16(a.globalVC(st)), int16(a.localVC(st))
	var vcBuf [2]int
	vcs := a.misrouteVCs(st, vcBuf[:0])
	p.nmvcs = int8(len(vcs))
	for i, vc := range vcs {
		p.mvcs[i] = int16(vc)
	}

	p.canGlobal = a.globalMisrouteAllowed(st)
	if p.canGlobal {
		for j := 0; j < t.h; j++ {
			// The channel on global port j of router index idx reaches
			// the group at cyclic offset idx*h + j + 1.
			tg := g + idx*t.h + j + 1
			if tg >= t.groups {
				tg -= t.groups
			}
			if tg == int(st.DstGroup) {
				continue // that would be the minimal channel
			}
			if faulty && v.RouteDown(tg, int(st.DstGroup)) {
				continue // the detour's second leg is gone
			}
			p.own = append(p.own, globalCand{port: int16(t.gpb + j), tg: int32(tg)})
		}
		p.budgetOK = int(st.LocalHopsInGroup) < maxLocalHopsPerGroup
		if t.pairOK != nil && st.PrevRouter >= 0 {
			p.prevIdx = int16(t.rt.IndexOf(int(st.PrevRouter)))
		}
	}
	// Local misrouting cannot restore a dead group channel (each group
	// pair has exactly one), so it stays unarmed for deadRoute.
	p.canLocal = !minGlobal && !deadRoute && a.localMisrouteAllowed(st)
	structural := 0
	if p.canLocal {
		list := t.localCands[idx*t.rpg+exitIdx]
		if faulty {
			p.localBuf = p.localBuf[:0]
			for _, c := range list {
				if v.LocalDown(idx, int(c.k)) || v.LocalDown(int(c.k), exitIdx) {
					continue // the detour hop or its forced exit is gone
				}
				p.localBuf = append(p.localBuf, c)
			}
			p.local = p.localBuf
		} else {
			p.local = list
		}
		structural = len(p.local)
	}
	if p.deadMin {
		p.dropIfEmpty = !(p.canLocal && structural > 0) &&
			!(p.canGlobal && a.liveGlobalDetour(v, st, idx, g))
	}
}

// RoutePlanned implements Algorithm for the adaptive mechanisms: the
// dynamic replay of a built plan — claimability, the credit-based trigger,
// remote-channel sampling and the uniform candidate pick.
func (a *adaptive) RoutePlanned(v View, p *Plan, size int, r *rng.PCG) Decision {
	minPort, minVC := int(p.minPort), int(p.minVC)
	if p.forced {
		if p.dropNow {
			return dropDecision
		}
		if v.CanClaim(minPort, minVC, size) {
			return Decision{Port: minPort, VC: minVC, Kind: KindMin, NewValiant: -1, LocalFinal: -1}
		}
		return waitDecision
	}
	minOcc, minClaim, minStart := v.MinState(minPort, minVC, size)
	if !p.deadMin && minClaim {
		return Decision{Port: minPort, VC: minVC, Kind: KindMin, NewValiant: -1, LocalFinal: -1}
	}

	// The minimal output is not available this cycle: evaluate the
	// misrouting trigger (see the commentary in adaptive.go; the trigger
	// math here is identical, over the precomputed candidate geometry).
	minFrac := a.fracAt(v, minPort, minVC, minOcc)
	if qOcc, qCap := v.CurrentQueue(); qCap > 0 {
		if f := float64(qOcc) / float64(qCap); f > minFrac {
			minFrac = f
		}
	}
	limit := a.cfg.Threshold * minFrac
	if p.deadMin {
		limit = math.Inf(1)
	}
	a.cands = a.cands[:0]
	if p.canGlobal && (p.deadMin || !minStart) {
		gvc := int(p.gvc)
		for _, c := range p.own {
			if a.eligible(v, int(c.port), gvc, size, limit) {
				a.cands = append(a.cands, Decision{
					Port: int(c.port), VC: gvc, Kind: KindGlobalMis,
					NewValiant: int(c.tg), LocalFinal: -1,
				})
			}
		}
		if p.budgetOK {
			t := a.tab
			faulty := v.Faulty()
			lvc := int(p.lvc)
			g, dst, idx := int(p.g), int(p.dstGroup), int(p.idx)
			for i := 0; i < a.cfg.RemoteCandidates; i++ {
				tg := r.Intn(t.groups)
				if tg == g || tg == dst {
					continue
				}
				if faulty && (v.RouteDown(g, tg) || v.RouteDown(tg, dst)) {
					continue // a detour leg is gone
				}
				owner := t.rt.OwnerOf(t.rt.GroupOffset(g, tg))
				if owner == idx {
					continue // own channel, already considered above
				}
				if t.pairOK != nil && p.prevIdx >= 0 &&
					!t.pairAllowed(int(p.prevIdx), idx, owner) {
					continue // restricted 2-hop local combination
				}
				port := t.rt.LocalPortTo(idx, owner)
				if a.eligible(v, port, lvc, size, limit) {
					a.cands = append(a.cands, Decision{
						Port: port, VC: lvc, Kind: KindGlobalMis,
						NewValiant: tg, LocalFinal: -1,
					})
				}
			}
		}
	}
	if p.canLocal {
		exit := int(p.exitIdx)
		for _, c := range p.local {
			for mi := 0; mi < int(p.nmvcs); mi++ {
				vc := int(p.mvcs[mi])
				if a.eligible(v, int(c.port), vc, size, limit) {
					a.cands = append(a.cands, Decision{
						Port: int(c.port), VC: vc, Kind: KindLocalMis,
						NewValiant: -1, LocalFinal: exit,
					})
					break
				}
			}
		}
	}
	if len(a.cands) == 0 {
		if p.deadMin && p.dropIfEmpty {
			return dropDecision
		}
		return waitDecision
	}
	return a.cands[r.Intn(len(a.cands))]
}

// BuildPlan implements Algorithm for the oblivious mechanisms. The
// injection-time source-routing choice (Valiant's intermediate group, PB's
// congestion criterion) happens here, exactly where the first Route call
// of the recomputing path made it.
func (o *oblivious) BuildPlan(v View, st *PacketState, router, size int, r *rng.PCG, p *Plan) {
	p.reset()
	if !st.InjDecided && int32(router) == st.SrcRouter {
		o.decideInjection(v, st, router, r)
	}
	t := o.tab
	idx := t.rt.IndexOf(router)
	g := t.rt.GroupOf(router)
	port, _, _ := t.minimalHop(st, idx, g)
	p.minPort = int16(port)
	p.minVC = int16(st.GlobalHops) // local hop after g globals uses lVC_{g+1}
	if v.Faulty() {
		// None of the three adapts in transit: a failed link on the
		// (already fixed) route leaves the packet unroutable.
		if tg := st.targetGroup(); g != tg && v.RouteDown(g, tg) {
			p.dropNow = true
			return
		}
		if v.LinkDown(port) {
			p.dropNow = true
		}
	}
}

// RoutePlanned implements Algorithm for the oblivious mechanisms.
func (o *oblivious) RoutePlanned(v View, p *Plan, size int, r *rng.PCG) Decision {
	if p.dropNow {
		return dropDecision
	}
	minPort, minVC := int(p.minPort), int(p.minVC)
	if !v.CanClaim(minPort, minVC, size) {
		return waitDecision
	}
	return Decision{Port: minPort, VC: minVC, Kind: KindMin, NewValiant: -1, LocalFinal: -1}
}

// BuildPlan implements Algorithm for OFAR: the adaptive plan plus the
// escape-ring statics.
func (o *ofar) BuildPlan(v View, st *PacketState, router, size int, r *rng.PCG, p *Plan) {
	o.adaptive.BuildPlan(v, st, router, size, r, p)
	t := o.tab
	ringPort := t.rt.RingPortOf(t.rt.IndexOf(router))
	p.ringPort = int16(ringPort)
	p.ringVC = ofarEscapeLocalVC
	if o.cfg.Topo.IsGlobalPort(ringPort) {
		p.ringVC = ofarEscapeGlobalVC
	}
	p.onEscape = st.OnEscape
	p.ringDead = v.Faulty() && v.LinkDown(ringPort)
	p.ringSevered = p.ringDead && v.PortDead(ringPort)
}

// RoutePlanned implements Algorithm for OFAR: the adaptive replay with the
// escape-ring fallback under bubble flow control.
func (o *ofar) RoutePlanned(v View, p *Plan, size int, r *rng.PCG) Decision {
	dec := o.adaptive.RoutePlanned(v, p, size, r)
	if !dec.Wait && !dec.Drop {
		return dec
	}
	// Adaptive network blocked (or, under faults, out of surviving
	// adaptive routes): try the ring edge — the ring visits every router,
	// so a live ring can still deliver a packet whose adaptive paths are
	// all dead. Ring hops are store-and-forward: the whole packet must be
	// buffered here first, both for the bubble argument and so a packet
	// circling the ring can never catch its own tail.
	adaptiveDead := dec.Drop
	if !v.HeadFullyArrived() {
		return waitDecision
	}
	if p.ringDead {
		// The ring is severed here; with the adaptive routes dead too,
		// the packet has no surviving way out. When the severing fault is
		// the ring successor router itself, shed blocked packets even if
		// adaptive routes survive: the ring cannot circulate through a
		// dead router, so this edge is the drain that keeps the bubble
		// argument — and with it the rest of the escape subnetwork —
		// alive for everyone upstream.
		if adaptiveDead || p.ringSevered {
			return dropDecision
		}
		return waitDecision
	}
	port, vc := int(p.ringPort), int(p.ringVC)
	if !v.CanClaim(port, vc, size) {
		return waitDecision
	}
	// Bubble condition: entering the ring requires space for two
	// packets downstream; continuing along it requires one.
	if !p.onEscape && !v.CanStart(port, vc, 2*size) {
		return waitDecision
	}
	return Decision{Port: port, VC: vc, Kind: KindEscape, NewValiant: -1, LocalFinal: -1}
}
