// tables.go is the mechanism-level routing-table layer on top of
// topology.RouteTable: one Tables instance per (topology, mechanism,
// parameters) triple holds everything the per-packet decision paths look
// up instead of recomputing — the minimal next-hop rows, the global-port
// matrix, and the mechanism's local-misroute candidate lists with the
// pair restriction (RLM's parity-sign rule, the sign-only ablation)
// already applied. The lists preserve the ascending-k order of the scan
// they replace, so table-driven decisions are bit-identical to the
// recomputing implementation (see TestPlanRouteEquivalence).
//
// A Tables value is immutable after NewTables and is shared read-only by
// every router's Algorithm instance of a simulation.
package core

import (
	"fmt"

	"repro/internal/topology"
)

// localCand is one precomputed local-misroute detour: the intermediate
// in-group router index and the output port reaching it.
type localCand struct {
	k    int16
	port int16
}

// Tables holds the shared precomputed routing tables of one mechanism
// instantiation.
type Tables struct {
	spec Spec
	cfg  Config // defaults filled
	rt   *topology.RouteTable

	// Cached topology scalars for the hot paths.
	groups int
	rpg    int
	h      int
	gpb    int // GlobalPortBase

	// localCands[idx*rpg+exit] lists the intermediate routers k (ascending)
	// of the 2-hop detours idx -> k -> exit that pass the mechanism's pair
	// restriction, with k != idx and k != exit. For unrestricted mechanisms
	// the lists simply enumerate every other router of the group.
	localCands [][]localCand

	// pairOK, flattened [rpg][rpg][rpg], answers AllowedHops(i, k, j) by
	// lookup; nil for mechanisms without a pair restriction (always true).
	pairOK []bool
}

// NewTables validates cfg, fills its defaults, and computes the table set
// for the given mechanism. The engine builds one Tables per simulation and
// derives every router's Algorithm from it via NewAlgorithm.
func NewTables(spec Spec, cfg Config) (*Tables, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.45
	}
	if cfg.PBThreshold <= 0 {
		cfg.PBThreshold = 0.35
	}
	if cfg.RemoteCandidates < 0 {
		cfg.RemoteCandidates = 0
	}
	var pair restrictedPairChecker
	switch spec {
	case Minimal, Valiant, PB, PAR62, OLM, OFAR:
	case RLM:
		pair = NewParityTable()
	case RLMSignOnly:
		pair = NewSignOnlyTable()
	default:
		return nil, fmt.Errorf("core: unknown spec %d", spec)
	}
	p := cfg.Topo
	t := &Tables{
		spec:   spec,
		cfg:    cfg,
		rt:     topology.NewRouteTable(p),
		groups: p.Groups,
		rpg:    p.RoutersPerGroup,
		h:      p.H,
		gpb:    p.GlobalPortBase(),
	}
	rpg := t.rpg
	t.localCands = make([][]localCand, rpg*rpg)
	for idx := 0; idx < rpg; idx++ {
		for exit := 0; exit < rpg; exit++ {
			if idx == exit {
				continue // a packet is never steered toward itself
			}
			var list []localCand
			for k := 0; k < rpg; k++ {
				if k == idx || k == exit {
					continue
				}
				if pair != nil && !pair.AllowedHops(idx, k, exit) {
					continue
				}
				list = append(list, localCand{
					k:    int16(k),
					port: int16(t.rt.LocalPortTo(idx, k)),
				})
			}
			t.localCands[idx*rpg+exit] = list
		}
	}
	if pair != nil {
		t.pairOK = make([]bool, rpg*rpg*rpg)
		for i := 0; i < rpg; i++ {
			for k := 0; k < rpg; k++ {
				if k == i {
					continue
				}
				for j := 0; j < rpg; j++ {
					if j == k {
						continue
					}
					t.pairOK[(i*rpg+k)*rpg+j] = pair.AllowedHops(i, k, j)
				}
			}
		}
	}
	return t, nil
}

// Spec returns the mechanism the tables were computed for.
func (t *Tables) Spec() Spec { return t.spec }

// Routes returns the underlying topology-level route table.
func (t *Tables) Routes() *topology.RouteTable { return t.rt }

// pairAllowed answers AllowedHops(i, k, j) by table lookup; mechanisms
// without a pair restriction always allow.
func (t *Tables) pairAllowed(i, k, j int) bool {
	if t.pairOK == nil {
		return true
	}
	return t.pairOK[(i*t.rpg+k)*t.rpg+j]
}

// NewAlgorithm creates a router-agnostic Algorithm instance backed by the
// shared tables. One instance is created per router so implementations may
// keep scratch state without locking; the tables themselves are shared.
func (t *Tables) NewAlgorithm() Algorithm {
	switch t.spec {
	case Minimal, Valiant, PB:
		return &oblivious{cfg: t.cfg, spec: t.spec, tab: t}
	case PAR62, RLM, RLMSignOnly, OLM:
		return newAdaptive(t.spec, t)
	case OFAR:
		return newOFAR(t)
	}
	panic(fmt.Sprintf("core: Tables with unknown spec %d", t.spec))
}

// minimalHop is the table-driven minimalNext: the minimal next hop of st
// at the router with in-group index idx of group g.
func (t *Tables) minimalHop(st *PacketState, idx, g int) (port int, global bool, exitIdx int) {
	tg := int(st.DstGroup)
	if st.ValiantGroup >= 0 {
		tg = int(st.ValiantGroup)
	}
	if g == tg {
		// Same group as the steering target. A pending Valiant group is
		// cleared on arrival, so tg is the destination group here.
		exitIdx = int(st.DstIdx)
		return t.rt.LocalPortTo(idx, exitIdx), false, exitIdx
	}
	e := t.rt.MinHopTo(idx, t.rt.GroupOffset(g, tg))
	return int(e.Port), e.Global, int(e.Exit)
}
