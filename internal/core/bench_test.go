package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// benchView is a cheap, allocation-free View for the routing
// microbenchmarks: flat per-(port, VC) occupancy and claimability arrays
// at paper scale, so the benchmarks measure the decision path instead of
// map lookups.
type benchView struct {
	p       *topology.P
	occ     []int
	blocked []bool
	cap     int
}

func newBenchView(p *topology.P) *benchView {
	n := p.Ports * 16
	return &benchView{p: p, occ: make([]int, n), blocked: make([]bool, n), cap: 32}
}

func (b *benchView) at(port, vc int) int           { return port*16 + vc }
func (b *benchView) CanClaim(port, vc, _ int) bool { return !b.blocked[b.at(port, vc)] }
func (b *benchView) CanStart(port, vc, size int) bool {
	return b.cap-b.occ[b.at(port, vc)] >= size
}
func (b *benchView) Occupancy(port, vc int) int { return b.occ[b.at(port, vc)] }
func (b *benchView) Capacity(int, int) int      { return b.cap }
func (b *benchView) MinState(port, vc, size int) (int, bool, bool) {
	return b.Occupancy(port, vc), b.CanClaim(port, vc, size), b.CanStart(port, vc, size)
}
func (b *benchView) OccClaim(port, vc, size int) (int, bool) {
	return b.Occupancy(port, vc), b.CanClaim(port, vc, size)
}
func (b *benchView) GlobalCongested(int) bool { return false }
func (b *benchView) CurrentQueue() (int, int) { return 24, 32 }
func (b *benchView) HeadFullyArrived() bool   { return true }
func (b *benchView) Faulty() bool             { return false }
func (b *benchView) LinkDown(int) bool        { return false }
func (b *benchView) RouteDown(int, int) bool  { return false }
func (b *benchView) LocalDown(int, int) bool  { return false }
func (b *benchView) PortDead(int) bool        { return false }

// blockOutput makes (port, all VCs) unclaimable and congested, arming the
// misrouting trigger against it.
func (b *benchView) blockOutput(port int) {
	for vc := 0; vc < 16; vc++ {
		b.blocked[b.at(port, vc)] = true
		b.occ[b.at(port, vc)] = b.cap
	}
}

// BenchmarkRouteHot measures the engine's per-cycle routing cost for every
// mechanism at paper scale (h=8): one plan build per head, then the
// per-retry replay of a blocked head whose minimal output is congested —
// the dominant evaluation at saturation. Fixed seeds; allocation counts
// are part of the regression surface (the replay must stay at 0 allocs/op).
func BenchmarkRouteHot(b *testing.B) {
	p := topology.MustNew(8)
	for spec := Minimal; spec <= OFAR; spec++ {
		b.Run(spec.String(), func(b *testing.B) {
			tab, err := NewTables(spec, Config{Topo: p, Threshold: 0.45, RemoteCandidates: 2})
			if err != nil {
				b.Fatal(err)
			}
			alg := tab.NewAlgorithm()
			v := newBenchView(p)
			r := rng.New(1, 1)
			// An inter-group packet at its source router, minimal output
			// blocked: the trigger evaluates the full candidate geometry.
			var st PacketState
			st.Init(p, 0, p.Nodes-1)
			router := int(st.SrcRouter)
			minPort, _, _ := minimalNext(p, &st, router)
			v.blockOutput(minPort)
			var plan Plan
			alg.BuildPlan(v, &st, router, 8, r, &plan)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = alg.RoutePlanned(v, &plan, 8, r)
			}
		})
	}
}

// BenchmarkBuildPlan measures the one-time plan construction per head.
func BenchmarkBuildPlan(b *testing.B) {
	p := topology.MustNew(8)
	for spec := Minimal; spec <= OFAR; spec++ {
		b.Run(spec.String(), func(b *testing.B) {
			tab, err := NewTables(spec, Config{Topo: p, Threshold: 0.45, RemoteCandidates: 2})
			if err != nil {
				b.Fatal(err)
			}
			alg := tab.NewAlgorithm()
			v := newBenchView(p)
			r := rng.New(1, 1)
			var st PacketState
			st.Init(p, 0, p.Nodes-1)
			st.InjDecided = true // keep Valiant/PB from re-drawing per build
			router := int(st.SrcRouter)
			var plan Plan
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alg.BuildPlan(v, &st, router, 8, r, &plan)
			}
		})
	}
}
