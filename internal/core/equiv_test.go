package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// TestTablesMatchPairRules pins the precomputed candidate tables to the
// pair checkers they replace, exhaustively for h=2..8: pairOK against
// AllowedHops, and the per-(idx, exit) detour lists against a direct
// enumeration with the rule applied.
func TestTablesMatchPairRules(t *testing.T) {
	for h := 2; h <= 8; h++ {
		p := topology.MustNew(h)
		rules := []struct {
			spec Spec
			pair restrictedPairChecker
		}{
			{RLM, NewParityTable()},
			{RLMSignOnly, NewSignOnlyTable()},
			{OLM, nil},
		}
		for _, rule := range rules {
			tab, err := NewTables(rule.spec, Config{Topo: p})
			if err != nil {
				t.Fatal(err)
			}
			rpg := p.RoutersPerGroup
			for i := 0; i < rpg; i++ {
				for k := 0; k < rpg; k++ {
					if k == i {
						continue
					}
					for j := 0; j < rpg; j++ {
						if j == k {
							continue
						}
						want := rule.pair == nil || rule.pair.AllowedHops(i, k, j)
						if got := tab.pairAllowed(i, k, j); got != want {
							t.Fatalf("h=%d %v pairAllowed(%d,%d,%d) = %v, want %v",
								h, rule.spec, i, k, j, got, want)
						}
					}
				}
			}
			for idx := 0; idx < rpg; idx++ {
				for exit := 0; exit < rpg; exit++ {
					if idx == exit {
						continue
					}
					var want []localCand
					for k := 0; k < rpg; k++ {
						if k == idx || k == exit {
							continue
						}
						if rule.pair != nil && !rule.pair.AllowedHops(idx, k, exit) {
							continue
						}
						want = append(want, localCand{k: int16(k), port: int16(p.LocalPort(idx, k))})
					}
					got := tab.localCands[idx*rpg+exit]
					if len(got) != len(want) {
						t.Fatalf("h=%d %v localCands(%d,%d): %d entries, want %d",
							h, rule.spec, idx, exit, len(got), len(want))
					}
					for n := range got {
						if got[n] != want[n] {
							t.Fatalf("h=%d %v localCands(%d,%d)[%d] = %+v, want %+v",
								h, rule.spec, idx, exit, n, got[n], want[n])
						}
					}
				}
			}
		}
	}
}

// TestMinimalHopMatchesRecompute pins the table-driven minimal hop to the
// recomputing minimalNext across every (router, destination, Valiant)
// combination for h=2..5 and a sample for larger h.
func TestMinimalHopMatchesRecompute(t *testing.T) {
	for h := 2; h <= 8; h++ {
		p := topology.MustNew(h)
		tab, err := NewTables(Minimal, Config{Topo: p})
		if err != nil {
			t.Fatal(err)
		}
		step := 1
		if h > 5 {
			step = 7 // sample: full cross-product is O(routers²·groups)
		}
		r := rng.New(uint64(h), 99)
		for router := 0; router < p.Routers; router += step {
			for dst := 0; dst < p.Routers; dst += step {
				if dst == router {
					continue
				}
				var st PacketState
				st.Init(p, p.NodeID(router, 0), p.NodeID(dst, 0))
				// Random in-transit shapes: sometimes at a transit router
				// with a pending Valiant group.
				if r.Intn(2) == 0 {
					vg := r.Intn(p.Groups)
					if vg != p.GroupOf(router) && vg != int(st.DstGroup) {
						st.ValiantGroup = int32(vg)
					}
				}
				st.CurGroup = int32(p.GroupOf(router))
				wantPort, wantGlobal, wantExit := minimalNext(p, &st, router)
				gotPort, gotGlobal, gotExit := tab.minimalHop(&st, p.IndexInGroup(router), p.GroupOf(router))
				if gotPort != wantPort || gotGlobal != wantGlobal || gotExit != wantExit {
					t.Fatalf("h=%d router %d dst %d valiant %d: minimalHop = (%d,%v,%d), minimalNext = (%d,%v,%d)",
						h, router, dst, st.ValiantGroup, gotPort, gotGlobal, gotExit, wantPort, wantGlobal, wantExit)
				}
			}
		}
	}
}

// perturb randomizes the dynamic view state (occupancy, claimability) the
// trigger evaluates, leaving fault state alone.
func perturb(v *fakeView, p *topology.P, r *rng.PCG) {
	for k := range v.blocked {
		delete(v.blocked, k)
	}
	for k := range v.occupancy {
		delete(v.occupancy, k)
	}
	for n := 0; n < 8; n++ {
		port := r.Intn(p.Ports)
		vc := r.Intn(6)
		if r.Intn(2) == 0 {
			v.blocked[[2]int{port, vc}] = true
		}
		v.occupancy[[2]int{port, vc}] = r.Intn(40)
	}
	for k := 0; k < p.ChannelsPerGrp; k++ {
		delete(v.congested, k)
		if r.Intn(4) == 0 {
			v.congested[k] = true
		}
	}
	v.queueOcc = r.Intn(33)
	v.queueCap = 32
}

// TestPlanRouteEquivalence is the table-vs-recompute property test: for
// every mechanism, h=2..8, fault-free and degraded, it drives packets
// through randomized congestion and asserts at every evaluation that the
// engine's cached-plan path (BuildPlan once, RoutePlanned replayed across
// retries) produces exactly the decisions — and consumes exactly the RNG
// stream — of a fresh full evaluation, while CommitHop keeps the two
// packet states identical.
func TestPlanRouteEquivalence(t *testing.T) {
	specs := []Spec{Minimal, Valiant, PB, PAR62, RLM, OLM, RLMSignOnly, OFAR}
	for h := 2; h <= 8; h++ {
		p := topology.MustNew(h)
		trials := 60
		if h > 4 {
			trials = 12
		}
		for _, faulted := range []bool{false, true} {
			var faults *topology.FaultSet
			if faulted {
				faults = topology.NewFaultSet(p)
				if err := topology.RandomFaults(faults, 0.15, 0.05, uint64(37+h)); err != nil {
					t.Fatal(err)
				}
			}
			for _, spec := range specs {
				tab, err := NewTables(spec, Config{Topo: p, Threshold: 0.45, RemoteCandidates: 2})
				if err != nil {
					t.Fatal(err)
				}
				fresh := tab.NewAlgorithm()  // recomputes every evaluation
				cached := tab.NewAlgorithm() // builds once, replays
				v := newFakeView(p)
				v.faults = faults
				drive := rng.New(uint64(1000*h)+uint64(spec), 5)
				for trial := 0; trial < trials; trial++ {
					src := drive.Intn(p.Routers)
					dst := drive.Intn(p.Routers)
					if src == dst {
						continue
					}
					var stA, stB PacketState
					stA.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
					stB = stA
					router := src
					rA := rng.New(uint64(trial), uint64(spec)*2+1)
					rB := *rA
					for hop := 0; hop < 16 && int32(router) != stA.DstRouter; hop++ {
						v.router = router
						perturb(v, p, drive)
						var plan Plan
						cached.BuildPlan(v, &stB, router, 8, &rB, &plan)
						// Several retries against shifting congestion: the
						// plan must keep matching full re-evaluation.
						var decA, decB Decision
						for retry := 0; ; retry++ {
							decA = fresh.Route(v, &stA, router, 8, rA)
							decB = cached.RoutePlanned(v, &plan, 8, &rB)
							if decA != decB {
								t.Fatalf("h=%d %v faulted=%v trial %d hop %d retry %d:\n  fresh : %+v\n  cached: %+v",
									h, spec, faulted, trial, hop, retry, decA, decB)
							}
							if *rA != rB {
								t.Fatalf("h=%d %v faulted=%v trial %d hop %d retry %d: RNG streams diverged",
									h, spec, faulted, trial, hop, retry)
							}
							if stA != stB {
								t.Fatalf("h=%d %v faulted=%v trial %d: packet states diverged:\n  %+v\n  %+v",
									h, spec, faulted, trial, stA, stB)
							}
							if !decA.Wait || retry >= 2 {
								break
							}
							perturb(v, p, drive)
						}
						if decA.Wait || decA.Drop {
							break
						}
						next, _ := p.LinkTarget(router, decA.Port)
						CommitHop(p, &stA, router, decA)
						CommitHop(p, &stB, router, decA)
						router = next
					}
				}
			}
		}
	}
}
