package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// deadChannel fails the global channel between groups a and b.
func deadChannel(f *topology.FaultSet, a, b int) {
	p := f.Topology()
	idx, port := p.GlobalPortOfChannel(p.ChannelToGroup(a, b))
	f.SetLink(p.RouterID(a, idx), port, true)
}

// interState builds a packet from router 0 (group 0) to the first router
// of group dg.
func interState(p *topology.P, dg int) PacketState {
	var st PacketState
	st.Init(p, p.NodeID(0, 0), p.NodeID(p.RouterID(dg, 0), 0))
	return st
}

// TestObliviousDropsOnDeadRoute: Minimal (and a committed Valiant) cannot
// adapt in transit, so a dead route means an immediate drop — anywhere in
// the group, not just at the channel owner.
func TestObliviousDropsOnDeadRoute(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, Minimal, p)
	v := newFakeView(p)
	v.faults = topology.NewFaultSet(p)
	deadChannel(v.faults, 0, 3)
	r := rng.New(1, 1)

	st := interState(p, 3)
	dec := alg.Route(v, &st, 0, 8, r)
	if !dec.Drop {
		t.Fatalf("Minimal toward a dead channel: got %+v, want Drop", dec)
	}
	// A live destination group routes normally.
	st = interState(p, 4)
	dec = alg.Route(v, &st, 0, 8, r)
	if dec.Drop || dec.Wait {
		t.Fatalf("Minimal toward a live channel: got %+v", dec)
	}
	// A dead local leg drops too: the direct local link to the in-group
	// destination router.
	st = PacketState{}
	st.Init(p, p.NodeID(0, 0), p.NodeID(3, 0))
	v.faults.SetLink(0, p.LocalPort(0, 3), true)
	dec = alg.Route(v, &st, 0, 8, r)
	if !dec.Drop {
		t.Fatalf("Minimal over a dead local link: got %+v, want Drop", dec)
	}
}

// TestValiantAvoidsDeadDetours: the injection-time intermediate group draw
// skips groups with a dead leg, so Valiant keeps near-full delivery on
// degraded networks.
func TestValiantAvoidsDeadDetours(t *testing.T) {
	p := topology.MustNew(2)
	v := newFakeView(p)
	v.faults = topology.NewFaultSet(p)
	// Kill several of group 0's channels and some second legs.
	deadChannel(v.faults, 0, 1)
	deadChannel(v.faults, 0, 2)
	deadChannel(v.faults, 2, 8)
	deadChannel(v.faults, 4, 8)
	alg := mustAlg(t, Valiant, p)
	r := rng.New(5, 5)
	for trial := 0; trial < 200; trial++ {
		st := interState(p, 8)
		alg.Route(v, &st, 0, 8, r)
		vg := int(st.ValiantGroup)
		if vg < 0 {
			t.Fatal("Valiant committed no intermediate group")
		}
		if v.faults.RouteDown(0, vg) || v.faults.RouteDown(vg, 8) {
			t.Fatalf("Valiant picked group %d with a dead leg", vg)
		}
	}
}

// TestAdaptiveMisroutesAroundDeadChannel: at the owner of a dead channel,
// the misrouting trigger arms immediately (the route is gone, not
// congested) and only live detours are offered.
func TestAdaptiveMisroutesAroundDeadChannel(t *testing.T) {
	p := topology.MustNew(2)
	for _, spec := range []Spec{PAR62, RLM, OLM} {
		alg := mustAlg(t, spec, p)
		v := newFakeView(p)
		v.faults = topology.NewFaultSet(p)
		// Destination group 1: channel 0 of group 0, owned by router 0.
		deadChannel(v.faults, 0, 1)
		// Kill a second leg so one candidate group is also filtered.
		deadChannel(v.faults, 3, 1)
		r := rng.New(9, 9)
		seen := map[int]bool{}
		for trial := 0; trial < 100; trial++ {
			st := interState(p, 1)
			dec := alg.Route(v, &st, 0, 8, r)
			if dec.Wait || dec.Drop {
				t.Fatalf("%v at dead-channel owner: got %+v, want a misroute", spec, dec)
			}
			if dec.Kind != KindGlobalMis {
				t.Fatalf("%v: hop kind %v, want a Valiant commitment", spec, dec.Kind)
			}
			if v.faults.RouteDown(0, dec.NewValiant) || v.faults.RouteDown(dec.NewValiant, 1) {
				t.Fatalf("%v committed to group %d with a dead leg", spec, dec.NewValiant)
			}
			seen[dec.NewValiant] = true
		}
		if len(seen) < 2 {
			t.Fatalf("%v always picked the same detour group: %v", spec, seen)
		}
	}
}

// TestAdaptiveDropsWhenNoDetourSurvives: h=1 has exactly one alternative
// group per pair; killing both the direct channel and the detour's second
// leg leaves nothing, and the packet must drop rather than wait forever.
func TestAdaptiveDropsWhenNoDetourSurvives(t *testing.T) {
	p := topology.MustNew(1) // 3 groups
	for _, spec := range []Spec{PAR62, RLM, OLM} {
		alg := mustAlg(t, spec, p)
		v := newFakeView(p)
		v.faults = topology.NewFaultSet(p)
		deadChannel(v.faults, 0, 1) // direct
		deadChannel(v.faults, 2, 1) // via group 2
		r := rng.New(3, 3)
		st := interState(p, 1)
		// Evaluate at the channel owner.
		idx, _ := p.GlobalPortOfChannel(p.ChannelToGroup(0, 1))
		router := p.RouterID(0, idx)
		v.router = router
		st.SrcRouter = int32(router)
		dec := alg.Route(v, &st, router, 8, r)
		if !dec.Drop {
			t.Fatalf("%v with no surviving detour: got %+v, want Drop", spec, dec)
		}
	}
}

// TestForcedHopDeadDrops: the forced exit hop after a local misroute has
// no adaptivity; if its link dies the packet drops.
func TestForcedHopDeadDrops(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, RLM, p)
	v := newFakeView(p)
	v.faults = topology.NewFaultSet(p)
	v.router = 1
	v.faults.SetLink(1, p.LocalPort(1, 3), true)
	var st PacketState
	st.Init(p, p.NodeID(2, 0), p.NodeID(3, 0))
	st.PendingLocal = 3
	dec := alg.Route(v, &st, 1, 8, rng.New(1, 1))
	if !dec.Drop {
		t.Fatalf("forced hop over a dead link: got %+v, want Drop", dec)
	}
}

// TestLocalMisrouteSkipsDeadDetours: in the destination group with the
// direct local link dead, adaptive mechanisms detour i->k->exit only
// through fully live pairs.
func TestLocalMisrouteSkipsDeadDetours(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, OLM, p)
	v := newFakeView(p)
	v.faults = topology.NewFaultSet(p)
	// Packet at router 0, destination router 3, same group. Of the two
	// possible detours (via 1 or via 2), only the one via 1 stays fully
	// alive.
	v.faults.SetLink(0, p.LocalPort(0, 3), true) // direct leg dead
	v.faults.SetLink(0, p.LocalPort(0, 2), true) // detour via 2: first hop dead
	var st PacketState
	st.Init(p, p.NodeID(0, 0), p.NodeID(3, 0))
	r := rng.New(2, 2)
	dec := alg.Route(v, &st, 0, 8, r)
	if dec.Wait || dec.Drop {
		t.Fatalf("OLM with one live detour: got %+v", dec)
	}
	if dec.Kind != KindLocalMis || p.LocalPortTarget(0, dec.Port) != 1 {
		t.Fatalf("OLM picked %+v, want the only live detour via router 1", dec)
	}
	// Kill the surviving detour's exit leg: nothing survives, so drop.
	v.faults.SetLink(1, p.LocalPort(1, 3), true)
	dec = alg.Route(v, &st, 0, 8, r)
	if !dec.Drop {
		t.Fatalf("OLM with no live detour: got %+v, want Drop", dec)
	}
}

// TestOFARRingFallback: with its adaptive routes dead, OFAR rides the
// escape ring while it survives and drops once the ring edge is dead too.
func TestOFARRingFallback(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, OFAR, p)
	v := newFakeView(p)
	v.faults = topology.NewFaultSet(p)
	// Destination group 5: kill the direct channel and every detour's
	// second leg, so the whole adaptive network is dead for this packet.
	deadChannel(v.faults, 0, 5)
	for tg := 0; tg < p.Groups; tg++ {
		if tg != 0 && tg != 5 {
			deadChannel(v.faults, tg, 5)
		}
	}
	// Evaluate at the owner of the dead direct channel; its ring edge (a
	// descending local hop — the owner is not router index 0) is alive.
	idx, _ := p.GlobalPortOfChannel(p.ChannelToGroup(0, 5))
	router := p.RouterID(0, idx)
	if idx == 0 {
		t.Fatal("test assumes a non-ring-crossing owner")
	}
	v.router = router
	r := rng.New(4, 4)

	st := interState(p, 5)
	st.SrcRouter = int32(router)
	dec := alg.Route(v, &st, router, 8, r)
	if dec.Wait || dec.Drop || dec.Kind != KindEscape {
		t.Fatalf("OFAR with dead adaptive routes: got %+v, want an escape hop", dec)
	}
	// Sever the ring edge as well: now nothing survives.
	_, ringPort := RingNext(p, router)
	v.faults.SetLink(router, ringPort, true)
	dec = alg.Route(v, &st, router, 8, r)
	if !dec.Drop {
		t.Fatalf("OFAR with dead routes and severed ring: got %+v, want Drop", dec)
	}
}
