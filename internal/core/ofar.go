// ofar.go implements OFAR (On-the-Fly Adaptive Routing, García et al.
// ICPP 2012), the prior mechanism the paper positions RLM and OLM against
// (Section II): fully adaptive local+global misrouting whose deadlock
// avoidance relies not on virtual-channel ordering but on an escape
// subnetwork — a Hamiltonian ring across the whole machine regulated by
// bubble flow control.
//
// The ring is physical: inside every group it descends the router indices
// 2h-1, 2h-2, …, 0, and router 0 crosses to the next group through global
// channel 0, arriving at that group's router 2h-1 (the owner of the paired
// channel). One local VC (index 2) and one global VC (index 1) are
// reserved for the ring; adaptive traffic uses the remaining 2/1 VCs, so
// OFAR fits the same 3/2 budget. A packet enters the ring only when two
// packets' worth of space is free downstream (the bubble), and keeps
// moving with one packet's worth — the classic bubble argument makes the
// ring deadlock free, and every blocked adaptive packet can always fall
// back to it. Whole-packet space reasoning requires virtual cut-through,
// which is why the paper notes OFAR "does not work with Wormhole".
//
// OFAR's documented weakness — the low-capacity escape ring congests and
// packets ride it for long stretches — emerges here as well; it is the
// motivation for RLM and OLM and is measured by the ablation benchmarks.
package core

import (
	"repro/internal/rng"
	"repro/internal/topology"
)

// Reserved escape-ring VC indices (within the 3/2 budget).
const (
	ofarEscapeLocalVC  = 2
	ofarEscapeGlobalVC = 1
)

// ofar wraps the shared adaptive machinery, restricted to the two
// non-escape VCs, and adds the escape ring fallback.
type ofar struct {
	adaptive
}

func newOFAR(tab *Tables) *ofar {
	o := &ofar{adaptive: *newAdaptive(OFAR, tab)}
	return o
}

func (o *ofar) Name() string      { return OFAR.String() }
func (o *ofar) Spec() Spec        { return OFAR }
func (o *ofar) LocalVCs() int     { return 3 }
func (o *ofar) GlobalVCs() int    { return 2 }
func (o *ofar) RequiresVCT() bool { return true }

// Route implements Algorithm as one-shot build-plus-replay: the adaptive
// network first (minimal, then the misrouting trigger), then the escape
// ring under bubble flow control; see BuildPlan and RoutePlanned in
// plan.go for the procedure.
func (o *ofar) Route(v View, st *PacketState, router, size int, r *rng.PCG) Decision {
	var p Plan
	o.BuildPlan(v, st, router, size, r, &p)
	return o.RoutePlanned(v, &p, size, r)
}

// RingNext returns the successor of router on the escape Hamiltonian ring
// and the output port reaching it: descending router indices within a
// group, then global channel 0 (owned by router index 0) into the next
// group, which is entered at router index 2h-1.
func RingNext(p *topology.P, router int) (next, port int) {
	idx := p.IndexInGroup(router)
	if idx > 0 {
		return router - 1, p.LocalPort(idx, idx-1)
	}
	port = p.GlobalPortBase() // channel 0 of this group
	next, _ = p.GlobalLink(router, port)
	return next, port
}
