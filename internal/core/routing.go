// Package core implements the routing mechanisms studied in García et al.,
// "Efficient Routing Mechanisms for Dragonfly Networks" (ICPP 2013): the
// baselines Minimal, Valiant and Piggybacking, the naïve PAR-6/2, and the
// paper's two contributions, Restricted Local Misrouting (RLM) and
// Opportunistic Local Misrouting (OLM).
//
// The package is engine-agnostic: a routing Algorithm sees the router it
// runs on through the View interface (downstream buffer occupancies, claim
// feasibility, Piggybacking congestion bits) and records per-packet
// progress in a PacketState. One Algorithm instance is created per router
// so that implementations may keep scratch state without locking.
package core

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/topology"
)

// Spec identifies a routing mechanism.
type Spec int

// The mechanisms evaluated in the paper, plus the sign-only RLM ablation
// and OFAR, the prior local+global misrouting scheme of Section II.
const (
	Minimal Spec = iota
	Valiant
	PB
	PAR62
	RLM
	OLM
	RLMSignOnly // ablation: RLM with the unbalanced sign-only restriction
	OFAR        // escape-ring predecessor (García et al. ICPP 2012)
)

// String returns the paper's name for the mechanism.
func (s Spec) String() string {
	switch s {
	case Minimal:
		return "Minimal"
	case Valiant:
		return "Valiant"
	case PB:
		return "PiggyBacking"
	case PAR62:
		return "PAR-6/2"
	case RLM:
		return "RLM"
	case OLM:
		return "OLM"
	case RLMSignOnly:
		return "RLM-signonly"
	case OFAR:
		return "OFAR"
	}
	return fmt.Sprintf("Spec(%d)", int(s))
}

// specByName maps mechanism names back to their Spec. Built once at
// package init: ParseSpec sits on the campaign and CLI parse paths, where
// the old per-call loop rebuilt every name string each time.
var specByName = func() map[string]Spec {
	m := make(map[string]Spec, int(OFAR)+1)
	for s := Minimal; s <= OFAR; s++ {
		m[s.String()] = s
	}
	return m
}()

// ParseSpec converts a mechanism name (as printed by String, case
// sensitive) back to its Spec.
func ParseSpec(name string) (Spec, error) {
	if s, ok := specByName[name]; ok {
		return s, nil
	}
	return 0, fmt.Errorf("core: unknown mechanism %q", name)
}

// Config carries the routing parameters shared by all mechanisms.
type Config struct {
	Topo *topology.P

	// Threshold is the misrouting trigger: a non-minimal output is
	// eligible when its downstream occupancy is below Threshold times
	// the occupancy of the minimal output (paper Section III; 45% is
	// the paper's choice for RLM/VCT).
	Threshold float64

	// PBThreshold is the occupancy fraction above which Piggybacking
	// marks a channel congested.
	PBThreshold float64

	// RemoteCandidates is how many remote global channels (reached
	// through a local hop, enabling the l-l-g PAR shape) are sampled as
	// global-misrouting candidates in addition to the router's own
	// global ports. Negative disables remote sampling entirely.
	RemoteCandidates int
}

// View is the window a routing algorithm has onto its router. All methods
// refer to output ports of the current router.
type View interface {
	// CanClaim reports whether a packet of size phits could start
	// crossing output port/vc right now (free output VC and the
	// flow-control start condition satisfied).
	CanClaim(port, vc, size int) bool
	// CanStart reports whether the downstream credits alone would allow
	// a packet of size phits to start on port/vc, ignoring whether the
	// output VC is momentarily busy with another packet. The misrouting
	// trigger is credit-based (paper Section III): a transiently busy
	// but uncongested minimal output makes the packet wait, not
	// misroute.
	CanStart(port, vc, size int) bool
	// Occupancy returns the downstream buffer occupancy, in phits, of
	// output port/vc (capacity minus credits).
	Occupancy(port, vc int) int
	// Capacity returns the downstream buffer capacity, in phits. It must
	// be constant for the lifetime of the view and identical across the
	// VCs of one port (true of any real router; the adaptive mechanisms
	// cache per-port occupancy-fraction tables keyed on it).
	Capacity(port, vc int) int
	// MinState bundles the minimal-output queries of one trigger
	// evaluation — Occupancy, CanClaim and CanStart of (port, vc) — into
	// a single call, so the hot path pays one interface dispatch instead
	// of three. The three results must equal the individual queries'.
	MinState(port, vc, size int) (occ int, claim, start bool)
	// OccClaim bundles Occupancy and CanClaim for one misroute-candidate
	// eligibility check.
	OccClaim(port, vc, size int) (occ int, claim bool)
	// GlobalCongested reports the Piggybacking congestion bit of global
	// channel k of this router's group, as published last cycle.
	GlobalCongested(k int) bool
	// CurrentQueue returns occupancy and capacity, in phits, of the
	// buffer holding the packet being routed. Piggybacking uses the
	// injection backlog as its congestion signal for intra-group
	// traffic, whose bottleneck (the direct local link) never shows up
	// in downstream credits.
	CurrentQueue() (occupancy, capacity int)
	// HeadFullyArrived reports whether every phit of the packet being
	// routed is buffered at this router. OFAR's escape ring moves
	// packets store-and-forward style — the bubble argument reasons
	// about whole packets in buffers, and a strung-out packet on a ring
	// could catch its own tail.
	HeadFullyArrived() bool

	// Faulty reports whether the network has (or may develop) failed
	// links. When false the remaining fault queries always answer false
	// and algorithms skip all fault logic, keeping the fault-free hot
	// path — and its RNG draw sequence — untouched.
	Faulty() bool
	// LinkDown reports whether this router's output port drives a failed
	// link.
	LinkDown(port int) bool
	// RouteDown reports whether the single global channel from group g
	// to group tg has failed. This is link-state knowledge: real
	// deployments broadcast failed links and recompute routing tables,
	// so mechanisms may steer around failures anywhere in the machine.
	RouteDown(g, tg int) bool
	// LocalDown reports whether the local link between router indices i
	// and j of this router's group has failed.
	LocalDown(i, j int) bool
	// PortDead reports whether the far-end router of this router's
	// output port has failed entirely (a whole-router fault, not just a
	// severed cable). Link-level faults never set it; OFAR consults it
	// to shed escape-ring traffic at a dead neighbor — a ring waiting on
	// a dead router can never circulate again, so parking packets there
	// would wedge the whole escape subnetwork.
	PortDead(port int) bool
}

// Kind labels how a hop was chosen; the engine uses it for statistics and
// state commits.
type Kind uint8

// Hop kinds.
const (
	KindMin       Kind = iota // minimal (or forced) hop
	KindLocalMis              // non-minimal local hop
	KindGlobalMis             // hop committing a Valiant intermediate group
	KindEscape                // OFAR escape-ring hop under bubble flow control
)

// Decision is the outcome of one routing evaluation.
type Decision struct {
	Wait bool // nothing claimable this cycle; retry next cycle
	// Drop reports that link failures left the packet without any
	// surviving route from this router: the engine discards it and
	// accounts a fault drop instead of letting it wedge the network.
	Drop bool
	Port int // output port
	VC   int // output virtual channel
	Kind Kind

	// LocalFinal is, for KindLocalMis, the in-group router index the
	// packet is forced to visit right after the misroute hop.
	LocalFinal int
	// NewValiant is, for KindGlobalMis, the committed intermediate
	// group; -1 otherwise.
	NewValiant int
}

var (
	waitDecision = Decision{Wait: true, NewValiant: -1, LocalFinal: -1}
	dropDecision = Decision{Drop: true, NewValiant: -1, LocalFinal: -1}
)

// PacketState is the per-packet routing state threaded through the network.
type PacketState struct {
	Src, Dst  int32 // node ids
	SrcRouter int32
	DstRouter int32
	DstGroup  int32
	DstIdx    int32 // destination router's index within its group
	DstEject  int32 // ejection output port of Dst at DstRouter

	CurGroup     int32 // group of the router currently holding the head
	ValiantGroup int32 // committed intermediate group; -1 when none/done
	PendingLocal int32 // in-group router index the next hop must reach; -1
	PrevRouter   int32 // previous router id when the last hop was local; -1

	// Hop counters are int16: packets escaping onto OFAR's ring can
	// accumulate far more hops than the adaptive 8-hop budget.
	GlobalHops       int16
	LocalHops        int16
	LocalHopsInGroup int16
	LocalMisCount    int16
	GlobalMisCount   int16
	EscapeHops       int16
	LocalMisInGroup  bool
	OnEscape         bool // currently riding OFAR's escape ring
	InjDecided       bool // PB/Valiant made their injection-time choice
}

// Init fills st for a fresh packet from node src to node dst.
func (st *PacketState) Init(p *topology.P, src, dst int) {
	*st = PacketState{
		Src:          int32(src),
		Dst:          int32(dst),
		SrcRouter:    int32(p.RouterOfNode(src)),
		DstRouter:    int32(p.RouterOfNode(dst)),
		ValiantGroup: -1,
		PendingLocal: -1,
		PrevRouter:   -1,
	}
	st.DstGroup = int32(p.GroupOf(int(st.DstRouter)))
	st.DstIdx = int32(p.IndexInGroup(int(st.DstRouter)))
	st.DstEject = int32(p.EjectPortOfNode(dst))
	st.CurGroup = int32(p.GroupOf(int(st.SrcRouter)))
}

// targetGroup is the group the packet currently steers toward: the Valiant
// intermediate group while one is pending, the destination group otherwise.
func (st *PacketState) targetGroup() int {
	if st.ValiantGroup >= 0 {
		return int(st.ValiantGroup)
	}
	return int(st.DstGroup)
}

// Algorithm routes head packets at one router.
type Algorithm interface {
	// Name returns the mechanism name.
	Name() string
	// Spec returns the mechanism identifier.
	Spec() Spec
	// LocalVCs and GlobalVCs return the virtual-channel counts the
	// mechanism needs on local and global ports.
	LocalVCs() int
	GlobalVCs() int
	// RequiresVCT reports whether the mechanism is only deadlock-free
	// under virtual cut-through flow control (true for OLM).
	RequiresVCT() bool
	// UsesHeadArrival reports whether the decision paths consult
	// View.HeadFullyArrived (true for OFAR's store-and-forward escape
	// ring). Callers that cache view state across retries must refresh
	// the head-arrival bit every evaluation when this is set.
	UsesHeadArrival() bool
	// Route evaluates the head packet of size phits sitting at router.
	// It may be called repeatedly (every cycle) until the returned
	// decision is claimed; it must not mutate st in ways that are not
	// idempotent, except for the injection-time choices guarded by
	// st.InjDecided. Every implementation is BuildPlan followed by
	// RoutePlanned over a throwaway plan; callers that re-evaluate the
	// same head every cycle (the engine) keep the plan and replay it.
	Route(v View, st *PacketState, router, size int, r *rng.PCG) Decision
	// BuildPlan computes the static geometry of the head's decision into
	// p: minimal output, misroute arming, candidate lists with the pair
	// restriction and the current fault view applied, and the
	// injection-time choices (which may draw from r). Valid until the
	// head changes or the fault view is recomputed.
	BuildPlan(v View, st *PacketState, router, size int, r *rng.PCG, p *Plan)
	// RoutePlanned replays a built plan against the current cycle's
	// dynamic state: claimability, the credit-based misrouting trigger
	// and the random candidate draws. It never reads the PacketState.
	RoutePlanned(v View, p *Plan, size int, r *rng.PCG) Decision
}

// New creates a per-router instance of the requested mechanism with its
// own private table set. Callers instantiating many routers should build
// the tables once with NewTables and derive instances via
// Tables.NewAlgorithm instead (the engine does).
func New(spec Spec, cfg Config) (Algorithm, error) {
	t, err := NewTables(spec, cfg)
	if err != nil {
		return nil, err
	}
	return t.NewAlgorithm(), nil
}

// VCsFor returns the local and global VC counts mechanism spec needs,
// without instantiating it.
func VCsFor(spec Spec) (local, global int) {
	if spec == PAR62 {
		return 6, 2
	}
	return 3, 2
}

// CommitHop updates the packet state when the engine claims decision dec at
// router. It must be called exactly once per claimed hop.
func CommitHop(p *topology.P, st *PacketState, router int, dec Decision) {
	g := p.GroupOf(router)
	st.OnEscape = dec.Kind == KindEscape
	if dec.Kind == KindEscape {
		st.EscapeHops++
	}
	switch {
	case p.IsLocalPort(dec.Port):
		to := p.LocalPortTarget(p.IndexInGroup(router), dec.Port)
		st.LocalHops++
		st.LocalHopsInGroup++
		st.PrevRouter = int32(router)
		if st.PendingLocal >= 0 && int(st.PendingLocal) == to {
			st.PendingLocal = -1
		}
		switch dec.Kind {
		case KindLocalMis:
			st.LocalMisCount++
			st.LocalMisInGroup = true
			st.PendingLocal = int32(dec.LocalFinal)
		case KindGlobalMis:
			// Redirect toward a remote channel: commit the
			// intermediate group; the hop itself is local.
			st.ValiantGroup = int32(dec.NewValiant)
			st.GlobalMisCount++
		}
	case p.IsGlobalPort(dec.Port):
		k := p.GlobalChannelOfPort(p.IndexInGroup(router), dec.Port)
		tg := p.TargetGroup(g, k)
		st.GlobalHops++
		st.CurGroup = int32(tg)
		st.LocalHopsInGroup = 0
		st.LocalMisInGroup = false
		st.PrevRouter = -1
		st.PendingLocal = -1
		if dec.Kind == KindGlobalMis {
			st.ValiantGroup = int32(dec.NewValiant)
			st.GlobalMisCount++
		}
		if st.ValiantGroup == int32(tg) {
			st.ValiantGroup = -1 // Valiant phase complete
		}
	default:
		panic(fmt.Sprintf("core: CommitHop on non-link port %d", dec.Port))
	}
}

// minimalNext computes the minimal next hop of st at router: the output
// port, whether it is a global hop, and — for local hops — the in-group
// exit router index the hop heads to. It recomputes from topology
// arithmetic every call; the hot paths use the precomputed
// Tables.minimalHop instead, and TestMinimalHopMatchesRecompute pins the two
// to each other.
func minimalNext(p *topology.P, st *PacketState, router int) (port int, global bool, exitIdx int) {
	idx := p.IndexInGroup(router)
	g := p.GroupOf(router)
	tg := st.targetGroup()
	if g == tg {
		// Same group as the steering target. A pending Valiant group
		// is cleared on arrival, so tg is the destination group here.
		exitIdx = p.IndexInGroup(int(st.DstRouter))
		return p.LocalPort(idx, exitIdx), false, exitIdx
	}
	k := p.ChannelToGroup(g, tg)
	owner, gport := p.GlobalPortOfChannel(k)
	if owner == idx {
		return gport, true, -1
	}
	return p.LocalPort(idx, owner), false, owner
}
