// adaptive.go implements the three in-transit adaptive mechanisms of the
// paper — PAR-6/2, RLM and OLM — on top of one shared decision procedure.
//
// Every cycle the head packet prefers its minimal output; when that output
// cannot be claimed, non-minimal candidates are collected and one is chosen
// uniformly at random among those whose downstream occupancy is below
// threshold × occupancy(minimal output) and that are claimable now (the
// paper's credit-based misrouting trigger). Candidates are:
//
//   - global misrouting — only in the source group, before any global hop,
//     for inter-group packets: the router's own global ports, plus a few
//     sampled remote channels reached through one local hop (yielding the
//     l-l-g shapes of PAR);
//   - local misrouting — only in the intermediate and destination groups
//     (the destination group includes intra-group traffic): a detour to a
//     neighbor k followed by a forced hop to the local exit j.
//
// The decision path is table-driven: minimal hops, detour candidate lists
// (with RLM's parity restriction pre-applied) and pair-rule queries all
// come from the shared core.Tables, and candidates accumulate in a
// preallocated per-router arena. Candidate order and RNG consumption match
// the recomputing implementation exactly, so decisions are bit-identical
// (TestPlanRouteEquivalence holds the two together).
//
// The mechanisms differ in their virtual-channel discipline and in the
// constraint on local misrouting:
//
//	PAR-6/2  i-th local hop in the path class uses lVC_{2·globals+hops-in-group},
//	         globals use gVC_i: strictly ascending, 6/2 VCs, no route
//	         restriction, VCT or WH.
//	RLM      lVC_{globals+1} for every local hop of a group visit, with the
//	         parity-sign pair restriction (Table I): 3/2 VCs, VCT or WH.
//	OLM      ascending escape VCs lVC1<gVC1<lVC2<gVC2<lVC3; local misroute
//	         hops opportunistically reuse lower VCs (source/intermediate:
//	         lVC1; destination: lVC2 or lVC1) so that a strictly ascending
//	         escape path always remains: 3/2 VCs, VCT only.
package core

import "repro/internal/rng"

// maxLocalHopsPerGroup is the per-supernode local hop budget (the longest
// route is l-l-g-l-l-g-l-l).
const maxLocalHopsPerGroup = 2

type adaptive struct {
	cfg  Config
	spec Spec
	tab  *Tables

	cands []Decision // scratch arena, reused across calls (one instance/router)

	// fracs[port] caches float64(occ)/float64(cap) for every legal
	// occupancy of the port's downstream buffer (View.Capacity is constant
	// per port for the life of a view), replacing the division and the
	// Capacity query of the trigger evaluation with one indexed load. The
	// values are computed by the exact division they replace, so the
	// lookups are bit-identical. Built lazily per port; slices are shared
	// across ports of equal capacity via byCap.
	fracs [][]float64
	byCap map[int][]float64
}

func newAdaptive(spec Spec, tab *Tables) *adaptive {
	// The arena's worst case: every own global port, every remote sample,
	// and every local detour of a full candidate list.
	return &adaptive{
		cfg:   tab.cfg,
		spec:  spec,
		tab:   tab,
		cands: make([]Decision, 0, tab.h+tab.cfg.RemoteCandidates+tab.rpg),
		fracs: make([][]float64, tab.cfg.Topo.Ports),
	}
}

// fracAt returns occ normalized to the capacity of (port, vc) through the
// per-port lookup table, building it on first use.
func (a *adaptive) fracAt(v View, port, vc, occ int) float64 {
	t := a.fracs[port]
	if t == nil {
		c := v.Capacity(port, vc)
		if c <= 0 {
			return 0
		}
		if a.byCap == nil {
			a.byCap = make(map[int][]float64, 2)
		}
		t = a.byCap[c]
		if t == nil {
			t = make([]float64, c+1)
			for o := 1; o <= c; o++ {
				t[o] = float64(o) / float64(c)
			}
			a.byCap[c] = t
		}
		a.fracs[port] = t
	}
	if occ >= 0 && occ < len(t) {
		return t[occ]
	}
	// Out-of-range occupancy (possible only for synthetic test views):
	// fall back to the recomputing division.
	if c := v.Capacity(port, vc); c > 0 {
		return float64(occ) / float64(c)
	}
	return 0
}

func (a *adaptive) Name() string { return a.spec.String() }
func (a *adaptive) Spec() Spec   { return a.spec }

func (a *adaptive) LocalVCs() int {
	if a.spec == PAR62 {
		return 6
	}
	return 3
}

func (a *adaptive) GlobalVCs() int        { return 2 }
func (a *adaptive) RequiresVCT() bool     { return a.spec == OLM }
func (a *adaptive) UsesHeadArrival() bool { return a.spec == OFAR }

// localVC returns the VC for a minimal (or forced) local hop.
func (a *adaptive) localVC(st *PacketState) int {
	switch a.spec {
	case PAR62:
		// Strictly ascending: source group lVC1/lVC2, intermediate
		// lVC3/lVC4, destination lVC5/lVC6.
		return 2*int(st.GlobalHops) + int(st.LocalHopsInGroup)
	case OFAR:
		// Two adaptive local VCs; deadlock freedom comes from the
		// escape ring, not VC ordering.
		if st.GlobalHops >= 1 {
			return 1
		}
		return 0
	case OLM:
		// Escape discipline; the only forced hop that must climb above
		// the escape level is the post-misroute hop of intra-group
		// traffic (misroute on lVC1, delivery hop on lVC2).
		if st.PendingLocal >= 0 && st.GlobalHops == 0 && st.CurGroup == st.DstGroup {
			return 1
		}
		return int(st.GlobalHops)
	default: // RLM and variants
		return int(st.GlobalHops)
	}
}

// globalVC returns the VC for the next global hop: gVC_{globals+1}
// (OFAR keeps one adaptive global VC and reserves the other for the ring).
func (a *adaptive) globalVC(st *PacketState) int {
	if a.spec == OFAR {
		return 0
	}
	return int(st.GlobalHops)
}

// misrouteVCs appends the candidate VCs for a local misroute hop in
// preference order.
func (a *adaptive) misrouteVCs(st *PacketState, buf []int) []int {
	switch a.spec {
	case PAR62:
		return append(buf, 2*int(st.GlobalHops)+int(st.LocalHopsInGroup))
	case OFAR:
		return append(buf, a.localVC(st))
	case OLM:
		// Any VC strictly below the escape VC of the *next* mandatory
		// hop keeps an ascending escape available. In the destination
		// group after two global hops that is lVC2 or lVC1 (the
		// paper's Figure 3 route c); everywhere else lVC1.
		if st.CurGroup == st.DstGroup && st.GlobalHops >= 2 {
			return append(buf, 1, 0)
		}
		return append(buf, 0)
	default: // RLM: same VC as every local hop of this group visit
		return append(buf, int(st.GlobalHops))
	}
}

// localMisrouteAllowed reports whether st may take a local misroute in its
// current group: intermediate and destination supernodes only (the paper
// follows OFAR here), one per group visit, and only from the first local
// hop of the visit so that the detour plus the forced exit hop fit the
// two-hop budget.
func (a *adaptive) localMisrouteAllowed(st *PacketState) bool {
	if st.LocalMisInGroup || st.LocalHopsInGroup != 0 {
		return false
	}
	inDst := st.CurGroup == st.DstGroup
	intermediate := st.GlobalHops >= 1 && !inDst
	return inDst || intermediate
}

// globalMisrouteAllowed reports whether st may still commit a Valiant
// intermediate group: in the source group, before any global hop, for
// inter-group packets, at most once, and not while a forced hop is pending.
func (a *adaptive) globalMisrouteAllowed(st *PacketState) bool {
	return st.GlobalHops == 0 &&
		st.ValiantGroup < 0 &&
		st.GlobalMisCount == 0 &&
		st.CurGroup != st.DstGroup &&
		st.PendingLocal < 0
}

// Route implements Algorithm as one-shot build-plus-replay, so the
// recomputing entry point and the engine's cached-plan path share a single
// decision procedure. The misrouting trigger lives in RoutePlanned: a
// candidate is eligible when its normalized downstream occupancy is below
// the threshold percentage of the congestion seen on the minimal route —
// the larger of the minimal output's downstream occupancy and the backlog
// of the queue the packet sits in (a saturated link keeps its downstream
// buffer drained; the wire is the bottleneck, as in ADVL and the ADVG+h
// transit links, so the queue the packet is stuck in carries the signal).
//
// The two misrouting kinds arm differently:
//
//   - local misrouting arms whenever the minimal output cannot be
//     claimed;
//   - global misrouting (committing a Valiant detour that doubles the
//     packet's global-link usage) arms only when the minimal output is
//     credit-congested, mirroring PAR's "divert when the minimal global
//     link is saturated".
//
// A dead minimal route lifts the occupancy limit entirely: the route is
// not congested, it is gone, and recomputed routing tables would not
// offer it at all.
func (a *adaptive) Route(v View, st *PacketState, router, size int, r *rng.PCG) Decision {
	var p Plan
	a.BuildPlan(v, st, router, size, r, &p)
	return a.RoutePlanned(v, &p, size, r)
}

// liveGlobalDetour reports whether some intermediate group the mechanism
// could still commit to has both detour legs alive — mirroring the static
// filters of globalCandidates, so a packet only drops when no candidate
// can ever materialize.
func (a *adaptive) liveGlobalDetour(v View, st *PacketState, idx, g int) bool {
	t := a.tab
	for tg := 0; tg < t.groups; tg++ {
		if tg == g || tg == int(st.DstGroup) {
			continue
		}
		if v.RouteDown(g, tg) || v.RouteDown(tg, int(st.DstGroup)) {
			continue
		}
		owner := t.rt.OwnerOf(t.rt.GroupOffset(g, tg))
		if owner == idx {
			return true // this router's own live channel
		}
		// Remote channels are only reachable through a redirect hop, and
		// only ever sampled when remote candidates are enabled.
		if a.cfg.RemoteCandidates <= 0 || st.LocalHopsInGroup >= maxLocalHopsPerGroup {
			continue
		}
		if v.LocalDown(idx, owner) {
			continue
		}
		if t.pairOK != nil && st.PrevRouter >= 0 {
			prev := t.rt.IndexOf(int(st.PrevRouter))
			if !t.pairAllowed(prev, idx, owner) {
				continue
			}
		}
		return true
	}
	return false
}

// eligible applies the trigger to one output: normalized occupancy below
// the limit and claimable right now.
func (a *adaptive) eligible(v View, port, vc, size int, limit float64) bool {
	occ, claim := v.OccClaim(port, vc, size)
	return a.fracAt(v, port, vc, occ) < limit && claim
}
