// adaptive.go implements the three in-transit adaptive mechanisms of the
// paper — PAR-6/2, RLM and OLM — on top of one shared decision procedure.
//
// Every cycle the head packet prefers its minimal output; when that output
// cannot be claimed, non-minimal candidates are collected and one is chosen
// uniformly at random among those whose downstream occupancy is below
// threshold × occupancy(minimal output) and that are claimable now (the
// paper's credit-based misrouting trigger). Candidates are:
//
//   - global misrouting — only in the source group, before any global hop,
//     for inter-group packets: the router's own global ports, plus a few
//     sampled remote channels reached through one local hop (yielding the
//     l-l-g shapes of PAR);
//   - local misrouting — only in the intermediate and destination groups
//     (the destination group includes intra-group traffic): a detour to a
//     neighbor k followed by a forced hop to the local exit j.
//
// The mechanisms differ in their virtual-channel discipline and in the
// constraint on local misrouting:
//
//	PAR-6/2  i-th local hop in the path class uses lVC_{2·globals+hops-in-group},
//	         globals use gVC_i: strictly ascending, 6/2 VCs, no route
//	         restriction, VCT or WH.
//	RLM      lVC_{globals+1} for every local hop of a group visit, with the
//	         parity-sign pair restriction (Table I): 3/2 VCs, VCT or WH.
//	OLM      ascending escape VCs lVC1<gVC1<lVC2<gVC2<lVC3; local misroute
//	         hops opportunistically reuse lower VCs (source/intermediate:
//	         lVC1; destination: lVC2 or lVC1) so that a strictly ascending
//	         escape path always remains: 3/2 VCs, VCT only.
package core

import (
	"math"

	"repro/internal/rng"
)

// maxLocalHopsPerGroup is the per-supernode local hop budget (the longest
// route is l-l-g-l-l-g-l-l).
const maxLocalHopsPerGroup = 2

// candidate is one claimable non-minimal output under consideration.
type candidate struct {
	dec Decision
}

type adaptive struct {
	cfg  Config
	spec Spec
	pair restrictedPairChecker // RLM/RLMSignOnly; nil otherwise

	cands []candidate // scratch, reused across calls (one instance/router)
}

func newAdaptive(spec Spec, cfg Config, pair restrictedPairChecker) *adaptive {
	return &adaptive{
		cfg:   cfg,
		spec:  spec,
		pair:  pair,
		cands: make([]candidate, 0, 64),
	}
}

func (a *adaptive) Name() string { return a.spec.String() }
func (a *adaptive) Spec() Spec   { return a.spec }

func (a *adaptive) LocalVCs() int {
	if a.spec == PAR62 {
		return 6
	}
	return 3
}

func (a *adaptive) GlobalVCs() int    { return 2 }
func (a *adaptive) RequiresVCT() bool { return a.spec == OLM }

// localVC returns the VC for a minimal (or forced) local hop.
func (a *adaptive) localVC(st *PacketState) int {
	switch a.spec {
	case PAR62:
		// Strictly ascending: source group lVC1/lVC2, intermediate
		// lVC3/lVC4, destination lVC5/lVC6.
		return 2*int(st.GlobalHops) + int(st.LocalHopsInGroup)
	case OFAR:
		// Two adaptive local VCs; deadlock freedom comes from the
		// escape ring, not VC ordering.
		if st.GlobalHops >= 1 {
			return 1
		}
		return 0
	case OLM:
		// Escape discipline; the only forced hop that must climb above
		// the escape level is the post-misroute hop of intra-group
		// traffic (misroute on lVC1, delivery hop on lVC2).
		if st.PendingLocal >= 0 && st.GlobalHops == 0 && st.CurGroup == st.DstGroup {
			return 1
		}
		return int(st.GlobalHops)
	default: // RLM and variants
		return int(st.GlobalHops)
	}
}

// globalVC returns the VC for the next global hop: gVC_{globals+1}
// (OFAR keeps one adaptive global VC and reserves the other for the ring).
func (a *adaptive) globalVC(st *PacketState) int {
	if a.spec == OFAR {
		return 0
	}
	return int(st.GlobalHops)
}

// misrouteVCs appends the candidate VCs for a local misroute hop in
// preference order.
func (a *adaptive) misrouteVCs(st *PacketState, buf []int) []int {
	switch a.spec {
	case PAR62:
		return append(buf, 2*int(st.GlobalHops)+int(st.LocalHopsInGroup))
	case OFAR:
		return append(buf, a.localVC(st))
	case OLM:
		// Any VC strictly below the escape VC of the *next* mandatory
		// hop keeps an ascending escape available. In the destination
		// group after two global hops that is lVC2 or lVC1 (the
		// paper's Figure 3 route c); everywhere else lVC1.
		if st.CurGroup == st.DstGroup && st.GlobalHops >= 2 {
			return append(buf, 1, 0)
		}
		return append(buf, 0)
	default: // RLM: same VC as every local hop of this group visit
		return append(buf, int(st.GlobalHops))
	}
}

// localMisrouteAllowed reports whether st may take a local misroute in its
// current group: intermediate and destination supernodes only (the paper
// follows OFAR here), one per group visit, and only from the first local
// hop of the visit so that the detour plus the forced exit hop fit the
// two-hop budget.
func (a *adaptive) localMisrouteAllowed(st *PacketState) bool {
	if st.LocalMisInGroup || st.LocalHopsInGroup != 0 {
		return false
	}
	inDst := st.CurGroup == st.DstGroup
	intermediate := st.GlobalHops >= 1 && !inDst
	return inDst || intermediate
}

// globalMisrouteAllowed reports whether st may still commit a Valiant
// intermediate group: in the source group, before any global hop, for
// inter-group packets, at most once, and not while a forced hop is pending.
func (a *adaptive) globalMisrouteAllowed(st *PacketState) bool {
	return st.GlobalHops == 0 &&
		st.ValiantGroup < 0 &&
		st.GlobalMisCount == 0 &&
		st.CurGroup != st.DstGroup &&
		st.PendingLocal < 0
}

// Route implements Algorithm.
func (a *adaptive) Route(v View, st *PacketState, router, size int, r *rng.PCG) Decision {
	p := a.cfg.Topo
	idx := p.IndexInGroup(router)
	faulty := v.Faulty()

	// A forced hop after a local misroute: no adaptivity.
	if st.PendingLocal >= 0 {
		port := p.LocalPort(idx, int(st.PendingLocal))
		if faulty && v.LinkDown(port) {
			return dropDecision // a forced hop cannot re-route
		}
		vc := a.localVC(st)
		if v.CanClaim(port, vc, size) {
			return Decision{Port: port, VC: vc, Kind: KindMin, NewValiant: -1, LocalFinal: -1}
		}
		return waitDecision
	}

	minPort, minGlobal, exitIdx := minimalNext(p, st, router)
	minVC := a.localVC(st)
	if minGlobal {
		minVC = a.globalVC(st)
	}

	// Fault state of the minimal route. deadRoute means the group's only
	// channel toward the target group is gone — no local detour can bring
	// it back; deadLocal means just the next local leg is gone, which a
	// local misroute can bypass.
	deadRoute, deadLocal := false, false
	if faulty {
		g := p.GroupOf(router)
		if tg := st.targetGroup(); g != tg && v.RouteDown(g, tg) {
			deadRoute = true
		} else if v.LinkDown(minPort) {
			if minGlobal {
				deadRoute = true // a dead global minPort is the channel itself
			} else {
				deadLocal = true
			}
		}
	}
	deadMin := deadRoute || deadLocal

	if !deadMin && v.CanClaim(minPort, minVC, size) {
		return Decision{Port: minPort, VC: minVC, Kind: KindMin, NewValiant: -1, LocalFinal: -1}
	}

	// The minimal output is not available this cycle: evaluate the
	// misrouting trigger. A candidate is eligible when its normalized
	// downstream occupancy is below the threshold percentage of the
	// congestion seen on the minimal route. That congestion is the
	// larger of the minimal output's downstream occupancy and the
	// backlog of the queue the packet sits in: a saturated link keeps
	// its downstream buffer drained (the wire is the bottleneck, as in
	// ADVL and the ADVG+h transit links), so the queue the packet is
	// stuck in carries the signal.
	//
	// The two misrouting kinds arm differently:
	//
	//   - local misrouting arms whenever the minimal output cannot be
	//     claimed;
	//   - global misrouting (committing a Valiant detour that doubles
	//     the packet's global-link usage) arms only when the minimal
	//     output is credit-congested, mirroring PAR's "divert when the
	//     minimal global link is saturated".
	minFrac := occupancyFrac(v, minPort, minVC)
	if qOcc, qCap := v.CurrentQueue(); qCap > 0 {
		if f := float64(qOcc) / float64(qCap); f > minFrac {
			minFrac = f
		}
	}
	limit := a.cfg.Threshold * minFrac
	if deadMin {
		// The minimal route is not congested, it is gone: any surviving
		// claimable candidate beats it (recomputed routing tables would
		// not offer the dead route at all).
		limit = math.Inf(1)
	}
	a.cands = a.cands[:0]
	canGlobal := a.globalMisrouteAllowed(st)
	if canGlobal && (deadMin || !v.CanStart(minPort, minVC, size)) {
		a.globalCandidates(v, st, router, size, limit, r)
	}
	// Local misrouting cannot restore a dead group channel (each group
	// pair has exactly one), so it stays unarmed for deadRoute.
	canLocal := !minGlobal && !deadRoute && a.localMisrouteAllowed(st)
	localStructural := 0
	if canLocal {
		localStructural = a.localCandidates(v, st, idx, exitIdx, size, limit)
	}
	if len(a.cands) == 0 {
		if deadMin && !(canLocal && localStructural > 0) &&
			!(canGlobal && a.liveGlobalDetour(v, st, router)) {
			return dropDecision
		}
		return waitDecision
	}
	return a.cands[r.Intn(len(a.cands))].dec
}

// liveGlobalDetour reports whether some intermediate group the mechanism
// could still commit to has both detour legs alive — mirroring the static
// filters of globalCandidates, so a packet only drops when no candidate
// can ever materialize.
func (a *adaptive) liveGlobalDetour(v View, st *PacketState, router int) bool {
	p := a.cfg.Topo
	g := p.GroupOf(router)
	idx := p.IndexInGroup(router)
	for tg := 0; tg < p.Groups; tg++ {
		if tg == g || tg == int(st.DstGroup) {
			continue
		}
		if v.RouteDown(g, tg) || v.RouteDown(tg, int(st.DstGroup)) {
			continue
		}
		owner := p.MinimalLocalTarget(router, tg)
		if owner == idx {
			return true // this router's own live channel
		}
		// Remote channels are only reachable through a redirect hop, and
		// only ever sampled when remote candidates are enabled.
		if a.cfg.RemoteCandidates <= 0 || st.LocalHopsInGroup >= maxLocalHopsPerGroup {
			continue
		}
		if v.LocalDown(idx, owner) {
			continue
		}
		if a.pair != nil && st.PrevRouter >= 0 {
			prev := p.IndexInGroup(int(st.PrevRouter))
			if !a.pair.AllowedHops(prev, idx, owner) {
				continue
			}
		}
		return true
	}
	return false
}

// occupancyFrac returns downstream occupancy normalized to capacity.
func occupancyFrac(v View, port, vc int) float64 {
	c := v.Capacity(port, vc)
	if c <= 0 {
		return 0
	}
	return float64(v.Occupancy(port, vc)) / float64(c)
}

// eligible applies the trigger to one output: normalized occupancy below
// the limit and claimable right now.
func (a *adaptive) eligible(v View, port, vc, size int, limit float64) bool {
	return occupancyFrac(v, port, vc) < limit && v.CanClaim(port, vc, size)
}

// globalCandidates collects Valiant commitments: the router's own global
// ports and sampled remote channels (one local hop away).
func (a *adaptive) globalCandidates(v View, st *PacketState, router, size int, limit float64, r *rng.PCG) {
	p := a.cfg.Topo
	g := p.GroupOf(router)
	idx := p.IndexInGroup(router)
	faulty := v.Faulty()
	gvc := a.globalVC(st)
	for port := p.GlobalPortBase(); port < p.EjectPortBase(); port++ {
		tg := p.TargetGroup(g, p.GlobalChannelOfPort(idx, port))
		if tg == int(st.DstGroup) {
			continue // that would be the minimal channel
		}
		if faulty && v.RouteDown(tg, int(st.DstGroup)) {
			continue // the detour's second leg is gone
		}
		if a.eligible(v, port, gvc, size, limit) {
			a.cands = append(a.cands, candidate{Decision{
				Port: port, VC: gvc, Kind: KindGlobalMis,
				NewValiant: tg, LocalFinal: -1,
			}})
		}
	}
	if st.LocalHopsInGroup >= maxLocalHopsPerGroup {
		return // a redirect hop would exceed the per-group budget
	}
	lvc := a.localVC(st)
	for i := 0; i < a.cfg.RemoteCandidates; i++ {
		tg := r.Intn(p.Groups)
		if tg == g || tg == int(st.DstGroup) {
			continue
		}
		if faulty && (v.RouteDown(g, tg) || v.RouteDown(tg, int(st.DstGroup))) {
			continue // a detour leg is gone
		}
		owner := p.MinimalLocalTarget(router, tg)
		if owner == idx {
			continue // own channel, already considered above
		}
		if a.pair != nil && st.PrevRouter >= 0 {
			prev := p.IndexInGroup(int(st.PrevRouter))
			if !a.pair.AllowedHops(prev, idx, owner) {
				continue // restricted 2-hop local combination
			}
		}
		port := p.LocalPort(idx, owner)
		if a.eligible(v, port, lvc, size, limit) {
			a.cands = append(a.cands, candidate{Decision{
				Port: port, VC: lvc, Kind: KindGlobalMis,
				NewValiant: tg, LocalFinal: -1,
			}})
		}
	}
}

// localCandidates collects local misroutes i -> k -> exitIdx. It returns
// the number of detours passing every static filter (pair restriction and
// link liveness), whether or not they were claimable this cycle: a positive
// count means a candidate can still materialize, so the caller must wait
// rather than drop.
func (a *adaptive) localCandidates(v View, st *PacketState, idx, exitIdx, size int, limit float64) int {
	p := a.cfg.Topo
	faulty := v.Faulty()
	structural := 0
	var vcBuf [2]int
	vcs := a.misrouteVCs(st, vcBuf[:0])
	for k := 0; k < p.RoutersPerGroup; k++ {
		if k == idx || k == exitIdx {
			continue
		}
		if a.pair != nil && !a.pair.AllowedHops(idx, k, exitIdx) {
			continue
		}
		if faulty && (v.LocalDown(idx, k) || v.LocalDown(k, exitIdx)) {
			continue // the detour hop or its forced exit is gone
		}
		structural++
		port := p.LocalPort(idx, k)
		for _, vc := range vcs {
			if a.eligible(v, port, vc, size, limit) {
				a.cands = append(a.cands, candidate{Decision{
					Port: port, VC: vc, Kind: KindLocalMis,
					NewValiant: -1, LocalFinal: exitIdx,
				}})
				break
			}
		}
	}
	return structural
}
