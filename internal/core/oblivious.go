// oblivious.go implements the three non-in-transit-adaptive baselines the
// paper compares against:
//
//   - Minimal: always the shortest l-g-l route, VCs lVC1-gVC1-lVC2;
//   - Valiant: a random intermediate group chosen at injection, then
//     minimal, VCs lVC1-gVC1-lVC2-gVC2-lVC3 (global misrouting only);
//   - Piggybacking (PB, Jiang et al. ISCA'09 as used by the paper): a
//     source-adaptive choice between the Minimal and Valiant routes made
//     at injection from broadcast congestion bits of the source group's
//     global channels.
//
// None of the three performs local misrouting; PB and Valiant may send
// intra-group traffic through a remote group (the paper notes this is how
// PB approaches 0.5 phits/node/cycle under pure ADVL traffic).
package core

import "repro/internal/rng"

// oblivious implements Minimal, Valiant and PB, which share their VC
// discipline and differ only in the injection-time choice.
type oblivious struct {
	cfg  Config
	spec Spec
	tab  *Tables
}

func (o *oblivious) Name() string          { return o.spec.String() }
func (o *oblivious) Spec() Spec            { return o.spec }
func (o *oblivious) LocalVCs() int         { return 3 }
func (o *oblivious) GlobalVCs() int        { return 2 }
func (o *oblivious) RequiresVCT() bool     { return false }
func (o *oblivious) UsesHeadArrival() bool { return false }

// Route implements Algorithm as one-shot build-plus-replay; see BuildPlan
// and RoutePlanned in plan.go for the decision procedure.
func (o *oblivious) Route(v View, st *PacketState, router, size int, r *rng.PCG) Decision {
	var p Plan
	o.BuildPlan(v, st, router, size, r, &p)
	return o.RoutePlanned(v, &p, size, r)
}

// decideInjection makes the once-per-packet source-routing choice.
func (o *oblivious) decideInjection(v View, st *PacketState, router int, r *rng.PCG) {
	st.InjDecided = true
	switch o.spec {
	case Minimal:
		return
	case Valiant:
		st.ValiantGroup = int32(o.pickValiantGroup(v, st, r))
		st.GlobalMisCount++
	case PB:
		if o.pbWantsValiant(v, st, router, r) {
			st.GlobalMisCount++
		}
	}
}

// pickValiantGroup draws an intermediate group different from the source
// and destination groups. With link-state knowledge of failures it skips
// groups whose detour legs are dead; if no live detour turns up within the
// attempt budget it returns a dead draw, and the packet drops at the dead
// leg like any other unroutable packet.
func (o *oblivious) pickValiantGroup(v View, st *PacketState, r *rng.PCG) int {
	groups := o.tab.groups
	sg := int(st.CurGroup)
	dg := int(st.DstGroup)
	faulty := v.Faulty()
	fallback := -1
	for i := 0; i < 4*groups || fallback < 0; i++ {
		g := r.Intn(groups)
		if g == sg || g == dg {
			continue
		}
		if !faulty {
			return g
		}
		if fallback < 0 {
			fallback = g
		}
		if !v.RouteDown(sg, g) && !v.RouteDown(g, dg) {
			return g
		}
	}
	return fallback
}

// pbWantsValiant evaluates the Piggybacking criterion and, when Valiant is
// chosen, commits the intermediate group into st. It reports whether the
// packet was diverted.
func (o *oblivious) pbWantsValiant(v View, st *PacketState, router int, r *rng.PCG) bool {
	t := o.tab
	g := t.rt.GroupOf(router)
	if int(st.DstGroup) != g {
		// Remote destination: divert when the minimal global channel
		// is congested (a failed channel counts as congested — the
		// recomputed tables know it is gone) and the sampled Valiant
		// channel is not.
		kMin := t.rt.GroupOffset(g, int(st.DstGroup)) - 1
		minDead := v.Faulty() && v.RouteDown(g, int(st.DstGroup))
		if !v.GlobalCongested(kMin) && !minDead {
			return false
		}
		vg := o.pickValiantGroup(v, st, r)
		if v.GlobalCongested(t.rt.GroupOffset(g, vg) - 1) {
			return false
		}
		st.ValiantGroup = int32(vg)
		return true
	}
	// Intra-group destination: escape through a random remote group when
	// the minimal path is congested (paper Section IV-A). A saturated
	// local link shows almost no downstream occupancy — the link itself
	// is the bottleneck — so the signal is the source queue backlog,
	// with the direct port's downstream occupancy as a secondary cue.
	if int32(router) != st.DstRouter {
		idx := t.rt.IndexOf(router)
		dIdx := int(st.DstIdx)
		port := t.rt.LocalPortTo(idx, dIdx)
		qOcc, qCap := v.CurrentQueue()
		backlog := qCap > 0 && float64(qOcc) >= o.cfg.PBThreshold*float64(qCap)
		occ, cap := v.Occupancy(port, 0), v.Capacity(port, 0)
		linkDead := v.Faulty() && v.LocalDown(idx, dIdx)
		if !backlog && !linkDead && float64(occ) < o.cfg.PBThreshold*float64(cap) {
			return false
		}
		vg := o.pickValiantGroup(v, st, r)
		if v.GlobalCongested(t.rt.GroupOffset(g, vg) - 1) {
			return false
		}
		st.ValiantGroup = int32(vg)
		return true
	}
	return false
}
