package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// TestValiantGroupExclusion: the intermediate group is never the source or
// destination group, over many draws.
func TestValiantGroupExclusion(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, Valiant, p)
	v := newFakeView(p)
	r := rng.New(21, 4)
	counts := make(map[int32]int)
	src := p.RouterID(0, 1)
	dst := p.RouterID(3, 0)
	for i := 0; i < 2000; i++ {
		var st PacketState
		st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
		_ = alg.Route(v, &st, src, 8, r)
		if st.ValiantGroup < 0 {
			t.Fatal("valiant made no commitment at injection")
		}
		if st.ValiantGroup == 0 || st.ValiantGroup == 3 {
			t.Fatalf("valiant picked source/destination group %d", st.ValiantGroup)
		}
		counts[st.ValiantGroup]++
	}
	// Every one of the 2h²-1 = 7 eligible groups should be drawn.
	if len(counts) != p.Groups-2 {
		t.Fatalf("valiant drew %d distinct groups, want %d", len(counts), p.Groups-2)
	}
}

// TestValiantIntraGroupEscapes: intra-group traffic goes through a remote
// group under pure Valiant routing — unless the walk toward the chosen
// channel owner happens to pass through the destination router first, in
// which case the packet is (correctly) delivered early. Global hop counts
// are therefore exactly 0 (early ejection) or 2, with 2 dominating.
func TestValiantIntraGroupEscapes(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, Valiant, p)
	v := newFakeView(p)
	r := rng.New(23, 1)
	twoGlobals, early := 0, 0
	for trial := 0; trial < 200; trial++ {
		var st PacketState
		st.Init(p, p.NodeID(p.RouterID(0, 0), 0), p.NodeID(p.RouterID(0, 1), 0))
		walk(t, alg, p, v, &st, r, 6)
		switch st.GlobalHops {
		case 2:
			twoGlobals++
		case 0:
			early++
		default:
			t.Fatalf("intra-group valiant took %d global hops", st.GlobalHops)
		}
	}
	if twoGlobals <= early {
		t.Fatalf("valiant detours: %d, early deliveries: %d — detours should dominate",
			twoGlobals, early)
	}
}

// TestPBFallsBackWhenBothCongested: when the minimal and the sampled
// Valiant channels are congested, PB stays minimal (Jiang et al.).
func TestPBFallsBackWhenBothCongested(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, PB, p)
	v := newFakeView(p)
	r := rng.New(25, 9)
	// Congest every channel of group 0.
	for k := 0; k < p.ChannelsPerGrp; k++ {
		v.congested[k] = true
	}
	dstGroup := p.TargetGroup(0, 0)
	var st PacketState
	st.Init(p, p.NodeID(0, 0), p.NodeID(p.RouterID(dstGroup, 1), 0))
	_ = alg.Route(v, &st, 0, 8, r)
	if st.ValiantGroup >= 0 {
		t.Fatal("PB diverted although every channel is congested")
	}
	if !st.InjDecided {
		t.Fatal("PB did not record its injection decision")
	}
}

// TestPBIntraGroupBacklogTrigger: a deep injection backlog diverts
// intra-group traffic through a Valiant path even when the direct port's
// downstream buffer looks empty (the ADVL saturation signature).
func TestPBIntraGroupBacklogTrigger(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, PB, p)
	r := rng.New(27, 2)

	// No backlog: stay minimal.
	v := newFakeView(p)
	v.queueOcc, v.queueCap = 0, 128
	var st PacketState
	st.Init(p, p.NodeID(0, 0), p.NodeID(1, 0))
	_ = alg.Route(v, &st, 0, 8, r)
	if st.ValiantGroup >= 0 {
		t.Fatal("PB diverted local traffic without congestion")
	}

	// Full backlog: divert.
	v = newFakeView(p)
	v.queueOcc, v.queueCap = 128, 128
	st = PacketState{}
	st.Init(p, p.NodeID(0, 0), p.NodeID(1, 0))
	_ = alg.Route(v, &st, 0, 8, r)
	if st.ValiantGroup < 0 {
		t.Fatal("PB kept local traffic minimal despite a full injection queue")
	}
	if st.ValiantGroup == 0 {
		t.Fatal("PB picked the source group as intermediate")
	}
}

// TestPBDecisionIsSticky: once decided at injection, in-transit hops do
// not change the route class.
func TestPBDecisionIsSticky(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, PB, p)
	v := newFakeView(p)
	r := rng.New(29, 3)
	v.congested[0] = true // minimal channel of group 0 toward group 1
	dstGroup := p.TargetGroup(0, 0)
	var st PacketState
	st.Init(p, p.NodeID(0, 0), p.NodeID(p.RouterID(dstGroup, 1), 0))
	_ = alg.Route(v, &st, 0, 8, r)
	committed := st.ValiantGroup
	if committed < 0 {
		t.Fatal("PB did not divert off the congested channel")
	}
	// Re-evaluations (e.g. while waiting) must not re-roll the choice.
	for i := 0; i < 10; i++ {
		_ = alg.Route(v, &st, 0, 8, r)
		if st.ValiantGroup != committed {
			t.Fatalf("PB re-rolled its Valiant group: %d -> %d", committed, st.ValiantGroup)
		}
	}
}

// TestMinimalNeverMisroutes even when everything is congested: it waits.
func TestMinimalNeverMisroutes(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, Minimal, p)
	v := newFakeView(p)
	r := rng.New(31, 1)
	var st PacketState
	st.Init(p, p.NodeID(0, 0), p.NodeID(p.Routers-1, 0))
	blockMinimal(v, p, alg, &st, 0)
	for i := 0; i < 20; i++ {
		dec := alg.Route(v, &st, 0, 8, r)
		if !dec.Wait {
			t.Fatalf("minimal produced a decision off its path: %+v", dec)
		}
	}
	if st.GlobalMisCount != 0 || st.ValiantGroup >= 0 {
		t.Fatal("minimal committed a detour")
	}
}
