// signonly.go implements the simplistic "sign-only" route restriction the
// paper examines and rejects in Section III-B: forbid the (+,-) turn
// (a positive hop followed by a negative hop). It avoids deadlock but
// leaves some router pairs — such as (0, 1) — with no non-minimal route at
// all, unbalancing local links. It is kept as an ablation so the benefit of
// parity-sign can be measured.
package core

// SignOnlyTable forbids 2-hop local routes whose first hop increases the
// router index and whose second hop decreases it.
type SignOnlyTable struct{}

// NewSignOnlyTable returns the sign-only restriction.
func NewSignOnlyTable() *SignOnlyTable { return &SignOnlyTable{} }

// AllowedHops reports whether the 2-hop route i->k->j survives the
// forbidden (+,-) turn rule.
func (*SignOnlyTable) AllowedHops(i, k, j int) bool {
	return !(k > i && j < k)
}

// Intermediates mirrors ParityTable.Intermediates for the ablation.
func (s *SignOnlyTable) Intermediates(dst []int, i, j, routers int) []int {
	for k := 0; k < routers; k++ {
		if k == i || k == j {
			continue
		}
		if s.AllowedHops(i, k, j) {
			dst = append(dst, k)
		}
	}
	return dst
}
