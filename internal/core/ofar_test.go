package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// TestRingIsHamiltonian follows RingNext from router 0 and checks it
// visits every router exactly once before returning.
func TestRingIsHamiltonian(t *testing.T) {
	for _, h := range []int{2, 3, 4, 8} {
		p := topology.MustNew(h)
		seen := make([]bool, p.Routers)
		cur := 0
		for i := 0; i < p.Routers; i++ {
			if seen[cur] {
				t.Fatalf("h=%d: router %d visited twice after %d steps", h, cur, i)
			}
			seen[cur] = true
			next, port := RingNext(p, cur)
			if p.IsEjectPort(port) {
				t.Fatalf("h=%d: ring uses eject port at %d", h, cur)
			}
			// The port must physically reach next.
			got, _ := p.LinkTarget(cur, port)
			if got != next {
				t.Fatalf("h=%d: RingNext port mismatch at %d", h, cur)
			}
			cur = next
		}
		if cur != 0 {
			t.Fatalf("h=%d: ring did not close (ended at %d)", h, cur)
		}
	}
}

// TestRingAlternatesClasses: within a group the ring descends via local
// links; router 0 leaves via a global link.
func TestRingRouterZeroLeavesGroup(t *testing.T) {
	p := topology.MustNew(3)
	for g := 0; g < p.Groups; g++ {
		r0 := p.RouterID(g, 0)
		next, port := RingNext(p, r0)
		if !p.IsGlobalPort(port) {
			t.Fatalf("router 0 of group %d leaves via port %d (not global)", g, port)
		}
		if p.GroupOf(next) != (g+1)%p.Groups {
			t.Fatalf("ring from group %d jumps to group %d", g, p.GroupOf(next))
		}
		if p.IndexInGroup(next) != p.RoutersPerGroup-1 {
			t.Fatalf("ring enters group at index %d, want %d",
				p.IndexInGroup(next), p.RoutersPerGroup-1)
		}
	}
}

// TestOFARMinimalWhenIdle: on an empty network OFAR routes minimally and
// never touches the escape ring.
func TestOFARMinimalWhenIdle(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, OFAR, p)
	v := newFakeView(p)
	r := rng.New(3, 3)
	for trial := 0; trial < 100; trial++ {
		src := r.Intn(p.Routers)
		dst := r.Intn(p.Routers)
		if src == dst {
			continue
		}
		var st PacketState
		st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
		hops := walk(t, alg, p, v, &st, r, 4)
		if len(hops) != p.MinimalHops(src, dst) {
			t.Fatalf("OFAR non-minimal on idle network: %d vs %d hops",
				len(hops), p.MinimalHops(src, dst))
		}
		if st.EscapeHops != 0 {
			t.Fatal("OFAR used the escape ring on an idle network")
		}
	}
}

// TestOFAREscapesWhenBlocked: with the whole adaptive network blocked, the
// packet must take the ring edge on the reserved VC.
func TestOFAREscapesWhenBlocked(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, OFAR, p)
	v := newFakeView(p)
	r := rng.New(5, 5)
	// Block the adaptive VCs everywhere (VCs 0 and 1 on every port),
	// leaving the escape VCs free.
	for port := 0; port < p.EjectPortBase(); port++ {
		for vc := 0; vc < 2; vc++ {
			v.blocked[[2]int{port, vc}] = true
			v.occupancy[[2]int{port, vc}] = 32
		}
	}
	src := p.RouterID(0, 1) // ring successor is router 0 via a local link
	dst := p.RouterID(3, 1)
	var st PacketState
	st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
	dec := alg.Route(v, &st, src, 8, r)
	if dec.Wait {
		t.Fatal("OFAR waited with a free escape ring")
	}
	if dec.Kind != KindEscape {
		t.Fatalf("kind = %v, want escape", dec.Kind)
	}
	next, wantPort := RingNext(p, src)
	if dec.Port != wantPort {
		t.Fatalf("escape port %d, want %d (toward %d)", dec.Port, wantPort, next)
	}
	if dec.VC != ofarEscapeLocalVC {
		t.Fatalf("escape VC %d, want %d", dec.VC, ofarEscapeLocalVC)
	}
	CommitHop(p, &st, src, dec)
	if !st.OnEscape || st.EscapeHops != 1 {
		t.Fatalf("escape state not committed: %+v", st)
	}
}

// TestOFARBubbleCondition: entering the ring needs two packets of space;
// riding it needs one.
func TestOFARBubbleCondition(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, OFAR, p)
	r := rng.New(7, 7)
	src := p.RouterID(0, 1)
	dst := p.RouterID(3, 1)

	mkView := func(escOcc int) *fakeView {
		v := newFakeView(p)
		for port := 0; port < p.EjectPortBase(); port++ {
			for vc := 0; vc < 2; vc++ {
				v.blocked[[2]int{port, vc}] = true
				v.occupancy[[2]int{port, vc}] = 32
			}
		}
		_, ringPort := RingNext(p, src)
		v.occupancy[[2]int{ringPort, ofarEscapeLocalVC}] = escOcc
		return v
	}

	// 20/32 phits used leaves 12 < 16 = 2 packets: entry refused.
	var st PacketState
	st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
	if dec := alg.Route(mkView(20), &st, src, 8, r); !dec.Wait {
		t.Fatalf("ring entry allowed without a bubble: %+v", dec)
	}
	// A packet already on the ring needs only one packet of space.
	st.OnEscape = true
	if dec := alg.Route(mkView(20), &st, src, 8, r); dec.Wait || dec.Kind != KindEscape {
		t.Fatalf("ring continuation refused with one slot free: %+v", dec)
	}
	// 16/32 used leaves exactly two packets: entry allowed.
	st.OnEscape = false
	if dec := alg.Route(mkView(16), &st, src, 8, r); dec.Wait || dec.Kind != KindEscape {
		t.Fatalf("ring entry refused with a full bubble: %+v", dec)
	}
}

// TestOFARLeavesRingWhenAdaptiveFrees: a packet on the ring resumes
// adaptive routing as soon as the minimal output clears.
func TestOFARLeavesRingWhenAdaptiveFrees(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, OFAR, p)
	v := newFakeView(p)
	r := rng.New(9, 9)
	src := p.RouterID(0, 1)
	dst := p.RouterID(0, 2)
	var st PacketState
	st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
	st.OnEscape = true // pretend it was escaping
	dec := alg.Route(v, &st, src, 8, r)
	if dec.Wait || dec.Kind != KindMin {
		t.Fatalf("OFAR did not resume minimal routing: %+v", dec)
	}
	CommitHop(p, &st, src, dec)
	if st.OnEscape {
		t.Fatal("OnEscape not cleared by an adaptive hop")
	}
}

func TestOFARRequiresVCT(t *testing.T) {
	p := topology.MustNew(2)
	alg := mustAlg(t, OFAR, p)
	if !alg.RequiresVCT() {
		t.Fatal("OFAR must require VCT (bubble flow control)")
	}
	l, g := alg.LocalVCs(), alg.GlobalVCs()
	if l != 3 || g != 2 {
		t.Fatalf("OFAR VCs %d/%d, want 3/2", l, g)
	}
}

// TestOFARAdaptiveStaysOffEscapeVCs: fuzz many idle-network walks and
// blocked decisions; adaptive hops must never use the reserved VCs.
func TestOFARAdaptiveStaysOffEscapeVCs(t *testing.T) {
	p := topology.MustNew(3)
	alg := mustAlg(t, OFAR, p)
	r := rng.New(11, 11)
	for trial := 0; trial < 300; trial++ {
		v := newFakeView(p)
		// Congest a random subset to provoke misrouting.
		for n := 0; n < 5; n++ {
			port := r.Intn(p.EjectPortBase())
			for vc := 0; vc < 2; vc++ {
				v.blocked[[2]int{port, vc}] = true
				v.occupancy[[2]int{port, vc}] = 32
			}
		}
		src := r.Intn(p.Routers)
		dst := r.Intn(p.Routers)
		if src == dst {
			continue
		}
		var st PacketState
		st.Init(p, p.NodeID(src, 0), p.NodeID(dst, 0))
		router := src
		for hop := 0; hop < 12 && int32(router) != st.DstRouter; hop++ {
			dec := alg.Route(v, &st, router, 8, r)
			if dec.Wait {
				break
			}
			if dec.Kind != KindEscape {
				if p.IsGlobalPort(dec.Port) && dec.VC == ofarEscapeGlobalVC {
					t.Fatalf("adaptive hop on reserved global VC: %+v", dec)
				}
				if p.IsLocalPort(dec.Port) && dec.VC == ofarEscapeLocalVC {
					t.Fatalf("adaptive hop on reserved local VC: %+v", dec)
				}
			}
			router = commitAndMove(p, &st, router, dec)
		}
	}
}
