package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// TestOFARDeliversVCT: the escape-ring mechanism works end to end.
func TestOFARDeliversVCT(t *testing.T) {
	cfg := testConfig(t, 2, core.OFAR, 0.2)
	res := run(t, cfg)
	if res.Deadlock {
		t.Fatal("OFAR deadlocked under light load")
	}
	if res.Delivered == 0 {
		t.Fatal("OFAR delivered nothing")
	}
}

// TestOFARRejectsWormhole: bubble flow control needs VCT.
func TestOFARRejectsWormhole(t *testing.T) {
	cfg := testConfig(t, 2, core.OFAR, 0.1)
	cfg.Flow = WH
	if _, err := New(cfg); err == nil {
		t.Fatal("OFAR accepted wormhole flow control")
	}
}

// TestOFARUsesEscapeUnderPressure: saturating an adversarial pattern must
// push at least some packets onto the escape ring, and the run must stay
// deadlock free (the bubble argument).
func TestOFARUsesEscapeUnderPressure(t *testing.T) {
	cfg := testConfig(t, 2, core.OFAR, 1.0)
	proc, err := traffic.NewBernoulli(1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Process = proc
	pat, err := traffic.NewAdversarialGlobal(cfg.Topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = pat
	cfg.BufLocal, cfg.BufGlobal = 16, 48 // tighten to force escapes
	cfg.Warmup, cfg.Measure = 0, 8000
	cfg.Watchdog = 4000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("OFAR deadlocked at saturation")
	}
	var escapes int64
	for i := range sim.sheets {
		escapes += sim.sheets[i].EscapeHops
	}
	if escapes == 0 {
		t.Fatal("no packet ever used the escape ring at saturation")
	}
}
