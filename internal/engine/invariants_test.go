package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/traffic"
)

// TestCreditConservation: after a run drains completely, every credit
// counter has returned to its buffer's capacity and every buffer is empty.
func TestCreditConservation(t *testing.T) {
	cfg := testConfig(t, 2, core.OLM, 0)
	burst, err := traffic.NewBurst(15, cfg.Topo.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Process = burst
	cfg.Warmup, cfg.Measure = 0, 0
	cfg.MaxCycles = 300000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("burst deadlocked")
	}
	// Let stragglers on the links land.
	for i := 0; i < 3*cfg.LatGlobal; i++ {
		sim.stepCycle()
	}
	for i := range sim.routers {
		r := &sim.routers[i]
		for port := range r.out {
			op := &r.out[port]
			if op.link == nil {
				continue
			}
			for vc, c := range op.credits {
				if c != op.capacity {
					t.Fatalf("router %d out(%d,%d): %d credits, capacity %d",
						r.id, port, vc, c, op.capacity)
				}
			}
			for vc := range op.transfers {
				if op.transfers[vc].active {
					t.Fatalf("router %d out(%d,%d): dangling transfer", r.id, port, vc)
				}
			}
		}
		for port := range r.in {
			for vc := range r.in[port].vcs {
				if !r.in[port].vcs[vc].empty() {
					t.Fatalf("router %d in(%d,%d): residue after drain", r.id, port, vc)
				}
			}
		}
	}
}

// TestWormholePacketSpansRouters: with 40-phit packets and 8-phit buffers
// a blocked packet must hold buffers in several routers at once — the
// extended dependencies the paper discusses. Sample states mid-run and
// require at least one packet present in two or more buffers.
func TestWormholePacketSpansRouters(t *testing.T) {
	cfg := testConfig(t, 2, core.RLM, 0.5)
	cfg.Flow = WH
	cfg.PacketPhits = 40
	cfg.BufLocal, cfg.BufGlobal = 8, 48
	proc, err := traffic.NewBernoulli(0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Process = proc
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spanning := 0
	for c := 0; c < 3000; c++ {
		sim.stepCycle()
		if c%100 != 0 {
			continue
		}
		seen := make(map[int64]int)
		for i := range sim.routers {
			r := &sim.routers[i]
			for port := range r.in {
				if r.in[port].link == nil {
					continue // injection queues hold whole packets
				}
				for vc := range r.in[port].vcs {
					buf := &r.in[port].vcs[vc]
					for k := 0; k < buf.count; k++ {
						e := &buf.entries[(buf.head+k)%len(buf.entries)]
						seen[e.pkt.ID]++
					}
				}
			}
		}
		for _, n := range seen {
			if n >= 2 {
				spanning++
			}
		}
	}
	if spanning == 0 {
		t.Fatal("no wormhole packet ever spanned two routers")
	}
}

// TestPBPublishDelay: congestion bits computed in cycle t are visible to
// routing in cycle t+1 (double-buffered), not in cycle t.
func TestPBPublishDelay(t *testing.T) {
	cfg := testConfig(t, 2, core.PB, 0)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.pbEnabled {
		t.Fatal("PB tables not enabled")
	}
	// Manually mark channel 0 of group 0 congested in the next buffer.
	sim.pbNext[0][0] = true
	r := &sim.routers[0]
	if r.GlobalCongested(0) {
		t.Fatal("bit visible before the cycle boundary")
	}
	sim.finishCycle() // swap
	if !r.GlobalCongested(0) {
		t.Fatal("bit not visible after the cycle boundary")
	}
}

// TestInjectionQueueFIFO: packets from one node are delivered in
// generation order when they share source and destination (no reordering
// inside a VC chain under deterministic minimal routing).
func TestInjectionQueueFIFO(t *testing.T) {
	cfg := testConfig(t, 2, core.Minimal, 0)
	burst, err := traffic.NewBurst(6, cfg.Topo.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Process = burst
	cfg.Pattern = fixedPair{}
	cfg.Warmup, cfg.Measure = 0, 0
	cfg.MaxCycles = 100000
	res := run(t, cfg)
	if res.Deadlock {
		t.Fatal("deadlock")
	}
	if res.Delivered != int64(6*cfg.Topo.Nodes) {
		t.Fatalf("delivered %d", res.Delivered)
	}
}

// fixedPair sends node n's traffic to node (n+7h) mod N, a fixed permutation.
type fixedPair struct{}

func (fixedPair) Dest(src int, _ *rng.PCG) int { return (src + 61) % 72 }
func (fixedPair) Name() string                 { return "fixedpair" }
