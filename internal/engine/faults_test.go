package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// faultedConfig is testConfig plus a seeded degraded topology: 15% of
// global and 5% of local links down, with one extra mid-run kill/repair
// pair so the dynamic path is exercised too.
func faultedConfig(t *testing.T, spec core.Spec, load float64) Config {
	t.Helper()
	cfg := testConfig(t, 2, spec, load)
	f := topology.NewFaultSet(cfg.Topo)
	if err := topology.RandomFaults(f, 0.15, 0.05, 99); err != nil {
		t.Fatal(err)
	}
	if !f.Connected() {
		t.Fatal("test fault set partitions the network; pick another seed")
	}
	cfg.Faults = f
	cfg.FaultEvents = []FaultEvent{
		{At: 500, Router: 3, Port: cfg.Topo.GlobalPortBase()},
		{At: 1200, Repair: true, Router: 3, Port: cfg.Topo.GlobalPortBase()},
	}
	return cfg
}

// TestFaultConservationAllMechanisms is the packet- and credit-conservation
// invariant over degraded topologies, across every mechanism: when a finite
// (burst) workload drains on a faulted network, generated == injected +
// injection-lost, injected == delivered + fault-dropped, nothing stays
// live, and every credit counter returns to its buffer's capacity.
func TestFaultConservationAllMechanisms(t *testing.T) {
	specs := []core.Spec{
		core.Minimal, core.Valiant, core.PB, core.PAR62,
		core.RLM, core.RLMSignOnly, core.OLM, core.OFAR,
	}
	for _, spec := range specs {
		t.Run(spec.String(), func(t *testing.T) {
			cfg := faultedConfig(t, spec, 0)
			burst, err := traffic.NewBurst(10, cfg.Topo.Nodes)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Process = burst
			cfg.Warmup, cfg.Measure = 0, 0
			cfg.MaxCycles = 400000
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Deadlock {
				t.Fatal("faulted burst deadlocked")
			}
			// Let stragglers on the links land (dead links still carry
			// committed traffic and credits under drain-then-die).
			for i := 0; i < 3*cfg.LatGlobal; i++ {
				sim.stepCycle()
			}
			var sheet metrics.Sheet
			for i := range sim.sheets {
				sheet.Merge(&sim.sheets[i])
			}
			if sheet.Generated != sheet.Injected+sheet.InjectionLost+sheet.Suppressed {
				t.Fatalf("generated %d != injected %d + lost %d + suppressed %d",
					sheet.Generated, sheet.Injected, sheet.InjectionLost, sheet.Suppressed)
			}
			_, live, _ := sim.totals()
			if live != 0 {
				t.Fatalf("%d packets still live after drain", live)
			}
			if sheet.Injected != sheet.Delivered+sheet.FaultDrops {
				t.Fatalf("injected %d != delivered %d + fault-dropped %d",
					sheet.Injected, sheet.Delivered, sheet.FaultDrops)
			}
			if sheet.Delivered == 0 {
				t.Fatal("nothing delivered on the degraded network")
			}
			for i := range sim.routers {
				r := &sim.routers[i]
				for port := range r.out {
					op := &r.out[port]
					for vc := range op.transfers {
						if op.transfers[vc].active {
							t.Fatalf("router %d out(%d,%d): dangling transfer", r.id, port, vc)
						}
					}
					if op.link == nil {
						continue
					}
					for vc, c := range op.credits {
						if c != op.capacity {
							t.Fatalf("router %d out(%d,%d): %d credits, capacity %d",
								r.id, port, vc, c, op.capacity)
						}
					}
				}
				for port := range r.in {
					for vc := range r.in[port].vcs {
						if !r.in[port].vcs[vc].empty() {
							t.Fatalf("router %d in(%d,%d): residue after drain", r.id, port, vc)
						}
					}
				}
			}
			// Minimal has no alternative paths, so a degraded network must
			// visibly cost it packets; that the invariants above still hold
			// is exactly what the drop sink guarantees.
			if spec == core.Minimal && sheet.FaultDrops == 0 {
				t.Fatal("Minimal dropped nothing on a degraded network")
			}
		})
	}
}

// TestParkedRouterConservation is the suppression side of the ledger: with
// one router dead from cycle 0 and another killed mid-drain, generation
// events at parked nodes are suppressed (counted, never injected),
// ejections destined to parked nodes drop, the burst still drains, and the
// conservation identity gains its fourth column:
// generated == injected + injection-lost + suppressed.
func TestParkedRouterConservation(t *testing.T) {
	for _, spec := range []core.Spec{core.Minimal, core.OLM, core.OFAR} {
		t.Run(spec.String(), func(t *testing.T) {
			cfg := testConfig(t, 2, spec, 0)
			f := topology.NewFaultSet(cfg.Topo)
			f.SetRouter(3, true)
			cfg.Faults = f
			cfg.FaultEvents = []FaultEvent{{At: 300, Router: 8, Port: WholeRouter}}
			burst, err := traffic.NewBurst(10, cfg.Topo.Nodes)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Process = burst
			cfg.Warmup, cfg.Measure = 0, 0
			cfg.MaxCycles = 400000
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Deadlock {
				t.Fatal("parked-router burst deadlocked")
			}
			for i := 0; i < 3*cfg.LatGlobal; i++ {
				sim.stepCycle()
			}
			var sheet metrics.Sheet
			for i := range sim.sheets {
				sheet.Merge(&sim.sheets[i])
			}
			// Router 3's nodes are parked for the whole run: their entire
			// burst (h nodes × 10 packets) must be suppressed, plus whatever
			// router 8's nodes had not injected by cycle 300.
			min := int64(cfg.Topo.H * 10)
			if sheet.Suppressed < min {
				t.Fatalf("suppressed %d < %d (the parked router's full burst)", sheet.Suppressed, min)
			}
			if sheet.Generated != sheet.Injected+sheet.InjectionLost+sheet.Suppressed {
				t.Fatalf("generated %d != injected %d + lost %d + suppressed %d",
					sheet.Generated, sheet.Injected, sheet.InjectionLost, sheet.Suppressed)
			}
			if sheet.Injected != sheet.Delivered+sheet.FaultDrops {
				t.Fatalf("injected %d != delivered %d + fault-dropped %d",
					sheet.Injected, sheet.Delivered, sheet.FaultDrops)
			}
			if sheet.FaultDrops == 0 {
				t.Fatal("no fault drops: traffic toward the parked routers must be shed")
			}
			if _, live, _ := sim.totals(); live != 0 {
				t.Fatalf("%d packets still live after drain", live)
			}
		})
	}
}

// TestAdaptiveRetainsLoadUnderFaults is the resilience headline at test
// scale: with a fifth of the global links gone, OLM routes around the
// failures while Minimal sheds all traffic whose only channel died.
func TestAdaptiveRetainsLoadUnderFaults(t *testing.T) {
	runSpec := func(spec core.Spec) metrics.Result {
		cfg := testConfig(t, 2, spec, 0.2)
		f := topology.NewFaultSet(cfg.Topo)
		if err := topology.RandomFaults(f, 0.2, 0, 4); err != nil {
			t.Fatal(err)
		}
		cfg.Faults = f
		return run(t, cfg)
	}
	minimal := runSpec(core.Minimal)
	olm := runSpec(core.OLM)
	if minimal.FaultDrops == 0 {
		t.Fatal("Minimal dropped nothing with 20% of global links down")
	}
	if olm.FaultDrops*10 > minimal.FaultDrops {
		t.Fatalf("OLM dropped %d packets, Minimal %d: adaptive routing should avoid almost all drops",
			olm.FaultDrops, minimal.FaultDrops)
	}
	if olm.AcceptedLoad <= minimal.AcceptedLoad {
		t.Fatalf("OLM accepted %.4f <= Minimal %.4f on the degraded network",
			olm.AcceptedLoad, minimal.AcceptedLoad)
	}
}

// TestDynamicKillAndRepair kills one specific global channel mid-run and
// repairs it later: fault drops must appear only during the outage, and
// the run must neither deadlock nor keep dropping after the repair.
func TestDynamicKillAndRepair(t *testing.T) {
	cfg := testConfig(t, 2, core.Minimal, 0.2)
	cfg.Warmup, cfg.Measure = 0, 6000
	cfg.WindowCycles = 500
	kill, repair := int64(2000), int64(4000)
	port := cfg.Topo.GlobalPortBase()
	cfg.FaultEvents = []FaultEvent{
		{At: kill, Router: 0, Port: port},
		{At: repair, Repair: true, Router: 0, Port: port},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("deadlock across the kill/repair cycle")
	}
	if res.FaultDrops == 0 {
		t.Fatal("no fault drops during the outage")
	}
	tl := sim.Timeline()
	if tl == nil {
		t.Fatal("no timeline")
	}
	var before, during, after int64
	for _, w := range tl.Windows {
		switch {
		case w.End <= kill:
			before += w.FaultDrops
		case w.Start >= kill && w.End <= repair:
			during += w.FaultDrops
		case w.Start >= repair+500: // one window of slack for sink drains
			after += w.FaultDrops
		}
	}
	if before != 0 {
		t.Fatalf("%d fault drops before the kill", before)
	}
	if during == 0 {
		t.Fatal("no fault drops during the outage windows")
	}
	if after != 0 {
		t.Fatalf("%d fault drops after the repair", after)
	}
}

// TestEmptyFaultSetInert: a run with an armed but all-alive fault set (the
// fault queries answer false everywhere) must be bit-identical to a run
// with no fault set at all — the guarantee that fault support costs
// fault-free configurations nothing, including RNG draw sequence.
func TestEmptyFaultSetInert(t *testing.T) {
	for _, spec := range []core.Spec{core.Minimal, core.Valiant, core.PB, core.OLM, core.OFAR} {
		plain := run(t, testConfig(t, 2, spec, 0.25))
		cfg := testConfig(t, 2, spec, 0.25)
		cfg.Faults = topology.NewFaultSet(cfg.Topo)
		armed := run(t, cfg)
		if plain != armed {
			t.Fatalf("%v: empty fault set changed the result:\n  plain: %+v\n  armed: %+v", spec, plain, armed)
		}
	}
}

// TestKilledThenRepairedBeforeTrafficInert: a link killed at cycle 0 and
// repaired before any packet could reach it leaves no trace beyond the
// (deterministic) routing decisions taken while it was down.
func TestFaultEventValidation(t *testing.T) {
	good := testConfig(t, 2, core.Minimal, 0.1)

	cfg := good
	cfg.FaultEvents = []FaultEvent{{At: 100, Router: 0, Port: 0}, {At: 50, Router: 0, Port: 0}}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-order fault events accepted")
	}
	cfg = good
	cfg.FaultEvents = []FaultEvent{{At: 10, Router: 0, Port: good.Topo.EjectPortBase()}}
	if _, err := New(cfg); err == nil {
		t.Error("fault event on an ejection port accepted")
	}
	cfg = good
	cfg.FaultEvents = []FaultEvent{{At: 10, Router: good.Topo.Routers, Port: 0}}
	if _, err := New(cfg); err == nil {
		t.Error("fault event on an out-of-range router accepted")
	}
}

// TestStaleCyclesDelayFaultView: with StaleCycles set, a link kill stops
// traffic immediately (packets queue against the dead link) but the
// routing view — and therefore the unroutable-packet drops — only react
// StaleCycles later, once the delayed table recomputation lands. The
// stale=0 spelling of the same scenario must drop within the kill window,
// pinning that the knob's default is instantaneous link-state knowledge.
func TestStaleCyclesDelayFaultView(t *testing.T) {
	const (
		kill   = int64(2000)
		stale  = int64(1500)
		window = int64(500)
	)
	build := func(staleCycles int64) Config {
		cfg := testConfig(t, 2, core.Minimal, 0.2)
		cfg.Warmup, cfg.Measure = 0, 8000
		cfg.WindowCycles = window
		cfg.StaleCycles = staleCycles
		cfg.FaultEvents = []FaultEvent{
			{At: kill, Router: 0, Port: cfg.Topo.GlobalPortBase()},
		}
		return cfg
	}
	dropsBy := func(cfg Config) (early, late int64) {
		t.Helper()
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.FaultDrops == 0 {
			t.Fatal("no fault drops; the scenario proves nothing")
		}
		for _, w := range sim.Timeline().Windows {
			// One window of slack: a drop claimed at cycle c drains its
			// phits through the sink and is recorded a few cycles later.
			if w.End <= kill+stale {
				early += w.FaultDrops
			} else if w.Start >= kill+stale+window {
				late += w.FaultDrops
			}
		}
		return early, late
	}
	early, late := dropsBy(build(stale))
	if early != 0 {
		t.Fatalf("%d fault drops before the stale view caught up", early)
	}
	if late == 0 {
		t.Fatal("no fault drops after the stale view caught up")
	}
	// The same scenario with instantaneous link state drops within the
	// kill windows the stale run kept clean.
	instEarly, _ := dropsBy(build(0))
	if instEarly == 0 {
		t.Fatal("stale=0 run did not drop inside the stale window")
	}
}
