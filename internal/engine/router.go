package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// transfer is an active output-VC allocation: the head packet of input VC
// (inPort, inVC) streams through this output VC until its tail passes.
type transfer struct {
	active bool
	inPort int16
	inVC   int8
	pkt    *Packet
}

// outPort is one output of a router: the link it drives (nil for ejection
// ports), the credit counters for the downstream buffers, and the per-VC
// transfer slots.
type outPort struct {
	link      *link
	credits   []int32 // per VC; unused for ejection
	capacity  int32   // downstream buffer capacity per VC (phits)
	transfers []transfer
	rr        int  // round-robin cursor over VCs
	global    bool // link class, for statistics
}

// inPort is one input of a router: per-VC buffers fed by a link (or, for
// injection ports, by the local traffic generator).
type inPort struct {
	vcs  []vcBuffer
	link *link // nil for injection ports
}

// router holds all per-router simulation state. Routers never touch each
// other's state directly: all communication crosses time-indexed link
// rings, so the parallel executor can run routers of the same cycle
// concurrently.
type router struct {
	id  int
	eng *Sim
	alg core.Algorithm

	in  []inPort
	out []outPort

	routeRand *rng.PCG
	nodeRand  []*rng.PCG // one generator stream per attached node

	rrIn int // round-robin cursor over input ports for new claims

	// per-cycle scratch
	portSent  []bool // output port already transmitted this cycle
	inputUsed []bool // input port already read this cycle

	// curQueueOcc/Cap/HeadFull describe the input buffer of the packet
	// currently being routed (set around each alg.Route call; see
	// CurrentQueue and HeadFullyArrived).
	curQueueOcc int
	curQueueCap int
	curHeadFull bool

	pktSeq int64 // per-router packet id sequence

	// counters local to the current cycle's worker
	phitsMoved        int64
	live              int64 // injected minus delivered (all-time)
	generated         int64 // all-time injected packets
	lastDeliveryCycle int64
}

// view adapts the router to core.View during routing evaluation.
func (r *router) CanClaim(port, vc, size int) bool {
	op := &r.out[port]
	if op.transfers[vc].active {
		return false
	}
	if op.link == nil {
		return true // ejection: infinite credits
	}
	return op.credits[vc] >= r.eng.cfg.Flow.claimNeed(int32(size))
}

// CanStart implements core.View: the credit-only claim condition.
func (r *router) CanStart(port, vc, size int) bool {
	op := &r.out[port]
	if op.link == nil {
		return true
	}
	return op.credits[vc] >= r.eng.cfg.Flow.claimNeed(int32(size))
}

// Occupancy implements core.View.
func (r *router) Occupancy(port, vc int) int {
	op := &r.out[port]
	if op.link == nil {
		return 0
	}
	return int(op.capacity - op.credits[vc])
}

// Capacity implements core.View.
func (r *router) Capacity(port, vc int) int { return int(r.out[port].capacity) }

// GlobalCongested implements core.View.
func (r *router) GlobalCongested(k int) bool {
	g := r.eng.topo.GroupOf(r.id)
	return r.eng.pbPublished[g][k]
}

// CurrentQueue implements core.View.
func (r *router) CurrentQueue() (occupancy, capacity int) {
	return r.curQueueOcc, r.curQueueCap
}

// HeadFullyArrived implements core.View.
func (r *router) HeadFullyArrived() bool { return r.curHeadFull }

// step advances the router by one cycle.
func (r *router) step(cycle int64, sheet *metrics.Sheet) {
	r.absorb(cycle)
	r.inject(cycle, sheet)
	for i := range r.portSent {
		r.portSent[i] = false
	}
	for i := range r.inputUsed {
		r.inputUsed[i] = false
	}
	r.continueTransfers(cycle, sheet)
	r.makeClaims(cycle, sheet)
	r.publishPB()
}

// absorb pulls arriving phits into input buffers and arriving credits into
// output counters.
func (r *router) absorb(cycle int64) {
	for i := range r.in {
		ip := &r.in[i]
		if ip.link == nil {
			continue
		}
		if pkt, vc := ip.link.recvPhit(cycle); pkt != nil {
			ip.vcs[vc].pushPhit(pkt)
		}
	}
	for i := range r.out {
		op := &r.out[i]
		if op.link == nil {
			continue
		}
		if vc, ok := op.link.recvCredit(cycle); ok {
			op.credits[vc]++
			if op.credits[vc] > op.capacity {
				panic("engine: credit overflow")
			}
		}
	}
}

// inject asks the traffic process for new packets and queues them.
func (r *router) inject(cycle int64, sheet *metrics.Sheet) {
	e := r.eng
	base := e.topo.EjectPortBase()
	for k := 0; k < e.topo.H; k++ {
		node := e.topo.NodeID(r.id, k)
		rnd := r.nodeRand[k]
		if !e.process.Generate(node, cycle, rnd) {
			continue
		}
		q := &r.in[base+k].vcs[0]
		if !q.hasSpaceFor(int32(e.cfg.PacketPhits)) {
			if !e.process.Finite() {
				sheet.InjectionLost++
				sheet.Generated++
			}
			continue // finite processes retry next cycle
		}
		pkt := newPacket()
		pkt.ID = int64(r.id)<<32 | r.pktSeq
		r.pktSeq++
		pkt.Size = int32(e.cfg.PacketPhits)
		pkt.CreatedAt = cycle
		pkt.InjectedAt = -1
		dst := e.pattern.Dest(node, rnd)
		pkt.St.Init(e.topo, node, dst)
		q.pushWholePacket(pkt)
		e.consumeFinite(node)
		sheet.Generated++
		sheet.Injected++
		r.generated++
		r.live++
	}
}

// continueTransfers moves one phit per output port among its active
// transfers, respecting the one-phit-per-input-port crossbar constraint.
func (r *router) continueTransfers(cycle int64, sheet *metrics.Sheet) {
	for p := range r.out {
		op := &r.out[p]
		n := len(op.transfers)
		for i := 0; i < n; i++ {
			vc := (op.rr + i) % n
			if !op.transfers[vc].active {
				continue
			}
			if r.trySendPhit(cycle, p, vc, sheet) {
				op.rr = vc + 1
				break
			}
		}
	}
}

// trySendPhit attempts to move one phit of the transfer on (port, vc).
// It returns true if a phit moved.
func (r *router) trySendPhit(cycle int64, port, vc int, sheet *metrics.Sheet) bool {
	op := &r.out[port]
	t := &op.transfers[vc]
	if r.portSent[port] || r.inputUsed[t.inPort] {
		return false
	}
	buf := &r.in[t.inPort].vcs[t.inVC]
	if buf.empty() {
		return false
	}
	e := buf.headEntry()
	if e.pkt != t.pkt {
		panic("engine: transfer head mismatch")
	}
	if e.sent >= e.arrived {
		return false // next phit not here yet (cut-through)
	}
	if op.link != nil {
		// Under VCT the whole packet's credits were reserved at claim
		// time (see claimHead), so streaming never stalls on credits;
		// under wormhole, backpressure is per phit.
		if r.eng.cfg.Flow == WH {
			if op.credits[vc] <= 0 {
				return false
			}
			op.credits[vc]--
		}
		op.link.sendPhit(cycle, t.pkt, vc)
		if op.global {
			sheet.GlobalLinkPhits++
		} else {
			sheet.LocalLinkPhits++
		}
	}
	pkt, tail := buf.takePhit()
	r.portSent[port] = true
	r.inputUsed[t.inPort] = true
	r.phitsMoved++
	// The phit left the input buffer: return a credit upstream.
	if up := r.in[t.inPort].link; up != nil {
		up.sendCredit(cycle, int(t.inVC))
	}
	if tail {
		t.active = false
		t.pkt = nil
		if op.link == nil {
			r.deliver(cycle, pkt, sheet)
		}
	}
	return true
}

// deliver finalizes a packet at its ejection port.
func (r *router) deliver(cycle int64, pkt *Packet, sheet *metrics.Sheet) {
	st := &pkt.St
	if int(st.DstRouter) != r.id {
		panic("engine: delivery at wrong router")
	}
	sheet.RecordDelivery(int(pkt.Size),
		cycle-pkt.CreatedAt, cycle-pkt.InjectedAt,
		int(st.LocalHops), int(st.GlobalHops),
		int(st.LocalMisCount), int(st.GlobalMisCount), int(st.EscapeHops))
	r.live--
	r.lastDeliveryCycle = cycle
	freePacket(pkt)
}

// makeClaims routes unclaimed head packets and allocates output VCs.
func (r *router) makeClaims(cycle int64, sheet *metrics.Sheet) {
	nIn := len(r.in)
	for i := 0; i < nIn; i++ {
		p := (r.rrIn + i) % nIn
		ip := &r.in[p]
		for vc := range ip.vcs {
			buf := &ip.vcs[vc]
			if buf.empty() || buf.claimed {
				continue
			}
			r.claimHead(cycle, p, vc, sheet)
		}
	}
	r.rrIn++
}

// claimHead evaluates routing for the head packet of input (port, vc) and,
// when a decision is claimable, allocates the output VC (and pushes the
// first phit if the crossbar still has capacity this cycle).
func (r *router) claimHead(cycle int64, port, vc int, sheet *metrics.Sheet) {
	buf := &r.in[port].vcs[vc]
	entry := buf.headEntry()
	pkt := entry.pkt
	e := r.eng

	var outPortIdx, outVC int
	eject := int(pkt.St.DstRouter) == r.id
	if eject {
		outPortIdx = e.topo.EjectPortOfNode(int(pkt.St.Dst))
		outVC = 0
		if !r.CanClaim(outPortIdx, outVC, int(pkt.Size)) {
			return
		}
	} else {
		r.curQueueOcc, r.curQueueCap = int(buf.used), int(buf.capacity)
		r.curHeadFull = entry.arrived == pkt.Size
		dec := r.alg.Route(r, &pkt.St, r.id, int(pkt.Size), r.routeRand)
		if dec.Wait {
			return
		}
		outPortIdx, outVC = dec.Port, dec.VC
		if !r.CanClaim(outPortIdx, outVC, int(pkt.Size)) {
			panic(fmt.Sprintf("engine: %s routed to unclaimable (%d,%d)",
				r.alg.Name(), outPortIdx, outVC))
		}
		core.CommitHop(e.topo, &pkt.St, r.id, dec)
	}
	op := &r.out[outPortIdx]
	op.transfers[outVC] = transfer{active: true, inPort: int16(port), inVC: int8(vc), pkt: pkt}
	if op.link != nil && e.cfg.Flow == VCT {
		// Atomic whole-packet credit reservation: downstream free space
		// stays a whole number of packet slots, which the bubble flow
		// control of OFAR's escape ring (and VCT correctness in
		// general) depends on. Cut-through streaming then never blocks
		// on credits mid-packet.
		op.credits[outVC] -= pkt.Size
		if op.credits[outVC] < 0 {
			panic("engine: VCT claim without sufficient credits")
		}
	}
	buf.claimed = true
	if pkt.InjectedAt < 0 {
		pkt.InjectedAt = cycle
	}
	r.trySendPhit(cycle, outPortIdx, outVC, sheet)
}

// publishPB refreshes the Piggybacking congestion bits for the global
// channels this router owns, into the group's next-cycle table.
func (r *router) publishPB() {
	e := r.eng
	if !e.pbEnabled {
		return
	}
	topo := e.topo
	g := topo.GroupOf(r.id)
	idx := topo.IndexInGroup(r.id)
	next := e.pbNext[g]
	for port := topo.GlobalPortBase(); port < topo.EjectPortBase(); port++ {
		op := &r.out[port]
		var occ, cap int32
		for v := range op.credits {
			occ += op.capacity - op.credits[v]
			cap += op.capacity
		}
		k := topo.GlobalChannelOfPort(idx, port)
		next[k] = float64(occ) >= e.cfg.Routing.PBThreshold*float64(cap)
	}
}
