package engine

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/traffic"
)

// transfer is an active output-VC allocation: the head packet of input VC
// (inPort, inVC) streams through this output VC until its tail passes.
type transfer struct {
	active bool
	inPort int16
	inVC   int8
	pkt    *Packet
}

// outPort is one output of a router: the link it drives (nil for ejection
// ports), the credit counters for the downstream buffers, and the per-VC
// transfer slots. The credits and transfers slices of all of a router's
// ports share two router-wide backing arrays, so the claim and streaming
// hot paths walk contiguous memory.
type outPort struct {
	link      *link
	credits   []int32 // per VC; unused for ejection
	capacity  int32   // downstream buffer capacity per VC (phits)
	transfers []transfer
	// activeVCs mirrors transfers[vc].active as a bitmask, so CanClaim's
	// busy check costs one load from this struct instead of a pointer
	// chase into the transfer slots.
	activeVCs uint16
	nActive   int8 // transfers currently active on this port
	rr        int  // round-robin cursor over VCs
	global    bool // link class, for statistics
}

// inPort is one input of a router: per-VC buffers fed by a link (or, for
// injection ports, by the local traffic generator).
type inPort struct {
	vcs  []vcBuffer
	link *link // nil for injection ports
}

// router holds all per-router simulation state. Routers never touch each
// other's state directly: all communication crosses time-indexed link
// rings, so the parallel executor can run routers of the same cycle
// concurrently.
//
// Stepping is activity-driven: the router tracks how much work it could
// possibly have this cycle (buffered packet entries, scheduled phit and
// credit arrivals) and skips the per-port scan loops entirely when there
// is none. The tracked sets are pure functions of simulation state, so
// skipping never changes results — serial and parallel runs, and runs with
// or without the skip, all stay bit-identical.
type router struct {
	id    int
	group int32 // cached topology group of this router
	eng   *Sim
	alg   core.Algorithm

	in  []inPort
	out []outPort

	routeRand *rng.PCG
	nodeRand  []*rng.PCG // one generator stream per attached node

	flow FlowControl // cached from Config for the per-phit hot paths

	// sheet and prog are the metrics sheet and progress counters of the
	// worker that owns this router's shard; pinned before Run stepping
	// starts and never written by any other worker.
	sheet *metrics.Sheet
	prog  *progress

	// Activity tracking.
	//
	// arrivals schedules the phits and credits in flight toward this
	// router by arrival cycle. Senders fill it inside sendPhit/sendCredit
	// (they know the arrival cycle at send time); step drains the current
	// cycle's slot and skips the absorb scan entirely when it is empty.
	// The slots are the only cross-router-written state; they live in the
	// simulation's shard-ordered slot arena (this header is read-only
	// after construction), so remote workers' writes never invalidate the
	// cache lines of this struct's single-writer hot fields.
	arrivals arrivalSchedule
	// occupied counts packet entries across all input VC buffers
	// (injection queues included). Nonzero occupied covers every local
	// work source: unclaimed heads, active transfers, packets streaming.
	occupied int
	// claimVCs[p] holds one bit per VC of input port p whose buffer has
	// an unclaimed head; claimPorts is the port-level summary bitmask.
	claimVCs   []uint16
	claimPorts uint64
	// xferPorts has one bit per output port with an active transfer.
	xferPorts uint64
	// deadPorts has one bit per output port whose link has failed; kept in
	// sync with the engine's FaultSet at cycle boundaries. Dead ports
	// refuse new claims, but transfers already streaming across them
	// finish (and their credits keep flowing): a kill takes effect for
	// flow control immediately and the committed traffic drains.
	deadPorts uint64
	// routeDead is the routing view of deadPorts: the mask the routing
	// mechanisms consult through core.View.LinkDown. It lags deadPorts by
	// Config.StaleCycles on every fault event (identical when zero),
	// modeling stale fabric-manager link state.
	routeDead uint64
	// parked is true while this router is failed as a whole: its attached
	// nodes suppress generation (counted separately from drops) and
	// packets arriving for them are diverted to the drop sink. Tracks the
	// FaultSet's router state exactly (no staleness: the router itself
	// always knows it is dead); flipped only in the serial section.
	parked bool
	// pbCooldown is the number of upcoming cycles that must still refresh
	// this router's Piggybacking bits: credit state changes are published
	// into a double-buffered table, so after the last change both buffers
	// need one write each before the refresh can stop.
	pbCooldown int8

	// phaseCur caches, per workload job, the index of the last phase this
	// router observed active. Phase transitions are pure functions of the
	// cycle number and inject runs every cycle, so the cached cursor only
	// ever advances and stays identical across worker shardings.
	phaseCur []int32
	// nodePhase caches each attached node's resolved active phase, valid
	// until phaseRefreshAt; between transitions the injection loop then
	// costs the same as the pre-workload single-pattern path.
	nodePhase      []nodePhase
	phaseRefreshAt int64

	// per-cycle scratch: one bit per output/input port (the 63-port
	// activity-mask limit guarantees the fault-drop sink's bit Topo.Ports
	// still fits), cleared with two stores instead of two slice walks.
	portSent  uint64 // output port already transmitted this cycle
	inputUsed uint64 // input port already read this cycle

	// rrCycle/rrVal memoize cycle % len(in) for the claim rotation, so
	// consecutive active cycles derive the next offset with an add and a
	// wrap instead of a 64-bit division. The value equals cycle % len(in)
	// exactly, whatever cycles were skipped in between.
	rrCycle int64
	rrVal   int64

	// plans caches, per input (port, VC), the static geometry of the
	// buffered head's routing decision (see core.Plan): built when a new
	// packet reaches the front, replayed every retry cycle without
	// touching the packet, and invalidated by head changes
	// (vcBuffer.headSeq) or routing-table recomputations (Sim.routeEpoch).
	// Flat over the router's input VCs; planOff[port] is port's base.
	plans   []core.Plan
	planOff []int32
	// pktSize caches Config.PacketPhits (every packet has this size) and
	// needHeadFull whether the mechanism consults HeadFullyArrived (OFAR's
	// store-and-forward ring) — the only case that must touch the head
	// entry on every retry.
	pktSize      int
	needHeadFull bool

	// curQueueOcc/Cap/HeadFull describe the input buffer of the packet
	// currently being routed (set around each alg.Route call; see
	// CurrentQueue and HeadFullyArrived).
	curQueueOcc int
	curQueueCap int
	curHeadFull bool

	pktSeq int64 // per-router packet id sequence

	lastDeliveryCycle int64
}

// view adapts the router to core.View during routing evaluation.
func (r *router) CanClaim(port, vc, size int) bool {
	op := &r.out[port]
	if (r.deadPorts>>uint(port))&1 != 0 || (op.activeVCs>>uint(vc))&1 != 0 {
		return false
	}
	if op.link == nil {
		return true // ejection and the drop sink: infinite credits
	}
	return op.credits[vc] >= r.flow.claimNeed(int32(size))
}

// CanStart implements core.View: the credit-only claim condition.
func (r *router) CanStart(port, vc, size int) bool {
	if r.deadPorts&(1<<uint(port)) != 0 {
		return false
	}
	op := &r.out[port]
	if op.link == nil {
		return true
	}
	return op.credits[vc] >= r.flow.claimNeed(int32(size))
}

// Occupancy implements core.View.
func (r *router) Occupancy(port, vc int) int {
	op := &r.out[port]
	if op.link == nil {
		return 0
	}
	return int(op.capacity - op.credits[vc])
}

// MinState implements core.View: Occupancy, CanClaim and CanStart of one
// output in a single dispatch — the port struct is read once.
func (r *router) MinState(port, vc, size int) (occ int, claim, start bool) {
	op := &r.out[port]
	alive := (r.deadPorts>>uint(port))&1 == 0
	if op.link == nil {
		return 0, alive && (op.activeVCs>>uint(vc))&1 == 0, alive
	}
	c := op.credits[vc]
	start = alive && c >= r.flow.claimNeed(int32(size))
	claim = start && (op.activeVCs>>uint(vc))&1 == 0
	return int(op.capacity - c), claim, start
}

// OccClaim implements core.View: Occupancy and CanClaim in one dispatch.
func (r *router) OccClaim(port, vc, size int) (occ int, claim bool) {
	op := &r.out[port]
	claim = (r.deadPorts>>uint(port))&1 == 0 && (op.activeVCs>>uint(vc))&1 == 0
	if op.link == nil {
		return 0, claim
	}
	c := op.credits[vc]
	if claim {
		claim = c >= r.flow.claimNeed(int32(size))
	}
	return int(op.capacity - c), claim
}

// Capacity implements core.View.
func (r *router) Capacity(port, vc int) int { return int(r.out[port].capacity) }

// GlobalCongested implements core.View.
func (r *router) GlobalCongested(k int) bool {
	g := r.eng.topo.GroupOf(r.id)
	return r.eng.pbPublished[g][k]
}

// CurrentQueue implements core.View.
func (r *router) CurrentQueue() (occupancy, capacity int) {
	return r.curQueueOcc, r.curQueueCap
}

// HeadFullyArrived implements core.View.
func (r *router) HeadFullyArrived() bool { return r.curHeadFull }

// Faulty implements core.View: true once a run has, or can develop, failed
// links. When false the other fault queries are never consulted, so the
// fault-free hot path stays exactly the pre-fault one.
func (r *router) Faulty() bool { return r.eng.faulted }

// LinkDown implements core.View: the routing view of this router's failed
// output ports (stale by Config.StaleCycles after fault events).
func (r *router) LinkDown(port int) bool { return r.routeDead&(1<<uint(port)) != 0 }

// PortDead implements core.View: whether the far-end router of this
// output port has failed entirely under the (possibly stale) routing
// view. Link-level faults never report true here.
func (r *router) PortDead(port int) bool {
	far, _ := r.eng.topo.LinkTarget(r.id, port)
	return r.eng.viewRouterDead(far)
}

// RouteDown implements core.View: the routing-view table of the single
// global channel from group g to group tg — one indexed load into the
// matrix the engine recomputes when (possibly stale) fault events apply.
func (r *router) RouteDown(g, tg int) bool {
	e := r.eng
	if e.routeDown == nil {
		return false
	}
	return e.routeDown[g*e.topo.Groups+tg]
}

// LocalDown implements core.View: the routing-view table of the local link
// between router indices i and j of this router's group.
func (r *router) LocalDown(i, j int) bool {
	e := r.eng
	if e.localDown == nil {
		return false
	}
	rpg := e.topo.RoutersPerGroup
	return e.localDown[(int(r.group)*rpg+i)*rpg+j]
}

// markClaimable records that input (port, vc) now has an unclaimed head.
func (r *router) markClaimable(port, vc int) {
	if r.claimVCs[port] == 0 {
		r.claimPorts |= 1 << uint(port)
	}
	r.claimVCs[port] |= 1 << uint(vc)
}

// unmarkClaimable records that input (port, vc) no longer has an unclaimed
// head (claimed, or emptied).
func (r *router) unmarkClaimable(port, vc int) {
	r.claimVCs[port] &^= 1 << uint(vc)
	if r.claimVCs[port] == 0 {
		r.claimPorts &^= 1 << uint(port)
	}
}

// step advances the router by one cycle.
func (r *router) step(cycle int64) {
	if pm, cm := r.arrivals.take(cycle); pm|cm != 0 {
		r.absorb(cycle, pm, cm)
	}
	// Injection must run every cycle regardless of activity — the traffic
	// process consumes its per-node RNG streams unconditionally, and
	// skipping a draw would change every subsequent decision.
	empty := r.occupied == 0
	r.inject(cycle)
	if empty && r.occupied == 0 {
		// Fully idle: no buffered packets, no transfers, nothing arrived,
		// nothing injected.
		if r.pbCooldown > 0 {
			r.publishPB()
			r.pbCooldown--
		}
		return
	}
	r.clearScratch()
	r.continueTransfers(cycle)
	r.makeClaims(cycle)
	r.publishPBActive()
}

// clearScratch resets the per-cycle crossbar allocation flags.
func (r *router) clearScratch() {
	r.portSent = 0
	r.inputUsed = 0
}

// absorb pulls arriving phits into input buffers and arriving credits into
// output counters. phits and credits are the arrival schedule's port masks
// for this cycle: only the ports that actually received something are
// visited, in the same ascending-port order as the scan the masks replace.
func (r *router) absorb(cycle int64, phits, credits uint64) {
	for m := phits; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		ip := &r.in[i]
		pkt, vc := ip.link.recvPhit(cycle)
		if pkt == nil {
			panic(fmt.Sprintf("engine: phit arrival bit without a phit at router %d in port %d", r.id, i))
		}
		r.prog.inflight--
		buf := &ip.vcs[vc]
		if buf.pushPhit(pkt) {
			r.occupied++
			r.prog.occ++
		}
		if !buf.claimed {
			r.markClaimable(i, vc)
		}
	}
	for m := credits; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		op := &r.out[i]
		r.prog.inflight--
		vc, ok := op.link.recvCredit(cycle)
		if !ok {
			panic(fmt.Sprintf("engine: credit arrival bit without a credit at router %d out port %d", r.id, i))
		}
		op.credits[vc]++
		if op.credits[vc] > op.capacity {
			panic(fmt.Sprintf("engine: credit overflow at router %d out port %d vc %d (%d > %d)",
				r.id, i, vc, op.credits[vc], op.capacity))
		}
	}
	// Credit arrivals change the occupancy the Piggybacking bits
	// summarize; schedule a refresh of both table buffers.
	if r.eng.pbEnabled {
		r.pbCooldown = 2
	}
}

// nodePhase is one attached node's cached view of its active workload
// phase (see router.refreshPhases).
type nodePhase struct {
	pattern traffic.Pattern
	process traffic.Process
	phase   int32
	idle    bool // no job, or the job's bounded schedule expired
	finite  bool
}

const noNextChange = int64(^uint64(0) >> 1)

// refreshPhases re-resolves every attached node's active phase and
// schedules the next refresh at the earliest upcoming transition of the
// jobs this router touches. Single-phase workloads therefore refresh once
// and never again, keeping the per-cycle injection cost at the
// pre-workload level.
func (r *router) refreshPhases(cycle int64) {
	e := r.eng
	w := e.workload
	next := noNextChange
	for k := 0; k < e.topo.H; k++ {
		np := &r.nodePhase[k]
		node := e.topo.NodeID(r.id, k)
		ji := w.JobOf(node)
		if ji < 0 {
			np.idle = true
			continue
		}
		pi, active := w.PhaseAt(ji, cycle, &r.phaseCur[ji])
		np.idle = !active
		if active {
			ph := &w.Jobs[ji].Phases[pi]
			np.pattern = ph.Pattern
			np.process = ph.Process
			np.phase = int32(w.PhaseID(ji, pi))
			np.finite = ph.Process.Finite()
		}
		if nc := w.NextChange(ji, cycle); nc >= 0 && nc < next {
			next = nc
		}
	}
	r.phaseRefreshAt = next
}

// inject asks each node's active workload phase for new packets and queues
// them. Nodes outside every job stay idle; for all others the phase's
// process draws from the node's RNG stream every cycle, so a one-phase
// workload consumes randomness exactly like the classic pattern+process
// pair did.
func (r *router) inject(cycle int64) {
	if cycle >= r.phaseRefreshAt {
		r.refreshPhases(cycle)
	}
	e := r.eng
	base := e.topo.EjectPortBase()
	for k := 0; k < e.topo.H; k++ {
		np := &r.nodePhase[k]
		if np.idle {
			continue
		}
		node := e.topo.NodeID(r.id, k)
		rnd := r.nodeRand[k]
		if !np.process.Generate(node, cycle, rnd) {
			continue
		}
		if r.parked {
			// The node's router is dead: the generation event is
			// suppressed at the source. It still consumes the process
			// (finite bursts complete) and counts toward progress, so
			// conservation holds as generated == injected + lost +
			// suppressed and drain detection keeps working.
			r.sheet.RecordSuppressed(cycle, int(np.phase))
			np.process.Consume(node)
			r.prog.generated++
			continue
		}
		port := base + k
		q := &r.in[port].vcs[0]
		if !q.hasSpaceFor(int32(e.cfg.PacketPhits)) {
			if !np.finite {
				r.sheet.RecordInjectionLost(cycle, int(np.phase))
			}
			continue // finite processes retry next cycle
		}
		pkt := newPacket()
		pkt.ID = int64(r.id)<<32 | r.pktSeq
		r.pktSeq++
		pkt.Size = int32(e.cfg.PacketPhits)
		pkt.Phase = np.phase
		pkt.CreatedAt = cycle
		pkt.InjectedAt = -1
		dst := np.pattern.Dest(node, rnd)
		pkt.St.Init(e.topo, node, dst)
		q.pushWholePacket(pkt)
		r.occupied++
		r.prog.occ++
		if !q.claimed {
			r.markClaimable(port, 0)
		}
		np.process.Consume(node)
		r.sheet.RecordInjected(cycle, int(np.phase))
		r.prog.generated++
		r.prog.live++
	}
}

// continueTransfers moves one phit per output port among its active
// transfers, respecting the one-phit-per-input-port crossbar constraint.
// Only ports in the xferPorts active set are visited; bit order matches the
// ascending port order of the exhaustive scan it replaces.
func (r *router) continueTransfers(cycle int64) {
	for m := r.xferPorts; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		op := &r.out[p]
		n := len(op.transfers)
		for i := 0; i < n; i++ {
			vc := op.rr + i
			if vc >= n {
				vc -= n
			}
			if (op.activeVCs>>uint(vc))&1 == 0 {
				continue
			}
			if r.trySendPhit(cycle, p, vc) {
				op.rr = vc + 1
				break
			}
		}
	}
}

// trySendPhit attempts to move one phit of the transfer on (port, vc).
// It returns true if a phit moved.
func (r *router) trySendPhit(cycle int64, port, vc int) bool {
	op := &r.out[port]
	t := &op.transfers[vc]
	if (r.portSent>>uint(port))&1 != 0 || (r.inputUsed>>uint(t.inPort))&1 != 0 {
		return false
	}
	buf := &r.in[t.inPort].vcs[t.inVC]
	if buf.empty() {
		return false
	}
	e := buf.headEntry()
	if e.pkt != t.pkt {
		panic("engine: transfer head mismatch")
	}
	if e.sent >= e.arrived {
		return false // next phit not here yet (cut-through)
	}
	if op.link != nil {
		// Under VCT the whole packet's credits were reserved at claim
		// time (see claimHead), so streaming never stalls on credits;
		// under wormhole, backpressure is per phit.
		if r.flow == WH {
			if op.credits[vc] <= 0 {
				return false
			}
			op.credits[vc]--
		}
		op.link.sendPhit(cycle, t.pkt, vc)
		r.prog.inflight++
		if op.global {
			r.sheet.GlobalLinkPhits++
		} else {
			r.sheet.LocalLinkPhits++
		}
	}
	pkt, tail := buf.takePhit()
	r.portSent |= 1 << uint(port)
	r.inputUsed |= 1 << uint(t.inPort)
	r.prog.moved++
	// The phit left the input buffer: return a credit upstream.
	if up := r.in[t.inPort].link; up != nil {
		up.sendCredit(cycle, int(t.inVC))
		r.prog.inflight++
	}
	if tail {
		t.active = false
		t.pkt = nil
		op.activeVCs &^= 1 << uint(vc)
		op.nActive--
		if op.nActive == 0 {
			r.xferPorts &^= 1 << uint(port)
		}
		r.occupied--
		r.prog.occ--
		// takePhit released the buffer's claim; its next head (if any)
		// becomes claimable.
		if !buf.empty() {
			r.markClaimable(int(t.inPort), int(t.inVC))
		}
		if op.link == nil {
			if port == r.eng.topo.Ports {
				r.dropPacket(cycle, pkt)
			} else {
				r.deliver(cycle, pkt)
			}
		}
	}
	return true
}

// dropPacket finalizes a packet at the fault-drop sink: it was unroutable
// (no surviving candidates), its phits have drained, and it leaves the run
// as a FaultDrops count instead of a delivery.
func (r *router) dropPacket(cycle int64, pkt *Packet) {
	r.sheet.RecordFaultDrop(cycle, int(pkt.Phase))
	r.prog.live--
	freePacket(pkt)
}

// deliver finalizes a packet at its ejection port.
func (r *router) deliver(cycle int64, pkt *Packet) {
	st := &pkt.St
	if int(st.DstRouter) != r.id {
		panic("engine: delivery at wrong router")
	}
	r.sheet.RecordDelivery(cycle, int(pkt.Phase), int(pkt.Size),
		cycle-pkt.CreatedAt, cycle-pkt.InjectedAt,
		int(st.LocalHops), int(st.GlobalHops),
		int(st.LocalMisCount), int(st.GlobalMisCount), int(st.EscapeHops))
	r.prog.live--
	r.lastDeliveryCycle = cycle
	freePacket(pkt)
}

// makeClaims routes unclaimed head packets and allocates output VCs. Only
// (port, VC) pairs in the claimable set are visited. The round-robin
// rotation offset is derived from the cycle number — exactly the rotation
// the exhaustive scan it replaces used (its cursor advanced once per
// cycle), so arbitration order is identical, it stays identical across
// skipped idle cycles, and no counter can overflow on long runs.
func (r *router) makeClaims(cycle int64) {
	if r.claimPorts == 0 {
		return
	}
	rr := r.claimRotation(cycle)
	// Bits >= rr first, then the wrapped-around remainder.
	hi := r.claimPorts >> rr << rr
	for m := hi; m != 0; m &= m - 1 {
		r.claimPort(cycle, bits.TrailingZeros64(m))
	}
	for m := r.claimPorts &^ hi; m != 0; m &= m - 1 {
		r.claimPort(cycle, bits.TrailingZeros64(m))
	}
}

// claimRotation returns cycle % len(in) — the claim-arbitration offset —
// through a memoized increment: consecutive active cycles pay an add and a
// conditional subtract instead of a 64-bit division, and larger gaps (idle
// skips) fall back to the division with an identical result.
func (r *router) claimRotation(cycle int64) uint {
	n := int64(len(r.in))
	d := cycle - r.rrCycle
	r.rrCycle = cycle
	if d >= 0 && d < n {
		v := r.rrVal + d
		if v >= n {
			v -= n
		}
		r.rrVal = v
		return uint(v)
	}
	v := cycle % n
	r.rrVal = v
	return uint(v)
}

// claimPort tries to claim every claimable head of input port p.
func (r *router) claimPort(cycle int64, p int) {
	for vcm := r.claimVCs[p]; vcm != 0; vcm &= vcm - 1 {
		vc := bits.TrailingZeros16(vcm)
		buf := &r.in[p].vcs[vc]
		if buf.empty() || buf.claimed {
			continue
		}
		r.claimHead(cycle, p, vc)
	}
}

// claimHead evaluates routing for the head packet of input (port, vc) and,
// when a decision is claimable, allocates the output VC (and pushes the
// first phit if the crossbar still has capacity this cycle). The head's
// plan is built once per (packet, fault epoch) and replayed on retries, so
// a waiting head costs only the dynamic predicate checks — the packet
// itself is dereferenced again only when a decision lands.
func (r *router) claimHead(cycle int64, port, vc int) {
	buf := &r.in[port].vcs[vc]
	e := r.eng
	size := r.pktSize
	plan := &r.plans[int(r.planOff[port])+vc]
	if plan.HeadSeq != buf.headSeq || plan.Epoch != e.routeEpoch {
		entry := buf.headEntry()
		pkt := entry.pkt
		plan.HeadSeq, plan.Epoch = buf.headSeq, e.routeEpoch
		if int(pkt.St.DstRouter) == r.id {
			plan.Eject = true
			plan.EjectPort = int16(pkt.St.DstEject)
			plan.DestDead = false
		} else if e.faulted && (e.viewRouterDead(int(pkt.St.DstRouter)) ||
			(e.hopLimit > 0 && int32(pkt.St.LocalHops)+int32(pkt.St.GlobalHops) > e.hopLimit)) {
			// The routing view knows the destination router failed
			// entirely — no route can ever deliver this packet — or the
			// packet blew the dead-router livelock budget (see hopLimit).
			// Letting it wander (or park on OFAR's escape ring) would
			// livelock. Skip the routing evaluation; it drops below.
			plan.Eject = false
			plan.DestDead = true
		} else {
			plan.Eject = false
			r.curQueueOcc, r.curQueueCap = int(buf.used), int(buf.capacity)
			r.curHeadFull = entry.arrived == pkt.Size
			r.alg.BuildPlan(r, &pkt.St, r.id, size, r.routeRand, plan)
		}
	}

	var outPortIdx, outVC int
	var dec core.Decision
	if plan.Eject {
		outPortIdx, outVC = int(plan.EjectPort), 0
		if r.parked {
			// Ejection to a parked node is a droppable verdict: the
			// packet reached a dead router whose nodes cannot consume it,
			// so it drains through the drop sink like any unroutable one.
			outPortIdx = e.topo.Ports
		}
		if !r.CanClaim(outPortIdx, outVC, size) {
			return
		}
	} else if plan.DestDead {
		dec = core.Decision{Drop: true}
		outPortIdx, outVC = e.topo.Ports, 0
		if !r.CanClaim(outPortIdx, outVC, size) {
			return // the sink is draining another packet; retry
		}
	} else {
		r.curQueueOcc, r.curQueueCap = int(buf.used), int(buf.capacity)
		if r.needHeadFull {
			r.curHeadFull = buf.headEntry().arrived == int32(size)
		}
		dec = r.alg.RoutePlanned(r, plan, size, r.routeRand)
		if dec.Wait {
			return
		}
		if dec.Drop {
			// Link failures left the packet without a surviving route:
			// claim it onto the drop sink, which drains it through the
			// normal transfer machinery (credits return upstream) and
			// accounts a fault drop at the tail.
			outPortIdx, outVC = e.topo.Ports, 0
			if !r.CanClaim(outPortIdx, outVC, size) {
				return // the sink is draining another packet; retry
			}
		} else {
			outPortIdx, outVC = dec.Port, dec.VC
			if !r.CanClaim(outPortIdx, outVC, size) {
				panic(fmt.Sprintf("engine: %s routed to unclaimable (%d,%d) at router %d",
					r.alg.Name(), outPortIdx, outVC, r.id))
			}
		}
	}
	pkt := buf.headEntry().pkt
	if !plan.Eject && !dec.Drop {
		core.CommitHop(e.topo, &pkt.St, r.id, dec)
	}
	op := &r.out[outPortIdx]
	op.transfers[outVC] = transfer{active: true, inPort: int16(port), inVC: int8(vc), pkt: pkt}
	op.activeVCs |= 1 << uint(outVC)
	op.nActive++
	r.xferPorts |= 1 << uint(outPortIdx)
	if op.link != nil && r.flow == VCT {
		// Atomic whole-packet credit reservation: downstream free space
		// stays a whole number of packet slots, which the bubble flow
		// control of OFAR's escape ring (and VCT correctness in
		// general) depends on. Cut-through streaming then never blocks
		// on credits mid-packet.
		op.credits[outVC] -= pkt.Size
		if op.credits[outVC] < 0 {
			panic(fmt.Sprintf("engine: VCT claim without sufficient credits at router %d out port %d vc %d (deficit %d)",
				r.id, outPortIdx, outVC, -op.credits[outVC]))
		}
	}
	buf.claimed = true
	r.unmarkClaimable(port, vc)
	if pkt.InjectedAt < 0 {
		pkt.InjectedAt = cycle
	}
	r.trySendPhit(cycle, outPortIdx, outVC)
}

// publishPBActive refreshes the Piggybacking bits at the end of an active
// cycle and schedules the follow-up refresh of the second table buffer.
func (r *router) publishPBActive() {
	if !r.eng.pbEnabled {
		return
	}
	r.publishPB()
	r.pbCooldown = 1
}

// publishPB refreshes the Piggybacking congestion bits for the global
// channels this router owns, into the group's next-cycle table.
func (r *router) publishPB() {
	e := r.eng
	if !e.pbEnabled {
		return
	}
	topo := e.topo
	g := topo.GroupOf(r.id)
	idx := topo.IndexInGroup(r.id)
	next := e.pbNext[g]
	for port := topo.GlobalPortBase(); port < topo.EjectPortBase(); port++ {
		op := &r.out[port]
		var occ, cap int32
		for v := range op.credits {
			occ += op.capacity - op.credits[v]
			cap += op.capacity
		}
		k := topo.GlobalChannelOfPort(idx, port)
		next[k] = float64(occ) >= e.cfg.Routing.PBThreshold*float64(cap)
	}
}
