package engine

import (
	"sync"

	"repro/internal/core"
)

// Packet is one network packet. The engine moves it phit by phit; buffers
// and links reference it by pointer, so a packet is allocated once per
// injection and recycled after delivery.
type Packet struct {
	ID         int64
	Size       int32 // phits
	Phase      int32 // workload-global phase id active at generation
	CreatedAt  int64 // cycle the traffic process generated it
	InjectedAt int64 // cycle its head left the injection queue (-1 until then)

	St core.PacketState // routing state
}

var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// newPacket draws a packet from the pool.
func newPacket() *Packet { return packetPool.Get().(*Packet) }

// freePacket returns a delivered packet to the pool. Callers must not
// retain references afterwards.
func freePacket(p *Packet) {
	*p = Packet{}
	if !disablePool {
		packetPool.Put(p)
	}
}

// disablePool turns packet recycling off (diagnostics only).
var disablePool = false
