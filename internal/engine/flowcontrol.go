package engine

import "fmt"

// FlowControl selects the link-level flow control discipline.
type FlowControl int

const (
	// VCT is virtual cut-through: a packet claims an output VC only when
	// the downstream buffer can hold it entirely; streaming then never
	// stalls on credits.
	VCT FlowControl = iota
	// WH is wormhole: a packet claims an output VC as soon as one phit
	// of space is available; it may block spanning several routers,
	// creating the extended dependencies the paper discusses.
	WH
)

// String returns "VCT" or "WH".
func (f FlowControl) String() string {
	switch f {
	case VCT:
		return "VCT"
	case WH:
		return "WH"
	}
	return fmt.Sprintf("FlowControl(%d)", int(f))
}

// ParseFlowControl converts "VCT" or "WH" to the enum.
func ParseFlowControl(s string) (FlowControl, error) {
	switch s {
	case "VCT":
		return VCT, nil
	case "WH":
		return WH, nil
	}
	return 0, fmt.Errorf("engine: unknown flow control %q", s)
}

// claimNeed returns the credits required to start a packet of size phits.
func (f FlowControl) claimNeed(size int32) int32 {
	if f == VCT {
		return size
	}
	return 1
}
