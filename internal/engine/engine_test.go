package engine

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// testConfig builds a small, fast configuration; callers override fields.
func testConfig(t *testing.T, h int, spec core.Spec, load float64) Config {
	t.Helper()
	p, err := topology.New(h)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := traffic.NewBernoulli(load, 8)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topo:        p,
		Spec:        spec,
		Flow:        VCT,
		PacketPhits: 8,
		LatLocal:    4,
		LatGlobal:   16,
		Seed:        12345,
		Pattern:     traffic.NewUniform(p),
		Process:     proc,
		Warmup:      1500,
		Measure:     3000,
	}
}

func run(t *testing.T, cfg Config) metrics.Result {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSmokeMinimalUniform(t *testing.T) {
	cfg := testConfig(t, 2, core.Minimal, 0.2)
	res := run(t, cfg)
	if res.Deadlock {
		t.Fatal("deadlock under light uniform load")
	}
	if res.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	if math.Abs(res.AcceptedLoad-0.2) > 0.03 {
		t.Fatalf("accepted %.3f, want about the offered 0.2", res.AcceptedLoad)
	}
	// Base latency: up to local+global+local plus serialization.
	if res.AvgTotalLatency < 10 || res.AvgTotalLatency > 200 {
		t.Fatalf("implausible latency %.1f", res.AvgTotalLatency)
	}
	if res.AvgGlobalHops > 1.001 {
		t.Fatalf("minimal routing took %f global hops", res.AvgGlobalHops)
	}
	if res.LocalMisrouteRate != 0 || res.GlobalMisrouteRate != 0 {
		t.Fatalf("minimal routing misrouted: %f/%f",
			res.LocalMisrouteRate, res.GlobalMisrouteRate)
	}
}

func TestAllMechanismsDeliverVCT(t *testing.T) {
	for _, spec := range []core.Spec{core.Minimal, core.Valiant, core.PB, core.PAR62, core.RLM, core.OLM} {
		res := run(t, testConfig(t, 2, spec, 0.15))
		if res.Deadlock {
			t.Errorf("%v: deadlock", spec)
		}
		if res.Delivered == 0 {
			t.Errorf("%v: nothing delivered", spec)
		}
		if math.Abs(res.AcceptedLoad-0.15) > 0.03 {
			t.Errorf("%v: accepted %.3f, want about 0.15", spec, res.AcceptedLoad)
		}
	}
}

func TestWormholeMechanismsDeliver(t *testing.T) {
	for _, spec := range []core.Spec{core.Minimal, core.Valiant, core.PB, core.PAR62, core.RLM} {
		cfg := testConfig(t, 2, spec, 0.1)
		cfg.Flow = WH
		cfg.PacketPhits = 40 // larger than the 32-phit local buffers
		proc, err := traffic.NewBernoulli(0.1, 40)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Process = proc
		res := run(t, cfg)
		if res.Deadlock {
			t.Errorf("%v/WH: deadlock", spec)
		}
		if res.Delivered == 0 {
			t.Errorf("%v/WH: nothing delivered", spec)
		}
	}
}

func TestOLMRejectsWormhole(t *testing.T) {
	cfg := testConfig(t, 2, core.OLM, 0.1)
	cfg.Flow = WH
	if _, err := New(cfg); err == nil {
		t.Fatal("OLM accepted wormhole flow control")
	}
}

func TestVCTRejectsOversizedPackets(t *testing.T) {
	cfg := testConfig(t, 2, core.Minimal, 0.1)
	cfg.PacketPhits = 64
	cfg.BufLocal = 32
	if _, err := New(cfg); err == nil {
		t.Fatal("VCT accepted packets larger than the local buffers")
	}
}

func TestValidationErrors(t *testing.T) {
	good := testConfig(t, 2, core.Minimal, 0.1)

	cfg := good
	cfg.Topo = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil topology accepted")
	}
	cfg = good
	cfg.Pattern = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil pattern accepted")
	}
	cfg = good
	cfg.PacketPhits = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative packet size accepted")
	}
}

func TestRunTwiceFails(t *testing.T) {
	sim, err := New(testConfig(t, 2, core.Minimal, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

// TestPacketConservation runs with warmup 0 so the sheets see every event:
// every generated packet is injected+lost, and the live counter matches
// injected minus delivered.
func TestPacketConservation(t *testing.T) {
	cfg := testConfig(t, 2, core.RLM, 0.35)
	cfg.Warmup = 0
	cfg.Measure = 4000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var sheet metrics.Sheet
	for i := range sim.sheets {
		sheet.Merge(&sim.sheets[i])
	}
	if sheet.Generated != sheet.Injected+sheet.InjectionLost {
		t.Fatalf("generated %d != injected %d + lost %d",
			sheet.Generated, sheet.Injected, sheet.InjectionLost)
	}
	_, live, _ := sim.totals()
	if sheet.Injected-sheet.Delivered != live {
		t.Fatalf("injected %d - delivered %d != live %d",
			sheet.Injected, sheet.Delivered, live)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestSerialParallelIdentical verifies the determinism contract: any worker
// count produces bit-identical results.
func TestSerialParallelIdentical(t *testing.T) {
	results := make([]metrics.Result, 0, 3)
	for _, workers := range []int{1, 3, 8} {
		cfg := testConfig(t, 2, core.OLM, 0.3)
		cfg.Workers = workers
		results = append(results, run(t, cfg))
	}
	for i := 1; i < len(results); i++ {
		a, b := results[0], results[i]
		if a.Delivered != b.Delivered ||
			a.AcceptedLoad != b.AcceptedLoad ||
			a.AvgTotalLatency != b.AvgTotalLatency ||
			a.AvgLocalHops != b.AvgLocalHops {
			t.Fatalf("worker count changed results:\n  1: %+v\n  n: %+v", a, b)
		}
	}
}

// TestSameSeedSameResult verifies reproducibility across separate Sims.
func TestSameSeedSameResult(t *testing.T) {
	a := run(t, testConfig(t, 2, core.PAR62, 0.25))
	b := run(t, testConfig(t, 2, core.PAR62, 0.25))
	if a.Delivered != b.Delivered || a.AvgTotalLatency != b.AvgTotalLatency {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	cfg := testConfig(t, 2, core.PAR62, 0.25)
	cfg.Seed = 999
	c := run(t, cfg)
	if a.Delivered == c.Delivered && a.AvgTotalLatency == c.AvgTotalLatency {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

// TestBurstDrains checks the burst mode: all packets generated and drained,
// consumption time reported.
func TestBurstDrains(t *testing.T) {
	cfg := testConfig(t, 2, core.RLM, 0)
	burst, err := traffic.NewBurst(20, cfg.Topo.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Process = burst
	cfg.Warmup, cfg.Measure = 0, 0
	cfg.MaxCycles = 200000
	res := run(t, cfg)
	if res.Deadlock {
		t.Fatal("burst deadlocked")
	}
	want := int64(20 * cfg.Topo.Nodes)
	if res.Delivered != want {
		t.Fatalf("delivered %d packets, want %d", res.Delivered, want)
	}
	if res.ConsumptionCycles <= 0 {
		t.Fatalf("consumption cycles %d", res.ConsumptionCycles)
	}
}

// deadlockRing is an intentionally unsafe algorithm used to prove the
// watchdog fires: every packet circles the source group's ring on one VC,
// so wormhole packets larger than a buffer wedge into a credit cycle.
type deadlockRing struct {
	topo   *topology.P
	router int // the router this instance was last planned at
}

func (d *deadlockRing) Name() string          { return "deadlock-ring" }
func (d *deadlockRing) Spec() core.Spec       { return core.Spec(-1) }
func (d *deadlockRing) LocalVCs() int         { return 1 }
func (d *deadlockRing) GlobalVCs() int        { return 1 }
func (d *deadlockRing) RequiresVCT() bool     { return false }
func (d *deadlockRing) UsesHeadArrival() bool { return false }

func (d *deadlockRing) Route(v core.View, st *core.PacketState, router, size int, r *rng.PCG) core.Decision {
	idx := d.topo.IndexInGroup(router)
	next := (idx + 1) % d.topo.RoutersPerGroup
	port := d.topo.LocalPort(idx, next)
	if !v.CanClaim(port, 0, size) {
		return core.Decision{Wait: true}
	}
	return core.Decision{Port: port, VC: 0, Kind: core.KindMin, NewValiant: -1, LocalFinal: -1}
}

// BuildPlan/RoutePlanned satisfy core.Algorithm: one instance serves one
// router, so remembering the router at build time is enough state.
func (d *deadlockRing) BuildPlan(v core.View, st *core.PacketState, router, size int, r *rng.PCG, p *core.Plan) {
	d.router = router
}

func (d *deadlockRing) RoutePlanned(v core.View, p *core.Plan, size int, r *rng.PCG) core.Decision {
	return d.Route(v, nil, d.router, size, r)
}

func TestWatchdogDetectsDeadlock(t *testing.T) {
	cfg := testConfig(t, 2, core.Minimal, 0.9)
	cfg.Flow = WH
	cfg.PacketPhits = 40
	cfg.BufLocal = 8 // packets span several routers
	proc, err := traffic.NewBernoulli(0.9, 40)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Process = proc
	cfg.Warmup = 0
	cfg.Measure = 100000
	cfg.Watchdog = 2000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in the unsafe algorithm behind the validator's back.
	for i := range sim.routers {
		sim.routers[i].alg = &deadlockRing{topo: cfg.Topo}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlock {
		t.Fatal("the watchdog did not fire on a wedged ring")
	}
}

// TestEjectionBandwidth verifies that one node consumes at most one phit
// per cycle: a 2-node burst aimed at one node needs at least
// packets*size cycles.
func TestEjectionBandwidth(t *testing.T) {
	cfg := testConfig(t, 2, core.Minimal, 0)
	burst, err := traffic.NewBurst(10, cfg.Topo.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Process = burst
	cfg.Pattern = singleSink{}
	cfg.Warmup, cfg.Measure = 0, 0
	cfg.MaxCycles = 500000
	res := run(t, cfg)
	if res.Deadlock {
		t.Fatal("deadlock")
	}
	// All nodes (72) send 10 packets of 8 phits to node 0, whose eject
	// port moves 1 phit/cycle: >= (72-1)*10*8 cycles (node 0's own
	// packets eject locally too).
	minCycles := int64((cfg.Topo.Nodes - 1) * 10 * 8)
	if res.ConsumptionCycles < minCycles {
		t.Fatalf("consumed in %d cycles, ejection should bound it to >= %d",
			res.ConsumptionCycles, minCycles)
	}
}

// singleSink sends everything to node 0.
type singleSink struct{}

func (singleSink) Dest(src int, _ *rng.PCG) int { return 0 }
func (singleSink) Name() string                 { return "sink0" }

// TestInjectionLossAccounting saturates a tiny injection queue and checks
// losses are counted for steady traffic.
func TestInjectionLossAccounting(t *testing.T) {
	cfg := testConfig(t, 2, core.Minimal, 2.0) // impossible offered load
	cfg.InjQueuePackets = 2
	cfg.Warmup = 0
	cfg.Measure = 2000
	proc, err := traffic.NewBernoulli(2.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Process = proc
	res := run(t, cfg)
	if res.InjectionLost == 0 {
		t.Fatal("no injection losses under 2.0 offered load")
	}
	if res.AcceptedLoad > 1.0 {
		t.Fatalf("accepted load %f exceeds the physical limit", res.AcceptedLoad)
	}
}

func BenchmarkCycleH2UniformRLM(b *testing.B) {
	p, _ := topology.New(2)
	proc, _ := traffic.NewBernoulli(0.3, 8)
	cfg := Config{
		Topo: p, Spec: core.RLM, Flow: VCT, PacketPhits: 8,
		Seed: 1, Pattern: traffic.NewUniform(p), Process: proc,
		Warmup: 0, Measure: 1,
	}
	sim, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.stepCycle()
	}
	b.ReportMetric(float64(p.Routers), "routers")
}
