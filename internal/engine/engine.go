// Package engine is the cycle-accurate dragonfly network simulator:
// FIFO input-buffered routers with per-VC buffers, credit-based VCT or
// wormhole flow control, phit-granularity links with configurable latency,
// and a crossbar moving at most one phit per input and per output port per
// cycle — the model used by the paper's in-house single-cycle simulator.
//
// All cross-router communication rides on time-indexed single-writer
// single-reader rings, so a simulation can be executed by several workers
// (one barrier per cycle) with results identical to serial execution.
package engine

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Config describes one simulation run.
type Config struct {
	Topo *topology.P
	Spec core.Spec
	// Routing carries the misrouting trigger parameters; Routing.Topo is
	// filled from Topo automatically.
	Routing core.Config

	Flow        FlowControl
	PacketPhits int // packet size (8 for the paper's VCT runs, 80 for WH)

	BufLocal        int // phits per local input VC (paper: 32)
	BufGlobal       int // phits per global input VC (paper: 256)
	InjQueuePackets int // injection queue depth in packets
	LatLocal        int // local link latency in cycles (paper: 10)
	LatGlobal       int // global link latency in cycles (paper: 100)

	Seed    uint64
	Workers int // parallel execution shards; <=1 runs serially

	Pattern traffic.Pattern
	Process traffic.Process

	Warmup  int64 // steady-state: cycles before measurement starts
	Measure int64 // steady-state: measured cycles

	MaxCycles int64 // burst mode safety bound (0 = 50x warm+measure)
	Watchdog  int64 // quiet cycles before declaring deadlock (0 = 20000)
}

// setDefaults fills unset fields with the paper's defaults.
func (c *Config) setDefaults() {
	if c.PacketPhits == 0 {
		c.PacketPhits = 8
	}
	if c.BufLocal == 0 {
		c.BufLocal = 32
	}
	if c.BufGlobal == 0 {
		c.BufGlobal = 256
	}
	if c.InjQueuePackets == 0 {
		c.InjQueuePackets = 16
	}
	if c.LatLocal == 0 {
		c.LatLocal = 10
	}
	if c.LatGlobal == 0 {
		c.LatGlobal = 100
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Watchdog == 0 {
		c.Watchdog = 20000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50 * (c.Warmup + c.Measure + 20000)
	}
}

// validate rejects configurations the mechanisms cannot support.
func (c *Config) validate() error {
	if c.Topo == nil {
		return fmt.Errorf("engine: nil topology")
	}
	if c.Pattern == nil || c.Process == nil {
		return fmt.Errorf("engine: traffic pattern and process are required")
	}
	if c.PacketPhits < 1 {
		return fmt.Errorf("engine: packet size %d phits", c.PacketPhits)
	}
	if c.Flow == VCT {
		if c.BufLocal < c.PacketPhits || c.BufGlobal < c.PacketPhits {
			return fmt.Errorf("engine: VCT needs buffers >= packet size (%d/%d < %d)",
				c.BufLocal, c.BufGlobal, c.PacketPhits)
		}
	}
	return nil
}

// Sim is an instantiated simulation. A Sim runs once; build a new one per
// experiment point.
type Sim struct {
	cfg     Config
	topo    *topology.P
	routers []router
	pattern traffic.Pattern
	process traffic.Process

	pbEnabled   bool
	pbPublished [][]bool
	pbNext      [][]bool

	sheets []metrics.Sheet // one per worker

	cycle int64
	ran   bool
}

// New builds the network: routers, buffers, link rings and routing
// instances.
func New(cfg Config) (*Sim, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := cfg.Topo
	cfg.Routing.Topo = p
	if cfg.Routing.RemoteCandidates == 0 {
		cfg.Routing.RemoteCandidates = 2
	}
	// Mirror core.New's defaults here: the engine reads these fields
	// itself (publishPB uses PBThreshold).
	if cfg.Routing.Threshold <= 0 {
		cfg.Routing.Threshold = 0.45
	}
	if cfg.Routing.PBThreshold <= 0 {
		cfg.Routing.PBThreshold = 0.35
	}
	probe, err := core.New(cfg.Spec, cfg.Routing)
	if err != nil {
		return nil, err
	}
	if probe.RequiresVCT() && cfg.Flow != VCT {
		return nil, fmt.Errorf("engine: %s requires VCT flow control", probe.Name())
	}
	localVCs, globalVCs := probe.LocalVCs(), probe.GlobalVCs()

	s := &Sim{
		cfg:       cfg,
		topo:      p,
		pattern:   cfg.Pattern,
		process:   cfg.Process,
		pbEnabled: cfg.Spec == core.PB,
		routers:   make([]router, p.Routers),
		sheets:    make([]metrics.Sheet, cfg.Workers),
	}
	if s.pbEnabled {
		s.pbPublished = make([][]bool, p.Groups)
		s.pbNext = make([][]bool, p.Groups)
		for g := range s.pbPublished {
			s.pbPublished[g] = make([]bool, p.ChannelsPerGrp)
			s.pbNext[g] = make([]bool, p.ChannelsPerGrp)
		}
	}

	for id := range s.routers {
		r := &s.routers[id]
		r.id = id
		r.eng = s
		r.alg, err = core.New(cfg.Spec, cfg.Routing)
		if err != nil {
			return nil, err
		}
		r.routeRand = rng.New(cfg.Seed, uint64(id)*2+1)
		r.nodeRand = make([]*rng.PCG, p.H)
		for k := range r.nodeRand {
			r.nodeRand[k] = rng.New(cfg.Seed, uint64(p.NodeID(id, k))*2+2_000_000)
		}
		r.in = make([]inPort, p.Ports)
		r.out = make([]outPort, p.Ports)
		r.portSent = make([]bool, p.Ports)
		r.inputUsed = make([]bool, p.Ports)
		for port := 0; port < p.Ports; port++ {
			switch {
			case p.IsLocalPort(port):
				r.in[port].vcs = make([]vcBuffer, localVCs)
				for v := range r.in[port].vcs {
					r.in[port].vcs[v].init(cfg.BufLocal, cfg.PacketPhits)
				}
				r.out[port] = makeOutPort(localVCs, cfg.BufLocal)
			case p.IsGlobalPort(port):
				r.in[port].vcs = make([]vcBuffer, globalVCs)
				for v := range r.in[port].vcs {
					r.in[port].vcs[v].init(cfg.BufGlobal, cfg.PacketPhits)
				}
				r.out[port] = makeOutPort(globalVCs, cfg.BufGlobal)
				r.out[port].global = true
			default: // injection (input) / ejection (output)
				r.in[port].vcs = make([]vcBuffer, 1)
				r.in[port].vcs[0].init(cfg.InjQueuePackets*cfg.PacketPhits, cfg.PacketPhits)
				r.out[port].transfers = make([]transfer, 1)
			}
		}
	}

	// Wire the links: the sender owns the link object; the receiver's
	// input port points at it.
	for id := range s.routers {
		r := &s.routers[id]
		for port := 0; port < p.EjectPortBase(); port++ {
			lat := cfg.LatLocal
			if p.IsGlobalPort(port) {
				lat = cfg.LatGlobal
			}
			l := newLink(lat)
			r.out[port].link = l
			rr, rp := p.LinkTarget(id, port)
			s.routers[rr].in[rp].link = l
		}
	}
	return s, nil
}

func makeOutPort(vcs, capacity int) outPort {
	op := outPort{
		credits:   make([]int32, vcs),
		transfers: make([]transfer, vcs),
		capacity:  int32(capacity),
	}
	for v := range op.credits {
		op.credits[v] = int32(capacity)
	}
	return op
}

// consumeFinite forwards a successful injection to finite processes.
func (s *Sim) consumeFinite(node int) {
	s.process.Consume(node)
}

// stepCycle advances the whole network one cycle, serially.
func (s *Sim) stepCycle() {
	for i := range s.routers {
		s.routers[i].step(s.cycle, &s.sheets[0])
	}
	s.finishCycle()
}

// finishCycle performs the end-of-cycle bookkeeping shared by the serial
// and parallel paths.
func (s *Sim) finishCycle() {
	if s.pbEnabled {
		s.pbPublished, s.pbNext = s.pbNext, s.pbPublished
	}
	s.cycle++
}

// totals sums the per-router progress counters.
func (s *Sim) totals() (moved, live, generated int64) {
	for i := range s.routers {
		moved += s.routers[i].phitsMoved
		live += s.routers[i].live
		generated += s.routers[i].generated
	}
	return
}

// lastDelivery returns the latest delivery cycle across routers.
func (s *Sim) lastDelivery() int64 {
	var last int64 = -1
	for i := range s.routers {
		if s.routers[i].lastDeliveryCycle > last {
			last = s.routers[i].lastDeliveryCycle
		}
	}
	return last
}

// resetSheets clears measurement state at the warmup boundary.
func (s *Sim) resetSheets() {
	for i := range s.sheets {
		s.sheets[i].Reset()
	}
}

// Run executes the experiment: warmup plus measurement for steady-state
// traffic processes, or run-to-drain for finite (burst) processes. It
// returns the digested metrics. A deadlock detected by the watchdog is
// reported through Result.Deadlock, not an error.
func (s *Sim) Run() (metrics.Result, error) {
	if s.ran {
		return metrics.Result{}, fmt.Errorf("engine: Sim.Run called twice")
	}
	s.ran = true

	var stop func()
	step := s.stepCycle
	if s.cfg.Workers > 1 {
		step, stop = s.startWorkers()
		defer stop()
	}

	deadlock := false
	if s.process.Finite() {
		deadlock = s.runBurst(step)
	} else {
		deadlock = s.runSteady(step)
	}

	var sheet metrics.Sheet
	for i := range s.sheets {
		sheet.Merge(&s.sheets[i])
	}
	cycles := s.cfg.Measure
	if s.process.Finite() {
		cycles = s.cycle
	}
	p := s.topo
	res := metrics.Digest(&sheet, cycles, p.Nodes,
		p.Routers*p.LocalPorts, p.Routers*p.GlobalPorts)
	res.Mechanism = s.cfg.Spec.String()
	res.Pattern = s.pattern.Name()
	res.Deadlock = deadlock
	if s.process.Finite() {
		res.ConsumptionCycles = s.lastDelivery()
	}
	return res, nil
}

// runSteady runs warmup then measurement, returning true on deadlock.
func (s *Sim) runSteady(step func()) bool {
	var lastMoved int64
	quiet := int64(0)
	total := s.cfg.Warmup + s.cfg.Measure
	for s.cycle < total {
		if s.cycle == s.cfg.Warmup {
			s.resetSheets()
		}
		step()
		moved, live, _ := s.totals()
		if moved == lastMoved && live > 0 {
			quiet++
			if quiet >= s.cfg.Watchdog {
				return true
			}
		} else {
			quiet = 0
		}
		lastMoved = moved
	}
	return false
}

// runBurst runs a finite process until every packet drained, returning
// true on deadlock (or on exceeding MaxCycles, which is reported the same
// way since the network failed to drain).
func (s *Sim) runBurst(step func()) bool {
	target := s.process.Total()
	var lastMoved int64
	quiet := int64(0)
	for s.cycle < s.cfg.MaxCycles {
		step()
		moved, live, generated := s.totals()
		if generated >= target && live == 0 {
			return false
		}
		if moved == lastMoved && live > 0 {
			quiet++
			if quiet >= s.cfg.Watchdog {
				return true
			}
		} else {
			quiet = 0
		}
		lastMoved = moved
	}
	return true
}

// startWorkers launches persistent shard workers and returns a step
// function driving one barrier-synchronized cycle, plus a stop function.
func (s *Sim) startWorkers() (step func(), stop func()) {
	n := s.cfg.Workers
	if n > len(s.routers) {
		n = len(s.routers)
	}
	starts := make([]chan int64, n)
	var wg sync.WaitGroup
	per := (len(s.routers) + n - 1) / n
	for w := 0; w < n; w++ {
		starts[w] = make(chan int64, 1)
		lo, hi := w*per, (w+1)*per
		if hi > len(s.routers) {
			hi = len(s.routers)
		}
		go func(w, lo, hi int) {
			for cycle := range starts[w] {
				for i := lo; i < hi; i++ {
					s.routers[i].step(cycle, &s.sheets[w])
				}
				wg.Done()
			}
		}(w, lo, hi)
	}
	step = func() {
		wg.Add(n)
		for w := 0; w < n; w++ {
			starts[w] <- s.cycle
		}
		wg.Wait()
		s.finishCycle()
	}
	stop = func() {
		for w := 0; w < n; w++ {
			close(starts[w])
		}
	}
	return step, stop
}

// Cycle returns the current simulation cycle (for tests and tooling).
func (s *Sim) Cycle() int64 { return s.cycle }
