// Package engine is the cycle-accurate dragonfly network simulator:
// FIFO input-buffered routers with per-VC buffers, credit-based VCT or
// wormhole flow control, phit-granularity links with configurable latency,
// and a crossbar moving at most one phit per input and per output port per
// cycle — the model used by the paper's in-house single-cycle simulator.
//
// All cross-router communication rides on time-indexed single-writer
// single-reader rings, so a simulation can be executed by several workers
// (one barrier per cycle) with results identical to serial execution.
//
// Stepping is activity-driven: senders record every phit and credit they
// put in flight on the receiving router's per-cycle arrival schedule,
// routers count the packet entries buffered in their input VCs, and a
// router with nothing buffered and nothing arriving skips all per-port
// scan work for the cycle (injection still runs so the traffic RNG
// streams advance deterministically). Progress totals for the watchdog
// are maintained incrementally per worker instead of being re-summed
// over all routers every cycle, and the parallel executor synchronizes
// cycles with an atomic generation barrier over group-contiguous shards.
package engine

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ResultsVersion identifies the simulation semantics of this engine build.
// Result caches (internal/exp) key entries on it, so it MUST be bumped
// whenever a change alters any metrics.Result field for some configuration
// — and left alone for pure-performance changes that keep results
// bit-identical (the activity-driven refactor, for example, did not bump
// it). Version 2: phased workloads, windowed timelines and per-phase
// digests joined the result surface.
const ResultsVersion = 2

// Config describes one simulation run.
type Config struct {
	Topo *topology.P
	Spec core.Spec
	// Routing carries the misrouting trigger parameters; Routing.Topo is
	// filled from Topo automatically.
	Routing core.Config

	Flow        FlowControl
	PacketPhits int // packet size (8 for the paper's VCT runs, 80 for WH)

	BufLocal        int // phits per local input VC (paper: 32)
	BufGlobal       int // phits per global input VC (paper: 256)
	InjQueuePackets int // injection queue depth in packets
	LatLocal        int // local link latency in cycles (paper: 10)
	LatGlobal       int // global link latency in cycles (paper: 100)

	Seed uint64
	// Workers is the requested parallel-stepping width; <=1 runs serially.
	// The engine clamps it to runtime.GOMAXPROCS(0) (extra workers on an
	// oversubscribed machine only pay barrier cost) and to the router
	// count. The clamp never changes results: serial and N-worker
	// execution are bit-identical by contract.
	Workers int

	// Workload, when non-nil, drives injection: each node follows the
	// phase schedule of its workload job. When nil, Pattern and Process
	// describe the classic single-phase workload over all nodes.
	Workload *traffic.Workload
	Pattern  traffic.Pattern
	Process  traffic.Process

	// WindowCycles, when positive, collects a metrics.Timeline of
	// fixed-width windows over the whole run (see Sim.Timeline).
	WindowCycles int64

	// Faults, when non-nil, is the initial set of failed links (the engine
	// works on a private clone). FaultEvents lists mid-run link kills and
	// repairs, sorted by cycle; they are applied in the serial section
	// between cycles, so routing only ever observes fault state that is
	// constant within a cycle — which keeps worker-count determinism.
	// Configurations with neither are completely unaffected: the fault
	// queries short-circuit and results stay bit-identical.
	Faults      *topology.FaultSet
	FaultEvents []FaultEvent

	// StaleCycles delays the *routing view* of every fault event by this
	// many cycles: a link killed (or repaired) at cycle C changes flow
	// control immediately, but the routing-view tables the mechanisms
	// consult (LinkDown/RouteDown/LocalDown) are only recomputed at cycle
	// C+StaleCycles — modeling a fabric manager that needs time to detect
	// the event, broadcast it, and recompute routing tables. Zero (the
	// default) recomputes in the same serial section the event applies
	// in, which is bit-identical to instantaneous link-state knowledge.
	// Initial faults are always known at boot and never stale.
	StaleCycles int64

	Warmup  int64 // steady-state: cycles before measurement starts
	Measure int64 // steady-state: measured cycles

	MaxCycles int64 // burst mode safety bound (0 = 50x warm+measure)
	Watchdog  int64 // quiet cycles before declaring deadlock (0 = 20000)

	// NoFastForward disables the whole-fabric quiet-cycle fast-forward
	// (see Sim.tryFastForward). The fast-forward is bit-identical by
	// construction; this switch exists so tests and benchmarks can compare
	// against the cycle-by-cycle path.
	NoFastForward bool
}

// setDefaults fills unset fields with the paper's defaults.
func (c *Config) setDefaults() {
	if c.PacketPhits == 0 {
		c.PacketPhits = 8
	}
	if c.BufLocal == 0 {
		c.BufLocal = 32
	}
	if c.BufGlobal == 0 {
		c.BufGlobal = 256
	}
	if c.InjQueuePackets == 0 {
		c.InjQueuePackets = 16
	}
	if c.LatLocal == 0 {
		c.LatLocal = 10
	}
	if c.LatGlobal == 0 {
		c.LatGlobal = 100
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Watchdog == 0 {
		c.Watchdog = 20000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50 * (c.Warmup + c.Measure + 20000)
	}
}

// validate rejects configurations the mechanisms cannot support.
func (c *Config) validate() error {
	if c.Topo == nil {
		return fmt.Errorf("engine: nil topology")
	}
	if c.Workload == nil && (c.Pattern == nil || c.Process == nil) {
		return fmt.Errorf("engine: a workload or a traffic pattern and process are required")
	}
	if c.WindowCycles < 0 {
		return fmt.Errorf("engine: negative metrics window %d", c.WindowCycles)
	}
	if c.PacketPhits < 1 {
		return fmt.Errorf("engine: packet size %d phits", c.PacketPhits)
	}
	if c.Topo.Ports > 63 {
		// The activity bitmasks (router.claimPorts, router.xferPorts)
		// hold one bit per port, and the fault-drop sink claims bit
		// Topo.Ports; 63 ports covers every dragonfly up to h=16
		// (16,416 routers, 262,656 nodes).
		return fmt.Errorf("engine: %d ports per router exceeds the 63-port activity-mask limit", c.Topo.Ports)
	}
	if c.Faults != nil && c.Faults.Topology().Routers != c.Topo.Routers {
		return fmt.Errorf("engine: fault set describes a %d-router topology, network has %d",
			c.Faults.Topology().Routers, c.Topo.Routers)
	}
	if c.StaleCycles < 0 {
		return fmt.Errorf("engine: negative StaleCycles %d", c.StaleCycles)
	}
	prevAt := int64(0)
	for i, ev := range c.FaultEvents {
		if ev.At < prevAt {
			return fmt.Errorf("engine: fault events out of order (event %d at cycle %d after %d)",
				i, ev.At, prevAt)
		}
		prevAt = ev.At
		if ev.Router < 0 || ev.Router >= c.Topo.Routers {
			return fmt.Errorf("engine: fault event %d names no router (router %d)", i, ev.Router)
		}
		if ev.Port != WholeRouter && !(c.Topo.IsLocalPort(ev.Port) || c.Topo.IsGlobalPort(ev.Port)) {
			return fmt.Errorf("engine: fault event %d names no link (router %d port %d)",
				i, ev.Router, ev.Port)
		}
	}
	if c.Flow == VCT {
		if c.BufLocal < c.PacketPhits || c.BufGlobal < c.PacketPhits {
			return fmt.Errorf("engine: VCT needs buffers >= packet size (%d/%d < %d)",
				c.BufLocal, c.BufGlobal, c.PacketPhits)
		}
	}
	return nil
}

// WholeRouter, used as a FaultEvent.Port, marks a whole-router event:
// every link port of Router fails (or, with Repair, recovers) as one
// event, and the router's attached nodes are parked (released) with it.
const WholeRouter = -1

// FaultEvent is one scheduled link state change: the full-duplex link on
// (Router, Port) fails (or, with Repair, comes back) at the start of cycle
// At. Port WholeRouter fails or revives the whole router instead. Events
// at or before cycle 0 are folded into the initial fault set.
type FaultEvent struct {
	At     int64
	Repair bool
	Router int
	Port   int
}

// progress holds one worker's incrementally-maintained progress counters.
// The per-cycle watchdog reads their sum instead of re-scanning every
// router. occ and inflight are deltas: routers may migrate between workers
// when shards rebalance, so one worker's counter can go negative — only
// the sum over all workers is meaningful (and exact). Padded so workers
// never share a cache line.
type progress struct {
	moved     int64 // crossbar phit movements (all-time)
	live      int64 // injected minus delivered packets
	generated int64 // all-time injected packets
	occ       int64 // buffered packet entries currently held
	inflight  int64 // phits + credits in flight (sends minus receipts)
	_         [3]int64
}

// simShard is one contiguous router range of the parallel executor. The
// owning worker accumulates activity (routers seen with buffered work per
// cycle); the serial section periodically reassigns shards to workers by
// that observed load (see rebalanceShards).
type simShard struct {
	lo, hi   int
	activity int64
}

const (
	// shardsPerWorker decouples shard granularity from worker count:
	// more, smaller shards give the load balancer room to move work
	// without splitting dragonfly groups.
	shardsPerWorker = 4
	// rebalanceInterval is the cycle period of shard reassignment.
	rebalanceInterval = 1024
)

// Sim is an instantiated simulation. A Sim runs once; build a new one per
// experiment point.
type Sim struct {
	cfg      Config
	topo     *topology.P
	tab      *core.Tables // routing tables shared by every router's Algorithm
	routers  []router
	workload *traffic.Workload

	pbEnabled   bool
	pbPublished [][]bool
	pbNext      [][]bool

	// workers is the effective parallel width: Config.Workers clamped to
	// runtime.GOMAXPROCS(0) and the router count at build time.
	workers  int
	sheets   []metrics.Sheet // one per worker
	progress []progress      // one per worker

	// shards and assign belong to the parallel executor: assign[w] lists
	// the shard indices worker w steps. Both are mutated only in the
	// serial section between cycles (rebalanceShards); the cycle barrier
	// publishes the updates to the workers.
	shards []simShard
	assign [][]int32

	// Quiet-cycle fast-forward state: ffCursor holds per-job phase
	// cursors for the eligibility scan, ffRescanAt suppresses rescans
	// until the cycle a failed scan said anything could change, and
	// ffJumped counts cycles skipped (observability for tests and tools).
	ffCursor   []int32
	ffRescanAt int64
	ffJumped   int64

	// faults is the live link-failure state (a private clone of
	// Config.Faults), mutated only between cycles; faulted is true as soon
	// as a run has or can develop failed links, and gates every fault
	// query so fault-free runs keep their exact pre-fault behavior.
	faults    *topology.FaultSet
	faulted   bool
	nextFault int // index of the first unapplied Config.FaultEvents entry

	// hopLimit, when positive, drops any packet whose hop count exceeds
	// it (the livelock guard for whole-router failures); zero for
	// fault-free and link-only fault runs, whose behavior it must not
	// touch.
	hopLimit int32

	// viewFaults shadows faults at the routing view's (possibly stale)
	// event horizon, so the view loop can tell real link-state changes
	// from no-ops — a repair landing under a still-dead endpoint router
	// must not revive the link in the routing tables. Only allocated when
	// events remain after the boot-time fold.
	viewFaults *topology.FaultSet

	// Routing-view fault tables: the link state the routing mechanisms
	// see, recomputed incrementally in the serial section when (possibly
	// stale) fault events apply. routeDown is the global-channel matrix,
	// flattened [Groups x Groups]; localDown is the per-group local-link
	// matrix, flattened [Groups x RPG x RPG]; per-router port masks live
	// in router.routeDead. With Config.StaleCycles == 0 the view tracks
	// the physical state exactly (updated in the same serial section), so
	// results are bit-identical to instantaneous link-state knowledge.
	routeDown      []bool
	localDown      []bool
	nextRouteFault int // first Config.FaultEvents entry the view has not absorbed

	// routeEpoch numbers the routing-view recomputations: it bumps
	// whenever fault events change the view, invalidating every router's
	// cached head plans (which bake the fault view into their candidate
	// geometry). Fault-free runs keep epoch 1 forever, so plans live
	// until their head packet moves on.
	routeEpoch uint64

	cycle int64
	ran   bool

	timeline     *metrics.Timeline
	phaseDigests []metrics.PhaseDigest
}

// New builds the network: routers, buffers, link rings and routing
// instances.
func New(cfg Config) (*Sim, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := cfg.Topo
	cfg.Routing.Topo = p
	if cfg.Routing.RemoteCandidates == 0 {
		cfg.Routing.RemoteCandidates = 2
	}
	// Mirror core.New's defaults here: the engine reads these fields
	// itself (publishPB uses PBThreshold).
	if cfg.Routing.Threshold <= 0 {
		cfg.Routing.Threshold = 0.45
	}
	if cfg.Routing.PBThreshold <= 0 {
		cfg.Routing.PBThreshold = 0.35
	}
	// One shared table set per simulation: minimal next-hop rows, the
	// global-port matrix and the pair-restricted detour candidate lists
	// are computed here once and consulted read-only by every router.
	tab, err := core.NewTables(cfg.Spec, cfg.Routing)
	if err != nil {
		return nil, err
	}
	probe := tab.NewAlgorithm()
	if probe.RequiresVCT() && cfg.Flow != VCT {
		return nil, fmt.Errorf("engine: %s requires VCT flow control", probe.Name())
	}
	localVCs, globalVCs := probe.LocalVCs(), probe.GlobalVCs()
	if localVCs > 16 || globalVCs > 16 {
		// router.claimVCs holds one claimable bit per VC in a uint16;
		// without this guard a wider algorithm would silently lose heads.
		return nil, fmt.Errorf("engine: %d/%d VCs per port exceeds the 16-VC activity-mask limit",
			localVCs, globalVCs)
	}

	w := cfg.Workload
	if w == nil {
		w, err = traffic.NewSingleWorkload(cfg.Pattern, cfg.Process, p.Nodes)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	// Effective worker count: more workers than CPUs only adds barrier
	// latency (results are identical at any width, so the clamp is free),
	// and more workers than routers leaves some idle.
	workers := cfg.Workers
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers > p.Routers {
		workers = p.Routers
	}
	s := &Sim{
		cfg:        cfg,
		topo:       p,
		tab:        tab,
		workload:   w,
		pbEnabled:  cfg.Spec == core.PB,
		routers:    make([]router, p.Routers),
		workers:    workers,
		sheets:     make([]metrics.Sheet, workers),
		progress:   make([]progress, workers),
		ffCursor:   make([]int32, len(w.Jobs)),
		routeEpoch: 1, // zero-valued plans are invalid by construction
	}
	if cfg.Faults != nil || len(cfg.FaultEvents) > 0 {
		s.faulted = true
		if cfg.Faults != nil {
			s.faults = cfg.Faults.Clone()
		} else {
			s.faults = topology.NewFaultSet(p)
		}
	}
	// Per-phase digests only earn their keep on multi-phase workloads; a
	// one-phase digest would duplicate the main Result.
	trackedPhases := 0
	if w.TotalPhases() > 1 {
		trackedPhases = w.TotalPhases()
	}
	for i := range s.sheets {
		s.sheets[i].Configure(cfg.WindowCycles, trackedPhases)
	}
	if s.pbEnabled {
		s.pbPublished = make([][]bool, p.Groups)
		s.pbNext = make([][]bool, p.Groups)
		for g := range s.pbPublished {
			s.pbPublished[g] = make([]bool, p.ChannelsPerGrp)
			s.pbNext[g] = make([]bool, p.ChannelsPerGrp)
		}
	}

	// One arena for every router's arrival-schedule slots, laid out in
	// router (and therefore shard) order: the cross-worker-written slots
	// stay out of the router structs' cache lines, and building a large
	// fabric costs one allocation instead of one per router.
	maxLat := cfg.LatLocal
	if cfg.LatGlobal > maxLat {
		maxLat = cfg.LatGlobal
	}
	slotsPer := arrivalSlotCount(maxLat)
	arrSlots := make([]arrivalSlot, p.Routers*slotsPer)

	for id := range s.routers {
		r := &s.routers[id]
		r.id = id
		r.group = int32(p.GroupOf(id))
		r.eng = s
		r.flow = cfg.Flow
		r.sheet = &s.sheets[0]
		r.prog = &s.progress[0]
		r.alg = tab.NewAlgorithm()
		r.routeRand = rng.New(cfg.Seed, uint64(id)*2+1)
		r.nodeRand = make([]*rng.PCG, p.H)
		for k := range r.nodeRand {
			r.nodeRand[k] = rng.New(cfg.Seed, uint64(p.NodeID(id, k))*2+2_000_000)
		}
		// One extra output port (index p.Ports) is the fault-drop sink: a
		// linkless pseudo-output that drains unroutable packets through
		// the ordinary transfer machinery — one phit per cycle, credits
		// returned upstream as usual — so conservation and determinism
		// hold for faulted runs. Fault-free runs never claim it.
		r.in = make([]inPort, p.Ports)
		r.out = make([]outPort, p.Ports+1)
		r.pktSize = cfg.PacketPhits
		r.needHeadFull = probe.UsesHeadArrival()
		// Router-wide backing arrays for all ports' credit counters,
		// transfer slots, input VC buffers and head plans: the claim and
		// streaming paths then walk contiguous memory instead of one
		// allocation per port. VC entry rings are allocated lazily on
		// first use (see vcBuffer), so a buffer no traffic ever reaches
		// costs only its header — the bulk of a large fabric's idle state.
		linkVCs := p.LocalPorts*localVCs + p.GlobalPorts*globalVCs
		inVCs := linkVCs + p.H
		injCap := cfg.InjQueuePackets * cfg.PacketPhits
		creditsAll := make([]int32, linkVCs)
		transfersAll := make([]transfer, linkVCs+p.H+1)
		vcsAll := make([]vcBuffer, inVCs)
		r.plans = make([]core.Plan, inVCs)
		r.planOff = make([]int32, p.Ports)
		r.out[p.Ports].transfers = transfersAll[len(transfersAll)-1:]
		vcOff := 0
		takeVCs := func(n, capPhits int) []vcBuffer {
			vcs := vcsAll[vcOff : vcOff+n : vcOff+n]
			vcOff += n
			entN := ringEntries(capPhits, cfg.PacketPhits)
			for i := range vcs {
				vcs[i].init(capPhits, entN)
			}
			return vcs
		}
		r.claimVCs = make([]uint16, p.Ports)
		r.phaseCur = make([]int32, len(w.Jobs))
		r.nodePhase = make([]nodePhase, p.H)
		r.arrivals.init(arrSlots[id*slotsPer:(id+1)*slotsPer:(id+1)*slotsPer], workers <= 1)
		off := 0
		for port := 0; port < p.Ports; port++ {
			r.planOff[port] = int32(vcOff)
			switch {
			case p.IsLocalPort(port):
				r.in[port].vcs = takeVCs(localVCs, cfg.BufLocal)
				r.out[port] = makeOutPort(creditsAll[off:off+localVCs:off+localVCs],
					transfersAll[off:off+localVCs:off+localVCs], cfg.BufLocal)
				off += localVCs
			case p.IsGlobalPort(port):
				r.in[port].vcs = takeVCs(globalVCs, cfg.BufGlobal)
				r.out[port] = makeOutPort(creditsAll[off:off+globalVCs:off+globalVCs],
					transfersAll[off:off+globalVCs:off+globalVCs], cfg.BufGlobal)
				r.out[port].global = true
				off += globalVCs
			default: // injection (input) / ejection (output)
				r.in[port].vcs = takeVCs(1, injCap)
				r.out[port].transfers = transfersAll[linkVCs+port-p.EjectPortBase():][:1:1]
			}
		}
	}

	// Wire the links: the sender owns the link object; the receiver's
	// input port points at it. Each side also exposes its pending-arrival
	// counter so the opposite side can announce in-flight phits/credits.
	for id := range s.routers {
		r := &s.routers[id]
		for port := 0; port < p.EjectPortBase(); port++ {
			lat := cfg.LatLocal
			if p.IsGlobalPort(port) {
				lat = cfg.LatGlobal
			}
			l := newLink(lat)
			r.out[port].link = l
			rr, rp := p.LinkTarget(id, port)
			s.routers[rr].in[rp].link = l
			l.phitSched = &s.routers[rr].arrivals
			l.phitPort = int16(rp)
			l.creditSched = &r.arrivals
			l.creditPort = int16(port)
		}
	}
	if s.faulted {
		// Fold events already due at cycle 0 into the initial state, then
		// mirror the masks into the routers. Initial faults are known at
		// boot: the routing-view tables start from the same state (no
		// staleness applies), and the folded events are absorbed by the
		// view too so the stale queue never replays them.
		for s.nextFault < len(cfg.FaultEvents) && cfg.FaultEvents[s.nextFault].At <= 0 {
			ev := cfg.FaultEvents[s.nextFault]
			if ev.Port == WholeRouter {
				s.faults.SetRouter(ev.Router, !ev.Repair)
			} else {
				s.faults.SetLink(ev.Router, ev.Port, !ev.Repair)
			}
			s.nextFault++
		}
		s.nextRouteFault = s.nextFault
		for id := range s.routers {
			s.routers[id].deadPorts = s.faults.PortMask(id)
			s.routers[id].parked = s.faults.RouterDown(id)
		}
		s.rebuildRouteView()
		if s.nextRouteFault < len(cfg.FaultEvents) {
			s.viewFaults = s.faults.Clone()
		}
		// Livelock guard, armed only for whole-router failures: a dead
		// router severs OFAR's escape ring (losing its delivery
		// guarantee) and can leave adaptive mechanisms bouncing a packet
		// between live routers indefinitely. Packets exceeding a budget
		// of several full escape-ring laps are shed as fault drops.
		// Pure link faults leave the guard off, so legacy fault configs
		// run bit-identically to builds without it.
		if s.faults.DownRouters() > 0 {
			s.hopLimit = int32(4*(p.Routers+p.Groups) + 64)
		} else {
			for _, ev := range cfg.FaultEvents[s.nextFault:] {
				if ev.Port == WholeRouter {
					s.hopLimit = int32(4*(p.Routers+p.Groups) + 64)
					break
				}
			}
		}
	}
	return s, nil
}

// rebuildRouteView recomputes the routing-view fault tables from scratch
// out of the current physical fault state: the full recomputation a fabric
// manager performs at boot. Mid-run events use the incremental
// applyRouteView instead.
// viewRouterDead reports whether the routing view (stale by
// Config.StaleCycles after fault events) considers router r entirely
// failed. Link-level faults never report true here.
func (s *Sim) viewRouterDead(r int) bool {
	f := s.viewFaults
	if f == nil {
		f = s.faults
	}
	return f.RouterDown(r)
}

func (s *Sim) rebuildRouteView() {
	p := s.topo
	rpg := p.RoutersPerGroup
	s.routeDown = make([]bool, p.Groups*p.Groups)
	s.localDown = make([]bool, p.Groups*rpg*rpg)
	for id := range s.routers {
		mask := s.faults.PortMask(id)
		s.routers[id].routeDead = mask
		for port := 0; mask != 0; port++ {
			if mask&(1<<uint(port)) == 0 {
				continue
			}
			mask &^= 1 << uint(port)
			s.applyRouteView(id, port, true)
		}
	}
}

// applyRouteView folds one link state change into the routing-view tables:
// the two endpoint routers' port masks, and the global-channel or
// local-link matrix entry for both directions of the full-duplex link.
// This is the incremental table recomputation a fault broadcast triggers;
// it runs only in the serial section between cycles.
func (s *Sim) applyRouteView(router, port int, down bool) {
	p := s.topo
	rr, rp := p.LinkTarget(router, port)
	bit, rbit := uint64(1)<<uint(port), uint64(1)<<uint(rp)
	if down {
		s.routers[router].routeDead |= bit
		s.routers[rr].routeDead |= rbit
	} else {
		s.routers[router].routeDead &^= bit
		s.routers[rr].routeDead &^= rbit
	}
	if p.IsGlobalPort(port) {
		g, tg := p.GroupOf(router), p.GroupOf(rr)
		s.routeDown[g*p.Groups+tg] = down
		s.routeDown[tg*p.Groups+g] = down
	} else {
		rpg := p.RoutersPerGroup
		g := p.GroupOf(router)
		i, j := p.IndexInGroup(router), p.IndexInGroup(rr)
		s.localDown[(g*rpg+i)*rpg+j] = down
		s.localDown[(g*rpg+j)*rpg+i] = down
	}
}

// pendingFaultEvents reports whether any fault event still awaits either
// its physical application or its (possibly stale) routing-view one.
func (s *Sim) pendingFaultEvents() bool {
	return s.nextFault < len(s.cfg.FaultEvents) || s.nextRouteFault < len(s.cfg.FaultEvents)
}

// applyFaultEvents applies every fault event due at the current cycle —
// physically (dead-port masks gating flow control) at event time, and to
// the routing-view tables StaleCycles later. Only called from the serial
// section between cycles.
func (s *Sim) applyFaultEvents() {
	for s.nextFault < len(s.cfg.FaultEvents) {
		ev := s.cfg.FaultEvents[s.nextFault]
		if ev.At > s.cycle {
			break
		}
		if ev.Port == WholeRouter {
			changed := s.faults.SetRouter(ev.Router, !ev.Repair)
			s.routers[ev.Router].parked = !ev.Repair
			s.routers[ev.Router].deadPorts = s.faults.PortMask(ev.Router)
			for m := changed; m != 0; m &= m - 1 {
				rr, _ := s.topo.LinkTarget(ev.Router, bits.TrailingZeros64(m))
				s.routers[rr].deadPorts = s.faults.PortMask(rr)
			}
		} else {
			s.faults.SetLink(ev.Router, ev.Port, !ev.Repair)
			s.routers[ev.Router].deadPorts = s.faults.PortMask(ev.Router)
			rr, _ := s.topo.LinkTarget(ev.Router, ev.Port)
			s.routers[rr].deadPorts = s.faults.PortMask(rr)
		}
		s.nextFault++
	}
	viewChanged := false
	for s.nextRouteFault < len(s.cfg.FaultEvents) {
		ev := s.cfg.FaultEvents[s.nextRouteFault]
		if ev.At+s.cfg.StaleCycles > s.cycle {
			break
		}
		// The shadow set decides which links actually changed state: a
		// whole-router event touches only the ports with no other reason
		// to be down, and a link repair under a dead endpoint is a no-op.
		// Every processed event still counts as a view change below, so a
		// same-cycle burst coalesces into one epoch bump (one plan
		// rebuild) regardless of its composition.
		if ev.Port == WholeRouter {
			for m := s.viewFaults.SetRouter(ev.Router, !ev.Repair); m != 0; m &= m - 1 {
				s.applyRouteView(ev.Router, bits.TrailingZeros64(m), !ev.Repair)
			}
		} else if s.viewFaults.SetLink(ev.Router, ev.Port, !ev.Repair) {
			s.applyRouteView(ev.Router, ev.Port, !ev.Repair)
		}
		s.nextRouteFault++
		viewChanged = true
	}
	if viewChanged {
		// The routing tables changed: every cached head plan baked the
		// old view into its candidate geometry, so force rebuilds.
		s.routeEpoch++
	}
}

func makeOutPort(credits []int32, transfers []transfer, capacity int) outPort {
	op := outPort{
		credits:   credits,
		transfers: transfers,
		capacity:  int32(capacity),
	}
	for v := range op.credits {
		op.credits[v] = int32(capacity)
	}
	return op
}

// stepCycle advances the whole network one cycle, serially.
func (s *Sim) stepCycle() {
	for i := range s.routers {
		s.routers[i].step(s.cycle)
	}
	s.finishCycle()
}

// finishCycle performs the end-of-cycle bookkeeping shared by the serial
// and parallel paths.
func (s *Sim) finishCycle() {
	if s.pbEnabled {
		s.pbPublished, s.pbNext = s.pbNext, s.pbPublished
	}
	s.cycle++
	if s.pendingFaultEvents() {
		s.applyFaultEvents()
	}
}

// totals sums the per-worker progress counters (O(workers), not
// O(routers); the counters are maintained incrementally as packets move).
func (s *Sim) totals() (moved, live, generated int64) {
	for i := range s.progress {
		p := &s.progress[i]
		moved += p.moved
		live += p.live
		generated += p.generated
	}
	return
}

// fabricEmpty reports whether the whole network holds no state that can
// act next cycle: no buffered packet entries anywhere and no phits or
// credits in flight on any link. Both sums are maintained incrementally
// per worker, so the check is O(workers). When true, the next cycle can
// only run injection (and Piggybacking cooldown publishes) — the premise
// behind both barrier elision and the quiet-cycle fast-forward.
func (s *Sim) fabricEmpty() bool {
	var occ, inflight int64
	for i := range s.progress {
		occ += s.progress[i].occ
		inflight += s.progress[i].inflight
	}
	return occ == 0 && inflight == 0
}

// tryFastForward jumps the clock over a provably-dead span: the fabric is
// empty (caller checked fabricEmpty) and, when every node is idle or its
// active phase is a finite process with nothing left to send, stepping the
// intervening cycles would not draw a single RNG value or touch any state
// except the cycle counter. The jump lands on the earliest cycle at which
// anything can change — a workload phase transition, a fault event (at
// both its physical and stale routing-view horizons), or the caller's
// limit (warmup boundary, end of run) — so results stay bit-identical to
// the cycle-by-cycle path. Ineligible scans cache the cycle before which
// nothing can make them eligible (ffRescanAt), keeping the quiet-path
// overhead amortized.
func (s *Sim) tryFastForward(limit int64) {
	if s.cfg.NoFastForward || s.cycle >= limit-1 || s.cycle < s.ffRescanAt {
		return
	}
	target := limit
	w := s.workload
	for ji := range w.Jobs {
		pi, active := w.PhaseAt(ji, s.cycle, &s.ffCursor[ji])
		if active {
			proc := w.Jobs[ji].Phases[pi].Process
			if !proc.Finite() {
				// A steady process draws from its nodes' RNG streams every
				// cycle; no cycle may be skipped until this phase ends.
				if nc := w.NextChange(ji, s.cycle); nc >= 0 {
					s.ffRescanAt = nc
				} else {
					s.ffRescanAt = limit
				}
				return
			}
			// Finite and exhausted processes draw no randomness. A node
			// with packets left while the fabric is empty can only be
			// parked (suppression consumes one packet per cycle without
			// touching the network) — keep stepping until it drains.
			j := &w.Jobs[ji]
			for node := j.First; node <= j.Last; node++ {
				if !proc.Done(node) {
					s.ffRescanAt = s.cycle + 64
					return
				}
			}
		}
		if nc := w.NextChange(ji, s.cycle); nc >= 0 && nc < target {
			target = nc
		}
	}
	if s.nextFault < len(s.cfg.FaultEvents) {
		if at := s.cfg.FaultEvents[s.nextFault].At; at < target {
			target = at
		}
	}
	if s.nextRouteFault < len(s.cfg.FaultEvents) {
		if at := s.cfg.FaultEvents[s.nextRouteFault].At + s.cfg.StaleCycles; at < target {
			target = at
		}
	}
	if target <= s.cycle+1 {
		return
	}
	if s.pbEnabled {
		// Piggybacking cooldowns still owe table writes; with the fabric
		// empty they drain within two idle steps, then the jump proceeds.
		for i := range s.routers {
			if s.routers[i].pbCooldown > 0 {
				s.ffRescanAt = s.cycle + 1
				return
			}
		}
	}
	s.ffJumped += target - s.cycle
	s.cycle = target
	// Fault events due exactly at the target apply now, in the same
	// serial-section order finishCycle would have used.
	if s.pendingFaultEvents() {
		s.applyFaultEvents()
	}
}

// FastForwarded returns the number of cycles the quiet-cycle fast-forward
// skipped (for tests and tooling). Valid after Run.
func (s *Sim) FastForwarded() int64 { return s.ffJumped }

// lastDelivery returns the latest delivery cycle across routers.
func (s *Sim) lastDelivery() int64 {
	var last int64 = -1
	for i := range s.routers {
		if s.routers[i].lastDeliveryCycle > last {
			last = s.routers[i].lastDeliveryCycle
		}
	}
	return last
}

// resetSheets clears measurement state at the warmup boundary.
func (s *Sim) resetSheets() {
	for i := range s.sheets {
		s.sheets[i].Reset()
	}
}

// Run executes the experiment: warmup plus measurement for steady-state
// traffic processes, or run-to-drain for finite (burst) processes. It
// returns the digested metrics. A deadlock detected by the watchdog is
// reported through Result.Deadlock, not an error.
func (s *Sim) Run() (metrics.Result, error) {
	return s.RunContext(context.Background())
}

// ctxCheckMask throttles cancellation polls to one every 1024 cycles, so
// the check never shows up on the stepping profile.
const ctxCheckMask = 1<<10 - 1

// RunContext is Run with cooperative cancellation: the stepping loop polls
// ctx every 1024 cycles and aborts with ctx's error, so an orchestrator
// can stop a campaign mid-point.
func (s *Sim) RunContext(ctx context.Context) (metrics.Result, error) {
	if s.ran {
		return metrics.Result{}, fmt.Errorf("engine: Sim.Run called twice")
	}
	s.ran = true

	var stop func()
	step := s.stepCycle
	if s.workers > 1 {
		step, stop = s.startWorkers()
		defer stop()
	}

	var deadlock bool
	var err error
	if s.workload.Finite() {
		deadlock, err = s.runBurst(ctx, step)
	} else {
		deadlock, err = s.runSteady(ctx, step)
	}
	if err != nil {
		return metrics.Result{}, err
	}

	var sheet metrics.Sheet
	trackedPhases := 0
	if s.workload.TotalPhases() > 1 {
		trackedPhases = s.workload.TotalPhases()
	}
	sheet.Configure(s.cfg.WindowCycles, trackedPhases)
	for i := range s.sheets {
		sheet.Merge(&s.sheets[i])
	}
	cycles := s.cfg.Measure
	if s.workload.Finite() {
		cycles = s.cycle
	}
	p := s.topo
	res := metrics.Digest(&sheet, cycles, p.Nodes,
		p.Routers*p.LocalPorts, p.Routers*p.GlobalPorts)
	res.Mechanism = s.cfg.Spec.String()
	res.Pattern = s.workload.Name()
	res.Deadlock = deadlock
	res.PhitsMoved, _, _ = s.totals()
	if s.workload.Finite() {
		res.ConsumptionCycles = s.lastDelivery()
	}
	s.timeline = sheet.Timeline(s.cycle, p.Nodes)
	s.phaseDigests = sheet.PhaseDigests(s.phaseInfos(), s.cycle)
	return res, nil
}

// phaseInfos flattens the workload's schedules into the digest metadata,
// indexed by workload-global phase id.
func (s *Sim) phaseInfos() []metrics.PhaseInfo {
	w := s.workload
	infos := make([]metrics.PhaseInfo, 0, w.TotalPhases())
	for ji := range w.Jobs {
		j := &w.Jobs[ji]
		for pi := range j.Phases {
			infos = append(infos, metrics.PhaseInfo{
				Label:    j.Phases[pi].Label,
				Nodes:    j.Nodes(),
				Start:    j.Start(pi),
				Duration: j.Phases[pi].Duration,
			})
		}
	}
	return infos
}

// Timeline returns the windowed time series of the finished run, or nil
// when Config.WindowCycles was zero. Valid after Run.
func (s *Sim) Timeline() *metrics.Timeline { return s.timeline }

// PhaseDigests returns the per-phase digests of the finished run, or nil
// for single-phase workloads. Valid after Run.
func (s *Sim) PhaseDigests() []metrics.PhaseDigest { return s.phaseDigests }

// runSteady runs warmup then measurement, returning true on deadlock.
func (s *Sim) runSteady(ctx context.Context, step func()) (bool, error) {
	var lastMoved int64
	quiet := int64(0)
	total := s.cfg.Warmup + s.cfg.Measure
	for s.cycle < total {
		if s.cycle&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("engine: canceled at cycle %d: %w", s.cycle, err)
			}
		}
		if s.cycle == s.cfg.Warmup {
			s.resetSheets()
		}
		step()
		moved, live, _ := s.totals()
		if moved == lastMoved && live > 0 {
			quiet++
			if quiet >= s.cfg.Watchdog {
				return true, nil
			}
		} else {
			quiet = 0
		}
		lastMoved = moved
		if live == 0 && s.fabricEmpty() {
			// Provably-dead span: jump to the next possible event, never
			// past the warmup boundary (resetSheets must run exactly there)
			// or the end of the run.
			bound := total
			if s.cycle < s.cfg.Warmup {
				bound = s.cfg.Warmup
			}
			s.tryFastForward(bound)
		}
	}
	return false, nil
}

// runBurst runs a finite workload until every packet drained, returning
// true on deadlock (or on exceeding MaxCycles, which is reported the same
// way since the network failed to drain).
func (s *Sim) runBurst(ctx context.Context, step func()) (bool, error) {
	target := s.workload.Total()
	lastChange := s.workload.LastChange()
	var lastMoved, lastGenerated int64
	quiet := int64(0)
	for s.cycle < s.cfg.MaxCycles {
		if s.cycle&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("engine: canceled at cycle %d: %w", s.cycle, err)
			}
		}
		step()
		moved, live, generated := s.totals()
		if live == 0 {
			if generated >= target {
				return false, nil
			}
			// A burst phase cut short by its duration leaves the declared
			// target unreachable. Once the phase set is static (past the
			// last transition), an empty network that generates nothing
			// for a full cycle can never generate again — the run is
			// drained, not deadlocked.
			if generated == lastGenerated && s.cycle > lastChange {
				return false, nil
			}
		}
		if moved == lastMoved && live > 0 {
			quiet++
			if quiet >= s.cfg.Watchdog {
				return true, nil
			}
		} else {
			quiet = 0
		}
		lastMoved = moved
		lastGenerated = generated
		if live == 0 && s.cycle <= lastChange && s.fabricEmpty() {
			// Quiet gap between finite phases: jump to the next phase
			// transition. Never past the last transition — the cut-short
			// drain detection above must observe the cycles beyond it
			// exactly as the cycle-by-cycle path would.
			bound := lastChange
			if s.cfg.MaxCycles < bound {
				bound = s.cfg.MaxCycles
			}
			s.tryFastForward(bound)
		}
	}
	return true, nil
}

// shardBounds partitions the routers into n contiguous shards. When
// possible the boundaries fall on dragonfly group boundaries, so the
// densely-communicating routers of one group (complete local-link graph)
// stay in one worker's cache.
func (s *Sim) shardBounds(n int) []int {
	bounds := make([]int, n+1)
	if g := s.topo.Groups; n <= g {
		for w := 0; w <= n; w++ {
			bounds[w] = (w * g / n) * s.topo.RoutersPerGroup
		}
	} else {
		for w := 0; w <= n; w++ {
			bounds[w] = w * len(s.routers) / n
		}
	}
	return bounds
}

// cycleBarrier synchronizes the per-cycle lockstep between the main loop
// and the shard workers with two atomic generation counters instead of
// per-worker channel operations: the main loop bumps startGen to release
// every worker for one cycle, and the last worker to finish bumps doneGen.
// Waiters spin briefly and then yield, so the barrier stays correct (if
// slower) even when workers outnumber CPUs.
type cycleBarrier struct {
	startGen atomic.Uint64
	doneGen  atomic.Uint64
	arrived  atomic.Int32
	quit     atomic.Bool
}

// await spins until gen differs from last, returning the new value.
func (b *cycleBarrier) await(gen *atomic.Uint64, last uint64) uint64 {
	for spins := 0; ; spins++ {
		if v := gen.Load(); v != last {
			return v
		}
		if spins > 32 {
			runtime.Gosched()
		}
	}
}

// stepShards steps every router of worker w's assigned shards for the
// current cycle, accumulating per-shard activity (routers holding buffered
// work) for the load balancer.
func (s *Sim) stepShards(w int) {
	cycle := s.cycle
	for _, si := range s.assign[w] {
		sh := &s.shards[si]
		act := int64(0)
		for i := sh.lo; i < sh.hi; i++ {
			if s.routers[i].occupied != 0 {
				act++
			}
			s.routers[i].step(cycle)
		}
		sh.activity += act
	}
}

// pinShards points every router's metrics sheet and progress counters at
// its owning worker's. Called before stepping starts and after every
// reassignment, always in the serial section: sheet merging and the
// progress deltas are order-independent sums, so re-pinning mid-run never
// changes results.
func (s *Sim) pinShards() {
	for w := range s.assign {
		for _, si := range s.assign[w] {
			sh := &s.shards[si]
			for i := sh.lo; i < sh.hi; i++ {
				s.routers[i].sheet = &s.sheets[w]
				s.routers[i].prog = &s.progress[w]
			}
		}
	}
}

// rebalanceShards reassigns shards to workers by observed activity:
// longest-processing-time-first over the accumulated per-shard counters,
// ties broken by shard index so the assignment is deterministic. The
// counters then decay by half, making the signal a moving average that
// follows workload phase changes. Runs only in the serial section.
func (s *Sim) rebalanceShards() {
	n := len(s.assign)
	order := make([]int32, len(s.shards))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.shards[order[a]].activity > s.shards[order[b]].activity
	})
	load := make([]int64, n)
	for w := range s.assign {
		s.assign[w] = s.assign[w][:0]
	}
	for _, si := range order {
		min := 0
		for w := 1; w < n; w++ {
			if load[w] < load[min] {
				min = w
			}
		}
		// The +1 keeps zero-activity shards spreading round-robin instead
		// of all piling onto one worker after an idle stretch.
		load[min] += s.shards[si].activity + 1
		s.assign[min] = append(s.assign[min], si)
		s.shards[si].activity >>= 1
	}
	for w := range s.assign {
		// Ascending shard order keeps each worker walking router memory
		// forward even when its shards are scattered.
		sort.Slice(s.assign[w], func(a, b int) bool { return s.assign[w][a] < s.assign[w][b] })
	}
	s.pinShards()
}

// startWorkers launches persistent shard workers and returns a step
// function driving one barrier-synchronized cycle, plus a stop function.
// Shard count is decoupled from worker count (shardsPerWorker per worker,
// group-aligned when possible) so rebalanceShards can shift load at a
// finer grain than whole worker ranges.
func (s *Sim) startWorkers() (step func(), stop func()) {
	n := s.workers
	sc := n * shardsPerWorker
	if sc > len(s.routers) {
		sc = len(s.routers)
	}
	bounds := s.shardBounds(sc)
	s.shards = make([]simShard, sc)
	for i := range s.shards {
		s.shards[i] = simShard{lo: bounds[i], hi: bounds[i+1]}
	}
	s.assign = make([][]int32, n)
	for w := 0; w < n; w++ {
		for si := w * sc / n; si < (w+1)*sc/n; si++ {
			s.assign[w] = append(s.assign[w], int32(si))
		}
	}
	s.pinShards()
	b := &cycleBarrier{}
	// Shard set 0 runs on the calling goroutine, so only n-1 workers are
	// launched and no goroutine ever just spins through a whole cycle.
	for w := 1; w < n; w++ {
		go func(w int) {
			var seen uint64
			for {
				seen = b.await(&b.startGen, seen)
				if b.quit.Load() {
					return
				}
				s.stepShards(w)
				if b.arrived.Add(1) == int32(n-1) {
					b.arrived.Store(0)
					b.doneGen.Add(1)
				}
			}
		}(w)
	}
	step = func() {
		if s.fabricEmpty() {
			// Barrier elision: with nothing buffered and nothing in
			// flight, this cycle is injection-only — cheaper to step
			// serially than to wake and re-join every worker. The workers
			// stay parked in await; the next barrier release publishes
			// whatever this goroutine wrote.
			for i := range s.routers {
				s.routers[i].step(s.cycle)
			}
			s.finishCycle()
			return
		}
		done := b.doneGen.Load()
		b.startGen.Add(1)
		s.stepShards(0)
		if n > 1 {
			b.await(&b.doneGen, done)
		}
		s.finishCycle()
		if s.cycle&(rebalanceInterval-1) == 0 {
			s.rebalanceShards()
		}
	}
	stop = func() {
		b.quit.Store(true)
		b.startGen.Add(1)
	}
	return step, stop
}

// Cycle returns the current simulation cycle (for tests and tooling).
func (s *Sim) Cycle() int64 { return s.cycle }
