package engine

// link is one directed physical channel. The sender writes at most one phit
// per cycle into the time-indexed phit ring; the receiver reads slot
// cycle%len. Credits travel the opposite way on the credit ring with the
// same latency. Both rings are single-writer/single-reader, which is what
// makes the parallel executor race-free without locks: slot indices written
// during cycle t (t+latency) never collide with the ones read at t as long
// as the ring has latency+2 slots.
type link struct {
	latency int
	mask    int64 // ring length - 1 (length is a power of two)

	phits   []phitSlot
	credits []creditSlot
}

// phitSlot carries one phit: the packet it belongs to and the virtual
// channel it rides on (sender output VC == receiver input VC).
type phitSlot struct {
	pkt *Packet
	vc  int8
}

// creditSlot returns one buffer credit for a VC of the receiver's input
// port back to the sender.
type creditSlot struct {
	vc    int8
	valid bool
}

func newLink(latency int) *link {
	if latency < 1 {
		latency = 1
	}
	n := 1
	for n < latency+2 {
		n <<= 1
	}
	return &link{
		latency: latency,
		mask:    int64(n - 1),
		phits:   make([]phitSlot, n),
		credits: make([]creditSlot, n),
	}
}

// sendPhit schedules a phit to arrive at now+latency.
func (l *link) sendPhit(now int64, pkt *Packet, vc int) {
	s := &l.phits[(now+int64(l.latency))&l.mask]
	if s.pkt != nil {
		panic("engine: phit slot collision")
	}
	s.pkt = pkt
	s.vc = int8(vc)
}

// recvPhit consumes the phit arriving now, if any.
func (l *link) recvPhit(now int64) (pkt *Packet, vc int) {
	s := &l.phits[now&l.mask]
	if s.pkt == nil {
		return nil, 0
	}
	pkt, vc = s.pkt, int(s.vc)
	s.pkt = nil
	return pkt, vc
}

// sendCredit schedules a credit to arrive at the sender at now+latency.
func (l *link) sendCredit(now int64, vc int) {
	s := &l.credits[(now+int64(l.latency))&l.mask]
	if s.valid {
		panic("engine: credit slot collision")
	}
	s.vc = int8(vc)
	s.valid = true
}

// recvCredit consumes the credit arriving now, if any.
func (l *link) recvCredit(now int64) (vc int, ok bool) {
	s := &l.credits[now&l.mask]
	if !s.valid {
		return 0, false
	}
	s.valid = false
	return int(s.vc), true
}
