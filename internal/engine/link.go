package engine

import "sync/atomic"

// link is one directed physical channel. The sender writes at most one phit
// per cycle into the time-indexed phit ring; the receiver reads slot
// cycle%len. Credits travel the opposite way on the credit ring with the
// same latency. Both rings are single-writer/single-reader, which is what
// makes the parallel executor race-free without locks: slot indices written
// during cycle t (t+latency) never collide with the ones read at t as long
// as the ring has latency+2 slots.
//
// Each direction also announces its traffic on the receiving router's
// arrival schedule (phitSched for phits, creditSched for the credits
// flowing back to the sender), which is what lets idle routers skip
// scanning their links: a send is recorded under its arrival cycle,
// strictly before that cycle is reached, so a receiver whose schedule
// slot reads zero provably has nothing to absorb this cycle.
type link struct {
	latency int
	mask    int64 // ring length - 1 (length is a power of two)

	phits   []phitSlot
	credits []creditSlot

	phitSched   *arrivalSchedule // schedule of the phit receiver
	creditSched *arrivalSchedule // schedule of the credit receiver (the sender router)
}

// arrivalSchedule counts, per cycle, how many phits and credits will
// arrive at one router. Senders increment the slot of the arrival cycle
// at send time; the receiver drains its current slot once per cycle.
// A slot for cycle c is only ever written during cycles < c (latency is
// at least 1) and only read at cycle c, so with the ring covering the
// maximum latency plus two, concurrent accesses can only be increments
// by different senders — which is why a plain atomic counter per slot
// suffices.
type arrivalSchedule struct {
	slots []atomic.Int32
	mask  int64
}

func newArrivalSchedule(maxLatency int) *arrivalSchedule {
	n := 1
	for n < maxLatency+2 {
		n <<= 1
	}
	return &arrivalSchedule{slots: make([]atomic.Int32, n), mask: int64(n - 1)}
}

// add records one arrival at the given cycle.
func (s *arrivalSchedule) add(cycle int64) { s.slots[cycle&s.mask].Add(1) }

// take drains and returns the arrival count for the given cycle.
func (s *arrivalSchedule) take(cycle int64) int32 {
	slot := &s.slots[cycle&s.mask]
	n := slot.Load()
	if n != 0 {
		slot.Store(0)
	}
	return n
}

// phitSlot carries one phit: the packet it belongs to and the virtual
// channel it rides on (sender output VC == receiver input VC).
type phitSlot struct {
	pkt *Packet
	vc  int8
}

// creditSlot returns one buffer credit for a VC of the receiver's input
// port back to the sender.
type creditSlot struct {
	vc    int8
	valid bool
}

func newLink(latency int) *link {
	if latency < 1 {
		latency = 1
	}
	n := 1
	for n < latency+2 {
		n <<= 1
	}
	return &link{
		latency: latency,
		mask:    int64(n - 1),
		phits:   make([]phitSlot, n),
		credits: make([]creditSlot, n),
	}
}

// sendPhit schedules a phit to arrive at now+latency.
func (l *link) sendPhit(now int64, pkt *Packet, vc int) {
	s := &l.phits[(now+int64(l.latency))&l.mask]
	if s.pkt != nil {
		panic("engine: phit slot collision")
	}
	s.pkt = pkt
	s.vc = int8(vc)
	if l.phitSched != nil {
		l.phitSched.add(now + int64(l.latency))
	}
}

// recvPhit consumes the phit arriving now, if any.
func (l *link) recvPhit(now int64) (pkt *Packet, vc int) {
	s := &l.phits[now&l.mask]
	if s.pkt == nil {
		return nil, 0
	}
	pkt, vc = s.pkt, int(s.vc)
	s.pkt = nil
	return pkt, vc
}

// sendCredit schedules a credit to arrive at the sender at now+latency.
func (l *link) sendCredit(now int64, vc int) {
	s := &l.credits[(now+int64(l.latency))&l.mask]
	if s.valid {
		panic("engine: credit slot collision")
	}
	s.vc = int8(vc)
	s.valid = true
	if l.creditSched != nil {
		l.creditSched.add(now + int64(l.latency))
	}
}

// recvCredit consumes the credit arriving now, if any.
func (l *link) recvCredit(now int64) (vc int, ok bool) {
	s := &l.credits[now&l.mask]
	if !s.valid {
		return 0, false
	}
	s.valid = false
	return int(s.vc), true
}
