package engine

import "sync/atomic"

// link is one directed physical channel. The sender writes at most one phit
// per cycle into the time-indexed phit ring; the receiver reads slot
// cycle%len. Credits travel the opposite way on the credit ring with the
// same latency. Both rings are single-writer/single-reader, which is what
// makes the parallel executor race-free without locks: slot indices written
// during cycle t (t+latency) never collide with the ones read at t as long
// as the ring has latency+2 slots.
//
// Each direction also announces its traffic on the receiving router's
// arrival schedule (phitSched for phits, creditSched for the credits
// flowing back to the sender), which is what lets idle routers skip
// scanning their links: a send is recorded under its arrival cycle,
// strictly before that cycle is reached, so a receiver whose schedule
// slot reads zero provably has nothing to absorb this cycle.
type link struct {
	latency int
	mask    int64 // ring length - 1 (length is a power of two)

	phits   []phitSlot
	credits []creditSlot

	phitSched   *arrivalSchedule // schedule of the phit receiver
	creditSched *arrivalSchedule // schedule of the credit receiver (the sender router)
	phitPort    int16            // the receiver input port this link feeds
	creditPort  int16            // the sender output port its credits return to
}

// arrivalSchedule records, per cycle, *which ports* of one router receive
// a phit or a credit. Senders OR their port's bit into the slot of the
// arrival cycle at send time; the receiver drains its current slot once
// per cycle and walks only the set bits — the empty links of the port
// scan the masks replace are never touched. One bit per port suffices: a
// link delivers at most one phit and one credit per cycle, and bit order
// reproduces the ascending-port order of the scan, so absorption order —
// and therefore results — are identical.
//
// A slot for cycle c is only ever written during cycles < c (latency is
// at least 1) and only read at cycle c, so with the ring covering the
// maximum latency plus two, concurrent accesses can only be ORs by
// different senders — which is why a pair of plain atomic masks per slot
// suffices.
type arrivalSchedule struct {
	slots []arrivalSlot
	mask  int64
	// serial marks single-worker simulations: every send and drain runs
	// on one goroutine, so the mask updates skip the LOCKed read-modify-
	// write instructions. Multi-worker runs use the atomic ops; the cycle
	// barrier provides the cross-cycle happens-before edges either way.
	serial bool
}

// arrivalSlot is one cycle's arrival masks: input ports receiving a phit
// and output ports receiving a credit. Accessed through sync/atomic in
// parallel runs, plainly in serial ones.
type arrivalSlot struct {
	phits   uint64
	credits uint64
}

// arrivalSlotCount returns the power-of-two ring length covering the
// maximum link latency (see arrivalSchedule).
func arrivalSlotCount(maxLatency int) int {
	n := 1
	for n < maxLatency+2 {
		n <<= 1
	}
	return n
}

// init points the schedule at its slot ring — a slice of the simulation's
// shard-ordered slot arena, so the cross-worker-written slots of all
// routers live in one allocation away from the routers' single-writer hot
// state.
func (s *arrivalSchedule) init(slots []arrivalSlot, serial bool) {
	s.slots = slots
	s.mask = int64(len(slots) - 1)
	s.serial = serial
}

// addPhit records a phit arriving at the given input port and cycle.
func (s *arrivalSchedule) addPhit(cycle int64, port int16) {
	slot := &s.slots[cycle&s.mask]
	if s.serial {
		slot.phits |= 1 << uint(port)
		return
	}
	atomic.OrUint64(&slot.phits, 1<<uint(port))
}

// addCredit records a credit arriving at the given output port and cycle.
func (s *arrivalSchedule) addCredit(cycle int64, port int16) {
	slot := &s.slots[cycle&s.mask]
	if s.serial {
		slot.credits |= 1 << uint(port)
		return
	}
	atomic.OrUint64(&slot.credits, 1<<uint(port))
}

// take drains and returns the arrival masks for the given cycle.
func (s *arrivalSchedule) take(cycle int64) (phits, credits uint64) {
	slot := &s.slots[cycle&s.mask]
	if s.serial {
		phits, credits = slot.phits, slot.credits
		slot.phits, slot.credits = 0, 0
		return phits, credits
	}
	phits, credits = atomic.LoadUint64(&slot.phits), atomic.LoadUint64(&slot.credits)
	if phits != 0 {
		atomic.StoreUint64(&slot.phits, 0)
	}
	if credits != 0 {
		atomic.StoreUint64(&slot.credits, 0)
	}
	return phits, credits
}

// phitSlot carries one phit: the packet it belongs to and the virtual
// channel it rides on (sender output VC == receiver input VC).
type phitSlot struct {
	pkt *Packet
	vc  int8
}

// creditSlot returns one buffer credit for a VC of the receiver's input
// port back to the sender.
type creditSlot struct {
	vc    int8
	valid bool
}

// newLink builds a link header. The phit and credit rings are allocated
// lazily on first send: a long-latency global link costs hundreds of slots,
// and on a large fabric under light load most links never carry anything.
// Laziness is race-free because each ring has exactly one writer (the phit
// sender, respectively the credit sender), the allocating side, and the
// reader only looks after an arrival was announced — at least one cycle
// barrier after the allocating write.
func newLink(latency int) *link {
	if latency < 1 {
		latency = 1
	}
	n := 1
	for n < latency+2 {
		n <<= 1
	}
	return &link{
		latency: latency,
		mask:    int64(n - 1),
	}
}

// sendPhit schedules a phit to arrive at now+latency.
func (l *link) sendPhit(now int64, pkt *Packet, vc int) {
	if l.phits == nil {
		l.phits = make([]phitSlot, l.mask+1)
	}
	s := &l.phits[(now+int64(l.latency))&l.mask]
	if s.pkt != nil {
		panic("engine: phit slot collision")
	}
	s.pkt = pkt
	s.vc = int8(vc)
	if l.phitSched != nil {
		l.phitSched.addPhit(now+int64(l.latency), l.phitPort)
	}
}

// recvPhit consumes the phit arriving now, if any.
func (l *link) recvPhit(now int64) (pkt *Packet, vc int) {
	s := &l.phits[now&l.mask]
	if s.pkt == nil {
		return nil, 0
	}
	pkt, vc = s.pkt, int(s.vc)
	s.pkt = nil
	return pkt, vc
}

// sendCredit schedules a credit to arrive at the sender at now+latency.
func (l *link) sendCredit(now int64, vc int) {
	if l.credits == nil {
		l.credits = make([]creditSlot, l.mask+1)
	}
	s := &l.credits[(now+int64(l.latency))&l.mask]
	if s.valid {
		panic("engine: credit slot collision")
	}
	s.vc = int8(vc)
	s.valid = true
	if l.creditSched != nil {
		l.creditSched.addCredit(now+int64(l.latency), l.creditPort)
	}
}

// recvCredit consumes the credit arriving now, if any.
func (l *link) recvCredit(now int64) (vc int, ok bool) {
	s := &l.credits[now&l.mask]
	if !s.valid {
		return 0, false
	}
	s.valid = false
	return int(s.vc), true
}
