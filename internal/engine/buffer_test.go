package engine

import "testing"

func TestBufferPushTake(t *testing.T) {
	var b vcBuffer
	b.init(32, ringEntries(32, 8))
	p := &Packet{ID: 1, Size: 8}
	for i := 0; i < 8; i++ {
		b.pushPhit(p)
	}
	if b.used != 8 || b.count != 1 {
		t.Fatalf("after arrival: used=%d count=%d", b.used, b.count)
	}
	for i := 0; i < 7; i++ {
		if _, tail := b.takePhit(); tail {
			t.Fatalf("tail reported at phit %d", i)
		}
	}
	pkt, tail := b.takePhit()
	if !tail || pkt != p {
		t.Fatalf("tail not reported on last phit")
	}
	if !b.empty() || b.used != 0 {
		t.Fatalf("buffer not empty after drain: used=%d count=%d", b.used, b.count)
	}
}

func TestBufferFIFOOrder(t *testing.T) {
	var b vcBuffer
	b.init(32, ringEntries(32, 8))
	p1 := &Packet{ID: 1, Size: 8}
	p2 := &Packet{ID: 2, Size: 8}
	for i := 0; i < 8; i++ {
		b.pushPhit(p1)
	}
	for i := 0; i < 8; i++ {
		b.pushPhit(p2)
	}
	if b.count != 2 {
		t.Fatalf("count = %d, want 2", b.count)
	}
	if b.headEntry().pkt != p1 {
		t.Fatal("head is not the first packet")
	}
	for i := 0; i < 8; i++ {
		b.takePhit()
	}
	if b.headEntry().pkt != p2 {
		t.Fatal("second packet did not become head")
	}
}

func TestBufferCutThroughInterleaving(t *testing.T) {
	// A packet can start leaving while still arriving.
	var b vcBuffer
	b.init(32, ringEntries(32, 8))
	p := &Packet{ID: 1, Size: 8}
	b.pushPhit(p)
	if _, tail := b.takePhit(); tail {
		t.Fatal("tail on first phit")
	}
	// Now the head entry holds zero phits but remains present.
	if b.empty() {
		t.Fatal("buffer empty while packet streams through")
	}
	b.pushPhit(p)
	b.pushPhit(p)
	if b.used != 2 {
		t.Fatalf("used = %d, want 2", b.used)
	}
}

func TestBufferSpaceAccounting(t *testing.T) {
	var b vcBuffer
	b.init(16, ringEntries(16, 8))
	if !b.hasSpaceFor(8) {
		t.Fatal("fresh buffer rejects a packet")
	}
	b.pushWholePacket(&Packet{ID: 1, Size: 8})
	b.pushWholePacket(&Packet{ID: 2, Size: 8})
	if b.hasSpaceFor(8) {
		t.Fatal("full buffer accepts a packet")
	}
}

func TestBufferTakeFromEmptyPanics(t *testing.T) {
	var b vcBuffer
	b.init(8, ringEntries(8, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("takePhit on empty buffer did not panic")
		}
	}()
	b.takePhit()
}

func TestBufferTakeBeyondArrivedPanics(t *testing.T) {
	var b vcBuffer
	b.init(8, ringEntries(8, 8))
	p := &Packet{ID: 1, Size: 8}
	b.pushPhit(p)
	b.takePhit()
	defer func() {
		if recover() == nil {
			t.Fatal("takePhit beyond arrived did not panic")
		}
	}()
	b.takePhit()
}
