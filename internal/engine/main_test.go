package engine

import (
	"os"
	"runtime"
	"testing"
)

// TestMain raises GOMAXPROCS so the worker-count determinism matrix
// exercises the real parallel executor even on single-CPU machines: the
// engine clamps Config.Workers to GOMAXPROCS (extra workers only pay
// barrier cost), so without the raise every "4 workers" subtest would
// silently take the serial path and the comparisons would prove nothing.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}
