package engine

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// faultedDeterminismConfig arms a config with a degraded topology plus
// mid-run kill and repair events, so the fault paths (drop sink, dead-port
// masks, cycle-boundary event application) face the worker-count check.
func faultedDeterminismConfig(t *testing.T, cfg Config) Config {
	t.Helper()
	f := topology.NewFaultSet(cfg.Topo)
	if err := topology.RandomFaults(f, 0.2, 0.05, 11); err != nil {
		t.Fatal(err)
	}
	cfg.Faults = f
	gp := cfg.Topo.GlobalPortBase()
	cfg.FaultEvents = []FaultEvent{
		{At: 1800, Router: 5, Port: gp},
		{At: 2600, Router: 1, Port: 0},
		{At: 3400, Repair: true, Router: 5, Port: gp},
	}
	cfg.WindowCycles = 300 // exercise window merging (incl. FaultDrops)
	return cfg
}

// routerFaultedDeterminismConfig layers a whole-router outage and a link
// flap burst (the expanded form of a FlapSpec) onto the degraded base, so
// parked-node suppression, dead-port masks spanning every port class and
// storms of same-cycle plan invalidations face the worker-count check.
func routerFaultedDeterminismConfig(t *testing.T, cfg Config) Config {
	t.Helper()
	cfg = faultedDeterminismConfig(t, cfg)
	gp := cfg.Topo.GlobalPortBase()
	events := append(cfg.FaultEvents,
		FaultEvent{At: 1500, Router: 7, Port: WholeRouter},
		FaultEvent{At: 3200, Repair: true, Router: 7, Port: WholeRouter})
	for k := int64(0); k < 4; k++ { // four flap periods on router 2's first global port
		at := 1600 + 300*k
		events = append(events,
			FaultEvent{At: at, Router: 2, Port: gp},
			FaultEvent{At: at + 150, Repair: true, Router: 2, Port: gp})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	cfg.FaultEvents = events
	return cfg
}

// TestDeterminismAcrossWorkerCounts is the guardrail for the package's
// central promise ("results identical to serial execution") and for the
// activity-driven stepping: the full metrics.Result — every counter,
// latency average and percentile — must be bit-identical between serial
// and 4-worker execution. Configurations cover both flow controls, a
// low-load point (where most routers idle and the skip path dominates), a
// saturation point, Piggybacking (whose double-buffered congestion tables
// have their own refresh-skipping logic), OFAR (escape-ring bubble flow
// control), and degraded topologies with mid-run link kills/repairs
// (drop-sink accounting and cycle-boundary fault application).
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"VCT/RLM/low", func(t *testing.T) Config {
			return testConfig(t, 2, core.RLM, 0.05)
		}},
		{"VCT/RLM/saturation", func(t *testing.T) Config {
			cfg := testConfig(t, 2, core.RLM, 1.0)
			proc, err := traffic.NewBernoulli(1.0, 8)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Process = proc
			return cfg
		}},
		{"VCT/PB/low", func(t *testing.T) Config {
			return testConfig(t, 2, core.PB, 0.1)
		}},
		{"WH/PAR62", func(t *testing.T) Config {
			cfg := testConfig(t, 2, core.PAR62, 0.3)
			cfg.Flow = WH
			cfg.PacketPhits = 40
			proc, err := traffic.NewBernoulli(0.3, 40)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Process = proc
			return cfg
		}},
		{"VCT/OFAR", func(t *testing.T) Config {
			return testConfig(t, 2, core.OFAR, 0.35)
		}},
		{"VCT/Minimal/faulted", func(t *testing.T) Config {
			return faultedDeterminismConfig(t, testConfig(t, 2, core.Minimal, 0.25))
		}},
		{"VCT/OLM/faulted", func(t *testing.T) Config {
			return faultedDeterminismConfig(t, testConfig(t, 2, core.OLM, 0.3))
		}},
		{"VCT/OFAR/faulted", func(t *testing.T) Config {
			return faultedDeterminismConfig(t, testConfig(t, 2, core.OFAR, 0.3))
		}},
		{"WH/RLM/faulted", func(t *testing.T) Config {
			cfg := testConfig(t, 2, core.RLM, 0.3)
			cfg.Flow = WH
			cfg.PacketPhits = 40
			proc, err := traffic.NewBernoulli(0.3, 40)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Process = proc
			return faultedDeterminismConfig(t, cfg)
		}},
		{"VCT/OLM/faulted/stale", func(t *testing.T) Config {
			// Stale link state: the routing view lags the kill/repair
			// events, so the delayed table recomputations (and the epoch
			// bumps invalidating cached head plans) cross worker shards.
			cfg := faultedDeterminismConfig(t, testConfig(t, 2, core.OLM, 0.3))
			cfg.StaleCycles = 350
			return cfg
		}},
		{"VCT/Minimal/faulted/stale", func(t *testing.T) Config {
			cfg := faultedDeterminismConfig(t, testConfig(t, 2, core.Minimal, 0.25))
			cfg.StaleCycles = 500
			return cfg
		}},
		{"VCT/OLM/routerfail+flap", func(t *testing.T) Config {
			return routerFaultedDeterminismConfig(t, testConfig(t, 2, core.OLM, 0.3))
		}},
		{"WH/PB/routerfail+flap", func(t *testing.T) Config {
			cfg := testConfig(t, 2, core.PB, 0.3)
			cfg.Flow = WH
			cfg.PacketPhits = 40
			proc, err := traffic.NewBernoulli(0.3, 40)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Process = proc
			return routerFaultedDeterminismConfig(t, cfg)
		}},
		{"VCT/OFAR/routerfail+flap/stale", func(t *testing.T) Config {
			cfg := routerFaultedDeterminismConfig(t, testConfig(t, 2, core.OFAR, 0.3))
			cfg.StaleCycles = 250
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.cfg(t)
			serial.Workers = 1
			parallel := tc.cfg(t)
			parallel.Workers = 4
			simA, err := New(serial)
			if err != nil {
				t.Fatal(err)
			}
			a, err := simA.Run()
			if err != nil {
				t.Fatal(err)
			}
			simB, err := New(parallel)
			if err != nil {
				t.Fatal(err)
			}
			b, err := simB.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("worker count changed the result:\n  1 worker : %+v\n  4 workers: %+v", a, b)
			}
			if !reflect.DeepEqual(simA.Timeline(), simB.Timeline()) {
				t.Fatalf("worker count changed the timeline:\n  1 worker : %+v\n  4 workers: %+v",
					simA.Timeline(), simB.Timeline())
			}
			if a.Delivered == 0 {
				t.Fatal("nothing delivered; the comparison proved nothing")
			}
			if serial.Faults != nil && a.FaultDrops == 0 {
				t.Fatal("no fault drops; the faulted comparison proved nothing")
			}
			for _, ev := range serial.FaultEvents {
				if ev.Port == WholeRouter && !ev.Repair && a.Suppressed == 0 {
					t.Fatal("no suppressed injections; the router-failure comparison proved nothing")
				}
			}
		})
	}
}

// TestDeterminismBurstDrain covers the finite-process path: with most of
// the drain spent in a nearly-idle network, the skip logic must not
// change the drain time or any delivery statistic across worker counts.
func TestDeterminismBurstDrain(t *testing.T) {
	build := func(t *testing.T, workers int) Config {
		cfg := testConfig(t, 2, core.OLM, 0)
		burst, err := traffic.NewBurst(12, cfg.Topo.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Process = burst
		cfg.Warmup, cfg.Measure = 0, 0
		cfg.MaxCycles = 200000
		cfg.Workers = workers
		return cfg
	}
	a, b := run(t, build(t, 1)), run(t, build(t, 4))
	if a != b {
		t.Fatalf("worker count changed the burst result:\n  1 worker : %+v\n  4 workers: %+v", a, b)
	}
	if a.ConsumptionCycles <= 0 {
		t.Fatalf("burst did not drain (consumption %d)", a.ConsumptionCycles)
	}
}
