package engine

import "testing"

func TestLinkDeliversAfterExactLatency(t *testing.T) {
	l := newLink(10)
	p := &Packet{ID: 1, Size: 8}
	l.sendPhit(100, p, 2)
	for c := int64(101); c < 110; c++ {
		if pkt, _ := l.recvPhit(c); pkt != nil {
			t.Fatalf("phit arrived early at cycle %d", c)
		}
	}
	pkt, vc := l.recvPhit(110)
	if pkt != p || vc != 2 {
		t.Fatalf("recvPhit = (%v, %d), want (p, 2)", pkt, vc)
	}
	if pkt, _ := l.recvPhit(110); pkt != nil {
		t.Fatal("phit delivered twice")
	}
}

func TestLinkCreditLatency(t *testing.T) {
	l := newLink(4)
	l.sendCredit(50, 1)
	if _, ok := l.recvCredit(53); ok {
		t.Fatal("credit arrived early")
	}
	vc, ok := l.recvCredit(54)
	if !ok || vc != 1 {
		t.Fatalf("recvCredit = (%d, %v)", vc, ok)
	}
	if _, ok := l.recvCredit(54); ok {
		t.Fatal("credit delivered twice")
	}
}

func TestLinkBackToBackPhits(t *testing.T) {
	l := newLink(3)
	a := &Packet{ID: 1, Size: 2}
	for c := int64(0); c < 20; c++ {
		l.sendPhit(c, a, 0)
		if c >= 3 {
			if pkt, _ := l.recvPhit(c); pkt == nil {
				t.Fatalf("pipeline bubble at cycle %d", c)
			}
		}
	}
}

func TestLinkMinimumLatencyClamped(t *testing.T) {
	l := newLink(0)
	if l.latency != 1 {
		t.Fatalf("latency %d, want clamped to 1", l.latency)
	}
}

func TestLinkSlotCollisionPanics(t *testing.T) {
	l := newLink(2)
	p := &Packet{ID: 1}
	l.sendPhit(0, p, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double send into one slot did not panic")
		}
	}()
	l.sendPhit(0, p, 1)
}
