package engine

import "fmt"

// fifoEntry tracks one packet inside a virtual-channel buffer: how many of
// its phits have arrived into the buffer and how many have already been
// forwarded out of it. present = arrived - sent phits are physically held.
type fifoEntry struct {
	pkt     *Packet
	arrived int32
	sent    int32
}

// vcBuffer is one virtual-channel FIFO of an input port. Packets stream
// through it under cut-through: an entry exists from the arrival of the
// head phit to the departure of the tail phit.
type vcBuffer struct {
	capacity int32 // phits
	used     int32 // phits currently held

	// entries is the entry ring, allocated on the first push (entN slots;
	// see ringEntries): on a large fabric most VC buffers never see a
	// packet, and their rings would dominate the idle memory footprint.
	entries []fifoEntry
	entN    int32
	head    int
	count   int
	tail    int // ring index of the newest entry; meaningless when count == 0

	// headSeq counts head-entry changes: it increments whenever the head
	// entry is popped, so the router's cached routing plan for this
	// buffer (keyed on the sequence number) is rebuilt exactly when a
	// new packet reaches the front.
	headSeq int64

	claimed bool // the head entry holds an output-VC transfer
}

// ringEntries returns the ring size for fixed-size packets: at most
// capacity/packet + 2 entries can coexist (full packets plus one streaming
// in and one streaming out).
func ringEntries(capacityPhits, packetPhits int) int {
	return capacityPhits/packetPhits + 3
}

// init sizes the buffer: capacity in phits and ring size in entries (see
// ringEntries). The ring itself is allocated by the first push.
func (b *vcBuffer) init(capacityPhits, entN int) {
	b.capacity = int32(capacityPhits)
	b.entN = int32(entN)
	b.head = 0
	b.count = 0
}

// empty reports whether no packet is present.
func (b *vcBuffer) empty() bool { return b.count == 0 }

// headEntry returns the oldest entry; it panics when empty.
func (b *vcBuffer) headEntry() *fifoEntry {
	if b.count == 0 {
		panic("engine: headEntry on empty vcBuffer")
	}
	return &b.entries[b.head]
}

// wrap reduces a ring index in [0, 2*len) into [0, len); cheaper than a
// modulo on this hot path.
func (b *vcBuffer) wrap(i int) int {
	if i >= len(b.entries) {
		i -= len(b.entries)
	}
	return i
}

// pushPhit accounts the arrival of one phit of pkt, opening a new entry
// when pkt is not the packet currently streaming in. The tail entry only
// absorbs the phit while it is still filling: a packet that revisits the
// same buffer later (possible on OFAR's escape ring) must open a fresh
// entry or the accounting of the two visits would merge. It reports
// whether a new entry was opened, so the router can maintain its
// buffered-entry activity count.
func (b *vcBuffer) pushPhit(pkt *Packet) (newEntry bool) {
	if b.count > 0 {
		if t := &b.entries[b.tail]; t.pkt == pkt && t.arrived < pkt.Size {
			t.arrived++
			b.used++
			return false
		}
	}
	if b.entries == nil {
		b.entries = make([]fifoEntry, b.entN)
	}
	if b.count == len(b.entries) {
		panic(fmt.Sprintf("engine: vcBuffer ring overflow (cap %d phits, %d entries)",
			b.capacity, b.count))
	}
	i := b.wrap(b.head + b.count)
	b.entries[i] = fifoEntry{pkt: pkt, arrived: 1}
	b.tail = i
	b.count++
	b.used++
	return true
}

// pushWholePacket enqueues a fully present packet (used by injection
// queues, where serialization happens on the crossbar instead).
func (b *vcBuffer) pushWholePacket(pkt *Packet) {
	if b.count == int(b.entN) || b.used+pkt.Size > b.capacity {
		panic("engine: pushWholePacket without space")
	}
	if b.entries == nil {
		b.entries = make([]fifoEntry, b.entN)
	}
	i := b.wrap(b.head + b.count)
	b.entries[i] = fifoEntry{pkt: pkt, arrived: pkt.Size}
	b.tail = i
	b.count++
	b.used += pkt.Size
}

// hasSpaceFor reports whether a whole packet of size phits fits now.
func (b *vcBuffer) hasSpaceFor(size int32) bool {
	return b.used+size <= b.capacity && b.count < int(b.entN)
}

// takePhit accounts one phit of the head entry leaving the buffer and
// reports whether it was the packet's tail (in which case the entry is
// popped and the claim released).
func (b *vcBuffer) takePhit() (pkt *Packet, tail bool) {
	e := b.headEntry()
	if e.sent >= e.arrived {
		panic("engine: takePhit without a buffered phit")
	}
	e.sent++
	b.used--
	pkt = e.pkt
	if e.sent == pkt.Size {
		b.entries[b.head] = fifoEntry{}
		b.head = b.wrap(b.head + 1)
		b.count--
		b.claimed = false
		b.headSeq++
		return pkt, true
	}
	return pkt, false
}
