package engine

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// sparseBurstConfig builds the quiet-cycle fast-forward's target scenario:
// short bursts separated by silent gaps thousands of cycles long, during
// which no router has arrivals or buffered work. The fast-forward must jump
// those gaps without changing a single Result field.
func sparseBurstConfig(t *testing.T, workers int, noFF bool) Config {
	t.Helper()
	cfg := testConfig(t, 2, core.OLM, 0)
	p := cfg.Topo
	burst := func(packets int) traffic.Phase {
		proc, err := traffic.NewBurst(packets, p.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		return traffic.Phase{
			Pattern:      traffic.NewUniform(p),
			Process:      proc,
			Duration:     6000,
			Label:        "burst",
			TotalPackets: int64(packets * p.Nodes),
		}
	}
	w, err := traffic.NewWorkload(p.Nodes,
		traffic.Job{First: 0, Last: p.Nodes - 1,
			Phases: []traffic.Phase{burst(4), burst(4), burst(4)}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern, cfg.Process = nil, nil
	cfg.Workload = w
	cfg.Warmup, cfg.Measure = 0, 0
	cfg.MaxCycles = 100000
	cfg.WindowCycles = 500 // windows must zero-fill identically over jumps
	cfg.Workers = workers
	cfg.NoFastForward = noFF
	return cfg
}

// TestFastForwardBitIdentity is the quiet-cycle fast-forward's regression
// gate: a sparse burst workload with long silent gaps must produce a Result
// (and Timeline) deep-equal to the cycle-by-cycle path, serially and at 4
// workers — and the fast-forward path must actually finish in far fewer
// stepped cycles, or the test proves nothing.
func TestFastForwardBitIdentity(t *testing.T) {
	type outcome struct {
		name string
		cfg  Config
	}
	runs := []outcome{
		{"serial/ff", sparseBurstConfig(t, 1, false)},
		{"serial/noff", sparseBurstConfig(t, 1, true)},
		{"parallel/ff", sparseBurstConfig(t, 4, false)},
		{"parallel/noff", sparseBurstConfig(t, 4, true)},
	}
	sims := make([]*Sim, len(runs))
	results := make([]metrics.Result, len(runs))
	for i, rr := range runs {
		sim, err := New(rr.cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		sims[i] = sim
		results[i] = res
	}
	for i := 1; i < len(runs); i++ {
		if results[0] != results[i] {
			t.Fatalf("%s result differs from %s:\n  %+v\n  %+v",
				runs[i].name, runs[0].name, results[i], results[0])
		}
		if !reflect.DeepEqual(sims[0].Timeline(), sims[i].Timeline()) {
			t.Fatalf("%s timeline differs from %s", runs[i].name, runs[0].name)
		}
	}
	if results[0].Delivered == 0 {
		t.Fatal("nothing delivered; the comparison proved nothing")
	}
	// The run spans three 6000-cycle phases; the bursts drain within a few
	// hundred cycles each, so the fast-forward must skip most of the span.
	// Cycle() agrees across paths (it is part of the contract); the proof
	// that jumping happened is in the internal counter below.
	if got := sims[0].Cycle(); got < 12000 {
		t.Fatalf("run ended at cycle %d; the gaps never existed", got)
	}
	if sims[0].ffJumped == 0 {
		t.Fatal("fast-forward path never jumped; the comparison proved nothing")
	}
	if sims[1].ffJumped != 0 {
		t.Fatal("NoFastForward path jumped")
	}
}

// TestFastForwardFaultHorizons pins the fast-forward's event clamps: a
// fault event (and its stale routing-view horizon) landing inside a silent
// gap must be applied at exactly its cycle, so the faulted Result stays
// identical with and without fast-forwarding.
func TestFastForwardFaultHorizons(t *testing.T) {
	build := func(noFF bool) Config {
		cfg := sparseBurstConfig(t, 1, noFF)
		cfg.Faults = topology.NewFaultSet(cfg.Topo)
		gp := cfg.Topo.GlobalPortBase()
		cfg.FaultEvents = []FaultEvent{
			{At: 2500, Router: 3, Port: gp},               // inside the first gap
			{At: 8200, Repair: true, Router: 3, Port: gp}, // inside the second
		}
		cfg.StaleCycles = 700 // view horizon lands in a gap too
		return cfg
	}
	a, b := run(t, build(false)), run(t, build(true))
	if a != b {
		t.Fatalf("fast-forward changed the faulted result:\n  ff  : %+v\n  noff: %+v", a, b)
	}
	if a.Delivered == 0 {
		t.Fatal("nothing delivered; the comparison proved nothing")
	}
}
