package metrics

import (
	"math"
	"testing"
)

func TestRecordAndDigest(t *testing.T) {
	var s Sheet
	s.Generated = 10
	s.Injected = 9
	s.InjectionLost = 1
	for i := 0; i < 4; i++ {
		s.RecordDelivery(8, int64(100+i*10), int64(90+i*10), 2, 1, 1, 0, 0)
	}
	r := Digest(&s, 100, 8, 0, 0)
	if r.Delivered != 4 {
		t.Fatalf("delivered = %d", r.Delivered)
	}
	// 4 packets * 8 phits over 100 cycles and 8 nodes.
	if want := 32.0 / 100 / 8; math.Abs(r.AcceptedLoad-want) > 1e-12 {
		t.Fatalf("accepted = %v, want %v", r.AcceptedLoad, want)
	}
	if want := 115.0; r.AvgTotalLatency != want {
		t.Fatalf("avg latency = %v, want %v", r.AvgTotalLatency, want)
	}
	if want := 105.0; r.AvgNetworkLatency != want {
		t.Fatalf("avg net latency = %v, want %v", r.AvgNetworkLatency, want)
	}
	if r.AvgLocalHops != 2 || r.AvgGlobalHops != 1 {
		t.Fatalf("hops %v/%v", r.AvgLocalHops, r.AvgGlobalHops)
	}
	if r.LocalMisrouteRate != 1 {
		t.Fatalf("local misroute rate %v", r.LocalMisrouteRate)
	}
}

func TestMerge(t *testing.T) {
	var a, b Sheet
	a.RecordDelivery(8, 100, 90, 1, 1, 0, 0, 0)
	b.RecordDelivery(8, 200, 180, 3, 2, 1, 1, 2)
	b.Generated = 5
	a.Merge(&b)
	if a.Delivered != 2 || a.Generated != 5 {
		t.Fatalf("merge lost counters: %+v", a)
	}
	if a.TotalLatencySum != 300 {
		t.Fatalf("latency sum %v", a.TotalLatencySum)
	}
}

func TestReset(t *testing.T) {
	var s Sheet
	s.RecordDelivery(8, 50, 40, 1, 0, 0, 0, 0)
	s.Reset()
	if s.Delivered != 0 || s.TotalLatencySum != 0 {
		t.Fatalf("reset incomplete: %+v", s)
	}
	if got := s.LatencyPercentile(50); !math.IsNaN(got) {
		t.Fatalf("percentile of empty sheet = %v, want NaN", got)
	}
}

func TestPercentiles(t *testing.T) {
	var s Sheet
	// 100 packets with latencies 16, 32, ..., 1600: well within range.
	for i := 1; i <= 100; i++ {
		s.RecordDelivery(1, int64(16*i), 0, 0, 0, 0, 0, 0)
	}
	p50 := s.LatencyPercentile(50)
	if p50 < 700 || p50 > 900 {
		t.Fatalf("p50 = %v, want about 800", p50)
	}
	p99 := s.LatencyPercentile(99)
	if p99 < 1500 || p99 > 1700 {
		t.Fatalf("p99 = %v, want about 1600", p99)
	}
}

func TestPercentileOverflow(t *testing.T) {
	var s Sheet
	s.RecordDelivery(1, latencyMax*2, 0, 0, 0, 0, 0, 0)
	if got := s.LatencyPercentile(50); !math.IsInf(got, 1) {
		t.Fatalf("overflow percentile = %v, want +Inf", got)
	}
}

func TestDigestEmptyWindow(t *testing.T) {
	var s Sheet
	r := Digest(&s, 0, 0, 0, 0)
	if r.AcceptedLoad != 0 || r.AvgTotalLatency != 0 {
		t.Fatalf("digest of empty sheet: %+v", r)
	}
}

func TestLinkUtilization(t *testing.T) {
	var s Sheet
	s.LocalLinkPhits = 500
	s.GlobalLinkPhits = 300
	r := Digest(&s, 100, 1, 10, 3)
	if r.LocalLinkUtil != 0.5 {
		t.Fatalf("local util %v", r.LocalLinkUtil)
	}
	if r.GlobalLinkUtil != 1.0 {
		t.Fatalf("global util %v", r.GlobalLinkUtil)
	}
}

func TestSeriesSort(t *testing.T) {
	s := Series{Name: "x", Results: []Result{
		{OfferedLoad: 0.5}, {OfferedLoad: 0.1}, {OfferedLoad: 0.3},
	}}
	s.SortByOffered()
	for i := 1; i < len(s.Results); i++ {
		if s.Results[i-1].OfferedLoad > s.Results[i].OfferedLoad {
			t.Fatalf("series not sorted: %+v", s.Results)
		}
	}
}
