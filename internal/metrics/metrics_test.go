package metrics

import (
	"math"
	"testing"
)

func TestRecordAndDigest(t *testing.T) {
	var s Sheet
	s.Generated = 10
	s.Injected = 9
	s.InjectionLost = 1
	for i := 0; i < 4; i++ {
		s.RecordDelivery(0, -1, 8, int64(100+i*10), int64(90+i*10), 2, 1, 1, 0, 0)
	}
	r := Digest(&s, 100, 8, 0, 0)
	if r.Delivered != 4 {
		t.Fatalf("delivered = %d", r.Delivered)
	}
	// 4 packets * 8 phits over 100 cycles and 8 nodes.
	if want := 32.0 / 100 / 8; math.Abs(r.AcceptedLoad-want) > 1e-12 {
		t.Fatalf("accepted = %v, want %v", r.AcceptedLoad, want)
	}
	if want := 115.0; r.AvgTotalLatency != want {
		t.Fatalf("avg latency = %v, want %v", r.AvgTotalLatency, want)
	}
	if want := 105.0; r.AvgNetworkLatency != want {
		t.Fatalf("avg net latency = %v, want %v", r.AvgNetworkLatency, want)
	}
	if r.AvgLocalHops != 2 || r.AvgGlobalHops != 1 {
		t.Fatalf("hops %v/%v", r.AvgLocalHops, r.AvgGlobalHops)
	}
	if r.LocalMisrouteRate != 1 {
		t.Fatalf("local misroute rate %v", r.LocalMisrouteRate)
	}
}

func TestMerge(t *testing.T) {
	var a, b Sheet
	a.RecordDelivery(0, -1, 8, 100, 90, 1, 1, 0, 0, 0)
	b.RecordDelivery(0, -1, 8, 200, 180, 3, 2, 1, 1, 2)
	b.Generated = 5
	a.Merge(&b)
	if a.Delivered != 2 || a.Generated != 5 {
		t.Fatalf("merge lost counters: %+v", a)
	}
	if a.TotalLatencySum != 300 {
		t.Fatalf("latency sum %v", a.TotalLatencySum)
	}
}

func TestReset(t *testing.T) {
	var s Sheet
	s.RecordDelivery(0, -1, 8, 50, 40, 1, 0, 0, 0, 0)
	s.Reset()
	if s.Delivered != 0 || s.TotalLatencySum != 0 {
		t.Fatalf("reset incomplete: %+v", s)
	}
	if got := s.LatencyPercentile(50); !math.IsNaN(got) {
		t.Fatalf("percentile of empty sheet = %v, want NaN", got)
	}
}

func TestPercentiles(t *testing.T) {
	var s Sheet
	// 100 packets with latencies 16, 32, ..., 1600: well within range.
	for i := 1; i <= 100; i++ {
		s.RecordDelivery(0, -1, 1, int64(16*i), 0, 0, 0, 0, 0, 0)
	}
	p50 := s.LatencyPercentile(50)
	if p50 < 700 || p50 > 900 {
		t.Fatalf("p50 = %v, want about 800", p50)
	}
	p99 := s.LatencyPercentile(99)
	if p99 < 1500 || p99 > 1700 {
		t.Fatalf("p99 = %v, want about 1600", p99)
	}
}

func TestPercentileOverflow(t *testing.T) {
	var s Sheet
	s.RecordDelivery(0, -1, 1, latencyMax*2, 0, 0, 0, 0, 0, 0)
	if got := s.LatencyPercentile(50); !math.IsInf(got, 1) {
		t.Fatalf("overflow percentile = %v, want +Inf", got)
	}
}

func TestDigestEmptyWindow(t *testing.T) {
	var s Sheet
	r := Digest(&s, 0, 0, 0, 0)
	if r.AcceptedLoad != 0 || r.AvgTotalLatency != 0 {
		t.Fatalf("digest of empty sheet: %+v", r)
	}
}

func TestLinkUtilization(t *testing.T) {
	var s Sheet
	s.LocalLinkPhits = 500
	s.GlobalLinkPhits = 300
	r := Digest(&s, 100, 1, 10, 3)
	if r.LocalLinkUtil != 0.5 {
		t.Fatalf("local util %v", r.LocalLinkUtil)
	}
	if r.GlobalLinkUtil != 1.0 {
		t.Fatalf("global util %v", r.GlobalLinkUtil)
	}
}

func TestWindowsCollectAndDigest(t *testing.T) {
	var s Sheet
	s.Configure(100, 0)
	s.RecordInjected(10, -1)
	s.RecordInjected(150, -1)
	s.RecordInjectionLost(160, -1)
	s.RecordDelivery(50, -1, 8, 40, 30, 1, 1, 1, 0, 0)
	s.RecordDelivery(120, -1, 8, 80, 70, 1, 1, 0, 1, 0)
	s.RecordDelivery(130, -1, 8, 120, 110, 1, 1, 0, 0, 0)

	tl := s.Timeline(250, 4)
	if tl == nil || tl.WindowCycles != 100 {
		t.Fatalf("timeline %+v", tl)
	}
	if len(tl.Windows) != 3 {
		t.Fatalf("%d windows, want 3 (the timeline covers all of totalCycles)", len(tl.Windows))
	}
	w0, w1 := tl.Windows[0], tl.Windows[1]
	if w0.Start != 0 || w0.End != 100 || w1.Start != 100 || w1.End != 200 {
		t.Fatalf("window spans [%d,%d) [%d,%d)", w0.Start, w0.End, w1.Start, w1.End)
	}
	if w2 := tl.Windows[2]; w2.Start != 200 || w2.End != 250 || w2.Delivered != 0 || w2.AcceptedLoad != 0 {
		t.Fatalf("padded quiet window %+v", w2)
	}
	if w0.Delivered != 1 || w1.Delivered != 2 {
		t.Fatalf("deliveries %d/%d", w0.Delivered, w1.Delivered)
	}
	if w0.Generated != 1 || w1.Generated != 2 || w1.InjectionLost != 1 {
		t.Fatalf("generation counts %d/%d lost %d", w0.Generated, w1.Generated, w1.InjectionLost)
	}
	// 8 phits over a 100-cycle window and 4 nodes.
	if want := 8.0 / 100 / 4; math.Abs(w0.AcceptedLoad-want) > 1e-12 {
		t.Fatalf("window accepted %v, want %v", w0.AcceptedLoad, want)
	}
	if w1.AvgTotalLatency != 100 {
		t.Fatalf("window avg latency %v, want 100", w1.AvgTotalLatency)
	}
	if w0.LocalMisrouteRate != 1 || w1.GlobalMisrouteRate != 0.5 {
		t.Fatalf("window misroute rates %v/%v", w0.LocalMisrouteRate, w1.GlobalMisrouteRate)
	}
	if w1.P99Latency <= 0 || w1.P99Latency > latencyMax {
		t.Fatalf("window p99 %v out of range", w1.P99Latency)
	}
}

func TestWindowsLastWindowClamped(t *testing.T) {
	var s Sheet
	s.Configure(100, 0)
	s.RecordDelivery(130, -1, 10, 40, 30, 0, 0, 0, 0, 0)
	tl := s.Timeline(150, 1)
	if got := tl.Windows[1].End; got != 150 {
		t.Fatalf("last window ends at %d, want the run end 150", got)
	}
	// 10 phits over the 50-cycle partial window.
	if want := 10.0 / 50; math.Abs(tl.Windows[1].AcceptedLoad-want) > 1e-12 {
		t.Fatalf("partial-window accepted %v, want %v", tl.Windows[1].AcceptedLoad, want)
	}
}

func TestWindowsSurviveResetAndMerge(t *testing.T) {
	var a, b Sheet
	a.Configure(100, 2)
	b.Configure(100, 2)
	a.RecordDelivery(50, 0, 8, 40, 30, 0, 0, 0, 0, 0)
	a.Reset() // warmup boundary: run counters clear, windows stay
	if a.Delivered != 0 {
		t.Fatal("reset kept run counters")
	}
	b.RecordDelivery(250, 1, 8, 60, 50, 0, 0, 0, 0, 0)
	a.Merge(&b)
	tl := a.Timeline(300, 1)
	if len(tl.Windows) != 3 {
		t.Fatalf("%d windows after merge, want 3", len(tl.Windows))
	}
	if tl.Windows[0].Delivered != 1 || tl.Windows[2].Delivered != 1 {
		t.Fatalf("merged windows lost deliveries: %+v", tl.Windows)
	}
	ds := a.PhaseDigests([]PhaseInfo{
		{Label: "a", Nodes: 1, Start: 0, Duration: 150},
		{Label: "b", Nodes: 1, Start: 150},
	}, 300)
	if len(ds) != 2 || ds[0].Delivered != 1 || ds[1].Delivered != 1 {
		t.Fatalf("phase digests %+v", ds)
	}
	if ds[0].End != 150 || ds[1].End != 300 {
		t.Fatalf("phase spans end at %d/%d, want 150/300", ds[0].End, ds[1].End)
	}
}

func TestPhaseDigestRates(t *testing.T) {
	var s Sheet
	s.Configure(0, 1)
	s.RecordInjected(0, 0)
	s.RecordInjected(0, 0)
	s.RecordInjectionLost(5, 0)
	s.RecordDelivery(90, 0, 10, 50, 40, 2, 1, 1, 1, 0)
	ds := s.PhaseDigests([]PhaseInfo{{Label: "x", Nodes: 2, Start: 0, Duration: 100}}, 400)
	d := ds[0]
	if d.Generated != 3 || d.InjectionLost != 1 || d.Delivered != 1 {
		t.Fatalf("digest counters %+v", d)
	}
	// 10 phits over the 100-cycle phase span and 2 nodes.
	if want := 10.0 / 100 / 2; math.Abs(d.AcceptedLoad-want) > 1e-12 {
		t.Fatalf("phase accepted %v, want %v", d.AcceptedLoad, want)
	}
	if d.AvgTotalLatency != 50 || d.AvgNetworkLatency != 40 {
		t.Fatalf("phase latencies %v/%v", d.AvgTotalLatency, d.AvgNetworkLatency)
	}
	if d.LocalMisrouteRate != 1 || d.GlobalMisrouteRate != 1 {
		t.Fatalf("phase misroute rates %v/%v", d.LocalMisrouteRate, d.GlobalMisrouteRate)
	}
}

func TestSeriesSort(t *testing.T) {
	s := Series{Name: "x", Results: []Result{
		{OfferedLoad: 0.5}, {OfferedLoad: 0.1}, {OfferedLoad: 0.3},
	}}
	s.SortByOffered()
	for i := 1; i < len(s.Results); i++ {
		if s.Results[i-1].OfferedLoad > s.Results[i].OfferedLoad {
			t.Fatalf("series not sorted: %+v", s.Results)
		}
	}
}

// TestFaultDropAccounting: fault drops land in the run counters, the
// covering timeline window, and the generating phase's digest, and they
// survive Merge like every other counter.
func TestFaultDropAccounting(t *testing.T) {
	var s Sheet
	s.Configure(100, 2)
	s.RecordInjected(10, 0)
	s.RecordInjected(20, 1)
	s.RecordFaultDrop(150, 0)
	s.RecordFaultDrop(250, 1)
	s.RecordFaultDrop(250, 1)

	var other Sheet
	other.Configure(100, 2)
	other.RecordFaultDrop(50, 0)
	s.Merge(&other)

	if s.FaultDrops != 4 {
		t.Fatalf("FaultDrops = %d, want 4", s.FaultDrops)
	}
	tl := s.Timeline(300, 10)
	if tl == nil || len(tl.Windows) != 3 {
		t.Fatalf("timeline %+v", tl)
	}
	if got := []int64{tl.Windows[0].FaultDrops, tl.Windows[1].FaultDrops, tl.Windows[2].FaultDrops}; got[0] != 1 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("window fault drops %v, want [1 1 2]", got)
	}
	ds := s.PhaseDigests([]PhaseInfo{{Label: "a", Nodes: 10}, {Label: "b", Nodes: 10}}, 300)
	if ds[0].FaultDrops != 2 || ds[1].FaultDrops != 2 {
		t.Fatalf("phase fault drops %d/%d, want 2/2", ds[0].FaultDrops, ds[1].FaultDrops)
	}
	r := Digest(&s, 300, 10, 1, 1)
	if r.FaultDrops != 4 {
		t.Fatalf("digested FaultDrops = %d, want 4", r.FaultDrops)
	}

	// Reset clears the run counter but, like deliveries, the windows keep
	// their whole-run view.
	s.Reset()
	if s.FaultDrops != 0 {
		t.Fatal("Reset kept the run counter")
	}
	if tl := s.Timeline(300, 10); tl.Windows[2].FaultDrops != 2 {
		t.Fatal("Reset wiped the window accumulators")
	}
}
