// Package metrics collects and aggregates the statistics the paper reports:
// accepted load in phits/(node·cycle), average packet latency in cycles,
// plus supporting detail (latency percentiles, hop and misroute counts,
// link utilization, packet conservation counters).
//
// Collection is shard-friendly: the engine keeps one Sheet per worker and
// merges them at the end of the run, so the hot path never takes a lock.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// latencyBuckets is the number of linear histogram buckets; latencies at or
// beyond latencyMax fall in the overflow bucket.
const (
	latencyBuckets = 2048
	latencyMax     = 1 << 15
)

// Sheet accumulates raw counters during a measurement window.
// The zero value is ready to use.
type Sheet struct {
	Generated      int64 // packets created by the traffic process
	InjectionLost  int64 // generation events dropped: injection queue full
	Injected       int64 // packets accepted into an injection queue
	Delivered      int64 // packets fully consumed at their destination
	PhitsDelivered int64

	// Latency sums, in cycles, over delivered packets.
	TotalLatencySum   float64 // generation -> delivery
	NetworkLatencySum float64 // injection -> delivery

	LocalHops  int64 // local-link hops of delivered packets
	GlobalHops int64 // global-link hops of delivered packets
	LocalMis   int64 // local misroutes of delivered packets
	GlobalMis  int64 // global misroutes (Valiant detours) of delivered packets
	EscapeHops int64 // OFAR escape-ring hops of delivered packets

	// Histogram of total latency (linear buckets of width
	// latencyMax/latencyBuckets, last bucket is overflow).
	latHist [latencyBuckets + 1]int64

	// Link utilization: phits carried per link class.
	LocalLinkPhits  int64
	GlobalLinkPhits int64
}

// RecordDelivery accounts one delivered packet.
func (s *Sheet) RecordDelivery(phits int, totalLat, netLat int64, localHops, globalHops, localMis, globalMis, escapeHops int) {
	s.Delivered++
	s.PhitsDelivered += int64(phits)
	s.TotalLatencySum += float64(totalLat)
	s.NetworkLatencySum += float64(netLat)
	s.LocalHops += int64(localHops)
	s.GlobalHops += int64(globalHops)
	s.LocalMis += int64(localMis)
	s.GlobalMis += int64(globalMis)
	s.EscapeHops += int64(escapeHops)
	b := int(totalLat) * latencyBuckets / latencyMax
	if b >= latencyBuckets || b < 0 {
		b = latencyBuckets
	}
	s.latHist[b]++
}

// Merge adds other into s.
func (s *Sheet) Merge(other *Sheet) {
	s.Generated += other.Generated
	s.InjectionLost += other.InjectionLost
	s.Injected += other.Injected
	s.Delivered += other.Delivered
	s.PhitsDelivered += other.PhitsDelivered
	s.TotalLatencySum += other.TotalLatencySum
	s.NetworkLatencySum += other.NetworkLatencySum
	s.LocalHops += other.LocalHops
	s.GlobalHops += other.GlobalHops
	s.LocalMis += other.LocalMis
	s.GlobalMis += other.GlobalMis
	s.EscapeHops += other.EscapeHops
	s.LocalLinkPhits += other.LocalLinkPhits
	s.GlobalLinkPhits += other.GlobalLinkPhits
	for i := range s.latHist {
		s.latHist[i] += other.latHist[i]
	}
}

// Reset zeroes all counters (used at the warmup/measurement boundary).
func (s *Sheet) Reset() { *s = Sheet{} }

// LatencyPercentile returns an approximation (bucket upper bound) of the
// q-th percentile of total latency, q in [0, 100]. It returns NaN when no
// packet was delivered.
func (s *Sheet) LatencyPercentile(q float64) float64 {
	if s.Delivered == 0 {
		return math.NaN()
	}
	target := int64(math.Ceil(q / 100 * float64(s.Delivered)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.latHist {
		cum += c
		if cum >= target {
			if i == latencyBuckets {
				return math.Inf(1)
			}
			return float64((i + 1) * latencyMax / latencyBuckets)
		}
	}
	return math.Inf(1)
}

// Result is the digest of one simulation run.
type Result struct {
	Mechanism   string  // routing mechanism name
	Pattern     string  // traffic pattern name
	OfferedLoad float64 // phits/(node*cycle) requested
	Cycles      int64   // measured cycles
	Nodes       int

	AcceptedLoad      float64 // phits/(node*cycle) delivered
	AvgTotalLatency   float64 // generation -> delivery, cycles
	AvgNetworkLatency float64 // injection -> delivery, cycles
	P50Latency        float64
	P99Latency        float64

	AvgLocalHops       float64
	AvgGlobalHops      float64
	LocalMisrouteRate  float64 // local misroutes per delivered packet
	GlobalMisrouteRate float64 // global misroutes per delivered packet
	EscapeHopRate      float64 // OFAR escape-ring hops per delivered packet

	Delivered     int64
	Generated     int64
	InjectionLost int64

	// PhitsMoved counts every crossbar phit movement over the whole run
	// (warmup included), the engine's raw unit of work; benchmark
	// harnesses divide it by wall time.
	PhitsMoved int64

	LocalLinkUtil  float64 // mean phits/cycle per local link
	GlobalLinkUtil float64 // mean phits/cycle per global link

	// Burst experiments only: cycle at which the last packet drained.
	ConsumptionCycles int64

	Deadlock bool // the watchdog fired
}

// Digest converts a Sheet into a Result given the measurement window and
// network size.
func Digest(s *Sheet, cycles int64, nodes, localLinks, globalLinks int) Result {
	r := Result{
		Cycles:        cycles,
		Nodes:         nodes,
		Delivered:     s.Delivered,
		Generated:     s.Generated,
		InjectionLost: s.InjectionLost,
	}
	if cycles > 0 && nodes > 0 {
		r.AcceptedLoad = float64(s.PhitsDelivered) / float64(cycles) / float64(nodes)
	}
	if s.Delivered > 0 {
		d := float64(s.Delivered)
		r.AvgTotalLatency = s.TotalLatencySum / d
		r.AvgNetworkLatency = s.NetworkLatencySum / d
		r.AvgLocalHops = float64(s.LocalHops) / d
		r.AvgGlobalHops = float64(s.GlobalHops) / d
		r.LocalMisrouteRate = float64(s.LocalMis) / d
		r.GlobalMisrouteRate = float64(s.GlobalMis) / d
		r.EscapeHopRate = float64(s.EscapeHops) / d
		r.P50Latency = s.LatencyPercentile(50)
		r.P99Latency = s.LatencyPercentile(99)
	}
	if cycles > 0 && localLinks > 0 {
		r.LocalLinkUtil = float64(s.LocalLinkPhits) / float64(cycles) / float64(localLinks)
	}
	if cycles > 0 && globalLinks > 0 {
		r.GlobalLinkUtil = float64(s.GlobalLinkPhits) / float64(cycles) / float64(globalLinks)
	}
	return r
}

// String renders the headline numbers on one line.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s load=%.3f accepted=%.4f lat=%.1f netlat=%.1f delivered=%d",
		r.Mechanism, r.Pattern, r.OfferedLoad, r.AcceptedLoad,
		r.AvgTotalLatency, r.AvgNetworkLatency, r.Delivered)
}

// Series is a named sequence of results, typically one mechanism swept over
// a parameter; it renders figure data files.
type Series struct {
	Name    string
	Results []Result
}

// SortByOffered orders the series by offered load.
func (s *Series) SortByOffered() {
	sort.Slice(s.Results, func(i, j int) bool {
		return s.Results[i].OfferedLoad < s.Results[j].OfferedLoad
	})
}
