// Package metrics collects and aggregates the statistics the paper reports:
// accepted load in phits/(node·cycle), average packet latency in cycles,
// plus supporting detail (latency percentiles, hop and misroute counts,
// link utilization, packet conservation counters).
//
// Collection is shard-friendly: the engine keeps one Sheet per worker and
// merges them at the end of the run, so the hot path never takes a lock.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// latencyBuckets is the number of linear histogram buckets; latencies at or
// beyond latencyMax fall in the overflow bucket.
const (
	latencyBuckets = 2048
	latencyMax     = 1 << 15
)

// windowBuckets is the per-window latency histogram resolution. Windows
// trade precision (latencyMax/windowBuckets = 128-cycle buckets) for a
// footprint small enough to keep one histogram per window per worker.
const windowBuckets = 256

// windowCell accumulates the per-window counters behind one Timeline
// window. Cells are indexed by cycle/width from the start of the run
// (warmup included), so transient figures can show the warmup tail too.
type windowCell struct {
	Delivered      int64
	PhitsDelivered int64
	Generated      int64
	InjectionLost  int64
	Suppressed     int64
	FaultDrops     int64

	TotalLatencySum float64
	LocalMis        int64
	GlobalMis       int64

	latHist [windowBuckets + 1]int32
}

func (c *windowCell) merge(o *windowCell) {
	c.Delivered += o.Delivered
	c.PhitsDelivered += o.PhitsDelivered
	c.Generated += o.Generated
	c.InjectionLost += o.InjectionLost
	c.Suppressed += o.Suppressed
	c.FaultDrops += o.FaultDrops
	c.TotalLatencySum += o.TotalLatencySum
	c.LocalMis += o.LocalMis
	c.GlobalMis += o.GlobalMis
	for i := range c.latHist {
		c.latHist[i] += o.latHist[i]
	}
}

// p99 approximates the window's 99th-percentile latency as the upper bound
// of the covering bucket, clamped to latencyMax so the value stays finite
// (and JSON-serializable) even for the overflow bucket.
func (c *windowCell) p99() float64 {
	if c.Delivered == 0 {
		return 0
	}
	target := (99*c.Delivered + 99) / 100
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range c.latHist {
		cum += int64(n)
		if cum >= target {
			if i >= windowBuckets {
				return latencyMax
			}
			return float64((i + 1) * latencyMax / windowBuckets)
		}
	}
	return latencyMax
}

// phaseCell accumulates the counters behind one per-phase digest. Packets
// are attributed to the phase that generated them, whenever they deliver.
type phaseCell struct {
	Generated      int64
	InjectionLost  int64
	Suppressed     int64
	Injected       int64
	Delivered      int64
	FaultDrops     int64
	PhitsDelivered int64

	TotalLatencySum   float64
	NetworkLatencySum float64
	LocalMis          int64
	GlobalMis         int64
}

func (c *phaseCell) merge(o *phaseCell) {
	c.Generated += o.Generated
	c.InjectionLost += o.InjectionLost
	c.Suppressed += o.Suppressed
	c.Injected += o.Injected
	c.Delivered += o.Delivered
	c.FaultDrops += o.FaultDrops
	c.PhitsDelivered += o.PhitsDelivered
	c.TotalLatencySum += o.TotalLatencySum
	c.NetworkLatencySum += o.NetworkLatencySum
	c.LocalMis += o.LocalMis
	c.GlobalMis += o.GlobalMis
}

// Sheet accumulates raw counters during a measurement window.
// The zero value is ready to use.
type Sheet struct {
	Generated      int64 // packets created by the traffic process
	InjectionLost  int64 // generation events dropped: injection queue full
	Suppressed     int64 // generation events suppressed: source node parked
	Injected       int64 // packets accepted into an injection queue
	Delivered      int64 // packets fully consumed at their destination
	FaultDrops     int64 // packets discarded in-network: no surviving route
	PhitsDelivered int64

	// Latency sums, in cycles, over delivered packets.
	TotalLatencySum   float64 // generation -> delivery
	NetworkLatencySum float64 // injection -> delivery

	LocalHops  int64 // local-link hops of delivered packets
	GlobalHops int64 // global-link hops of delivered packets
	LocalMis   int64 // local misroutes of delivered packets
	GlobalMis  int64 // global misroutes (Valiant detours) of delivered packets
	EscapeHops int64 // OFAR escape-ring hops of delivered packets

	// Histogram of total latency (linear buckets of width
	// latencyMax/latencyBuckets, last bucket is overflow).
	latHist [latencyBuckets + 1]int64

	// Link utilization: phits carried per link class.
	LocalLinkPhits  int64
	GlobalLinkPhits int64

	// windowWidth partitions the run into fixed-width Timeline windows;
	// zero disables window collection. Windows and phase cells survive
	// Reset: the timeline and the per-phase digests deliberately span the
	// whole run, warmup included, because the transients they exist to
	// show (a pattern switch, a burst landing) do not respect the
	// warmup/measurement boundary.
	windowWidth int64
	windows     []windowCell
	phaseCells  []phaseCell
}

// Configure sets the Timeline window width (0 disables windows) and the
// number of workload phases tracked by per-phase digests (0 disables
// them). Call it once, before recording.
func (s *Sheet) Configure(windowWidth int64, phases int) {
	s.windowWidth = windowWidth
	s.windows = nil
	if phases > 0 {
		s.phaseCells = make([]phaseCell, phases)
	} else {
		s.phaseCells = nil
	}
}

// windowAt returns the cell covering cycle, growing the lazy window slice
// as the run advances.
func (s *Sheet) windowAt(cycle int64) *windowCell {
	i := int(cycle / s.windowWidth)
	for len(s.windows) <= i {
		s.windows = append(s.windows, windowCell{})
	}
	return &s.windows[i]
}

// phaseAt returns the cell of workload-global phase id, or nil when phase
// tracking is off or the id is out of range.
func (s *Sheet) phaseAt(phase int) *phaseCell {
	if phase < 0 || phase >= len(s.phaseCells) {
		return nil
	}
	return &s.phaseCells[phase]
}

// RecordDelivery accounts one packet delivered at cycle that was generated
// in workload phase (pass cycle 0 / phase -1 when neither windows nor
// phases are configured).
func (s *Sheet) RecordDelivery(cycle int64, phase int, phits int, totalLat, netLat int64, localHops, globalHops, localMis, globalMis, escapeHops int) {
	s.Delivered++
	s.PhitsDelivered += int64(phits)
	s.TotalLatencySum += float64(totalLat)
	s.NetworkLatencySum += float64(netLat)
	s.LocalHops += int64(localHops)
	s.GlobalHops += int64(globalHops)
	s.LocalMis += int64(localMis)
	s.GlobalMis += int64(globalMis)
	s.EscapeHops += int64(escapeHops)
	b := int(totalLat) * latencyBuckets / latencyMax
	if b >= latencyBuckets || b < 0 {
		b = latencyBuckets
	}
	s.latHist[b]++
	if s.windowWidth > 0 {
		w := s.windowAt(cycle)
		w.Delivered++
		w.PhitsDelivered += int64(phits)
		w.TotalLatencySum += float64(totalLat)
		w.LocalMis += int64(localMis)
		w.GlobalMis += int64(globalMis)
		wb := int(totalLat) * windowBuckets / latencyMax
		if wb >= windowBuckets || wb < 0 {
			wb = windowBuckets
		}
		w.latHist[wb]++
	}
	if c := s.phaseAt(phase); c != nil {
		c.Delivered++
		c.PhitsDelivered += int64(phits)
		c.TotalLatencySum += float64(totalLat)
		c.NetworkLatencySum += float64(netLat)
		c.LocalMis += int64(localMis)
		c.GlobalMis += int64(globalMis)
	}
}

// RecordInjected accounts one packet generated at cycle in phase and
// accepted into an injection queue.
func (s *Sheet) RecordInjected(cycle int64, phase int) {
	s.Generated++
	s.Injected++
	if s.windowWidth > 0 {
		s.windowAt(cycle).Generated++
	}
	if c := s.phaseAt(phase); c != nil {
		c.Generated++
		c.Injected++
	}
}

// RecordFaultDrop accounts one packet discarded at cycle because link
// failures left it without a surviving route.
func (s *Sheet) RecordFaultDrop(cycle int64, phase int) {
	s.FaultDrops++
	if s.windowWidth > 0 {
		s.windowAt(cycle).FaultDrops++
	}
	if c := s.phaseAt(phase); c != nil {
		c.FaultDrops++
	}
}

// RecordInjectionLost accounts one generation event dropped at cycle in
// phase because the injection queue was full.
func (s *Sheet) RecordInjectionLost(cycle int64, phase int) {
	s.Generated++
	s.InjectionLost++
	if s.windowWidth > 0 {
		w := s.windowAt(cycle)
		w.Generated++
		w.InjectionLost++
	}
	if c := s.phaseAt(phase); c != nil {
		c.Generated++
		c.InjectionLost++
	}
}

// RecordSuppressed accounts one generation event suppressed at cycle in
// phase because the source node's router is dead (the node is parked).
func (s *Sheet) RecordSuppressed(cycle int64, phase int) {
	s.Generated++
	s.Suppressed++
	if s.windowWidth > 0 {
		w := s.windowAt(cycle)
		w.Generated++
		w.Suppressed++
	}
	if c := s.phaseAt(phase); c != nil {
		c.Generated++
		c.Suppressed++
	}
}

// Merge adds other into s.
func (s *Sheet) Merge(other *Sheet) {
	s.Generated += other.Generated
	s.InjectionLost += other.InjectionLost
	s.Suppressed += other.Suppressed
	s.Injected += other.Injected
	s.Delivered += other.Delivered
	s.FaultDrops += other.FaultDrops
	s.PhitsDelivered += other.PhitsDelivered
	s.TotalLatencySum += other.TotalLatencySum
	s.NetworkLatencySum += other.NetworkLatencySum
	s.LocalHops += other.LocalHops
	s.GlobalHops += other.GlobalHops
	s.LocalMis += other.LocalMis
	s.GlobalMis += other.GlobalMis
	s.EscapeHops += other.EscapeHops
	s.LocalLinkPhits += other.LocalLinkPhits
	s.GlobalLinkPhits += other.GlobalLinkPhits
	for i := range s.latHist {
		s.latHist[i] += other.latHist[i]
	}
	for len(s.windows) < len(other.windows) {
		s.windows = append(s.windows, windowCell{})
	}
	for i := range other.windows {
		s.windows[i].merge(&other.windows[i])
	}
	for i := range other.phaseCells {
		if i < len(s.phaseCells) {
			s.phaseCells[i].merge(&other.phaseCells[i])
		}
	}
}

// Reset zeroes the run counters (used at the warmup/measurement boundary).
// Window and phase accumulators survive: the Timeline and the per-phase
// digests span the whole run by design.
func (s *Sheet) Reset() {
	*s = Sheet{
		windowWidth: s.windowWidth,
		windows:     s.windows,
		phaseCells:  s.phaseCells,
	}
}

// LatencyPercentile returns an approximation (bucket upper bound) of the
// q-th percentile of total latency, q in [0, 100]. It returns NaN when no
// packet was delivered.
func (s *Sheet) LatencyPercentile(q float64) float64 {
	if s.Delivered == 0 {
		return math.NaN()
	}
	target := int64(math.Ceil(q / 100 * float64(s.Delivered)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.latHist {
		cum += c
		if cum >= target {
			if i == latencyBuckets {
				return math.Inf(1)
			}
			return float64((i + 1) * latencyMax / latencyBuckets)
		}
	}
	return math.Inf(1)
}

// Window is one fixed-width snapshot of a run's Timeline. Rates with no
// deliveries in the window report zero (not NaN) so timelines serialize
// cleanly.
type Window struct {
	Start int64 // first cycle of the window
	End   int64 // one past the last cycle covered

	AcceptedLoad       float64 // phits/(node·cycle) delivered in the window
	AvgTotalLatency    float64 // of packets delivered in the window
	P99Latency         float64
	LocalMisrouteRate  float64 // local misroutes per packet delivered in the window
	GlobalMisrouteRate float64

	Delivered     int64
	Generated     int64
	InjectionLost int64
	Suppressed    int64
	FaultDrops    int64
}

// Timeline is the windowed time series of a run: the whole run (warmup
// included) cut into fixed-width windows, the last one possibly shorter.
type Timeline struct {
	WindowCycles int64
	Windows      []Window
}

// PhaseInfo describes one workload phase to the digester: its label, the
// node count of its job, and its [Start, Start+Duration) activity span
// (Duration 0 = until the end of the run).
type PhaseInfo struct {
	Label    string
	Nodes    int
	Start    int64
	Duration int64
}

// PhaseDigest summarizes the packets one workload phase generated,
// wherever in the run they delivered. AcceptedLoad normalizes by the
// phase's activity span and its job's node count.
type PhaseDigest struct {
	Index int
	Label string
	Nodes int
	Start int64
	End   int64

	AcceptedLoad       float64
	AvgTotalLatency    float64
	AvgNetworkLatency  float64
	LocalMisrouteRate  float64
	GlobalMisrouteRate float64

	Generated     int64
	InjectionLost int64
	Suppressed    int64
	Delivered     int64
	FaultDrops    int64
}

// Timeline digests the window accumulators into the run's time series.
// It returns nil when windows were not configured; totalCycles caps the
// last window's span. The timeline always covers the whole run: windows
// past the last recorded event (a quiet drain tail, an ended job) come
// out zero-valued rather than missing.
func (s *Sheet) Timeline(totalCycles int64, nodes int) *Timeline {
	if s.windowWidth <= 0 {
		return nil
	}
	n := int((totalCycles + s.windowWidth - 1) / s.windowWidth)
	if n < len(s.windows) {
		n = len(s.windows)
	}
	t := &Timeline{WindowCycles: s.windowWidth, Windows: make([]Window, n)}
	for i := range t.Windows {
		w := &t.Windows[i]
		w.Start = int64(i) * s.windowWidth
		w.End = w.Start + s.windowWidth
		if w.End > totalCycles {
			w.End = totalCycles
		}
		if i >= len(s.windows) {
			continue
		}
		c := &s.windows[i]
		w.Delivered = c.Delivered
		w.Generated = c.Generated
		w.InjectionLost = c.InjectionLost
		w.Suppressed = c.Suppressed
		w.FaultDrops = c.FaultDrops
		if span := w.End - w.Start; span > 0 && nodes > 0 {
			w.AcceptedLoad = float64(c.PhitsDelivered) / float64(span) / float64(nodes)
		}
		if c.Delivered > 0 {
			d := float64(c.Delivered)
			w.AvgTotalLatency = c.TotalLatencySum / d
			w.P99Latency = c.p99()
			w.LocalMisrouteRate = float64(c.LocalMis) / d
			w.GlobalMisrouteRate = float64(c.GlobalMis) / d
		}
	}
	return t
}

// PhaseDigests digests the per-phase accumulators; infos must be indexed
// by workload-global phase id. It returns nil when phases were not
// configured.
func (s *Sheet) PhaseDigests(infos []PhaseInfo, totalCycles int64) []PhaseDigest {
	if len(s.phaseCells) == 0 {
		return nil
	}
	out := make([]PhaseDigest, len(s.phaseCells))
	for i := range s.phaseCells {
		c := &s.phaseCells[i]
		d := &out[i]
		d.Index = i
		d.Generated = c.Generated
		d.InjectionLost = c.InjectionLost
		d.Suppressed = c.Suppressed
		d.Delivered = c.Delivered
		d.FaultDrops = c.FaultDrops
		if i < len(infos) {
			info := infos[i]
			d.Label = info.Label
			d.Nodes = info.Nodes
			d.Start = info.Start
			d.End = totalCycles
			if info.Duration > 0 && info.Start+info.Duration < totalCycles {
				d.End = info.Start + info.Duration
			}
			if span := d.End - d.Start; span > 0 && info.Nodes > 0 {
				d.AcceptedLoad = float64(c.PhitsDelivered) / float64(span) / float64(info.Nodes)
			}
		}
		if c.Delivered > 0 {
			n := float64(c.Delivered)
			d.AvgTotalLatency = c.TotalLatencySum / n
			d.AvgNetworkLatency = c.NetworkLatencySum / n
			d.LocalMisrouteRate = float64(c.LocalMis) / n
			d.GlobalMisrouteRate = float64(c.GlobalMis) / n
		}
	}
	return out
}

// Result is the digest of one simulation run.
type Result struct {
	Mechanism   string  // routing mechanism name
	Pattern     string  // traffic pattern name
	OfferedLoad float64 // phits/(node*cycle) requested
	Cycles      int64   // measured cycles
	Nodes       int

	AcceptedLoad      float64 // phits/(node*cycle) delivered
	AvgTotalLatency   float64 // generation -> delivery, cycles
	AvgNetworkLatency float64 // injection -> delivery, cycles
	P50Latency        float64
	P99Latency        float64

	AvgLocalHops       float64
	AvgGlobalHops      float64
	LocalMisrouteRate  float64 // local misroutes per delivered packet
	GlobalMisrouteRate float64 // global misroutes per delivered packet
	EscapeHopRate      float64 // OFAR escape-ring hops per delivered packet

	Delivered     int64
	Generated     int64
	InjectionLost int64
	// Suppressed counts generation events suppressed because the source
	// node's router was dead at the time (zero without router failures).
	Suppressed int64
	// FaultDrops counts packets discarded in-network because link failures
	// left them without a surviving route (zero on fault-free runs).
	FaultDrops int64

	// PhitsMoved counts every crossbar phit movement over the whole run
	// (warmup included), the engine's raw unit of work; benchmark
	// harnesses divide it by wall time.
	PhitsMoved int64

	LocalLinkUtil  float64 // mean phits/cycle per local link
	GlobalLinkUtil float64 // mean phits/cycle per global link

	// Burst experiments only: cycle at which the last packet drained.
	ConsumptionCycles int64

	Deadlock bool // the watchdog fired
}

// Digest converts a Sheet into a Result given the measurement window and
// network size.
func Digest(s *Sheet, cycles int64, nodes, localLinks, globalLinks int) Result {
	r := Result{
		Cycles:        cycles,
		Nodes:         nodes,
		Delivered:     s.Delivered,
		Generated:     s.Generated,
		InjectionLost: s.InjectionLost,
		Suppressed:    s.Suppressed,
		FaultDrops:    s.FaultDrops,
	}
	if cycles > 0 && nodes > 0 {
		r.AcceptedLoad = float64(s.PhitsDelivered) / float64(cycles) / float64(nodes)
	}
	if s.Delivered > 0 {
		d := float64(s.Delivered)
		r.AvgTotalLatency = s.TotalLatencySum / d
		r.AvgNetworkLatency = s.NetworkLatencySum / d
		r.AvgLocalHops = float64(s.LocalHops) / d
		r.AvgGlobalHops = float64(s.GlobalHops) / d
		r.LocalMisrouteRate = float64(s.LocalMis) / d
		r.GlobalMisrouteRate = float64(s.GlobalMis) / d
		r.EscapeHopRate = float64(s.EscapeHops) / d
		r.P50Latency = s.LatencyPercentile(50)
		r.P99Latency = s.LatencyPercentile(99)
	}
	if cycles > 0 && localLinks > 0 {
		r.LocalLinkUtil = float64(s.LocalLinkPhits) / float64(cycles) / float64(localLinks)
	}
	if cycles > 0 && globalLinks > 0 {
		r.GlobalLinkUtil = float64(s.GlobalLinkPhits) / float64(cycles) / float64(globalLinks)
	}
	return r
}

// String renders the headline numbers on one line.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s load=%.3f accepted=%.4f lat=%.1f netlat=%.1f delivered=%d",
		r.Mechanism, r.Pattern, r.OfferedLoad, r.AcceptedLoad,
		r.AvgTotalLatency, r.AvgNetworkLatency, r.Delivered)
}

// Series is a named sequence of results, typically one mechanism swept over
// a parameter; it renders figure data files.
type Series struct {
	Name    string
	Results []Result
}

// SortByOffered orders the series by offered load.
func (s *Series) SortByOffered() {
	sort.Slice(s.Results, func(i, j int) bool {
		return s.Results[i].OfferedLoad < s.Results[j].OfferedLoad
	})
}
