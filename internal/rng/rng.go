// Package rng provides small, fast, deterministic pseudo-random number
// generators for the simulator.
//
// The engine gives every router (and every traffic source) its own stream
// derived from the run seed with SplitMix64, so simulations are reproducible
// and independent of goroutine scheduling: the parallel executor produces
// results identical to the serial one.
package rng

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used both as a seeding function and as the stream splitter.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PCG is a PCG32 (XSH-RR) generator: 64-bit state, 32-bit output.
// The zero value is a valid but fixed stream; use Seed or New.
type PCG struct {
	state uint64
	inc   uint64 // stream selector; always odd
}

// New returns a generator seeded from seed on stream stream.
// Distinct streams are statistically independent.
func New(seed, stream uint64) *PCG {
	var p PCG
	p.Seed(seed, stream)
	return &p
}

// Seed (re)initializes the generator from seed on the given stream.
func (p *PCG) Seed(seed, stream uint64) {
	s := seed
	p.state = 0
	p.inc = (splitMix64(&s)+2*stream)<<1 | 1
	p.Uint32()
	p.state += splitMix64(&s)
	p.Uint32()
}

// Uint32 returns the next 32 uniformly distributed bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	// The increment must be odd for the LCG to reach full period; the
	// |1 keeps the zero value usable (a fixed but valid stream) instead
	// of degenerating to a constant.
	p.state = old*6364136223846793005 + (p.inc | 1)
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (p *PCG) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint32(n)
	for {
		v := p.Uint32()
		m := uint64(v) * uint64(bound)
		lo := uint32(m)
		if lo >= bound {
			return int(m >> 32)
		}
		// Rejection zone: only reached for lo < bound, which happens
		// with probability < bound/2^32.
		threshold := -bound % bound
		if lo >= threshold {
			return int(m >> 32)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability prob (clamped to [0, 1]).
func (p *PCG) Bernoulli(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return p.Float64() < prob
}

// Split derives a new, statistically independent generator from the
// current one without disturbing its own sequence more than one step.
func (p *PCG) Split() *PCG {
	seed := p.Uint64()
	return New(seed, seed>>33+1)
}
