package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 coincide on %d/1000 outputs", same)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 coincide on %d/1000 outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	p := New(7, 3)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := p.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	p := New(99, 5)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[p.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(3, 9)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := p.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want about 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	p := New(5, 5)
	for i := 0; i < 100; i++ {
		if p.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !p.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	p := New(11, 2)
	const prob, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if p.Bernoulli(prob) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-prob) > 0.01 {
		t.Fatalf("Bernoulli(%.2f) rate %v", prob, got)
	}
}

func TestSplitIndependence(t *testing.T) {
	p := New(123, 4)
	q := p.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if p.Uint32() == q.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream coincides on %d/1000 outputs", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var p PCG
	// The zero value must not hang or panic; statistical quality is not
	// required of it.
	_ = p.Uint32()
	_ = p.Intn(10)
}

func BenchmarkUint32(b *testing.B) {
	p := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = p.Uint32()
	}
}

func BenchmarkIntn(b *testing.B) {
	p := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = p.Intn(129)
	}
}
