package exp

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	dragonfly "repro"
)

// tinyBase is a fast h=2 environment.
func tinyBase() dragonfly.Config {
	cfg := dragonfly.PaperVCT(2)
	cfg.LatLocal, cfg.LatGlobal = 4, 16
	cfg.Warmup, cfg.Measure = 400, 800
	cfg.Seed = 7
	return cfg
}

// tinyCampaign is a small mechanisms×loads matrix, VCT and WH.
func tinyCampaign() Campaign {
	var pts []Point
	for _, flow := range []dragonfly.FlowControl{dragonfly.VCT, dragonfly.WH} {
		base := tinyBase()
		base.FlowControl = flow
		if flow == dragonfly.WH {
			base.PacketPhits = 40
		}
		pts = append(pts, NewMatrix(base).
			Mechanisms(dragonfly.Minimal, dragonfly.RLM).
			Loads(0.1, 0.4).
			Points()...)
	}
	return Campaign{Name: "tiny", Points: pts}
}

func TestMatrixShapesAndOrder(t *testing.T) {
	pts := NewMatrix(tinyBase()).
		Mechanisms(dragonfly.Minimal, dragonfly.RLM).
		Loads(0.1, 0.3).
		Points()
	if len(pts) != 4 {
		t.Fatalf("%d points, want 4", len(pts))
	}
	// Series-major: all loads of Minimal first, the layout sweep relies on.
	want := []struct {
		series string
		x      float64
	}{
		{"Minimal", 0.1}, {"Minimal", 0.3}, {"RLM", 0.1}, {"RLM", 0.3},
	}
	for i, w := range want {
		if pts[i].Series != w.series || pts[i].X != w.x {
			t.Fatalf("point %d = (%q, %v), want (%q, %v)", i, pts[i].Series, pts[i].X, w.series, w.x)
		}
	}
	if pts[2].Config.Mechanism != dragonfly.RLM || pts[2].Config.Load != 0.1 {
		t.Fatalf("point 2 config not specialized: %+v", pts[2].Config)
	}
	if pts[0].Config.H != 2 {
		t.Fatalf("base config lost: H=%d", pts[0].Config.H)
	}
}

func TestMatrixFilter(t *testing.T) {
	pts := NewMatrix(tinyBase()).
		Mechanisms(dragonfly.Minimal, dragonfly.OLM).
		Flows(dragonfly.VCT, dragonfly.WH).
		Filter(func(c dragonfly.Config) bool {
			return !(c.Mechanism.RequiresVCT() && c.FlowControl == dragonfly.WH)
		}).
		Points()
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3 (OLM/WH filtered)", len(pts))
	}
	for _, p := range pts {
		if p.Config.Mechanism.RequiresVCT() && p.Config.FlowControl == dragonfly.WH {
			t.Fatalf("filtered combination survived: %s", p.Series)
		}
	}
}

// TestDeterminismAcrossWorkers is the tentpole acceptance check: the same
// campaign run serially and on a wide pool must produce byte-identical
// per-point results.
func TestDeterminismAcrossWorkers(t *testing.T) {
	camp := tinyCampaign()
	serial, err := Run(context.Background(), camp, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), camp, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) != len(camp.Points) {
		t.Fatalf("outcome counts: %d serial, %d parallel, %d points", len(serial), len(parallel), len(camp.Points))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("point %d errors: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Result.Delivered == 0 {
			t.Fatalf("point %d delivered nothing", i)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Fatalf("point %d (%s x=%g) diverges across pool sizes:\nserial:   %+v\nparallel: %+v",
				i, serial[i].Point.Series, serial[i].Point.X, serial[i].Result, parallel[i].Result)
		}
	}
}

func TestPerPointSeeding(t *testing.T) {
	camp := Campaign{Points: NewMatrix(tinyBase()).
		Mechanisms(dragonfly.Minimal).
		Loads(0.2, 0.2). // identical configs: only the derived seed differs
		Points()}
	outs, err := Run(context.Background(), camp, Options{SeedBase: 99, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Point.Config.Seed == outs[1].Point.Config.Seed {
		t.Fatal("per-point seeds collide")
	}
	if outs[0].Point.Config.Seed != PointSeed(99, 0) {
		t.Fatal("seed not derived from SeedBase and index")
	}
	if reflect.DeepEqual(outs[0].Result, outs[1].Result) {
		t.Fatal("different seeds produced identical results")
	}
	// Re-running derives the same seeds, hence the same results.
	again, err := Run(context.Background(), camp, Options{SeedBase: 99, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if !reflect.DeepEqual(outs[i].Result, again[i].Result) {
			t.Fatalf("point %d not reproducible under SeedBase", i)
		}
	}
}

func TestPerPointErrorsDoNotAbortCampaign(t *testing.T) {
	bad := tinyBase()
	bad.Mechanism = dragonfly.OLM
	bad.FlowControl = dragonfly.WH // engine rejects: OLM requires VCT
	bad.PacketPhits = 40
	good := tinyBase()
	good.Mechanism = dragonfly.Minimal
	good.Load = 0.2
	camp := Campaign{Points: []Point{
		{Series: "bad", Config: bad},
		{Series: "good", X: 0.2, Config: good},
	}}
	outs, err := Run(context.Background(), camp, Options{Workers: 2})
	if err != nil {
		t.Fatalf("campaign-level error for a per-point failure: %v", err)
	}
	if outs[0].Err == nil {
		t.Fatal("invalid point reported no error")
	}
	if outs[1].Err != nil || outs[1].Result.Delivered == 0 {
		t.Fatalf("good point poisoned: %v", outs[1].Err)
	}
	joined := PointErrors(outs)
	if joined == nil || !strings.Contains(joined.Error(), "bad") {
		t.Fatalf("PointErrors = %v", joined)
	}
}

func TestProgressAndJSONL(t *testing.T) {
	camp := tinyCampaign()
	var events []Progress
	var buf bytes.Buffer
	outs, err := Run(context.Background(), camp, Options{
		Workers:  3,
		JSONL:    &buf,
		Progress: func(p Progress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(camp.Points) {
		t.Fatalf("%d progress events, want %d", len(events), len(camp.Points))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(camp.Points) {
			t.Fatalf("event %d: done=%d total=%d", i, ev.Done, ev.Total)
		}
	}
	seen := map[int]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if rec.Result == nil || rec.Result.Delivered == 0 {
			t.Fatalf("record %d has no result", rec.Index)
		}
		if rec.Config.H != 2 {
			t.Fatalf("record %d lost its config", rec.Index)
		}
		seen[rec.Index] = true
	}
	if len(seen) != len(outs) {
		t.Fatalf("JSONL covered %d of %d points", len(seen), len(outs))
	}
}

func TestCancellationMidPoint(t *testing.T) {
	// One enormous point: cancellation must abort it mid-simulation, well
	// before the nominal run length.
	big := tinyBase()
	big.Mechanism = dragonfly.Minimal
	big.Load = 0.3
	big.Warmup, big.Measure = 0, 1<<40
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	outs, err := Run(ctx, Campaign{Points: []Point{{Series: "big", Config: big}}}, Options{Workers: 1})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign error = %v, want context.Canceled", err)
	}
	if !errors.Is(outs[0].Err, context.Canceled) {
		t.Fatalf("point error = %v, want context.Canceled", outs[0].Err)
	}
}

func TestCancellationSkipsQueuedPoints(t *testing.T) {
	camp := tinyCampaign()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	outs, err := Run(ctx, camp, Options{
		Workers: 1,
		Run: func(ctx context.Context, _ int, p Point) (dragonfly.Result, error) {
			if ran.Add(1) == 1 {
				cancel() // cancel while the first point is "running"
			}
			return dragonfly.Result{Delivered: 1}, nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign error = %v", err)
	}
	if got := ran.Load(); got >= int64(len(camp.Points)) {
		t.Fatalf("all %d points ran despite cancellation", got)
	}
	canceled := 0
	for _, o := range outs {
		if errors.Is(o.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no queued point carries the cancellation error")
	}
}

func TestPointSeedSpread(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := PointSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if PointSeed(1, 0) == PointSeed(2, 0) {
		t.Fatal("bases collide")
	}
}
