package exp

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	dragonfly "repro"
)

// syntheticRun returns deterministic per-index results without
// simulating, so JSONL byte-comparison tests stay instant.
func syntheticRun(ctx context.Context, index int, p Point) (dragonfly.Result, error) {
	return dragonfly.Result{
		Mechanism:    p.Series,
		OfferedLoad:  p.X,
		AcceptedLoad: p.X / 2,
		Delivered:    int64(1000 + index),
	}, nil
}

// TestCanonicalJSONLByteStable pins the property the remote client
// relies on: the canonical stream is byte-identical across worker
// counts and across cold/warm cache states.
func TestCanonicalJSONLByteStable(t *testing.T) {
	camp := tinyCampaign()
	runOnce := func(workers int, cache *Cache) []byte {
		t.Helper()
		var buf bytes.Buffer
		_, err := Run(context.Background(), camp, Options{
			Workers:        workers,
			JSONL:          &buf,
			CanonicalJSONL: true,
			Cache:          cache,
			Run:            syntheticRun,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := runOnce(1, nil)
	wide := runOnce(4, nil)
	if !bytes.Equal(serial, wide) {
		t.Fatal("canonical JSONL differs across worker counts")
	}

	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := runOnce(3, cache)
	warm := runOnce(3, cache)
	if !bytes.Equal(cold, serial) {
		t.Fatal("canonical JSONL differs with a cold cache")
	}
	if !bytes.Equal(warm, serial) {
		t.Fatal("canonical JSONL differs with a warm cache (Cached leaked in)")
	}

	// Lines are in campaign order with the volatile fields zeroed.
	sc := bufio.NewScanner(bytes.NewReader(serial))
	idx := 0
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", idx, err)
		}
		if rec.Index != idx {
			t.Fatalf("line %d carries index %d: canonical stream out of order", idx, rec.Index)
		}
		if rec.Seconds != 0 || rec.Cached {
			t.Fatalf("line %d: volatile fields survived: seconds=%v cached=%v", idx, rec.Seconds, rec.Cached)
		}
		idx++
	}
	if idx != len(camp.Points) {
		t.Fatalf("%d canonical lines, want %d", idx, len(camp.Points))
	}
}

// TestCanonicalJSONLPrefixOnCancel: a canceled campaign's canonical
// stream must be a well-formed prefix — contiguous indices from zero,
// every line complete.
func TestCanonicalJSONLPrefixOnCancel(t *testing.T) {
	camp := tinyCampaign()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	var buf bytes.Buffer
	_, err := Run(ctx, camp, Options{
		Workers:        2,
		JSONL:          &buf,
		CanonicalJSONL: true,
		Run: func(ctx context.Context, index int, p Point) (dragonfly.Result, error) {
			if ran.Add(1) == 2 {
				cancel()
			}
			return syntheticRun(ctx, index, p)
		},
	})
	if err == nil {
		t.Fatal("canceled campaign reported no error")
	}

	out := buf.String()
	if out != "" && !strings.HasSuffix(out, "\n") {
		t.Fatal("canonical stream ends in a torn line")
	}
	idx := 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not self-contained JSON: %v", idx, err)
		}
		if rec.Index != idx {
			t.Fatalf("line %d carries index %d: not a contiguous prefix", idx, rec.Index)
		}
		idx++
	}
	if idx >= len(camp.Points) {
		t.Fatal("cancellation emitted the full campaign")
	}
}
