package exp

import (
	"fmt"
	"strings"

	dragonfly "repro"
)

// Matrix builds campaign point lists as the cross product of axes over a
// base configuration. Axes are applied in the order they were added, the
// first axis varying slowest, so a mechanisms×loads matrix yields all
// loads of the first mechanism, then all loads of the second — the layout
// figure code expects. Labeled axes contribute to each point's Series
// name; X axes provide the x value. The builder is append-only and cheap:
// nothing is simulated until the points reach Run.
type Matrix struct {
	base   dragonfly.Config
	axes   []matrixAxis
	filter func(dragonfly.Config) bool
}

type matrixAxis struct {
	n     int
	label func(i int) string           // nil: not part of Series
	x     func(i int) float64          // nil: not the x axis
	apply func(*dragonfly.Config, int) // mutates the point's config
}

// NewMatrix starts a matrix over base; every generated point begins as a
// copy of it.
func NewMatrix(base dragonfly.Config) *Matrix {
	return &Matrix{base: base}
}

// Axis appends a labeled series axis of n variants. label(i) names
// variant i in the point's Series; apply(cfg, i) specializes the config.
func (m *Matrix) Axis(n int, label func(int) string, apply func(*dragonfly.Config, int)) *Matrix {
	m.axes = append(m.axes, matrixAxis{n: n, label: label, apply: apply})
	return m
}

// XAxis appends the x axis: one variant per value in xs, recorded as the
// point's X and applied to the config. A matrix normally has exactly one
// XAxis; with several, the last one added wins the X slot.
func (m *Matrix) XAxis(xs []float64, apply func(*dragonfly.Config, float64)) *Matrix {
	vals := append([]float64(nil), xs...)
	m.axes = append(m.axes, matrixAxis{
		n:     len(vals),
		x:     func(i int) float64 { return vals[i] },
		apply: func(c *dragonfly.Config, i int) { apply(c, vals[i]) },
	})
	return m
}

// Filter drops generated points keep rejects (e.g. mechanism/flow-control
// combinations the engine refuses).
func (m *Matrix) Filter(keep func(dragonfly.Config) bool) *Matrix {
	m.filter = keep
	return m
}

// Mechanisms appends a series axis over routing mechanisms.
func (m *Matrix) Mechanisms(ms ...dragonfly.Mechanism) *Matrix {
	vals := append([]dragonfly.Mechanism(nil), ms...)
	return m.Axis(len(vals),
		func(i int) string { return vals[i].String() },
		func(c *dragonfly.Config, i int) { c.Mechanism = vals[i] })
}

// Flows appends a series axis over flow controls. PacketPhits is left
// untouched: when the base (or another axis) pinned no size, the config's
// own defaulting picks the paper's per-flow packet size (8 for VCT, 80
// for WH) at run time.
func (m *Matrix) Flows(fs ...dragonfly.FlowControl) *Matrix {
	vals := append([]dragonfly.FlowControl(nil), fs...)
	return m.Axis(len(vals),
		func(i int) string { return vals[i].String() },
		func(c *dragonfly.Config, i int) { c.FlowControl = vals[i] })
}

// Loads appends the offered-load x axis (and clears BurstPackets, since a
// load sweep is a steady-state experiment).
func (m *Matrix) Loads(loads ...float64) *Matrix {
	return m.XAxis(loads, func(c *dragonfly.Config, x float64) {
		c.Load = x
		c.BurstPackets = 0
	})
}

// GlobalPercents appends the traffic-mix x axis: each point runs the
// ADVG+h/ADVL+1 MIX pattern with the given percentage of global traffic.
func (m *Matrix) GlobalPercents(pcts ...float64) *Matrix {
	return m.XAxis(pcts, func(c *dragonfly.Config, x float64) {
		c.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: x}
	})
}

// Thresholds appends a series axis over misrouting thresholds (fractions;
// 0.45 = the paper's 45%).
func (m *Matrix) Thresholds(ths ...float64) *Matrix {
	vals := append([]float64(nil), ths...)
	return m.Axis(len(vals),
		func(i int) string { return fmt.Sprintf("th=%.0f%%", vals[i]*100) },
		func(c *dragonfly.Config, i int) { c.Threshold = vals[i] })
}

// Points generates the cross product.
func (m *Matrix) Points() []Point {
	if len(m.axes) == 0 {
		return nil
	}
	total := 1
	for _, a := range m.axes {
		total *= a.n
	}
	pts := make([]Point, 0, total)
	idx := make([]int, len(m.axes))
	for n := 0; n < total; n++ {
		p := Point{Config: m.base}
		var labels []string
		for ai, a := range m.axes {
			i := idx[ai]
			a.apply(&p.Config, i)
			if a.label != nil {
				labels = append(labels, a.label(i))
			}
			if a.x != nil {
				p.X = a.x(i)
			}
		}
		p.Series = strings.Join(labels, " ")
		if m.filter == nil || m.filter(p.Config) {
			pts = append(pts, p)
		}
		for ai := len(m.axes) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < m.axes[ai].n {
				break
			}
			idx[ai] = 0
		}
	}
	return pts
}

// Campaign wraps the generated points under a name.
func (m *Matrix) Campaign(name string) Campaign {
	return Campaign{Name: name, Points: m.Points()}
}
