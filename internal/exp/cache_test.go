package exp

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	dragonfly "repro"
)

// countingOptions wraps opt so the test can count actual simulations.
func countingRun(n *atomic.Int64) func(context.Context, int, Point) (dragonfly.Result, error) {
	return func(ctx context.Context, _ int, p Point) (dragonfly.Result, error) {
		n.Add(1)
		return dragonfly.RunContext(ctx, p.Config)
	}
}

// TestCacheWarmRerunExecutesZeroSims is the cache acceptance check: a
// repeated campaign with a warm cache completes without simulating.
func TestCacheWarmRerunExecutesZeroSims(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	camp := tinyCampaign()

	var sims atomic.Int64
	cold, err := Run(context.Background(), camp, Options{Workers: 2, Cache: cache, Run: countingRun(&sims)})
	if err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != int64(len(camp.Points)) {
		t.Fatalf("cold run executed %d sims, want %d", got, len(camp.Points))
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != int64(len(camp.Points)) {
		t.Fatalf("cold stats: %d hits, %d misses", hits, misses)
	}

	sims.Store(0)
	warm, err := Run(context.Background(), camp, Options{Workers: 2, Cache: cache, Run: countingRun(&sims)})
	if err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 0 {
		t.Fatalf("warm run executed %d sims, want 0", got)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("point %d not served from cache", i)
		}
		if !reflect.DeepEqual(warm[i].Result, cold[i].Result) {
			t.Fatalf("point %d cached result differs:\ncold: %+v\nwarm: %+v", i, cold[i].Result, warm[i].Result)
		}
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	cache := &Cache{}
	zero := dragonfly.Config{H: 4, Load: 0.5}
	explicit := zero
	// Spell out every default the zero config implies.
	explicit.PacketPhits = 8
	explicit.Warmup, explicit.Measure = 3000, 6000
	explicit.Threshold, explicit.PBThreshold = 0.45, 0.35
	explicit.RemoteCandidates = 2
	explicit.BufLocal, explicit.BufGlobal = 32, 256
	explicit.InjQueuePackets = 16
	explicit.LatLocal, explicit.LatGlobal = 10, 100
	explicit.Watchdog = 20000
	explicit.MaxCycles = 50 * (3000 + 6000 + 20000)
	explicit.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
	if cache.Key(zero) != cache.Key(explicit) {
		t.Fatal("zero config and its explicit defaults hash differently")
	}

	// Worker count never changes results, so it must not change the key.
	workers := zero
	workers.Workers = 8
	if cache.Key(zero) != cache.Key(workers) {
		t.Fatal("worker count leaked into the cache key")
	}

	// The seed does change results.
	seeded := zero
	seeded.Seed = 3
	if cache.Key(zero) == cache.Key(seeded) {
		t.Fatal("seed not part of the cache key")
	}

	// ADVG offset 0 means offset 1.
	a, b := zero, zero
	a.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG}
	b.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
	if cache.Key(a) != cache.Key(b) {
		t.Fatal("default ADVG offset hashes differently from explicit +1")
	}

	// A burst run ignores Load entirely.
	c, d := zero, zero
	c.BurstPackets, c.Load = 10, 0.2
	d.BurstPackets, d.Load = 10, 0.9
	if cache.Key(c) != cache.Key(d) {
		t.Fatal("irrelevant Load leaked into a burst cache key")
	}

	// A one-phase workload is the same experiment as the classic trio, in
	// all three spellings.
	phased := dragonfly.Config{H: 4}
	phased.Phases = []dragonfly.PhaseSpec{{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, Load: 0.5}}
	jobbed := dragonfly.Config{H: 4}
	jobbed.Workload = []dragonfly.JobSpec{{Phases: phased.Phases}}
	ranged := dragonfly.Config{H: 4}
	ranged.Workload = []dragonfly.JobSpec{{FirstNode: 0, LastNode: 1055, Phases: phased.Phases}}
	if cache.Key(zero) != cache.Key(phased) || cache.Key(zero) != cache.Key(jobbed) ||
		cache.Key(zero) != cache.Key(ranged) {
		t.Fatal("one-phase workload spellings hash differently from the trio")
	}

	// The timeline window width changes the result, so it must change the
	// key; a genuinely phased schedule must differ from the one-phase one.
	windowed := zero
	windowed.WindowCycles = 500
	if cache.Key(zero) == cache.Key(windowed) {
		t.Fatal("WindowCycles not part of the cache key")
	}
	twoPhase := dragonfly.Config{H: 4}
	twoPhase.Phases = []dragonfly.PhaseSpec{
		{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, Load: 0.5, Duration: 4000},
		{Traffic: dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 4}, Load: 0.5},
	}
	if cache.Key(zero) == cache.Key(twoPhase) {
		t.Fatal("a phased schedule hashes like a static one")
	}

	// Explicit whole-network job bounds hash like the implicit zero range.
	implicit := dragonfly.Config{H: 4}
	implicit.Workload = []dragonfly.JobSpec{
		{Phases: twoPhase.Phases},
	}
	explicitRange := dragonfly.Config{H: 4}
	explicitRange.Workload = []dragonfly.JobSpec{
		{FirstNode: 0, LastNode: 1055, Phases: twoPhase.Phases}, // h=4: 1056 nodes
	}
	if cache.Key(implicit) != cache.Key(explicitRange) {
		t.Fatal("implicit whole-network job hashes differently from the explicit range")
	}
}

func TestCacheCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyBase()
	cfg.Mechanism = dragonfly.Minimal
	cfg.Load = 0.2
	key := cache.Key(cfg)

	if _, ok := cache.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key); ok {
		t.Fatal("corrupt entry reported a hit")
	}

	want := dragonfly.Result{Mechanism: "Minimal", Delivered: 42}
	if err := cache.Put(key, cfg, want); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get(key)
	if !ok || got.Delivered != 42 {
		t.Fatalf("after Put: ok=%v result=%+v", ok, got)
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("stats: %d hits, %d misses", hits, misses)
	}
}
