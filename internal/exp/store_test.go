package exp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dragonfly "repro"
)

// storeCfg derives distinct configurations (hence distinct keys) from n.
func storeCfg(n int) dragonfly.Config {
	cfg := tinyBase()
	cfg.Mechanism = dragonfly.Minimal
	cfg.Load = 0.2
	cfg.Seed = uint64(n + 1)
	return cfg
}

// fillStore puts n synthetic results and returns their keys and the
// size of one entry (they are all the same shape, hence the same size).
func fillStore(t *testing.T, s *Store, n int) (keys []string, entrySize int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		cfg := storeCfg(i)
		key := s.Key(cfg)
		if err := s.Put(key, cfg, dragonfly.Result{Mechanism: "Minimal", Delivered: 100}); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	return keys, s.cache.Size(keys[len(keys)-1])
}

func TestStoreEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	probe, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, size := fillStore(t, probe, 1)

	// Budget for exactly two entries.
	s, err := OpenStore(t.TempDir(), 2*size)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := fillStore(t, s, 2)
	// Touch key 0 so key 1 is the LRU victim.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	cfg := storeCfg(2)
	if err := s.Put(s.Key(cfg), cfg, dragonfly.Result{Mechanism: "Minimal", Delivered: 100}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes > 2*size {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestStoreNeverEvictsItsOwnPut(t *testing.T) {
	_, size := fillStore(t, mustStore(t, t.TempDir(), 0), 1)
	// A budget smaller than one entry must keep the single entry rather
	// than thrash; the next Put displaces it.
	s := mustStore(t, t.TempDir(), size/2)
	keys, _ := fillStore(t, s, 1)
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("sole oversized entry was evicted by its own Put")
	}
	cfg := storeCfg(1)
	if err := s.Put(s.Key(cfg), cfg, dragonfly.Result{Delivered: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("old oversized entry survived the next Put")
	}
	if _, ok := s.Get(s.Key(cfg)); !ok {
		t.Fatal("new entry missing")
	}
}

func mustStore(t *testing.T, dir string, max int64) *Store {
	t.Helper()
	s, err := OpenStore(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreReopenScansAndTrims(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, dir, 0)
	keys, size := fillStore(t, s, 4)

	re := mustStore(t, dir, 0)
	st := re.Stats()
	if st.Entries != 4 || st.Bytes != 4*size {
		t.Fatalf("reopened stats: %+v, want 4 entries, %d bytes", st, 4*size)
	}
	if _, ok := re.Get(keys[2]); !ok {
		t.Fatal("reopened store lost an entry")
	}

	// Reopening under a smaller budget trims immediately.
	trimmed := mustStore(t, dir, 2*size)
	st = trimmed.Stats()
	if st.Entries != 2 || st.Bytes > 2*size {
		t.Fatalf("trimmed stats: %+v", st)
	}
}

// TestStoreConcurrentHitsDuringEviction hammers Get on a working set
// while Puts force continuous eviction: no torn reads, the byte budget
// holds, and — the counter-accuracy check — hits+misses equals exactly
// the number of lookups issued.
func TestStoreConcurrentHitsDuringEviction(t *testing.T) {
	probe := mustStore(t, t.TempDir(), 0)
	_, size := fillStore(t, probe, 1)

	s := mustStore(t, t.TempDir(), 3*size)
	keys, _ := fillStore(t, s, 3)

	const readers = 4
	const lookupsEach = 200
	var lookups atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < lookupsEach; i++ {
				key := keys[(r+i)%len(keys)]
				lookups.Add(1)
				if res, ok := s.Get(key); ok && res.Delivered != 100 {
					t.Errorf("torn read: %+v", res)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() { // writer forcing eviction churn
		defer wg.Done()
		for i := 3; i < 40; i++ {
			cfg := storeCfg(i)
			if err := s.Put(s.Key(cfg), cfg, dragonfly.Result{Mechanism: "Minimal", Delivered: 100}); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	st := s.Stats()
	if st.Bytes > 3*size {
		t.Fatalf("budget exceeded: %+v", st)
	}
	if st.Hits+st.Misses != lookups.Load() {
		t.Fatalf("counters drifted under contention: %d hits + %d misses != %d lookups",
			st.Hits, st.Misses, lookups.Load())
	}
	if st.Evictions == 0 {
		t.Fatal("writer churn caused no evictions")
	}
}

// TestCacheConcurrentSameKeyWriters races two goroutines writing the
// same point while readers poll it: every successful read must see one
// of the two complete entries, never a torn mix, and the hit/miss
// counters must account for every lookup.
func TestCacheConcurrentSameKeyWriters(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeCfg(0)
	key := cache.Key(cfg)

	const rounds = 100
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := dragonfly.Result{Mechanism: "Minimal", Delivered: int64(100 + w)}
			for i := 0; i < rounds; i++ {
				if err := cache.Put(key, cfg, res); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	var lookups atomic.Int64
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				lookups.Add(1)
				if res, ok := cache.Get(key); ok {
					if res.Delivered != 100 && res.Delivered != 101 {
						t.Errorf("torn entry: Delivered=%d", res.Delivered)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	res, ok := cache.Get(key)
	if !ok || (res.Delivered != 100 && res.Delivered != 101) {
		t.Fatalf("final entry: ok=%v %+v", ok, res)
	}
	hits, misses := cache.Stats()
	if hits+misses != lookups.Load()+1 {
		t.Fatalf("counters drifted: %d hits + %d misses != %d lookups", hits, misses, lookups.Load()+1)
	}
	// No stray temp files left behind by the racing writers.
	entries, err := cache.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Key != key {
		t.Fatalf("directory holds %d entries, want exactly the racing key", len(entries))
	}
}

func TestFlightsDedup(t *testing.T) {
	var g Flights
	release := make(chan struct{})
	started := make(chan struct{})
	var leaders, calls atomic.Int64
	fn := func() (dragonfly.Result, error) {
		if calls.Add(1) == 1 {
			close(started)
		}
		<-release
		return dragonfly.Result{Delivered: 7}, nil
	}

	const callers = 8
	var wg sync.WaitGroup
	results := make([]dragonfly.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, leader, err := g.Do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			if leader {
				leaders.Add(1)
			}
			results[i] = res
		}(i)
	}
	// The leader holds the flight open until release, so give the other
	// callers time to pile onto it, then let it finish.
	<-started
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d executions for one key, want 1", got)
	}
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d leaders, want 1", got)
	}
	for i, res := range results {
		if res.Delivered != 7 {
			t.Fatalf("caller %d got %+v", i, res)
		}
	}

	// The flight is forgotten: a fresh Do executes again.
	_, leader, _ := g.Do(context.Background(), "k", func() (dragonfly.Result, error) {
		calls.Add(1)
		return dragonfly.Result{}, nil
	})
	if !leader || calls.Load() != 2 {
		t.Fatal("finished flight was not forgotten")
	}
}

func TestFlightsWaiterHonorsContext(t *testing.T) {
	var g Flights
	started := make(chan struct{})
	release := make(chan struct{})
	go g.Do(context.Background(), "k", func() (dragonfly.Result, error) {
		close(started)
		<-release
		return dragonfly.Result{}, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, leader, err := g.Do(ctx, "k", func() (dragonfly.Result, error) {
		return dragonfly.Result{}, fmt.Errorf("waiter must not execute")
	})
	if leader || err != context.Canceled {
		t.Fatalf("canceled waiter: leader=%v err=%v", leader, err)
	}
	close(release)
}

func TestFlightsDistinctKeysRunIndependently(t *testing.T) {
	var g Flights
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(context.Background(), fmt.Sprintf("k%d", i), func() (dragonfly.Result, error) {
				calls.Add(1)
				return dragonfly.Result{}, nil
			})
		}(i)
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Fatalf("%d executions, want 4", calls.Load())
	}
}
