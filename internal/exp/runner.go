package exp

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
	"time"

	dragonfly "repro"
)

// Options configure a campaign run. The zero value runs every point with
// dragonfly.RunContext on a GOMAXPROCS-wide pool, no cache, no output.
type Options struct {
	// Workers bounds the number of concurrently executing points
	// (default GOMAXPROCS). This is across-point parallelism; it
	// multiplies with any Config.Workers intra-simulation parallelism,
	// so campaigns over small networks should leave Config.Workers at 1.
	Workers int

	// SeedBase, when nonzero, overwrites every point's Config.Seed with
	// a value mixed from SeedBase and the point's campaign index. Seeds
	// are assigned up front, in campaign order, so they do not depend on
	// the pool size or on which worker picks a point up. Zero keeps the
	// seeds the builders put in the configs.
	SeedBase uint64

	// Progress, when non-nil, receives one event per finished point.
	// Events are delivered serially (never concurrently).
	Progress func(Progress)

	// JSONL, when non-nil, receives one JSON line per finished point in
	// completion order (see Record). Writes are serialized.
	JSONL io.Writer

	// CanonicalJSONL switches the JSONL stream to canonical form: lines
	// are emitted in campaign order (buffered until every earlier point
	// has finished) and the volatile fields — Seconds and Cached — are
	// zeroed. Because the engine is deterministic, the resulting stream
	// is byte-identical for any worker count, any cache state, and for
	// local versus remote execution of the same campaign. On
	// cancellation the stream is a well-formed prefix: the dispatcher
	// hands points out in campaign order, so undispatched points form a
	// suffix and no emitted line ever precedes a missing one.
	CanonicalJSONL bool

	// Cache, when non-nil, is consulted before and populated after every
	// point. A hit skips the simulation entirely.
	Cache *Cache

	// Run overrides how a point is executed (benchmark harnesses time
	// the engine themselves). Default: dragonfly.RunContext(ctx, cfg).
	// The index is the point's campaign index.
	Run func(ctx context.Context, index int, p Point) (dragonfly.Result, error)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Progress is one structured progress event.
type Progress struct {
	Done    int // points finished so far, this one included
	Total   int // points in the campaign
	Outcome Outcome
}

// PointSeed derives the deterministic seed of point index under base,
// using a splitmix64 round so neighboring indices get uncorrelated seeds.
func PointSeed(base uint64, index int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run executes every point of the campaign on the bounded pool and
// returns the outcomes in campaign order. Per-point simulation failures
// are recorded in Outcome.Err (see PointErrors); the returned error is
// reserved for campaign-level failures — ctx cancellation, JSONL write
// errors and cache store errors (a point whose simulation succeeded but
// whose result could not be cached still reports success, with its
// result). On cancellation the in-flight simulations abort at their next
// cycle check and every unexecuted point carries ctx's error.
func Run(ctx context.Context, camp Campaign, opt Options) ([]Outcome, error) {
	outs := make([]Outcome, len(camp.Points))
	for i := range outs {
		outs[i].Index = i
		outs[i].Point = camp.Points[i]
		if opt.SeedBase != 0 {
			outs[i].Point.Config.Seed = PointSeed(opt.SeedBase, i)
		}
	}
	runFn := opt.Run
	if runFn == nil {
		runFn = func(ctx context.Context, _ int, p Point) (dragonfly.Result, error) {
			return dragonfly.RunContext(ctx, p.Config)
		}
	}

	var (
		mu        sync.Mutex // serializes progress + JSONL emission
		done      int
		finished  []bool // per-index, only allocated for canonical JSONL
		nextJSONL int    // first index not yet emitted (canonical JSONL)
		jsonlErr  error
		cacheErr  error
	)
	if opt.CanonicalJSONL {
		finished = make([]bool, len(outs))
	}
	finish := func(o *Outcome) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if opt.JSONL != nil && jsonlErr == nil {
			if opt.CanonicalJSONL {
				// Flush the contiguous finished prefix in campaign order.
				finished[o.Index] = true
				for nextJSONL < len(outs) && finished[nextJSONL] {
					if jsonlErr = writeRecord(opt.JSONL, &outs[nextJSONL], true); jsonlErr != nil {
						break
					}
					nextJSONL++
				}
			} else {
				jsonlErr = writeRecord(opt.JSONL, o, false)
			}
		}
		if opt.Progress != nil {
			opt.Progress(Progress{Done: done, Total: len(outs), Outcome: *o})
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := opt.workers()
	if workers > len(outs) {
		workers = len(outs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				o := &outs[i]
				if err := ctx.Err(); err != nil {
					o.Err = err
					finish(o)
					continue
				}
				start := time.Now()
				cacheKey := ""
				if opt.Cache != nil {
					cacheKey = opt.Cache.Key(o.Point.Config)
					if res, ok := opt.Cache.Get(cacheKey); ok {
						o.Result, o.Cached = res, true
					}
				}
				if !o.Cached {
					o.Result, o.Err = runFn(ctx, i, o.Point)
					if o.Err == nil && opt.Cache != nil {
						// A failed store never fails the point — the
						// simulation succeeded and its result stands;
						// the broken cache surfaces once, campaign-level.
						if err := opt.Cache.Put(cacheKey, o.Point.Config, o.Result); err != nil {
							mu.Lock()
							if cacheErr == nil {
								cacheErr = err
							}
							mu.Unlock()
						}
					}
				}
				o.Seconds = time.Since(start).Seconds()
				finish(o)
			}
		}()
	}
	next := 0
dispatch:
	for ; next < len(outs); next++ {
		select {
		case jobs <- next:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	// Points the dispatcher never handed out: mark, but emit no events —
	// the campaign is already over.
	if err := ctx.Err(); err != nil {
		for i := next; i < len(outs); i++ {
			outs[i].Err = err
		}
		return outs, errors.Join(err, jsonlErr, cacheErr)
	}
	return outs, errors.Join(jsonlErr, cacheErr)
}
