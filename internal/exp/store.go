package exp

import (
	"container/list"
	"sort"
	"sync"

	dragonfly "repro"
)

// Store is a Cache bounded to a byte budget with least-recently-used
// eviction — the shape a long-running daemon needs, where the result
// directory would otherwise grow without bound. It wraps a Cache (same
// on-disk layout, same content addresses, fully interchangeable with
// one-shot CLI use of the directory) and adds an in-memory recency index
// rebuilt from file modification times on open.
//
// All methods are safe for concurrent use. Eviction never removes the
// entry a Put just wrote, so a budget smaller than a single entry keeps
// exactly that entry rather than silently thrashing; the oversized
// entry is displaced by the next Put.
type Store struct {
	cache *Cache
	max   int64 // byte budget; 0 = unbounded

	mu        sync.Mutex
	index     map[string]*list.Element // key -> lru element
	lru       *list.List               // front = most recently used
	bytes     int64
	evictions int64
}

// lruEntry is the per-key payload of the recency list.
type lruEntry struct {
	key  string
	size int64
}

// OpenStore opens (creating if needed) a size-bounded result store on
// dir. maxBytes <= 0 means unbounded. Existing entries are indexed with
// file modification time as initial recency and trimmed to the budget
// immediately, so reopening a shrunken store converges at once.
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	cache, err := OpenCache(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		cache: cache,
		max:   maxBytes,
		index: make(map[string]*list.Element),
		lru:   list.New(),
	}
	entries, err := cache.Entries()
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].ModTime.Before(entries[j].ModTime)
	})
	for _, e := range entries { // oldest first, so newest ends up at the front
		s.index[e.Key] = s.lru.PushFront(lruEntry{key: e.Key, size: e.Size})
		s.bytes += e.Size
	}
	s.mu.Lock()
	err = s.evictLocked("")
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Key returns the content address of a configuration (see Cache.Key).
func (s *Store) Key(cfg dragonfly.Config) string { return s.cache.Key(cfg) }

// Get looks a key up, refreshing its recency on a hit.
func (s *Store) Get(key string) (dragonfly.Result, bool) {
	res, ok := s.cache.Get(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, indexed := s.index[key]; indexed {
		if ok {
			s.lru.MoveToFront(el)
		} else {
			// Indexed but unreadable (corrupt or externally deleted):
			// drop it from the budget so it cannot pin good entries out.
			s.dropLocked(el)
		}
	}
	return res, ok
}

// Put stores a result under key and evicts least-recently-used entries
// until the store fits its budget again. The entry just written is
// never evicted by its own Put.
func (s *Store) Put(key string, cfg dragonfly.Config, res dragonfly.Result) error {
	if err := s.cache.Put(key, cfg, res); err != nil {
		return err
	}
	size := s.cache.Size(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok { // overwrite: replace the old size
		s.bytes -= el.Value.(lruEntry).size
		s.lru.Remove(el)
	}
	s.index[key] = s.lru.PushFront(lruEntry{key: key, size: size})
	s.bytes += size
	return s.evictLocked(key)
}

// evictLocked removes LRU entries until the budget is met, sparing keep.
func (s *Store) evictLocked(keep string) error {
	if s.max <= 0 {
		return nil
	}
	for s.bytes > s.max {
		el := s.lru.Back()
		if el == nil || el.Value.(lruEntry).key == keep {
			return nil
		}
		if err := s.cache.Remove(el.Value.(lruEntry).key); err != nil {
			return err
		}
		s.dropLocked(el)
		s.evictions++
	}
	return nil
}

// dropLocked removes an element from the in-memory index only.
func (s *Store) dropLocked(el *list.Element) {
	e := el.Value.(lruEntry)
	s.bytes -= e.size
	s.lru.Remove(el)
	delete(s.index, e.key)
}

// StoreStats is a snapshot of the store's occupancy and traffic.
type StoreStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"` // 0 = unbounded
	Evictions int64 `json:"evictions"`
}

// Stats reports hit/miss counters (since open) and current occupancy.
func (s *Store) Stats() StoreStats {
	hits, misses := s.cache.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Hits:      hits,
		Misses:    misses,
		Entries:   s.lru.Len(),
		Bytes:     s.bytes,
		MaxBytes:  s.max,
		Evictions: s.evictions,
	}
}
