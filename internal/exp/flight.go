package exp

import (
	"context"
	"sync"

	dragonfly "repro"
)

// Flights deduplicates concurrent executions of the same point: callers
// asking for the same content address while a simulation for it is in
// flight share that one simulation's result instead of starting their
// own. It is the cross-campaign analogue of the Cache — the Cache
// deduplicates across time, Flights across concurrency.
//
// The zero value is ready to use.
type Flights struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress execution and its eventual result.
type flight struct {
	done chan struct{}
	res  dragonfly.Result
	err  error
}

// Do executes fn for key, unless a flight for key is already in
// progress, in which case it waits for that flight and returns its
// result. leader reports whether this call ran fn itself. A waiter
// whose ctx is canceled stops waiting and returns ctx's error; the
// flight itself keeps running for the callers that remain (fn is
// responsible for honoring its own context).
//
// The flight is forgotten as soon as fn returns, so a failed execution
// is retried by the next caller rather than poisoning the key.
func (g *Flights) Do(ctx context.Context, key string, fn func() (dragonfly.Result, error)) (res dragonfly.Result, leader bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.res, false, f.err
		case <-ctx.Done():
			return dragonfly.Result{}, false, ctx.Err()
		}
	}
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.res, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, true, f.err
}
