package srv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dragonfly "repro"
	"repro/internal/exp"
)

// tinyCampaign is a fast real-simulation campaign: h=2, two mechanisms,
// two loads.
func tinyCampaign() exp.Campaign {
	base := dragonfly.PaperVCT(2)
	base.LatLocal, base.LatGlobal = 4, 16
	base.Warmup, base.Measure = 400, 800
	base.Seed = 7
	points := exp.NewMatrix(base).
		Mechanisms(dragonfly.Minimal, dragonfly.RLM).
		Loads(0.1, 0.4).
		Points()
	return exp.Campaign{Name: "tiny", Points: points}
}

type testServer struct {
	srv    *Server
	client *Client
	http   *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	if cfg.Store == nil {
		store, err := exp.OpenStore(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		hs.Close()
	})
	return &testServer{srv: s, client: NewClient(hs.URL), http: hs}
}

// TestRemoteMatchesLocal is the tentpole acceptance check: a campaign
// run through the server produces the same outcomes — and byte-identical
// canonical JSONL — as exp.Run in-process, and a warm resubmission of
// the identical campaign executes zero simulations.
func TestRemoteMatchesLocal(t *testing.T) {
	camp := tinyCampaign()

	var localJSONL bytes.Buffer
	local, err := exp.Run(context.Background(), camp, exp.Options{
		Workers: 2, SeedBase: 42, JSONL: &localJSONL, CanonicalJSONL: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t, Config{SimWorkers: 2})
	var remoteJSONL bytes.Buffer
	var progress int
	remote, err := ts.client.Run(context.Background(), camp, exp.Options{
		SeedBase: 42,
		JSONL:    &remoteJSONL,
		Progress: func(pr exp.Progress) {
			progress++
			if pr.Done != progress || pr.Total != len(camp.Points) {
				t.Errorf("progress event %d: done=%d total=%d", progress, pr.Done, pr.Total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(localJSONL.Bytes(), remoteJSONL.Bytes()) {
		t.Fatalf("remote canonical JSONL differs from local:\nlocal:  %s\nremote: %s",
			localJSONL.String(), remoteJSONL.String())
	}
	if progress != len(camp.Points) {
		t.Fatalf("%d progress events, want %d", progress, len(camp.Points))
	}
	for i := range local {
		if remote[i].Err != nil {
			t.Fatalf("remote point %d: %v", i, remote[i].Err)
		}
		if !reflect.DeepEqual(local[i].Result, remote[i].Result) {
			t.Fatalf("point %d result diverges between local and remote", i)
		}
		if local[i].Point.Config.Seed != remote[i].Point.Config.Seed {
			t.Fatalf("point %d seeds diverge", i)
		}
	}
	st := ts.client.LastStatus()
	if st.Executed != len(camp.Points) || st.FromStore != 0 {
		t.Fatalf("cold run status: %+v", st)
	}

	// Warm resubmission: identical campaign, zero simulations.
	var warmJSONL bytes.Buffer
	warm, err := ts.client.Run(context.Background(), camp, exp.Options{SeedBase: 42, JSONL: &warmJSONL})
	if err != nil {
		t.Fatal(err)
	}
	st = ts.client.LastStatus()
	if st.Executed != 0 {
		t.Fatalf("warm resubmission executed %d sims, want 0 (%+v)", st.Executed, st)
	}
	if st.FromStore != len(camp.Points) {
		t.Fatalf("warm resubmission served %d from store, want %d", st.FromStore, len(camp.Points))
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("warm point %d not marked cached", i)
		}
	}
	if !bytes.Equal(warmJSONL.Bytes(), localJSONL.Bytes()) {
		t.Fatal("warm remote JSONL differs from local (cache state leaked into canonical stream)")
	}
}

// TestConcurrentIdenticalCampaignsShareSimulations: two tenants
// submitting the same campaign concurrently must not double-simulate —
// every point runs once, the other tenant's copy is deduped in flight
// or served from the store.
func TestConcurrentIdenticalCampaignsShareSimulations(t *testing.T) {
	var sims atomic.Int64
	ts := newTestServer(t, Config{SimWorkers: 4})
	ts.srv.runSim = func(ctx context.Context, cfg dragonfly.Config) (dragonfly.Result, error) {
		sims.Add(1)
		time.Sleep(30 * time.Millisecond) // hold flights open so tenants overlap
		return dragonfly.Result{Mechanism: cfg.Mechanism.String(), OfferedLoad: cfg.Load, Delivered: 1}, nil
	}
	camp := tinyCampaign()

	const tenants = 3
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ts.client.Run(context.Background(), camp, exp.Options{SeedBase: 42})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	if got := sims.Load(); got != int64(len(camp.Points)) {
		t.Fatalf("%d tenants executed %d simulations, want %d (one per unique point)",
			tenants, got, len(camp.Points))
	}
}

// TestDrainMidCampaign is the graceful-shutdown acceptance check: a
// drain during a running campaign lets the in-flight simulation finish
// and persist, fails the unstarted points fast with ErrDraining, leaves
// the server-side JSONL mirror well-formed, and Drain returns cleanly.
func TestDrainMidCampaign(t *testing.T) {
	jsonlDir := t.TempDir()
	store, err := exp.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: store, SimWorkers: 1, JSONLDir: jsonlDir})
	started := make(chan struct{})
	release := make(chan struct{})
	ts.srv.runSim = func(ctx context.Context, cfg dragonfly.Config) (dragonfly.Result, error) {
		close(started)
		<-release
		return dragonfly.Result{Mechanism: cfg.Mechanism.String(), Delivered: 99}, nil
	}

	camp := tinyCampaign()
	id, err := ts.client.Submit(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	<-started // point 0 is mid-simulation

	drained := make(chan error, 1)
	go func() { drained <- ts.srv.Drain(context.Background()) }()

	// Drain is observable before it completes: health flips to 503 and
	// new submissions are refused.
	waitFor(t, func() bool { return ts.client.Health(context.Background()) != nil })
	if _, err := ts.client.Submit(context.Background(), camp); err == nil {
		t.Fatal("submission accepted while draining")
	}

	close(release) // let the in-flight simulation finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	st, err := ts.client.Status(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished || st.Done != st.Total {
		t.Fatalf("campaign not finished after drain: %+v", st)
	}
	if st.Executed != 1 {
		t.Fatalf("drain executed %d sims, want exactly the in-flight one", st.Executed)
	}

	// The in-flight point's result persisted to the store.
	key := store.Key(camp.Points[0].Config)
	if res, ok := store.Get(key); !ok || res.Delivered != 99 {
		t.Fatalf("in-flight result not persisted: ok=%v %+v", ok, res)
	}

	// The JSONL mirror is well-formed: every line self-contained, no
	// torn final line; point 0 carries its result, the rest ErrDraining.
	buf, err := os.ReadFile(filepath.Join(jsonlDir, id+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 || buf[len(buf)-1] != '\n' {
		t.Fatal("JSONL mirror ends in a torn line")
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(buf))
	for sc.Scan() {
		var rec exp.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("JSONL line %d: %v", lines, err)
		}
		if rec.Index != lines {
			t.Fatalf("JSONL line %d carries index %d", lines, rec.Index)
		}
		switch {
		case rec.Index == 0:
			if rec.Result == nil || rec.Result.Delivered != 99 {
				t.Fatalf("in-flight point's line lost its result: %+v", rec)
			}
		default:
			if !strings.Contains(rec.Error, "draining") {
				t.Fatalf("unstarted point %d: error = %q, want draining", rec.Index, rec.Error)
			}
		}
		lines++
	}
	if lines != len(camp.Points) {
		t.Fatalf("JSONL mirror has %d lines, want %d", lines, len(camp.Points))
	}
}

// TestSubmitValidation: malformed campaigns are rejected up front.
func TestSubmitValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	if _, err := ts.client.Submit(context.Background(), exp.Campaign{Name: "empty"}); err == nil {
		t.Fatal("empty campaign accepted")
	}
	bad := tinyCampaign()
	bad.Points[0].Config.H = -1
	if _, err := ts.client.Submit(context.Background(), bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestSSEReplayAfterCompletion: subscribing to a finished campaign's
// event stream replays every point and the done event — the property
// that makes client reconnects idempotent.
func TestSSEReplayAfterCompletion(t *testing.T) {
	ts := newTestServer(t, Config{SimWorkers: 2})
	ts.srv.runSim = func(ctx context.Context, cfg dragonfly.Config) (dragonfly.Result, error) {
		return dragonfly.Result{Delivered: 5}, nil
	}
	camp := tinyCampaign()
	id, err := ts.client.Submit(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for completion via a first stream pass.
	if _, err := ts.client.stream(context.Background(), id, func(exp.Record) {}); err != nil {
		t.Fatal(err)
	}
	// A late subscriber still sees the full replay.
	var replayed int
	st, err := ts.client.stream(context.Background(), id, func(exp.Record) { replayed++ })
	if err != nil {
		t.Fatal(err)
	}
	if replayed != len(camp.Points) {
		t.Fatalf("late subscriber replayed %d events, want %d", replayed, len(camp.Points))
	}
	if !st.Finished {
		t.Fatalf("done event not marked finished: %+v", st)
	}
}

// TestBrowserPages smoke-tests the HTML browser.
func TestBrowserPages(t *testing.T) {
	ts := newTestServer(t, Config{SimWorkers: 1})
	camp := tinyCampaign()
	id, err := ts.client.Submit(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.client.stream(context.Background(), id, func(exp.Record) {}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/", "/campaigns/" + id} {
		resp, err := ts.http.Client().Get(ts.http.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		if !bytes.Contains(body, []byte(id)) {
			t.Fatalf("GET %s: campaign %s not rendered", path, id)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
