package srv

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	dragonfly "repro"
	"repro/internal/exp"
	"repro/internal/exp/queue"
)

// The chaos suite proves the fleet's robustness claim: any worker can
// die at any moment — mid-point, silently (zombie), or repeatedly on
// the same point — and the coordinator can restart mid-campaign, yet
// the final canonical JSONL is byte-identical to a serial local run.
// Determinism makes at-least-once execution safe; these tests make the
// at-least-once machinery visible.

// fastFleet is a queue tuned for test time: leases expire in 150ms,
// requeue backoff is a few ms, two distinct crashes quarantine.
func fastFleet() queue.Config {
	return queue.Config{
		Lease:         150 * time.Millisecond,
		Tick:          15 * time.Millisecond,
		PoisonWorkers: 2,
		MaxAttempts:   5,
		BackoffBase:   5 * time.Millisecond,
		BackoffMax:    20 * time.Millisecond,
	}
}

// serialBaseline runs the campaign serially in-process — the reference
// every chaos scenario must byte-match.
func serialBaseline(t *testing.T, camp exp.Campaign) ([]exp.Outcome, []byte) {
	t.Helper()
	var buf bytes.Buffer
	outs, err := exp.Run(context.Background(), camp, exp.Options{
		Workers: 1, SeedBase: 42, JSONL: &buf, CanonicalJSONL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return outs, buf.Bytes()
}

type chaosWorker struct {
	wk     *Worker
	cancel context.CancelFunc
	done   chan struct{}
}

// startChaosWorker runs an in-process fleet worker against the given
// coordinator URL. stub, when non-nil, builds the worker's runSim and
// receives a kill switch that cancels the worker's context — the
// in-process equivalent of SIGKILL: no result submission, no further
// heartbeats.
func startChaosWorker(t *testing.T, url, name string,
	stub func(kill context.CancelFunc) func(context.Context, dragonfly.Config) (dragonfly.Result, error)) *chaosWorker {
	t.Helper()
	store, err := exp.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wk, err := NewWorker(WorkerConfig{
		Coordinator: url, Name: name, Store: store,
		Sims: 1, Batch: 1, Poll: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if stub != nil {
		wk.runSim = stub(cancel)
	}
	done := make(chan struct{})
	go func() {
		wk.Run(ctx) //nolint:errcheck // only ever ctx.Err()
		close(done)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return &chaosWorker{wk: wk, cancel: cancel, done: done}
}

// kill is SIGKILL: the worker stops heartbeating and submitting at once.
func (w *chaosWorker) kill() {
	w.cancel()
	<-w.done
}

// rawPost drives the lease API directly, for scenarios (zombies) no
// well-behaved Worker would produce.
func rawPost(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp.StatusCode
}

// fleetStats polls the observability endpoint.
func fleetStats(t *testing.T, c *Client) queue.FleetStats {
	t.Helper()
	st, err := c.FleetStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChaosWorkerKilledMidPoint: a worker is SIGKILLed while simulating
// a point. Its lease expires, the point requeues, a healthy worker
// finishes it, and the output is byte-identical to a serial local run.
func TestChaosWorkerKilledMidPoint(t *testing.T) {
	camp := tinyCampaign()
	_, localJSONL := serialBaseline(t, camp)

	ts := newTestServer(t, Config{SimWorkers: -1, Fleet: fastFleet()})

	var remoteJSONL bytes.Buffer
	runErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() {
		_, err := ts.client.Run(ctx, camp, exp.Options{SeedBase: 42, JSONL: &remoteJSONL})
		runErr <- err
	}()

	// The victim blocks in its first simulation until killed.
	simStarted := make(chan struct{}, 1)
	victim := startChaosWorker(t, ts.http.URL, "victim",
		func(kill context.CancelFunc) func(context.Context, dragonfly.Config) (dragonfly.Result, error) {
			return func(simCtx context.Context, cfg dragonfly.Config) (dragonfly.Result, error) {
				select {
				case simStarted <- struct{}{}:
				default:
				}
				<-simCtx.Done()
				return dragonfly.Result{}, simCtx.Err()
			}
		})
	<-simStarted
	victim.kill()

	// A healthy worker takes over, including the requeued point.
	startChaosWorker(t, ts.http.URL, "good", nil)

	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localJSONL, remoteJSONL.Bytes()) {
		t.Fatalf("JSONL after worker kill differs from serial local run:\nlocal:  %s\nremote: %s",
			localJSONL, remoteJSONL.Bytes())
	}
	st := fleetStats(t, ts.client)
	if st.Requeues < 1 || st.ExpiredLeases < 1 {
		t.Fatalf("kill left no trace in fleet stats: %+v", st)
	}
	for _, w := range st.Workers {
		if w.Name == "victim" && w.Crashes < 1 {
			t.Fatalf("victim's crash not recorded: %+v", w)
		}
	}
}

// TestChaosZombieLateResult: a worker claims a point, goes silent past
// its lease (the point requeues), then submits a result anyway. The
// zombie's submission must be discarded with 410 — its fabricated
// result must not reach the campaign — and the requeued execution wins.
func TestChaosZombieLateResult(t *testing.T) {
	camp := tinyCampaign()
	_, localJSONL := serialBaseline(t, camp)

	ts := newTestServer(t, Config{SimWorkers: -1, Fleet: fastFleet()})

	var remoteJSONL bytes.Buffer
	runErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() {
		_, err := ts.client.Run(ctx, camp, exp.Options{SeedBase: 42, JSONL: &remoteJSONL})
		runErr <- err
	}()

	// The zombie claims one point and never heartbeats.
	var grant LeaseGrant
	status := rawPost(t, ts.http.URL+"/api/v1/leases",
		claimRequest{Worker: "zombie", Max: 1, WaitMS: 5000}, &grant)
	if status != http.StatusOK || grant.ID == "" || len(grant.Points) != 1 {
		t.Fatalf("zombie claim: status %d, grant %+v", status, grant)
	}

	// Wait out the lease: the point requeues.
	waitFor(t, func() bool { return fleetStats(t, ts.client).ExpiredLeases >= 1 })

	// The zombie wakes up and submits a fabricated result under its dead
	// lease. 410; the poison marker value must never surface.
	status = rawPost(t, ts.http.URL+"/api/v1/leases/"+grant.ID+"/results",
		resultsRequest{Results: []TaskResult{{
			Task:   grant.Points[0].Task,
			Result: &dragonfly.Result{Delivered: -777},
		}}}, nil)
	if status != http.StatusGone {
		t.Fatalf("zombie submission: status %d, want %d", status, http.StatusGone)
	}

	startChaosWorker(t, ts.http.URL, "good", nil)

	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(remoteJSONL.Bytes(), []byte("-777")) {
		t.Fatal("zombie's fabricated result reached the campaign output")
	}
	if !bytes.Equal(localJSONL, remoteJSONL.Bytes()) {
		t.Fatalf("JSONL after zombie discard differs from serial local run:\nlocal:  %s\nremote: %s",
			localJSONL, remoteJSONL.Bytes())
	}
	if st := fleetStats(t, ts.client); st.LateDiscarded < 1 {
		t.Fatalf("late discard not counted: %+v", st)
	}
}

// TestChaosCoordinatorRestart: the coordinator dies mid-campaign and
// comes back on the same address with the same store directory. The
// client resubmits on campaign-lost, the worker rejoins with backoff,
// finished points replay from the persistent store, and the output is
// byte-identical to a serial local run.
func TestChaosCoordinatorRestart(t *testing.T) {
	camp := tinyCampaign()
	_, localJSONL := serialBaseline(t, camp)

	storeDir := t.TempDir()
	newCoordinator := func() (*Server, *exp.Store) {
		store, err := exp.OpenStore(storeDir, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Store: store, SimWorkers: -1, Fleet: fastFleet()})
		if err != nil {
			t.Fatal(err)
		}
		return s, store
	}

	srv1, _ := newCoordinator()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs1 := &http.Server{Handler: srv1.Handler()}
	go hs1.Serve(ln) //nolint:errcheck

	// One persistent worker outlives the coordinator.
	wkStore, err := exp.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wk, err := NewWorker(WorkerConfig{
		Coordinator: "http://" + addr, Name: "w1", Store: wkStore,
		Sims: 1, Batch: 1, Poll: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wkCtx, wkCancel := context.WithCancel(context.Background())
	wkDone := make(chan struct{})
	go func() {
		wk.Run(wkCtx) //nolint:errcheck
		close(wkDone)
	}()
	t.Cleanup(func() { wkCancel(); <-wkDone })

	client := NewClient("http://" + addr)
	var remoteJSONL bytes.Buffer
	var done atomic.Int64
	runErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() {
		_, err := client.Run(ctx, camp, exp.Options{
			SeedBase: 42, JSONL: &remoteJSONL,
			Progress: func(exp.Progress) { done.Add(1) },
		})
		runErr <- err
	}()

	// Let at least one point finish and persist, then kill the
	// coordinator abruptly: connections drop, campaign registry and all
	// leases are gone.
	waitFor(t, func() bool { return done.Load() >= 1 })
	hs1.Close() //nolint:errcheck
	srv1.Close()

	// Restart on the same address over the same store.
	srv2, _ := newCoordinator()
	var ln2 net.Listener
	waitFor(t, func() bool {
		var lerr error
		ln2, lerr = net.Listen("tcp", addr)
		return lerr == nil
	})
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2) //nolint:errcheck
	t.Cleanup(func() {
		srv2.Close()
		hs2.Close() //nolint:errcheck
	})

	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localJSONL, remoteJSONL.Bytes()) {
		t.Fatalf("JSONL across coordinator restart differs from serial local run:\nlocal:  %s\nremote: %s",
			localJSONL, remoteJSONL.Bytes())
	}
}

// TestChaosPoisonPoint: one point reliably kills whichever worker runs
// it. After PoisonWorkers distinct crashes it is quarantined — its
// error surfaces through the normal per-point path — while every other
// point completes with results identical to the serial local run.
func TestChaosPoisonPoint(t *testing.T) {
	camp := tinyCampaign()
	localOuts, _ := serialBaseline(t, camp)

	const poisonIdx = 1
	poisonSeed := exp.PointSeed(42, poisonIdx)
	isPoison := func(cfg dragonfly.Config) bool { return cfg.Seed == poisonSeed }

	ts := newTestServer(t, Config{SimWorkers: -1, Fleet: fastFleet()})

	runOuts := make(chan []exp.Outcome, 1)
	runErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() {
		outs, err := ts.client.Run(ctx, camp, exp.Options{SeedBase: 42})
		runOuts <- outs
		runErr <- err
	}()

	// Two workers in sequence; each dies the moment it starts the poison
	// point and runs everything else for real.
	evil := func(kill context.CancelFunc) func(context.Context, dragonfly.Config) (dragonfly.Result, error) {
		return func(simCtx context.Context, cfg dragonfly.Config) (dragonfly.Result, error) {
			if isPoison(cfg) {
				kill()
				<-simCtx.Done()
				return dragonfly.Result{}, simCtx.Err()
			}
			return dragonfly.RunContext(simCtx, cfg)
		}
	}
	for i, name := range []string{"evil1", "evil2"} {
		w := startChaosWorker(t, ts.http.URL, name, evil)
		<-w.done // the worker killed itself on the poison point
		want := int64(i + 1)
		waitFor(t, func() bool { return fleetStats(t, ts.client).ExpiredLeases >= want })
	}
	waitFor(t, func() bool { return fleetStats(t, ts.client).Quarantined >= 1 })

	// A good worker mops up whatever the evil ones left unfinished; the
	// quarantined point is never dispatched again.
	startChaosWorker(t, ts.http.URL, "good", nil)

	outs := <-runOuts
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if i == poisonIdx {
			if outs[i].Err == nil || !strings.Contains(outs[i].Err.Error(), "quarantined") {
				t.Fatalf("poison point error = %v, want quarantine", outs[i].Err)
			}
			continue
		}
		if outs[i].Err != nil {
			t.Fatalf("point %d: %v", i, outs[i].Err)
		}
		if !reflect.DeepEqual(localOuts[i].Result, outs[i].Result) {
			t.Fatalf("point %d result diverges from serial local run", i)
		}
	}
	st := fleetStats(t, ts.client)
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (%+v)", st.Quarantined, st)
	}
}

// TestDrainCollectsOutstandingLeases: SIGTERM (Drain) with a lease
// outstanding stops issuing new leases, still collects the in-flight
// point from its worker, fails the unstarted ones fast, and flushes a
// well-formed canonical JSONL mirror.
func TestDrainCollectsOutstandingLeases(t *testing.T) {
	jsonlDir := t.TempDir()
	store, err := exp.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{
		Store: store, SimWorkers: -1, JSONLDir: jsonlDir, Fleet: fastFleet(),
	})

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	startChaosWorker(t, ts.http.URL, "w1",
		func(kill context.CancelFunc) func(context.Context, dragonfly.Config) (dragonfly.Result, error) {
			return func(simCtx context.Context, cfg dragonfly.Config) (dragonfly.Result, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				select {
				case <-release:
					return dragonfly.Result{Delivered: 99}, nil
				case <-simCtx.Done():
					return dragonfly.Result{}, simCtx.Err()
				}
			}
		})

	camp := tinyCampaign()
	id, err := ts.client.Submit(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds a lease and is mid-simulation

	drained := make(chan error, 1)
	go func() { drained <- ts.srv.Drain(context.Background()) }()
	waitFor(t, func() bool { return ts.client.Health(context.Background()) != nil })

	// No new leases while draining.
	if status := rawPost(t, ts.http.URL+"/api/v1/leases",
		claimRequest{Worker: "late", Max: 1}, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("claim while draining: status %d, want 503", status)
	}

	// The in-flight point is still collected, heartbeats and all.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	st, err := ts.client.Status(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished || st.Done != st.Total || st.Executed != 1 {
		t.Fatalf("after drain: %+v, want finished with exactly the leased point executed", st)
	}

	// The mirror is well-formed canonical JSONL: exactly one collected
	// result, the rest failed fast with the draining error.
	buf, err := os.ReadFile(filepath.Join(jsonlDir, id+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 || buf[len(buf)-1] != '\n' {
		t.Fatal("JSONL mirror ends in a torn line")
	}
	var collected, drainedPts int
	for i, line := range bytes.Split(bytes.TrimSuffix(buf, []byte("\n")), []byte("\n")) {
		var rec exp.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("JSONL line %d: %v", i, err)
		}
		switch {
		case rec.Result != nil && rec.Result.Delivered == 99:
			collected++
		case strings.Contains(rec.Error, "draining"):
			drainedPts++
		default:
			t.Fatalf("JSONL line %d is neither collected nor drained: %s", i, line)
		}
	}
	if collected != 1 || drainedPts != len(camp.Points)-1 {
		t.Fatalf("mirror: %d collected, %d drained, want 1 and %d",
			collected, drainedPts, len(camp.Points)-1)
	}
}

// TestWorkerJoinsLateCoordinator: a worker started before its
// coordinator exists keeps backing off and joins once the coordinator
// comes up — the rejoin half of restart-survival, isolated.
func TestWorkerJoinsLateCoordinator(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port: nothing is listening yet

	startChaosWorker(t, "http://"+addr, "early", nil)
	time.Sleep(50 * time.Millisecond) // let a few claims fail

	store, err := exp.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: store, SimWorkers: -1, Fleet: fastFleet()})
	if err != nil {
		t.Fatal(err)
	}
	var ln2 net.Listener
	waitFor(t, func() bool {
		var lerr error
		ln2, lerr = net.Listen("tcp", addr)
		return lerr == nil
	})
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln2) //nolint:errcheck
	t.Cleanup(func() {
		s.Close()
		hs.Close() //nolint:errcheck
	})

	camp := tinyCampaign()
	client := NewClient("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	outs, err := client.Run(ctx, camp, exp.Options{SeedBase: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i].Err != nil {
			t.Fatalf("point %d: %v", i, outs[i].Err)
		}
	}
	if got := client.LastStatus().Executed; got != len(camp.Points) {
		t.Fatalf("executed %d, want %d (all on the late-joining worker)", got, len(camp.Points))
	}
}
