package srv

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	dragonfly "repro"
	"repro/internal/exp/queue"
)

// fleet.go is the coordinator's side of the worker protocol: the three
// lease endpoints remote dragonsrv -worker processes drive. The wire
// contract is deliberately small — claim a batch, heartbeat the lease,
// submit outcomes — and every response a worker can act on is a status
// code: 200 carry on, 410 the lease is gone (stop, discard, re-claim),
// 503 the coordinator is draining (back off and rejoin later).

// maxClaimWait bounds how long a claim request may long-poll for work.
const maxClaimWait = 30 * time.Second

// claimRequest asks for up to Max points under one lease. WaitMS, when
// positive, long-polls: the coordinator holds the request until work is
// ready or the wait elapses (capped at maxClaimWait).
type claimRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
	WaitMS int    `json:"wait_ms,omitempty"`
}

// leasePoint is one claimed point. Attempt starts at 1 and counts
// requeues, so workers can log retries.
type leasePoint struct {
	Task    string           `json:"task"`
	Key     string           `json:"key"`
	Attempt int              `json:"attempt"`
	Config  dragonfly.Config `json:"config"`
}

// LeaseGrant is a successful claim. An empty ID means no work was ready
// within the wait — poll again. LeaseSeconds is how long the lease
// lives between heartbeats.
type LeaseGrant struct {
	ID           string       `json:"id,omitempty"`
	LeaseSeconds float64      `json:"lease_seconds,omitempty"`
	Points       []leasePoint `json:"points,omitempty"`
}

// heartbeatResponse returns the remaining lease lifetime after the
// extension.
type heartbeatResponse struct {
	LeaseSeconds float64 `json:"lease_seconds"`
}

// TaskResult is one task's outcome as submitted by a worker: exactly
// one of Result or Error is set.
type TaskResult struct {
	Task   string            `json:"task"`
	Result *dragonfly.Result `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// resultsRequest submits a batch of outcomes under a lease.
type resultsRequest struct {
	Results []TaskResult `json:"results"`
}

// resultsResponse reports how the submission landed. Discarded counts
// idempotent duplicates of already-finished tasks.
type resultsResponse struct {
	Accepted  int `json:"accepted"`
	Discarded int `json:"discarded"`
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode claim: %v", err)
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "claim needs a worker name")
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxClaimWait {
		wait = maxClaimWait
	}
	l, err := s.queue.WaitClaim(r.Context(), req.Worker, req.Max, wait, false)
	switch {
	case errors.Is(err, ErrDraining) || (err == nil && s.draining.Load()):
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	case err != nil: // worker went away mid-poll
		return
	case l == nil:
		writeJSON(w, http.StatusOK, LeaseGrant{})
		return
	}
	grant := LeaseGrant{
		ID:           l.ID,
		LeaseSeconds: time.Until(l.Deadline).Seconds(),
		Points:       make([]leasePoint, len(l.Tasks)),
	}
	for i, t := range l.Tasks {
		grant.Points[i] = leasePoint{Task: t.ID, Key: t.Key, Attempt: t.Attempt, Config: t.Config}
	}
	s.logf("lease %s: %d point(s) -> worker %s", l.ID, len(l.Tasks), l.Worker)
	writeJSON(w, http.StatusOK, grant)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	deadline, err := s.queue.Heartbeat(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{LeaseSeconds: time.Until(deadline).Seconds()})
}

func (s *Server) handleLeaseResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req resultsRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode results: %v", err)
		return
	}
	var resp resultsResponse
	for _, tr := range req.Results {
		var out queue.Outcome
		switch {
		case tr.Error != "":
			out.Err = errRemote{msg: tr.Error}
		case tr.Result != nil:
			out.Result = *tr.Result
		default:
			httpError(w, http.StatusBadRequest, "task %s: result or error required", tr.Task)
			return
		}
		accepted, err := s.queue.Complete(id, tr.Task, out)
		switch {
		case errors.Is(err, queue.ErrLeaseExpired):
			// Zombie: the lease expired and the work was requeued (or
			// already finished elsewhere). Idempotent discard — the
			// worker stops and re-claims.
			s.logf("lease %s: late result for %s discarded", id, tr.Task)
			httpError(w, http.StatusGone, "%v", err)
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		case accepted:
			resp.Accepted++
		default:
			resp.Discarded++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
