package srv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/exp/queue"
)

// Transient-failure policy shared by the client and the worker: a
// request that fails on the transport, or with a 5xx (a restarting,
// overloaded, or draining server), is retried with capped exponential
// backoff plus jitter. 4xx responses are the caller's fault and are
// never retried. The budget is deliberately modest — a server that is
// down for good should fail the run in seconds, not minutes.
const (
	retryAttempts = 5
	retryBackoff  = 100 * time.Millisecond
	retryCap      = 3 * time.Second
)

// backoffDelay returns the jittered exponential delay before retry n
// (0-based): base<<n capped at max, then drawn from [d/2, d] so a fleet
// of clients does not reconnect in lockstep.
func backoffDelay(n int, base, max time.Duration) time.Duration {
	d := base
	for i := 0; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleepCtx sleeps for d; false means ctx expired first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Client is the thin remote-execution client behind the CLIs' -remote
// flag. Client.Run mirrors exp.Run's contract — same outcome slice,
// same progress events, same canonical JSONL bytes — so callers switch
// between local and remote execution without observable difference
// beyond where the simulations burn their cycles.
type Client struct {
	base string
	hc   *http.Client

	mu   sync.Mutex
	last Status // status of the most recent completed Run
}

// NewClient creates a client for a dragonsrv base URL such as
// "http://127.0.0.1:8080".
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		// SSE streams have no overall deadline; rely on ctx for cancel.
		hc: &http.Client{},
	}
}

// LastStatus returns the server-side status of the most recent
// completed Run — CLIs print its Executed/FromStore/Deduped split.
func (c *Client) LastStatus() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Submit posts a campaign and returns its server-assigned ID.
func (c *Client) Submit(ctx context.Context, camp exp.Campaign) (string, error) {
	req := submitRequest{Name: camp.Name, Points: make([]wirePoint, len(camp.Points))}
	for i, p := range camp.Points {
		req.Points[i] = wirePoint{Series: p.Series, X: p.X, Config: p.Config}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("srv: encode campaign: %w", err)
	}
	var resp submitResponse
	if err := c.doJSON(ctx, http.MethodPost, "/api/v1/campaigns", body, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Status fetches one campaign's status.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.doJSON(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &st)
	return st, err
}

// StoreStats fetches the server's store statistics.
func (c *Client) StoreStats(ctx context.Context) (exp.StoreStats, error) {
	var st exp.StoreStats
	err := c.doJSON(ctx, http.MethodGet, "/api/v1/store", nil, &st)
	return st, err
}

// FleetStats fetches the server's lease-queue snapshot: active leases,
// per-worker heartbeat ages, requeue/quarantine counters.
func (c *Client) FleetStats(ctx context.Context) (queue.FleetStats, error) {
	var st struct {
		Fleet queue.FleetStats `json:"fleet"`
	}
	err := c.doJSON(ctx, http.MethodGet, "/api/v1/store", nil, &st)
	return st.Fleet, err
}

// doJSON performs one API call, retrying transient failures (transport
// errors and 5xx) per the policy above. Note that a retried POST may
// execute twice if the first response was lost in flight; every POST in
// this API is safe to repeat — a duplicate campaign submission dedups
// against the store and in-flight sims, so it costs bookkeeping, not
// simulations.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			if !sleepCtx(ctx, backoffDelay(attempt-1, retryBackoff, retryCap)) {
				return lastErr
			}
		}
		err, retryable := c.doJSONOnce(ctx, method, path, body, out)
		if err == nil || !retryable {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return lastErr
		}
	}
	return fmt.Errorf("srv: giving up after %d attempts: %w", retryAttempts, lastErr)
}

func (c *Client) doJSONOnce(ctx context.Context, method, path string, body []byte, out any) (_ error, retryable bool) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("srv: %w", err), false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("srv: %s %s: %w", method, path, err), true
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("srv: %s %s: %s: %s", method, path, resp.Status, errBody(resp.Body)),
			resp.StatusCode/100 == 5
	}
	if out == nil {
		return nil, false
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("srv: decode %s response: %w", path, err), false
	}
	return nil, false
}

// errBody extracts the server's {"error": ...} message, if any.
func errBody(r io.Reader) string {
	buf, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(buf, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(buf))
}

// errRemote marks per-point errors that happened on the server.
type errRemote struct{ msg string }

func (e errRemote) Error() string { return e.msg }

// Run executes a campaign remotely, mirroring exp.Run: outcomes return
// in campaign order, opt.Progress fires serially per finished point,
// opt.JSONL receives the canonical stream (remote execution always
// writes canonical JSONL — that is what makes it byte-identical to a
// local -jsonl run). Seeding (opt.SeedBase) is applied locally before
// submission, so the server simulates exactly the configs a local run
// would. opt.Workers and opt.Cache are server-side concerns and are
// ignored. The SSE stream replays from the start on reconnect, so a
// dropped connection resumes idempotently.
func (c *Client) Run(ctx context.Context, camp exp.Campaign, opt exp.Options) ([]exp.Outcome, error) {
	points := make([]exp.Point, len(camp.Points))
	copy(points, camp.Points)
	if opt.SeedBase != 0 {
		for i := range points {
			points[i].Config.Seed = exp.PointSeed(opt.SeedBase, i)
		}
	}
	id, err := c.Submit(ctx, exp.Campaign{Name: camp.Name, Points: points})
	if err != nil {
		return nil, err
	}

	outs := make([]exp.Outcome, len(points))
	for i := range outs {
		outs[i] = exp.Outcome{Index: i, Point: points[i]}
	}
	got := make([]bool, len(points))
	done := 0
	onRecord := func(rec exp.Record) {
		if rec.Index < 0 || rec.Index >= len(outs) || got[rec.Index] {
			return // duplicate from a replayed stream, or garbage
		}
		got[rec.Index] = true
		done++
		o := &outs[rec.Index]
		o.Cached = rec.Cached
		o.Seconds = rec.Seconds
		if rec.Error != "" {
			o.Err = errRemote{msg: rec.Error}
		} else if rec.Result != nil {
			o.Result = *rec.Result
		}
		if opt.Progress != nil {
			opt.Progress(exp.Progress{Done: done, Total: len(outs), Outcome: *o})
		}
	}

	// A coordinator restart loses its in-memory campaign registry (the
	// result store persists on disk). When the event stream 404s,
	// resubmit the same seeded points: finished points replay straight
	// from the store, got[] dedups them by index, and only unfinished
	// work simulates again.
	const resubmits = 3
	st, err := c.stream(ctx, id, onRecord)
	for lost := 0; errors.Is(err, errCampaignLost) && lost < resubmits && ctx.Err() == nil; lost++ {
		var subErr error
		if id, subErr = c.Submit(ctx, exp.Campaign{Name: camp.Name, Points: points}); subErr != nil {
			err = subErr
			break
		}
		st, err = c.stream(ctx, id, onRecord)
	}
	if err != nil {
		// The transport failed for good; surface it campaign-level and
		// mark every point we never heard about, like a cancellation.
		for i := range outs {
			if !got[i] {
				outs[i].Err = err
			}
		}
		return outs, err
	}
	for i := range outs {
		if !got[i] {
			outs[i].Err = fmt.Errorf("srv: campaign %s finished without a result for point %d", id, i)
		}
	}
	c.mu.Lock()
	c.last = st
	c.mu.Unlock()

	var jsonlErr error
	if opt.JSONL != nil {
		for i := range outs {
			if jsonlErr = exp.WriteCanonicalRecord(opt.JSONL, &outs[i]); jsonlErr != nil {
				break
			}
		}
	}
	return outs, jsonlErr
}

// streamAttempts bounds SSE reconnects on transport errors.
const streamAttempts = 5

// errCampaignLost means the server no longer knows the campaign —
// it restarted and lost its in-memory registry. Run reacts by
// resubmitting; retrying the stream cannot help.
var errCampaignLost = errors.New("srv: campaign not found (coordinator restarted?)")

// stream consumes the campaign's SSE feed until its "done" event,
// reconnecting with jittered backoff on transport errors (the server
// replays from the start; onRecord deduplicates by index).
func (c *Client) stream(ctx context.Context, id string, onRecord func(exp.Record)) (Status, error) {
	var lastErr error
	for attempt := 0; attempt < streamAttempts; attempt++ {
		if attempt > 0 {
			if !sleepCtx(ctx, backoffDelay(attempt-1, retryBackoff, retryCap)) {
				return Status{}, ctx.Err()
			}
		}
		st, done, err := c.streamOnce(ctx, id, onRecord)
		if done {
			return st, nil
		}
		if ctx.Err() != nil {
			return Status{}, ctx.Err()
		}
		if errors.Is(err, errCampaignLost) {
			return Status{}, err
		}
		lastErr = err
	}
	return Status{}, fmt.Errorf("srv: event stream for campaign %s failed after %d attempts: %w",
		id, streamAttempts, lastErr)
}

func (c *Client) streamOnce(ctx context.Context, id string, onRecord func(exp.Record)) (Status, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/api/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return Status{}, false, fmt.Errorf("srv: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return Status{}, false, fmt.Errorf("srv: events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return Status{}, false, fmt.Errorf("%w (campaign %s)", errCampaignLost, id)
	}
	if resp.StatusCode != http.StatusOK {
		return Status{}, false, fmt.Errorf("srv: events: %s: %s", resp.Status, errBody(resp.Body))
	}

	var event string
	var data bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxBodyBytes)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "point":
				var rec exp.Record
				if err := json.Unmarshal(data.Bytes(), &rec); err != nil {
					return Status{}, false, fmt.Errorf("srv: decode point event: %w", err)
				}
				onRecord(rec)
			case "done":
				var st Status
				if err := json.Unmarshal(data.Bytes(), &st); err != nil {
					return Status{}, false, fmt.Errorf("srv: decode done event: %w", err)
				}
				return st, true, nil
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		return Status{}, false, fmt.Errorf("srv: events stream: %w", err)
	}
	return Status{}, false, errors.New("srv: event stream ended before campaign finished")
}

// Health probes /healthz; nil means the server is up and accepting.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("srv: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("srv: health: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("srv: health: %s", resp.Status)
	}
	return nil
}
