package srv

import (
	"html/template"
	"net/http"
	"strconv"

	"repro/internal/exp"
	"repro/internal/exp/queue"
)

// The embedded results browser is deliberately plain HTML — no scripts,
// no assets — with a meta-refresh while a campaign is still running.
// It is an inspection surface, not a control surface: submission stays
// on the JSON API.

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>dragonsrv</title><meta http-equiv="refresh" content="5">
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #999; padding: 0.3em 0.7em; text-align: right; }
th { background: #eee; } td.l, th.l { text-align: left; }
</style></head><body>
<h1>dragonsrv</h1>
<h2>Store</h2>
<table>
<tr><th>entries</th><th>bytes</th><th>max bytes</th><th>hits</th><th>misses</th><th>evictions</th></tr>
<tr><td>{{.Store.Entries}}</td><td>{{.Store.Bytes}}</td>
<td>{{if .Store.MaxBytes}}{{.Store.MaxBytes}}{{else}}&infin;{{end}}</td>
<td>{{.Store.Hits}}</td><td>{{.Store.Misses}}</td><td>{{.Store.Evictions}}</td></tr>
</table>
<h2>Fleet</h2>
<table>
<tr><th>queued</th><th>leased</th><th>leases</th><th>completed</th><th>failed</th>
<th>requeues</th><th>expired leases</th><th>quarantined</th><th>late discards</th></tr>
<tr><td>{{.Fleet.QueuedPoints}}</td><td>{{.Fleet.LeasedPoints}}</td><td>{{.Fleet.ActiveLeases}}</td>
<td>{{.Fleet.Completed}}</td><td>{{.Fleet.Failed}}</td>
<td>{{.Fleet.Requeues}}</td><td>{{.Fleet.ExpiredLeases}}</td>
<td>{{.Fleet.Quarantined}}</td><td>{{.Fleet.LateDiscarded}}</td></tr>
</table>
{{if .Fleet.Workers}}
<h3>Workers</h3>
<table>
<tr><th class="l">worker</th><th>heartbeat age (s)</th><th>leases</th><th>points</th>
<th>completed</th><th>crashes</th></tr>
{{range .Fleet.Workers}}
<tr><td class="l">{{.Name}}</td><td>{{printf "%.1f" .HeartbeatAgeSeconds}}</td>
<td>{{.ActiveLeases}}</td><td>{{.ActivePoints}}</td>
<td>{{.Completed}}</td><td>{{.Crashes}}</td></tr>
{{end}}
</table>{{end}}
<h2>Campaigns</h2>
{{if not .Campaigns}}<p>No campaigns submitted yet.</p>{{else}}
<table>
<tr><th class="l">id</th><th class="l">name</th><th>points</th><th>done</th>
<th>simulated</th><th>from store</th><th>deduped</th><th class="l">state</th></tr>
{{range .Campaigns}}
<tr><td class="l"><a href="/campaigns/{{.ID}}">{{.ID}}</a></td>
<td class="l">{{.Name}}</td><td>{{.Total}}</td><td>{{.Done}}</td>
<td>{{.Executed}}</td><td>{{.FromStore}}</td><td>{{.Deduped}}</td>
<td class="l">{{if .Error}}error{{else if .Finished}}finished{{else}}running{{end}}</td></tr>
{{end}}
</table>{{end}}
</body></html>
`))

var campaignTmpl = template.Must(template.New("campaign").Parse(`<!DOCTYPE html>
<html><head><title>dragonsrv · {{.Status.ID}}</title>
{{if not .Status.Finished}}<meta http-equiv="refresh" content="2">{{end}}
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #999; padding: 0.3em 0.7em; text-align: right; }
th { background: #eee; } td.l, th.l { text-align: left; }
</style></head><body>
<p><a href="/">&larr; all campaigns</a></p>
<h1>{{.Status.ID}} · {{.Status.Name}}</h1>
<p>{{.Status.Done}}/{{.Status.Total}} points
({{.Status.Executed}} simulated, {{.Status.FromStore}} from store, {{.Status.Deduped}} deduped)
— {{if .Status.Error}}error: {{.Status.Error}}{{else if .Status.Finished}}finished{{else}}running&hellip;{{end}}</p>
<p><a href="/api/v1/campaigns/{{.Status.ID}}/results.jsonl">results.jsonl</a> ·
<a href="/api/v1/campaigns/{{.Status.ID}}/results">results.json</a></p>
<table>
<tr><th>#</th><th class="l">series</th><th>x</th><th class="l">state</th>
<th>accepted</th><th>latency</th><th>seconds</th></tr>
{{range .Rows}}
<tr><td>{{.Index}}</td><td class="l">{{.Series}}</td><td>{{.X}}</td>
<td class="l">{{.State}}</td><td>{{.Accepted}}</td><td>{{.Latency}}</td><td>{{.Seconds}}</td></tr>
{{end}}
</table>
</body></html>
`))

type campaignRow struct {
	Index    int
	Series   string
	X        float64
	State    string
	Accepted string
	Latency  string
	Seconds  string
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.campaigns[id].status())
	}
	s.mu.Unlock()
	data := struct {
		Store     exp.StoreStats
		Fleet     queue.FleetStats
		Campaigns []Status
	}{Store: s.store.Stats(), Fleet: s.queue.Stats(), Campaigns: statuses}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	indexTmpl.Execute(w, data) //nolint:errcheck // client went away
}

func (s *Server) handleCampaignPage(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		http.NotFound(w, r)
		return
	}
	c.mu.Lock()
	st := c.statusLocked()
	rows := make([]campaignRow, len(c.points))
	for i, p := range c.points {
		rows[i] = campaignRow{Index: i, Series: p.Series, X: p.X, State: "pending"}
	}
	for _, rec := range c.recs {
		row := &rows[rec.Index]
		switch {
		case rec.Error != "":
			row.State = "error"
		case rec.Cached:
			row.State = "cached"
		default:
			row.State = "done"
		}
		if rec.Result != nil {
			row.Accepted = strconv.FormatFloat(rec.Result.AcceptedLoad, 'f', 4, 64)
			row.Latency = strconv.FormatFloat(rec.Result.AvgTotalLatency, 'f', 1, 64)
		}
		row.Seconds = strconv.FormatFloat(rec.Seconds, 'f', 2, 64)
	}
	c.mu.Unlock()
	data := struct {
		Status Status
		Rows   []campaignRow
	}{Status: st, Rows: rows}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	campaignTmpl.Execute(w, data) //nolint:errcheck // client went away
}
