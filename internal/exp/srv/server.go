// Package srv turns internal/exp into a long-running campaign service:
// an HTTP/JSON API that accepts campaigns, executes their points on a
// shared bounded simulation pool, serves repeated points from a
// persistent size-bounded result store (exp.Store), deduplicates
// identical points that are in flight concurrently (exp.Flights),
// streams per-point progress over SSE, and renders a plain-HTML results
// browser. Client (client.go) is the matching thin client used by the
// CLIs' -remote flag; because the engine is deterministic and points are
// seeded before submission, remote results are interchangeable with —
// and canonical JSONL streams byte-identical to — local execution.
//
// API (all JSON unless noted):
//
//	POST /api/v1/campaigns                    submit {name, points:[{series,x,config}]}
//	GET  /api/v1/campaigns                    list campaign statuses
//	GET  /api/v1/campaigns/{id}               one campaign's status
//	GET  /api/v1/campaigns/{id}/events        SSE: replay + live per-point events, then "done"
//	GET  /api/v1/campaigns/{id}/results       finished outcomes (blocks until done)
//	GET  /api/v1/campaigns/{id}/results.jsonl canonical JSONL (blocks until done)
//	GET  /api/v1/store                        store occupancy and hit/miss counters
//	GET  /healthz                             "ok" (503 "draining" while shutting down)
//	GET  /                                    HTML browser; /campaigns/{id} per-campaign page
package srv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	dragonfly "repro"
	"repro/internal/exp"
)

// ErrDraining is the per-point error of points the server refused to
// start because a graceful shutdown was in progress. In-flight
// simulations still finish and persist; only unstarted points carry it.
var ErrDraining = errors.New("srv: server draining, point not started")

// maxBodyBytes bounds a campaign submission body.
const maxBodyBytes = 64 << 20

// Config configures a Server.
type Config struct {
	// Store is the shared persistent result store (required).
	Store *exp.Store
	// SimWorkers bounds concurrently executing simulations across all
	// campaigns (default GOMAXPROCS).
	SimWorkers int
	// JSONLDir, when non-empty, makes the server mirror each campaign's
	// canonical JSONL stream to <dir>/<campaign-id>.jsonl as points
	// finish, so results survive client disconnects and drains.
	JSONLDir string
	// Log, when non-nil, receives operational log lines.
	Log *log.Logger
}

// Server is the campaign service. Create with New, expose with Handler,
// shut down with Drain.
type Server struct {
	store      *exp.Store
	simWorkers int
	jsonlDir   string
	logger     *log.Logger

	sema    chan struct{} // global simulation slots
	flights exp.Flights

	draining  atomic.Bool
	runCtx    context.Context // canceled only when a drain deadline forces abort
	runCancel context.CancelFunc

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // submission order, for listings
	nextID    int
	wg        sync.WaitGroup // running campaign executors

	// runSim executes one simulation; tests stub it to control timing.
	runSim func(ctx context.Context, cfg dragonfly.Config) (dragonfly.Result, error)
}

// New creates a Server. The JSONL directory, when configured, is
// created if needed.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("srv: Config.Store is required")
	}
	workers := cfg.SimWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.JSONLDir != "" {
		if err := os.MkdirAll(cfg.JSONLDir, 0o755); err != nil {
			return nil, fmt.Errorf("srv: jsonl dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		store:      cfg.Store,
		simWorkers: workers,
		jsonlDir:   cfg.JSONLDir,
		logger:     cfg.Log,
		sema:       make(chan struct{}, workers),
		runCtx:     ctx,
		runCancel:  cancel,
		campaigns:  make(map[string]*campaign),
		runSim: func(ctx context.Context, cfg dragonfly.Config) (dragonfly.Result, error) {
			return dragonfly.RunContext(ctx, cfg)
		},
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Drain gracefully shuts the execution side down: new submissions are
// rejected with 503, queued points that have not started simulating
// fail with ErrDraining, and in-flight simulations run to completion
// and persist to the store. Drain returns when every accepted campaign
// has finished, or — if ctx expires first — aborts the remaining
// simulations and returns ctx's error. Safe to call once; the HTTP
// listener itself is the caller's to close afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// Barrier: a submission that passed the draining check while holding
	// s.mu has already registered with wg by the time we acquire it.
	s.mu.Lock()
	n := len(s.order)
	s.mu.Unlock()
	s.logf("draining: waiting on campaigns (%d accepted total)", n)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.runCancel() // in-flight simulations abort at their next cycle check
		<-done
		return ctx.Err()
	}
}

// Close aborts everything immediately. Tests use it; production drains.
func (s *Server) Close() {
	s.draining.Store(true)
	s.runCancel()
	s.wg.Wait()
}

// campaign is one accepted campaign and its execution state.
type campaign struct {
	id      string
	name    string
	created time.Time
	points  []exp.Point

	mu   sync.Mutex
	cond *sync.Cond // broadcast on every new record and on finish

	recs     []exp.Record  // completion-order events (Cached/Seconds live)
	served   []bool        // per-index: result arrived without its own sim
	outs     []exp.Outcome // campaign order, set on finish
	executed int           // simulations this campaign ran
	fromStore,
	deduped int
	finished bool
	errMsg   string // campaign-level error, if any
}

// Status is a campaign status snapshot, as served by the API.
type Status struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	Created   time.Time `json:"created"`
	Total     int       `json:"total"`
	Done      int       `json:"done"`
	Executed  int       `json:"executed"`   // simulations run for this campaign
	FromStore int       `json:"from_store"` // points served from the persistent store
	Deduped   int       `json:"deduped"`    // points that joined another caller's in-flight sim
	Finished  bool      `json:"finished"`
	Error     string    `json:"error,omitempty"`
}

func (c *campaign) statusLocked() Status {
	return Status{
		ID:        c.id,
		Name:      c.name,
		Created:   c.created,
		Total:     len(c.points),
		Done:      len(c.recs),
		Executed:  c.executed,
		FromStore: c.fromStore,
		Deduped:   c.deduped,
		Finished:  c.finished,
		Error:     c.errMsg,
	}
}

func (c *campaign) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

// record appends one finished point's event and wakes SSE streams.
// Called serially by exp.Run's progress path.
func (c *campaign) record(o exp.Outcome) {
	c.mu.Lock()
	o.Cached = o.Cached || c.served[o.Index]
	rec := exp.Record{
		Index:   o.Index,
		Series:  o.Point.Series,
		X:       o.Point.X,
		Cached:  o.Cached,
		Seconds: o.Seconds,
		Config:  o.Point.Config,
	}
	if o.Err != nil {
		rec.Error = o.Err.Error()
	} else {
		res := o.Result
		rec.Result = &res
	}
	c.recs = append(c.recs, rec)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finish publishes the final outcomes and wakes everyone waiting.
func (c *campaign) finish(outs []exp.Outcome, err error) {
	c.mu.Lock()
	for i := range outs {
		outs[i].Cached = outs[i].Cached || c.served[i]
	}
	c.outs = outs
	c.finished = true
	if err != nil {
		c.errMsg = err.Error()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// waitFinished blocks until the campaign finished or ctx expired.
func (c *campaign) waitFinished(ctx context.Context) ([]exp.Outcome, bool) {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.finished {
		if ctx.Err() != nil {
			return nil, false
		}
		c.cond.Wait()
	}
	return c.outs, true
}

// start launches the campaign executor.
func (s *Server) start(c *campaign) {
	go func() {
		defer s.wg.Done()
		eopt := exp.Options{
			Workers:        s.simWorkers,
			CanonicalJSONL: true,
			Run: func(_ context.Context, i int, p exp.Point) (dragonfly.Result, error) {
				return s.runPoint(c, i, p)
			},
			Progress: func(pr exp.Progress) { c.record(pr.Outcome) },
		}
		var jsonl *os.File
		if s.jsonlDir != "" {
			f, err := os.Create(filepath.Join(s.jsonlDir, c.id+".jsonl"))
			if err != nil {
				s.logf("campaign %s: jsonl: %v", c.id, err)
			} else {
				jsonl = f
				eopt.JSONL = f
			}
		}
		outs, err := exp.Run(s.runCtx, exp.Campaign{Name: c.name, Points: c.points}, eopt)
		if jsonl != nil {
			if cerr := jsonl.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		c.finish(outs, err)
		st := c.status()
		s.logf("campaign %s (%s) finished: %d points, %d simulated, %d from store, %d deduped",
			c.id, c.name, st.Total, st.Executed, st.FromStore, st.Deduped)
	}()
}

// runPoint resolves one point: store lookup, in-flight dedup, then — if
// nobody else has or is computing it — one simulation on the global
// pool, persisted to the store. The store lookup happens inside the
// flight so concurrent identical points cost one lookup and the
// hit/miss counters stay exact.
func (s *Server) runPoint(c *campaign, idx int, p exp.Point) (dragonfly.Result, error) {
	key := s.store.Key(p.Config)
	var ranSim bool
	res, leader, err := s.flights.Do(s.runCtx, key, func() (dragonfly.Result, error) {
		if res, ok := s.store.Get(key); ok {
			return res, nil
		}
		if s.draining.Load() {
			return dragonfly.Result{}, ErrDraining
		}
		select {
		case s.sema <- struct{}{}:
		case <-s.runCtx.Done():
			return dragonfly.Result{}, s.runCtx.Err()
		}
		defer func() { <-s.sema }()
		if s.draining.Load() { // drain began while queued for a slot
			return dragonfly.Result{}, ErrDraining
		}
		ranSim = true
		res, err := s.runSim(s.runCtx, p.Config)
		if err != nil {
			return dragonfly.Result{}, err
		}
		if perr := s.store.Put(key, p.Config, res); perr != nil {
			// The result stands; a broken store surfaces in the log.
			s.logf("store put %s: %v", key[:12], perr)
		}
		return res, nil
	})
	c.mu.Lock()
	switch {
	case leader && ranSim:
		c.executed++
	case err == nil:
		if leader {
			c.fromStore++
		} else {
			c.deduped++
		}
		c.served[idx] = true
	}
	c.mu.Unlock()
	return res, err
}

// submit registers and starts a campaign. Returns nil while draining.
func (s *Server) submit(name string, points []exp.Point) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil
	}
	s.nextID++
	c := &campaign{
		id:      fmt.Sprintf("c%04d", s.nextID),
		name:    name,
		created: time.Now().UTC(),
		points:  points,
		served:  make([]bool, len(points)),
	}
	c.cond = sync.NewCond(&c.mu)
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.wg.Add(1) // inside s.mu: pairs with the barrier in Drain
	s.start(c)
	return c
}

func (s *Server) campaign(id string) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/results.jsonl", s.handleResultsJSONL)
	mux.HandleFunc("GET /api/v1/store", s.handleStore)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /campaigns/{id}", s.handleCampaignPage)
	return mux
}

// Wire types. exp.Point carries no JSON tags, so the API defines its
// own lower-case layout, matching Record's field names.

type wirePoint struct {
	Series string           `json:"series"`
	X      float64          `json:"x"`
	Config dragonfly.Config `json:"config"`
}

type submitRequest struct {
	Name   string      `json:"name"`
	Points []wirePoint `json:"points"`
}

type submitResponse struct {
	ID    string `json:"id"`
	Total int    `json:"total"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode campaign: %v", err)
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "campaign has no points")
		return
	}
	points := make([]exp.Point, len(req.Points))
	for i, wp := range req.Points {
		if err := wp.Config.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
		points[i] = exp.Point{Series: wp.Series, X: wp.X, Config: wp.Config}
	}
	c := s.submit(req.Name, points)
	if c == nil {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.logf("campaign %s (%s): accepted, %d points", c.id, c.name, len(points))
	writeJSON(w, http.StatusCreated, submitResponse{ID: c.id, Total: len(points)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.campaigns[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	writeJSON(w, http.StatusOK, c.status())
}

// handleEvents streams SSE: every already-recorded point is replayed
// first (so reconnecting clients can resume idempotently by index),
// then live events, then one "done" event carrying the final status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()

	next := 0
	c.mu.Lock()
	for {
		for next < len(c.recs) {
			rec := c.recs[next]
			next++
			c.mu.Unlock()
			if err := writeEvent(w, "point", rec); err != nil {
				return
			}
			fl.Flush()
			c.mu.Lock()
		}
		if c.finished {
			break
		}
		if ctx.Err() != nil {
			c.mu.Unlock()
			return
		}
		c.cond.Wait()
	}
	st := c.statusLocked()
	c.mu.Unlock()
	writeEvent(w, "done", st) //nolint:errcheck // stream is ending either way
	fl.Flush()
}

func writeEvent(w io.Writer, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	outs, ok := c.waitFinished(r.Context())
	if !ok {
		return // client went away
	}
	recs := make([]exp.Record, 0, len(outs))
	for i := range outs {
		o := &outs[i]
		rec := exp.Record{
			Index:   o.Index,
			Series:  o.Point.Series,
			X:       o.Point.X,
			Cached:  o.Cached,
			Seconds: o.Seconds,
			Config:  o.Point.Config,
		}
		if o.Err != nil {
			rec.Error = o.Err.Error()
		} else {
			rec.Result = &o.Result
		}
		recs = append(recs, rec)
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) handleResultsJSONL(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	outs, ok := c.waitFinished(r.Context())
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for i := range outs {
		if err := exp.WriteCanonicalRecord(w, &outs[i]); err != nil {
			return
		}
	}
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n") //nolint:errcheck
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck
}
