// Package srv turns internal/exp into a long-running campaign service:
// an HTTP/JSON API that accepts campaigns, executes their points on a
// shared fleet of simulation workers, serves repeated points from a
// persistent size-bounded result store (exp.Store), deduplicates
// identical points that are in flight concurrently (exp.Flights),
// streams per-point progress over SSE, and renders a plain-HTML results
// browser. Client (client.go) is the matching thin client used by the
// CLIs' -remote flag; because the engine is deterministic and points are
// seeded before submission, remote results are interchangeable with —
// and canonical JSONL streams byte-identical to — local execution.
//
// Execution is coordinated through a lease-based point queue
// (internal/exp/queue): every cache-missing point is enqueued once, and
// whichever puller claims it first — one of the coordinator's own local
// sim workers, or a remote dragonsrv -worker process pulling over the
// lease API (fleet.go) — runs it. Leases expire without heartbeats, so
// a worker can die at any moment: its points requeue with backoff and
// the campaign still completes with byte-identical results; points that
// crash enough distinct workers are quarantined instead of retrying
// forever (see the queue package for the full lifecycle). Worker
// (worker.go) is the puller side of the same contract.
//
// API (all JSON unless noted):
//
//	POST /api/v1/campaigns                    submit {name, points:[{series,x,config}]}
//	GET  /api/v1/campaigns                    list campaign statuses
//	GET  /api/v1/campaigns/{id}               one campaign's status
//	GET  /api/v1/campaigns/{id}/events        SSE: replay + live per-point events, then "done"
//	GET  /api/v1/campaigns/{id}/results       finished outcomes (blocks until done)
//	GET  /api/v1/campaigns/{id}/results.jsonl canonical JSONL (blocks until done)
//	POST /api/v1/leases                       claim a batch of points {worker,max,wait_ms}
//	POST /api/v1/leases/{id}/heartbeat        extend a lease (410 once expired)
//	POST /api/v1/leases/{id}/results          submit outcomes (410 discards a zombie's)
//	GET  /api/v1/store                        store occupancy, hit/miss counters, fleet stats
//	GET  /healthz                             "ok" (503 "draining" while shutting down)
//	GET  /                                    HTML browser; /campaigns/{id} per-campaign page
package srv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	dragonfly "repro"
	"repro/internal/exp"
	"repro/internal/exp/queue"
)

// ErrDraining is the per-point error of points the server refused to
// start because a graceful shutdown was in progress. In-flight
// simulations still finish and persist; only unstarted points carry it.
var ErrDraining = errors.New("srv: server draining, point not started")

// maxBodyBytes bounds a campaign submission body.
const maxBodyBytes = 64 << 20

// sseWriteTimeout bounds one SSE event write; a subscriber that stalls
// longer than this is detached.
const sseWriteTimeout = 30 * time.Second

// Config configures a Server.
type Config struct {
	// Store is the shared persistent result store (required).
	Store *exp.Store
	// SimWorkers bounds the coordinator's own concurrently executing
	// simulations (default GOMAXPROCS). Negative disables local
	// execution entirely: the coordinator only dispatches to remote
	// workers — the fleet-only topology.
	SimWorkers int
	// Fleet tunes the lease queue (lease duration, quarantine
	// thresholds, requeue backoff). The zero value gets the queue
	// package's production defaults.
	Fleet queue.Config
	// JSONLDir, when non-empty, makes the server mirror each campaign's
	// canonical JSONL stream to <dir>/<campaign-id>.jsonl as points
	// finish, so results survive client disconnects and drains.
	JSONLDir string
	// Log, when non-nil, receives operational log lines.
	Log *log.Logger
}

// Server is the campaign service. Create with New, expose with Handler,
// shut down with Drain.
type Server struct {
	store      *exp.Store
	simWorkers int
	jsonlDir   string
	logger     *log.Logger

	queue   *queue.Queue
	flights exp.Flights
	localWG sync.WaitGroup // local puller goroutines

	draining  atomic.Bool
	runCtx    context.Context // canceled only when a drain deadline forces abort
	runCancel context.CancelFunc

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // submission order, for listings
	nextID    int
	wg        sync.WaitGroup // running campaign executors

	// runSim executes one simulation; tests stub it to control timing.
	runSim func(ctx context.Context, cfg dragonfly.Config) (dragonfly.Result, error)
}

// New creates a Server. The JSONL directory, when configured, is
// created if needed.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("srv: Config.Store is required")
	}
	workers := cfg.SimWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 0 {
		workers = 0 // fleet-only: no local pullers
	}
	if cfg.JSONLDir != "" {
		if err := os.MkdirAll(cfg.JSONLDir, 0o755); err != nil {
			return nil, fmt.Errorf("srv: jsonl dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		store:      cfg.Store,
		simWorkers: workers,
		jsonlDir:   cfg.JSONLDir,
		logger:     cfg.Log,
		queue:      queue.New(cfg.Fleet),
		runCtx:     ctx,
		runCancel:  cancel,
		campaigns:  make(map[string]*campaign),
		runSim: func(ctx context.Context, cfg dragonfly.Config) (dragonfly.Result, error) {
			return dragonfly.RunContext(ctx, cfg)
		},
	}
	for i := 0; i < workers; i++ {
		s.localWG.Add(1)
		go s.localPuller()
	}
	return s, nil
}

// localPuller is one of the coordinator's own simulation workers: it
// claims points off the same queue remote workers pull from, so local
// capacity and the fleet share one dispatch order and never duplicate
// work. Local leases do not expire — the holder cannot outlive the
// queue — so no heartbeats are needed.
func (s *Server) localPuller() {
	defer s.localWG.Done()
	for {
		l, err := s.queue.WaitClaim(s.runCtx, "local", 1, time.Hour, true)
		if err != nil {
			return // draining or shut down
		}
		if l == nil {
			continue
		}
		for _, t := range l.Tasks {
			res, err := s.runSim(s.runCtx, t.Config)
			s.queue.Complete(l.ID, t.ID, queue.Outcome{Result: res, Err: err}) //nolint:errcheck // local leases cannot expire
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Drain gracefully shuts the execution side down: new submissions are
// rejected with 503, no new leases are issued (remote claims get 503,
// local pullers stop), queued points that have not started simulating
// fail with ErrDraining, and in-flight work — local simulations and
// points leased to remote workers — is collected: workers can still
// heartbeat and submit, and results persist to the store. A leased
// point whose worker dies during the drain fails with ErrDraining when
// its lease expires instead of requeueing. Drain returns when every
// accepted campaign has finished, or — if ctx expires first — aborts
// the remaining simulations and returns ctx's error. Safe to call once;
// the HTTP listener itself is the caller's to close afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Drain(ErrDraining)
	// Barrier: a submission that passed the draining check while holding
	// s.mu has already registered with wg by the time we acquire it.
	s.mu.Lock()
	n := len(s.order)
	s.mu.Unlock()
	s.logf("draining: waiting on campaigns (%d accepted total)", n)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.runCancel() // in-flight simulations abort at their next cycle check
		<-done
		err = ctx.Err()
	}
	s.runCancel()
	s.localWG.Wait()
	s.queue.Close()
	return err
}

// Close aborts everything immediately. Tests use it; production drains.
func (s *Server) Close() {
	s.draining.Store(true)
	s.queue.Drain(ErrDraining)
	s.runCancel()
	s.wg.Wait()
	s.localWG.Wait()
	s.queue.Close()
}

// campaign is one accepted campaign and its execution state.
type campaign struct {
	id      string
	name    string
	created time.Time
	points  []exp.Point

	mu   sync.Mutex
	cond *sync.Cond // broadcast on every new record and on finish

	recs     []exp.Record  // completion-order events (Cached/Seconds live)
	served   []bool        // per-index: result arrived without its own sim
	outs     []exp.Outcome // campaign order, set on finish
	executed int           // simulations this campaign ran
	fromStore,
	deduped int
	finished bool
	errMsg   string // campaign-level error, if any
}

// Status is a campaign status snapshot, as served by the API.
type Status struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	Created   time.Time `json:"created"`
	Total     int       `json:"total"`
	Done      int       `json:"done"`
	Executed  int       `json:"executed"`   // simulations run for this campaign
	FromStore int       `json:"from_store"` // points served from the persistent store
	Deduped   int       `json:"deduped"`    // points that joined another caller's in-flight sim
	Finished  bool      `json:"finished"`
	Error     string    `json:"error,omitempty"`
}

func (c *campaign) statusLocked() Status {
	return Status{
		ID:        c.id,
		Name:      c.name,
		Created:   c.created,
		Total:     len(c.points),
		Done:      len(c.recs),
		Executed:  c.executed,
		FromStore: c.fromStore,
		Deduped:   c.deduped,
		Finished:  c.finished,
		Error:     c.errMsg,
	}
}

func (c *campaign) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

// record appends one finished point's event and wakes SSE streams.
// Called serially by exp.Run's progress path.
func (c *campaign) record(o exp.Outcome) {
	c.mu.Lock()
	o.Cached = o.Cached || c.served[o.Index]
	rec := exp.Record{
		Index:   o.Index,
		Series:  o.Point.Series,
		X:       o.Point.X,
		Cached:  o.Cached,
		Seconds: o.Seconds,
		Config:  o.Point.Config,
	}
	if o.Err != nil {
		rec.Error = o.Err.Error()
	} else {
		res := o.Result
		rec.Result = &res
	}
	c.recs = append(c.recs, rec)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finish publishes the final outcomes and wakes everyone waiting.
func (c *campaign) finish(outs []exp.Outcome, err error) {
	c.mu.Lock()
	for i := range outs {
		outs[i].Cached = outs[i].Cached || c.served[i]
	}
	c.outs = outs
	c.finished = true
	if err != nil {
		c.errMsg = err.Error()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// waitFinished blocks until the campaign finished or ctx expired.
func (c *campaign) waitFinished(ctx context.Context) ([]exp.Outcome, bool) {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.finished {
		if ctx.Err() != nil {
			return nil, false
		}
		c.cond.Wait()
	}
	return c.outs, true
}

// campaignPool bounds each campaign executor's in-flight points. These
// goroutines only wait on the queue (the actual simulation concurrency
// is bounded by the local pullers plus whatever the fleet claims), so
// the pool is wide enough to keep a fleet of remote workers fed.
const campaignPool = 128

// start launches the campaign executor.
func (s *Server) start(c *campaign) {
	go func() {
		defer s.wg.Done()
		eopt := exp.Options{
			Workers:        campaignPool,
			CanonicalJSONL: true,
			Run: func(_ context.Context, i int, p exp.Point) (dragonfly.Result, error) {
				return s.runPoint(c, i, p)
			},
			Progress: func(pr exp.Progress) { c.record(pr.Outcome) },
		}
		var jsonl *os.File
		if s.jsonlDir != "" {
			f, err := os.Create(filepath.Join(s.jsonlDir, c.id+".jsonl"))
			if err != nil {
				s.logf("campaign %s: jsonl: %v", c.id, err)
			} else {
				jsonl = f
				eopt.JSONL = f
			}
		}
		outs, err := exp.Run(s.runCtx, exp.Campaign{Name: c.name, Points: c.points}, eopt)
		if jsonl != nil {
			if cerr := jsonl.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		c.finish(outs, err)
		st := c.status()
		s.logf("campaign %s (%s) finished: %d points, %d simulated, %d from store, %d deduped",
			c.id, c.name, st.Total, st.Executed, st.FromStore, st.Deduped)
	}()
}

// runPoint resolves one point: store lookup, in-flight dedup, then — if
// nobody else has or is computing it — one pass through the lease
// queue, where a local puller or a remote worker executes it, and the
// result persists to the store. The store lookup happens inside the
// flight so concurrent identical points cost one lookup and the
// hit/miss counters stay exact.
func (s *Server) runPoint(c *campaign, idx int, p exp.Point) (dragonfly.Result, error) {
	key := s.store.Key(p.Config)
	var ranSim bool
	res, leader, err := s.flights.Do(s.runCtx, key, func() (dragonfly.Result, error) {
		if res, ok := s.store.Get(key); ok {
			return res, nil
		}
		if s.draining.Load() {
			return dragonfly.Result{}, ErrDraining
		}
		tk, err := s.queue.Enqueue(key, p.Config)
		if err != nil { // drain raced the check above
			return dragonfly.Result{}, ErrDraining
		}
		select {
		case out := <-tk.Done:
			// A point drained out of the queue never started simulating;
			// everything else — success, sim error, quarantine — did.
			ranSim = !errors.Is(out.Err, ErrDraining)
			if out.Err != nil {
				return dragonfly.Result{}, out.Err
			}
			if perr := s.store.Put(key, p.Config, out.Result); perr != nil {
				// The result stands; a broken store surfaces in the log.
				s.logf("store put %s: %v", key[:12], perr)
			}
			return out.Result, nil
		case <-s.runCtx.Done():
			return dragonfly.Result{}, s.runCtx.Err()
		}
	})
	c.mu.Lock()
	switch {
	case leader && ranSim:
		c.executed++
	case err == nil:
		if leader {
			c.fromStore++
		} else {
			c.deduped++
		}
		c.served[idx] = true
	}
	c.mu.Unlock()
	return res, err
}

// submit registers and starts a campaign. Returns nil while draining.
func (s *Server) submit(name string, points []exp.Point) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil
	}
	s.nextID++
	c := &campaign{
		id:      fmt.Sprintf("c%04d", s.nextID),
		name:    name,
		created: time.Now().UTC(),
		points:  points,
		served:  make([]bool, len(points)),
	}
	c.cond = sync.NewCond(&c.mu)
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.wg.Add(1) // inside s.mu: pairs with the barrier in Drain
	s.start(c)
	return c
}

func (s *Server) campaign(id string) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/results.jsonl", s.handleResultsJSONL)
	mux.HandleFunc("POST /api/v1/leases", s.handleClaim)
	mux.HandleFunc("POST /api/v1/leases/{id}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/leases/{id}/results", s.handleLeaseResults)
	mux.HandleFunc("GET /api/v1/store", s.handleStore)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /campaigns/{id}", s.handleCampaignPage)
	return mux
}

// Wire types. exp.Point carries no JSON tags, so the API defines its
// own lower-case layout, matching Record's field names.

type wirePoint struct {
	Series string           `json:"series"`
	X      float64          `json:"x"`
	Config dragonfly.Config `json:"config"`
}

type submitRequest struct {
	Name   string      `json:"name"`
	Points []wirePoint `json:"points"`
}

type submitResponse struct {
	ID    string `json:"id"`
	Total int    `json:"total"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode campaign: %v", err)
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "campaign has no points")
		return
	}
	points := make([]exp.Point, len(req.Points))
	for i, wp := range req.Points {
		if err := wp.Config.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
		points[i] = exp.Point{Series: wp.Series, X: wp.X, Config: wp.Config}
	}
	c := s.submit(req.Name, points)
	if c == nil {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.logf("campaign %s (%s): accepted, %d points", c.id, c.name, len(points))
	writeJSON(w, http.StatusCreated, submitResponse{ID: c.id, Total: len(points)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.campaigns[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	writeJSON(w, http.StatusOK, c.status())
}

// handleEvents streams SSE: every already-recorded point is replayed
// first (so reconnecting clients can resume idempotently by index),
// then live events, then one "done" event carrying the final status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()

	// Bound every event write so a wedged subscriber (accepted the TCP
	// connection, never reads) detaches promptly instead of pinning this
	// handler — and the campaign's broadcast fan-out — forever.
	rc := http.NewResponseController(w)
	emit := func(event string, v any) error {
		rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout)) //nolint:errcheck // unsupported transport: fall back to unbounded writes
		if err := writeEvent(w, event, v); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}

	next := 0
	c.mu.Lock()
	for {
		for next < len(c.recs) {
			rec := c.recs[next]
			next++
			c.mu.Unlock()
			if err := emit("point", rec); err != nil {
				return
			}
			c.mu.Lock()
		}
		if c.finished {
			break
		}
		if ctx.Err() != nil {
			c.mu.Unlock()
			return
		}
		c.cond.Wait()
	}
	st := c.statusLocked()
	c.mu.Unlock()
	emit("done", st) //nolint:errcheck // stream is ending either way
}

func writeEvent(w io.Writer, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	outs, ok := c.waitFinished(r.Context())
	if !ok {
		return // client went away
	}
	recs := make([]exp.Record, 0, len(outs))
	for i := range outs {
		o := &outs[i]
		rec := exp.Record{
			Index:   o.Index,
			Series:  o.Point.Series,
			X:       o.Point.X,
			Cached:  o.Cached,
			Seconds: o.Seconds,
			Config:  o.Point.Config,
		}
		if o.Err != nil {
			rec.Error = o.Err.Error()
		} else {
			rec.Result = &o.Result
		}
		recs = append(recs, rec)
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) handleResultsJSONL(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(r.PathValue("id"))
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	outs, ok := c.waitFinished(r.Context())
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for i := range outs {
		if err := exp.WriteCanonicalRecord(w, &outs[i]); err != nil {
			return
		}
	}
}

// storeResponse is GET /api/v1/store's payload: the store counters
// (inline, for pre-fleet clients) plus the fleet snapshot.
type storeResponse struct {
	exp.StoreStats
	Fleet queue.FleetStats `json:"fleet"`
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, storeResponse{
		StoreStats: s.store.Stats(),
		Fleet:      s.queue.Stats(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n") //nolint:errcheck
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck
}
