package srv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dragonfly "repro"
	"repro/internal/exp"
)

// Worker is the puller side of the fleet protocol: it claims leases
// from a coordinator (POST /api/v1/leases), executes the points through
// the deterministic engine with an optional local result store, streams
// each outcome back as it finishes, and heartbeats every held lease.
// Per-point seeding happens before campaign submission, so results are
// byte-identical no matter which worker — or the coordinator itself —
// runs a point.
//
// The worker is built to outlive the coordinator: claim failures
// (unreachable, restarting, draining 503) back off with jitter and
// rejoin; a 410 on heartbeat or submit means the lease is gone (the
// work was requeued or finished elsewhere), so the worker drops the
// lease's remaining points and claims afresh. Run only returns when its
// context is canceled.
type Worker struct {
	base  string
	name  string
	store *exp.Store
	sims  int
	batch int
	poll  time.Duration
	log   *log.Logger
	hc    *http.Client

	executed atomic.Int64 // simulations actually run (store hits excluded)

	// runSim executes one simulation; tests stub it to inject crashes
	// and stalls.
	runSim func(ctx context.Context, cfg dragonfly.Config) (dragonfly.Result, error)
}

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Name identifies this worker in leases and fleet stats (required).
	// Distinct workers must use distinct names: the poison-point
	// quarantine counts distinct crashed workers by name.
	Name string
	// Store, when non-nil, is the worker's local result store: leased
	// points are served from it without re-simulating, and fresh results
	// persist to it.
	Store *exp.Store
	// Sims bounds concurrently executing simulations (default
	// GOMAXPROCS). Each slot runs its own claim-execute loop.
	Sims int
	// Batch is the maximum points claimed per lease (default 4).
	Batch int
	// Poll is the long-poll wait for an idle claim (default 15s; the
	// coordinator caps it at 30s).
	Poll time.Duration
	// Log, when non-nil, receives operational log lines.
	Log *log.Logger
}

// NewWorker creates a Worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("srv: WorkerConfig.Coordinator is required")
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("srv: WorkerConfig.Name is required")
	}
	w := &Worker{
		base:  strings.TrimRight(cfg.Coordinator, "/"),
		name:  cfg.Name,
		store: cfg.Store,
		sims:  cfg.Sims,
		batch: cfg.Batch,
		poll:  cfg.Poll,
		log:   cfg.Log,
		hc:    &http.Client{},
		runSim: func(ctx context.Context, cfg dragonfly.Config) (dragonfly.Result, error) {
			return dragonfly.RunContext(ctx, cfg)
		},
	}
	if w.sims <= 0 {
		w.sims = runtime.GOMAXPROCS(0)
	}
	if w.batch <= 0 {
		w.batch = 4
	}
	if w.poll <= 0 {
		w.poll = 15 * time.Second
	}
	return w, nil
}

// Executed reports how many simulations this worker has run (local
// store hits excluded).
func (wk *Worker) Executed() int64 { return wk.executed.Load() }

func (wk *Worker) logf(format string, args ...any) {
	if wk.log != nil {
		wk.log.Printf(format, args...)
	}
}

// Run claims and executes leases until ctx is canceled; it never
// returns early on coordinator failure.
func (wk *Worker) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < wk.sims; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk.pull(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// pull is one claim-execute loop.
func (wk *Worker) pull(ctx context.Context) {
	fails := 0
	for ctx.Err() == nil {
		var grant LeaseGrant
		_, err := wk.post(ctx, "/api/v1/leases",
			claimRequest{Worker: wk.name, Max: wk.batch, WaitMS: int(wk.poll / time.Millisecond)},
			&grant)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Coordinator unreachable, restarting, or draining: back off
			// and rejoin. The delay is jittered so a fleet does not
			// stampede a coordinator that just came back.
			fails++
			wk.logf("claim failed (attempt %d): %v", fails, err)
			if !sleepCtx(ctx, backoffDelay(fails-1, retryBackoff, retryCap)) {
				return
			}
			continue
		}
		fails = 0
		if grant.ID == "" {
			continue // long poll found no work; ask again
		}
		wk.execute(ctx, grant)
	}
}

// execute runs one lease's points, submitting each outcome as it
// finishes. A lost lease (410 anywhere) abandons the rest: the
// coordinator has already requeued them.
func (wk *Worker) execute(ctx context.Context, g LeaseGrant) {
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go wk.heartbeat(lctx, cancel, g)

	for _, p := range g.Points {
		if lctx.Err() != nil {
			return
		}
		tr := TaskResult{Task: p.Task}
		key := wk.key(p.Config)
		if res, ok := wk.storeGet(key); ok {
			tr.Result = &res
		} else {
			res, err := wk.runSim(lctx, p.Config)
			if lctx.Err() != nil {
				return // lease lost or shutting down mid-sim: report nothing
			}
			if err != nil {
				tr.Error = err.Error()
			} else {
				wk.executed.Add(1)
				wk.storePut(key, p.Config, res)
				tr.Result = &res
			}
		}
		if !wk.submit(lctx, g.ID, tr) {
			return
		}
	}
}

// heartbeat extends the lease at a third of its lifetime until the
// lease context ends; a 410 means the lease expired (the coordinator
// requeued the work), so execution is canceled.
func (wk *Worker) heartbeat(ctx context.Context, cancel context.CancelFunc, g LeaseGrant) {
	iv := time.Duration(g.LeaseSeconds * float64(time.Second) / 3)
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			status, err := wk.post(ctx, "/api/v1/leases/"+g.ID+"/heartbeat", struct{}{}, nil)
			if status == http.StatusGone {
				wk.logf("lease %s: expired under us, abandoning", g.ID)
				cancel()
				return
			}
			if err != nil && ctx.Err() == nil {
				// Transient: the next tick retries; if the coordinator is
				// really gone the lease expires and the work requeues.
				wk.logf("lease %s: heartbeat: %v", g.ID, err)
			}
		}
	}
}

// submit streams one outcome back, retrying transient failures while
// the lease is alive. False means the lease is finished: gone (410,
// work requeued or done elsewhere) or the coordinator rejected or kept
// refusing the submission — in every case the right move is to stop
// this lease and claim a new one.
func (wk *Worker) submit(ctx context.Context, leaseID string, tr TaskResult) bool {
	for attempt := 0; ; attempt++ {
		status, err := wk.post(ctx, "/api/v1/leases/"+leaseID+"/results",
			resultsRequest{Results: []TaskResult{tr}}, nil)
		switch {
		case err == nil:
			return true
		case status == http.StatusGone:
			wk.logf("lease %s: gone, result for %s discarded", leaseID, tr.Task)
			return false
		case status != 0: // other HTTP error: not transient
			wk.logf("lease %s: submit %s rejected: %v", leaseID, tr.Task, err)
			return false
		}
		if attempt+1 >= retryAttempts {
			wk.logf("lease %s: giving up submitting %s: %v", leaseID, tr.Task, err)
			return false // lease expires, work requeues
		}
		if !sleepCtx(ctx, backoffDelay(attempt, retryBackoff, retryCap)) {
			return false
		}
	}
}

// post performs one JSON POST. The returned status is non-zero whenever
// an HTTP response arrived, so callers can branch on 410 vs transport
// failure.
func (wk *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("srv: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("srv: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := wk.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("srv: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return resp.StatusCode, fmt.Errorf("srv: POST %s: %s: %s", path, resp.Status, errBody(resp.Body))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("srv: decode %s response: %w", path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	}
	return resp.StatusCode, nil
}

// key computes the point's store key locally — the same content hash
// the coordinator uses, but never trusted off the wire.
func (wk *Worker) key(cfg dragonfly.Config) string {
	if wk.store == nil {
		return ""
	}
	return wk.store.Key(cfg)
}

func (wk *Worker) storeGet(key string) (dragonfly.Result, bool) {
	if wk.store == nil || key == "" {
		return dragonfly.Result{}, false
	}
	return wk.store.Get(key)
}

func (wk *Worker) storePut(key string, cfg dragonfly.Config, res dragonfly.Result) {
	if wk.store == nil || key == "" {
		return
	}
	if err := wk.store.Put(key, cfg, res); err != nil {
		wk.logf("store put %s: %v", key[:12], err)
	}
}
