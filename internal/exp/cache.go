package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	dragonfly "repro"
	"repro/internal/engine"
)

// Cache is a content-addressed store of simulation results on disk: one
// JSON file per point, named by the SHA-256 of the canonicalized
// configuration and the engine's results version. Because the engine is
// deterministic, the canonical config fully determines the result, so a
// hit is always safe to reuse — across campaign runs, across tools, and
// across worker counts (Config.Canonical clears Workers). Bumping
// engine.ResultsVersion invalidates every entry at once.
//
// Entries are written atomically (temp file + rename), so concurrent
// campaigns sharing a directory at worst duplicate work, never corrupt
// entries; unreadable or stale-format entries count as misses and are
// overwritten.
type Cache struct {
	dir          string
	hits, misses atomic.Int64
}

// cacheFormat versions the entry file layout itself (not the simulation
// semantics — that is engine.ResultsVersion's job).
const cacheFormat = 1

// entry is the on-disk layout. Config is stored canonicalized, purely for
// human inspection of a cache directory; only Result is read back.
type entry struct {
	Format        int              `json:"format"`
	EngineVersion int              `json:"engine_version"`
	Config        dragonfly.Config `json:"config"`
	Result        dragonfly.Result `json:"result"`
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Key returns the content address of a configuration: the hex SHA-256 of
// its canonical JSON together with the engine results version.
func (c *Cache) Key(cfg dragonfly.Config) string {
	canon, err := json.Marshal(cfg.Canonical())
	if err != nil {
		// Config is a flat struct of scalars; Marshal cannot fail on it.
		panic(fmt.Sprintf("exp: marshal config: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "dragonfly-exp-cache/%d engine/%d\n", cacheFormat, engine.ResultsVersion)
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get looks a key up, counting the hit or miss.
func (c *Cache) Get(key string) (dragonfly.Result, bool) {
	buf, err := os.ReadFile(c.path(key))
	if err == nil {
		var e entry
		if json.Unmarshal(buf, &e) == nil &&
			e.Format == cacheFormat && e.EngineVersion == engine.ResultsVersion {
			c.hits.Add(1)
			return e.Result, true
		}
	}
	c.misses.Add(1)
	return dragonfly.Result{}, false
}

// Put stores a result under key, atomically.
func (c *Cache) Put(key string, cfg dragonfly.Config, res dragonfly.Result) error {
	buf, err := json.MarshalIndent(entry{
		Format:        cacheFormat,
		EngineVersion: engine.ResultsVersion,
		Config:        cfg.Canonical(),
		Result:        res,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("exp: encode cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("exp: write cache entry: %w", err)
	}
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: write cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: write cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: write cache entry: %w", err)
	}
	return nil
}

// Stats reports the lookups served from the cache and the lookups that
// missed since the Cache was opened.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Size reports the on-disk size in bytes of an entry, or 0 if it does
// not exist.
func (c *Cache) Size(key string) int64 {
	fi, err := os.Stat(c.path(key))
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Remove deletes an entry. Removing a key that does not exist is not an
// error — a concurrent writer may have already replaced or dropped it.
func (c *Cache) Remove(key string) error {
	if err := os.Remove(c.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("exp: remove cache entry: %w", err)
	}
	return nil
}

// CacheEntry describes one on-disk entry, for directory scans.
type CacheEntry struct {
	Key     string
	Size    int64
	ModTime time.Time
}

// Entries lists the entries currently in the cache directory, skipping
// in-progress temp files and anything that is not a cache entry.
func (c *Cache) Entries() ([]CacheEntry, error) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("exp: scan cache: %w", err)
	}
	var out []CacheEntry
	for _, de := range des {
		name := de.Name()
		key, ok := strings.CutSuffix(name, ".json")
		if !ok || de.IsDir() || strings.Contains(key, ".") {
			continue // temp file ("<key>.tmp*") or foreign file
		}
		fi, err := de.Info()
		if err != nil {
			continue // raced with a concurrent Remove
		}
		out = append(out, CacheEntry{Key: key, Size: fi.Size(), ModTime: fi.ModTime()})
	}
	return out, nil
}
