// Package exp is the experiment orchestrator: it executes a declarative
// campaign — an ordered list of dragonfly.Config points produced by
// composable matrix builders — on a bounded worker pool with deterministic
// per-point seeding, structured progress reporting, streaming JSONL result
// output, cooperative cancellation and an optional content-addressed
// result cache keyed on the canonical configuration and the engine's
// results version, so re-runs and resumed campaigns skip completed points.
//
// Each point is an independent, deterministic simulation, so campaign
// results are bit-identical for any pool size; the across-point
// parallelism here composes with the engine's intra-simulation workers and
// is the better use of cores for the common small-h points.
//
//	points := exp.NewMatrix(base).
//		Mechanisms(dragonfly.RLM, dragonfly.OLM).
//		Loads(0.1, 0.5, 0.9).
//		Points()
//	outs, err := exp.Run(ctx, exp.Campaign{Name: "fig5", Points: points},
//		exp.Options{Workers: 8, Cache: cache, JSONL: w})
package exp

import (
	"errors"
	"fmt"

	dragonfly "repro"
)

// Point is one experiment of a campaign: a full simulation configuration
// plus its place in a figure (points sharing a Series name form one curve,
// X is the point's x-axis value).
type Point struct {
	Series string
	X      float64
	Config dragonfly.Config
}

// Campaign is an ordered list of points. The order is the order outcomes
// are returned in; execution order is whatever the pool gets to first.
type Campaign struct {
	Name   string
	Points []Point
}

// Outcome is the orchestrator's verdict on one point. Per-point simulation
// failures land in Err (never in Run's campaign-level error), so one bad
// point cannot hide the rest of a figure.
type Outcome struct {
	Index  int
	Point  Point
	Result dragonfly.Result
	// Cached reports the result came from the cache; no simulation ran.
	Cached bool
	// Seconds is the wall-clock time spent producing the result
	// (zero-ish for cache hits).
	Seconds float64
	Err     error
}

// label names an outcome's point for error and progress messages.
func (o *Outcome) label() string {
	return fmt.Sprintf("point %d (%s x=%g)", o.Index, o.Point.Series, o.Point.X)
}

// PointErrors joins every per-point failure of a campaign into one error,
// or returns nil if all points succeeded. CLIs use it to surface point
// failures uniformly and exit non-zero after reporting what did complete.
func PointErrors(outs []Outcome) error {
	var errs []error
	for i := range outs {
		if outs[i].Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", outs[i].label(), outs[i].Err))
		}
	}
	return errors.Join(errs...)
}
