// Package queue is the coordinator side of dragonsrv's distributed
// worker fleet: an in-memory, lease-based point queue designed so that
// any worker can die at any moment and the campaign still completes.
//
// Enqueued points are handed out in batches under leases — claims with a
// deadline that the holder must extend by heartbeating. A lease whose
// deadline passes (worker crashed, hung, or partitioned) has its
// unfinished points requeued automatically with capped exponential
// backoff plus jitter; a late result submitted under an expired lease is
// discarded idempotently (the engine is deterministic, so whichever
// execution lands first is the execution). A point whose lease expires
// under enough distinct workers — or too many times overall — is
// quarantined: it completes with ErrPoison instead of wedging the
// campaign in an eternal retry loop.
//
// The queue holds no durable state. Crash-safety of the fleet comes from
// the composition with exp.Store (finished points persist on disk, so a
// coordinator restart re-enqueues only unfinished work) and from
// deterministic per-point seeding (re-execution is byte-identical, so
// at-least-once delivery is safe by construction).
package queue

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	dragonfly "repro"
)

// ErrLeaseExpired is returned for operations on a lease the queue no
// longer holds: it expired and its points were requeued, or it never
// existed (a coordinator restart forgets all leases). Results submitted
// under such a lease are discarded.
var ErrLeaseExpired = errors.New("queue: lease expired or unknown")

// ErrPoison is wrapped into the outcome of a quarantined point — one
// whose lease expired under PoisonWorkers distinct workers (or
// MaxAttempts times overall). It surfaces through the campaign's
// ordinary per-point error path.
var ErrPoison = errors.New("queue: point quarantined")

// errDraining is delivered to pending points when the queue drains; the
// caller supplies its own cause via Drain, this is only the fallback.
var errDraining = errors.New("queue: draining")

// Config tunes a Queue. The zero value gets production defaults.
type Config struct {
	// Lease is how long a claim lives without a heartbeat (default 30s).
	Lease time.Duration
	// Tick is the expiry/backoff scan period (default Lease/4, clamped
	// to [5ms, 500ms]).
	Tick time.Duration
	// PoisonWorkers quarantines a point once its lease has expired under
	// this many distinct workers (default 3).
	PoisonWorkers int
	// MaxAttempts quarantines a point once it has been requeued this
	// many times regardless of worker identity, so a lone crashing
	// worker cannot retry forever (default 6).
	MaxAttempts int
	// BackoffBase is the first requeue delay; attempt n waits
	// min(BackoffBase<<(n-1), BackoffMax), jittered to [d/2, d]
	// (defaults 200ms and 15s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = 30 * time.Second
	}
	if c.Tick <= 0 {
		c.Tick = c.Lease / 4
		if c.Tick < 5*time.Millisecond {
			c.Tick = 5 * time.Millisecond
		}
		if c.Tick > 500*time.Millisecond {
			c.Tick = 500 * time.Millisecond
		}
	}
	if c.PoisonWorkers <= 0 {
		c.PoisonWorkers = 3
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 200 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 15 * time.Second
	}
	return c
}

// Outcome is what a point's execution produced, delivered to the
// enqueuer's ticket exactly once.
type Outcome struct {
	Result dragonfly.Result
	Err    error
}

// Ticket is the enqueuer's handle on a point: Done receives the outcome
// exactly once (the channel is buffered, so the queue never blocks on a
// departed waiter).
type Ticket struct {
	ID   string
	Done <-chan Outcome
}

// Task is one claimable point as handed to a worker.
type Task struct {
	ID      string
	Key     string // content address, for logs and worker-side stores
	Attempt int    // 1 for the first execution
	Config  dragonfly.Config
}

// Lease is a claim on a batch of tasks. Remote leases expire unless
// heartbeated; local leases (the coordinator's own sim workers) live as
// long as the process, since their holder cannot outlive the queue.
type Lease struct {
	ID       string
	Worker   string
	Deadline time.Time // zero for local leases
	Tasks    []Task
}

type taskState int

const (
	statePending taskState = iota
	stateLeased
	stateDone
)

type task struct {
	id      string
	key     string
	cfg     dragonfly.Config
	done    chan Outcome
	state   taskState
	readyAt time.Time
	attempt int             // executions started (including the current one)
	crashed map[string]bool // distinct workers whose lease expired holding it
}

type lease struct {
	id       string
	worker   string
	local    bool
	deadline time.Time
	pending  map[string]*task
	finished map[string]bool
}

type workerState struct {
	lastSeen  time.Time
	completed int64
	crashes   int64
}

// Queue is the lease-based point queue. Create with New, stop with
// Close. All methods are safe for concurrent use.
type Queue struct {
	cfg Config

	mu        sync.Mutex
	pending   []*task // FIFO; entries may carry a future readyAt (backoff)
	byID      map[string]*task
	leases    map[string]*lease
	workers   map[string]*workerState
	nextTask  int
	nextLease int
	draining  bool
	drainErr  error
	wake      chan struct{} // closed-and-replaced broadcast

	// counters
	completed, failed     int64
	requeues, expired     int64
	quarantined, lateDrop int64

	stop     chan struct{}
	stopOnce sync.Once
}

// New creates a Queue and starts its expiry/backoff scanner.
func New(cfg Config) *Queue {
	q := &Queue{
		cfg:     cfg.withDefaults(),
		byID:    make(map[string]*task),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerState),
		wake:    make(chan struct{}),
		stop:    make(chan struct{}),
	}
	go q.scan()
	return q
}

// Close stops the scanner. Pending tickets are not completed; Close is
// for process shutdown, after Drain (or instead of it, on abort).
func (q *Queue) Close() {
	q.stopOnce.Do(func() { close(q.stop) })
}

// scan periodically expires overdue leases and wakes claim waiters so
// backoff-delayed points get picked up.
func (q *Queue) scan() {
	t := time.NewTicker(q.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-q.stop:
			return
		case <-t.C:
			q.mu.Lock()
			q.expireLocked(time.Now())
			q.broadcastLocked()
			q.mu.Unlock()
		}
	}
}

func (q *Queue) broadcastLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// Enqueue adds a point and returns the ticket its outcome will arrive
// on. Fails once the queue is draining.
func (q *Queue) Enqueue(key string, cfg dragonfly.Config) (*Ticket, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return nil, q.drainErrLocked()
	}
	q.nextTask++
	t := &task{
		id:   fmt.Sprintf("t%04d", q.nextTask),
		key:  key,
		cfg:  cfg,
		done: make(chan Outcome, 1),
	}
	q.byID[t.id] = t
	q.pending = append(q.pending, t)
	q.broadcastLocked()
	return &Ticket{ID: t.id, Done: t.done}, nil
}

func (q *Queue) drainErrLocked() error {
	if q.drainErr != nil {
		return q.drainErr
	}
	return errDraining
}

// Claim hands out up to max ready points under a new lease. A nil lease
// with a nil error means no work is ready right now (poll or use
// WaitClaim). Draining queues refuse claims with the drain cause.
func (q *Queue) Claim(worker string, max int, local bool) (*Lease, error) {
	if max <= 0 {
		max = 1
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return nil, q.drainErrLocked()
	}
	q.touchLocked(worker, now)
	var picked []*task
	rest := q.pending[:0]
	for _, t := range q.pending {
		if len(picked) < max && !t.readyAt.After(now) {
			picked = append(picked, t)
		} else {
			rest = append(rest, t)
		}
	}
	for i := len(rest); i < len(q.pending); i++ {
		q.pending[i] = nil
	}
	q.pending = rest
	if len(picked) == 0 {
		return nil, nil
	}
	q.nextLease++
	l := &lease{
		id:       fmt.Sprintf("l%04d", q.nextLease),
		worker:   worker,
		local:    local,
		pending:  make(map[string]*task, len(picked)),
		finished: make(map[string]bool),
	}
	if !local {
		l.deadline = now.Add(q.cfg.Lease)
	}
	out := &Lease{ID: l.id, Worker: worker, Deadline: l.deadline}
	for _, t := range picked {
		t.state = stateLeased
		t.attempt++
		l.pending[t.id] = t
		out.Tasks = append(out.Tasks, Task{ID: t.id, Key: t.key, Attempt: t.attempt, Config: t.cfg})
	}
	q.leases[l.id] = l
	return out, nil
}

// WaitClaim is Claim with patience: when no work is ready it blocks
// until some arrives, maxWait passes (returning a nil lease), or ctx is
// done. Draining still fails fast. Wakeups come from enqueues, requeue
// scans, and drains; backoff-delayed points become claimable within one
// scan tick of their delay elapsing.
func (q *Queue) WaitClaim(ctx context.Context, worker string, max int, maxWait time.Duration, local bool) (*Lease, error) {
	timeout := time.NewTimer(maxWait)
	defer timeout.Stop()
	for {
		// Capture the wake channel before claiming: an enqueue that lands
		// after an empty claim closes this very channel, so it cannot be
		// missed.
		q.mu.Lock()
		wake := q.wake
		q.mu.Unlock()
		l, err := q.Claim(worker, max, local)
		if err != nil || l != nil {
			return l, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timeout.C:
			return nil, nil
		case <-wake:
		}
	}
}

// touchLocked refreshes a worker's liveness record.
func (q *Queue) touchLocked(worker string, now time.Time) {
	ws := q.workers[worker]
	if ws == nil {
		ws = &workerState{}
		q.workers[worker] = ws
	}
	ws.lastSeen = now
}

// Heartbeat extends a lease's deadline by the configured lease duration
// and returns the new deadline. Local leases have no deadline to extend.
func (q *Queue) Heartbeat(leaseID string) (time.Time, error) {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	l := q.leases[leaseID]
	if l == nil {
		return time.Time{}, ErrLeaseExpired
	}
	q.touchLocked(l.worker, now)
	if !l.local {
		l.deadline = now.Add(q.cfg.Lease)
	}
	return l.deadline, nil
}

// Complete submits one task's outcome under a lease. accepted reports
// whether the outcome was delivered; a duplicate submission for a task
// this lease already finished is a no-op (false, nil). Submissions under
// an expired or unknown lease are discarded with ErrLeaseExpired — the
// zombie-worker case.
func (q *Queue) Complete(leaseID, taskID string, out Outcome) (accepted bool, err error) {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	l := q.leases[leaseID]
	if l == nil {
		q.lateDrop++
		return false, ErrLeaseExpired
	}
	q.touchLocked(l.worker, now)
	if l.finished[taskID] {
		return false, nil
	}
	t := l.pending[taskID]
	if t == nil {
		return false, fmt.Errorf("queue: task %s is not part of lease %s", taskID, leaseID)
	}
	delete(l.pending, taskID)
	l.finished[taskID] = true
	if len(l.pending) == 0 {
		delete(q.leases, leaseID)
	}
	q.workers[l.worker].completed++
	q.deliverLocked(t, out)
	return true, nil
}

// deliverLocked finishes a task exactly once.
func (q *Queue) deliverLocked(t *task, out Outcome) {
	if t.state == stateDone {
		return
	}
	t.state = stateDone
	delete(q.byID, t.id)
	if out.Err != nil {
		q.failed++
	} else {
		q.completed++
	}
	t.done <- out
}

// expireLocked requeues (or quarantines) the points of every overdue
// lease and records the crash against the worker that held it.
func (q *Queue) expireLocked(now time.Time) {
	for id, l := range q.leases {
		if l.local || l.deadline.After(now) {
			continue
		}
		delete(q.leases, id)
		if len(l.pending) == 0 {
			continue // idle lease aged out; nothing was lost
		}
		q.expired++
		q.workers[l.worker].crashes++
		for _, t := range l.pending {
			if t.crashed == nil {
				t.crashed = make(map[string]bool)
			}
			t.crashed[l.worker] = true
			q.requeues++
			switch {
			case q.draining:
				q.deliverLocked(t, Outcome{Err: q.drainErrLocked()})
			case len(t.crashed) >= q.cfg.PoisonWorkers || t.attempt >= q.cfg.MaxAttempts:
				q.quarantined++
				q.deliverLocked(t, Outcome{Err: fmt.Errorf(
					"%w: crashed %d distinct worker(s) over %d attempt(s): %s",
					ErrPoison, len(t.crashed), t.attempt, crashers(t.crashed))})
			default:
				t.state = statePending
				t.readyAt = now.Add(q.backoff(t.attempt))
				q.pending = append(q.pending, t)
			}
		}
	}
}

// crashers lists the workers a poison point took down, sorted.
func crashers(m map[string]bool) string {
	names := make([]string, 0, len(m))
	for w := range m {
		names = append(names, w)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// backoff computes the jittered requeue delay after attempt executions.
func (q *Queue) backoff(attempt int) time.Duration {
	d := q.cfg.BackoffBase
	for i := 1; i < attempt && d < q.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > q.cfg.BackoffMax {
		d = q.cfg.BackoffMax
	}
	// Jitter into [d/2, d] so a fleet's requeues do not thunder back in
	// lockstep.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Drain refuses new enqueues and claims, and fails every point that is
// not currently leased with cause. Leased points stay collectable:
// their workers can still heartbeat and submit results; if their lease
// expires instead, they fail with cause rather than requeue.
func (q *Queue) Drain(cause error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.draining = true
	q.drainErr = cause
	for _, t := range q.pending {
		q.deliverLocked(t, Outcome{Err: q.drainErrLocked()})
	}
	q.pending = nil
	q.broadcastLocked()
}

// WorkerStats is one worker's health as the fleet sees it.
type WorkerStats struct {
	Name string `json:"name"`
	// HeartbeatAgeSeconds is the time since the worker last claimed,
	// heartbeated, or submitted.
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds"`
	ActiveLeases        int     `json:"active_leases"`
	ActivePoints        int     `json:"active_points"`
	Completed           int64   `json:"completed"`
	// Crashes counts leases that expired while this worker held them.
	Crashes int64 `json:"crashes"`
}

// FleetStats is a snapshot of the queue, for the observability API.
type FleetStats struct {
	QueuedPoints int           `json:"queued_points"`
	LeasedPoints int           `json:"leased_points"`
	ActiveLeases int           `json:"active_leases"`
	Workers      []WorkerStats `json:"workers,omitempty"`
	Completed    int64         `json:"completed"`
	Failed       int64         `json:"failed"`
	Requeues     int64         `json:"requeues"`
	// ExpiredLeases counts leases that died with work outstanding.
	ExpiredLeases int64 `json:"expired_leases"`
	Quarantined   int64 `json:"quarantined"`
	// LateDiscarded counts result submissions under expired leases —
	// zombie workers whose work was already requeued.
	LateDiscarded int64 `json:"late_discarded"`
}

// Stats snapshots the queue.
func (q *Queue) Stats() FleetStats {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	st := FleetStats{
		QueuedPoints:  len(q.pending),
		ActiveLeases:  len(q.leases),
		Completed:     q.completed,
		Failed:        q.failed,
		Requeues:      q.requeues,
		ExpiredLeases: q.expired,
		Quarantined:   q.quarantined,
		LateDiscarded: q.lateDrop,
	}
	perWorker := make(map[string]*WorkerStats, len(q.workers))
	for name, ws := range q.workers {
		perWorker[name] = &WorkerStats{
			Name:                name,
			HeartbeatAgeSeconds: now.Sub(ws.lastSeen).Seconds(),
			Completed:           ws.completed,
			Crashes:             ws.crashes,
		}
	}
	for _, l := range q.leases {
		st.LeasedPoints += len(l.pending)
		if w := perWorker[l.worker]; w != nil {
			w.ActiveLeases++
			w.ActivePoints += len(l.pending)
		}
	}
	names := make([]string, 0, len(perWorker))
	for name := range perWorker {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.Workers = append(st.Workers, *perWorker[name])
	}
	return st
}
