package queue

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	dragonfly "repro"
)

// fastConfig is a queue tuned so that expiry and backoff are observable
// within milliseconds.
func fastConfig() Config {
	return Config{
		Lease:         80 * time.Millisecond,
		Tick:          10 * time.Millisecond,
		PoisonWorkers: 2,
		MaxAttempts:   4,
		BackoffBase:   5 * time.Millisecond,
		BackoffMax:    20 * time.Millisecond,
	}
}

func newTestQueue(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q := New(cfg)
	t.Cleanup(q.Close)
	return q
}

func cfgN(n int) dragonfly.Config {
	c := dragonfly.PaperVCT(2)
	c.Seed = uint64(n + 1)
	return c
}

func enqueueN(t *testing.T, q *Queue, n int) []*Ticket {
	t.Helper()
	tks := make([]*Ticket, n)
	for i := range tks {
		tk, err := q.Enqueue(fmt.Sprintf("key%d", i), cfgN(i))
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		tks[i] = tk
	}
	return tks
}

// waitOutcome receives a ticket's outcome with a test deadline.
func waitOutcome(t *testing.T, tk *Ticket) Outcome {
	t.Helper()
	select {
	case out := <-tk.Done:
		return out
	case <-time.After(5 * time.Second):
		t.Fatalf("ticket %s: no outcome within 5s", tk.ID)
		return Outcome{}
	}
}

// claimAll drains the ready queue into one worker's lease, waiting out
// backoff delays.
func claimAll(t *testing.T, q *Queue, worker string, max int) *Lease {
	t.Helper()
	l, err := q.WaitClaim(context.Background(), worker, max, 5*time.Second, false)
	if err != nil {
		t.Fatalf("claim %s: %v", worker, err)
	}
	if l == nil {
		t.Fatalf("claim %s: no work within 5s", worker)
	}
	return l
}

func TestClaimFIFOAndBatching(t *testing.T) {
	q := newTestQueue(t, fastConfig())
	tks := enqueueN(t, q, 5)

	l1, err := q.Claim("w1", 3, false)
	if err != nil || l1 == nil {
		t.Fatalf("claim: %v %v", l1, err)
	}
	if len(l1.Tasks) != 3 {
		t.Fatalf("claimed %d tasks, want 3", len(l1.Tasks))
	}
	for i, task := range l1.Tasks {
		if task.ID != tks[i].ID {
			t.Fatalf("task %d: got %s, want FIFO order %s", i, task.ID, tks[i].ID)
		}
		if task.Attempt != 1 {
			t.Fatalf("task %d: attempt %d, want 1", i, task.Attempt)
		}
	}
	l2, err := q.Claim("w2", 10, false)
	if err != nil || l2 == nil || len(l2.Tasks) != 2 {
		t.Fatalf("second claim: %+v %v", l2, err)
	}
	if l3, _ := q.Claim("w3", 1, false); l3 != nil {
		t.Fatalf("empty queue handed out %+v", l3)
	}
	if d := time.Until(l1.Deadline); d <= 0 || d > fastConfig().Lease {
		t.Fatalf("lease deadline %v out of range", d)
	}
}

func TestCompleteDeliversAndDupIsNoop(t *testing.T) {
	q := newTestQueue(t, fastConfig())
	tks := enqueueN(t, q, 1)
	l := claimAll(t, q, "w1", 1)

	want := dragonfly.Result{Delivered: 42}
	acc, err := q.Complete(l.ID, l.Tasks[0].ID, Outcome{Result: want})
	if err != nil || !acc {
		t.Fatalf("complete: accepted=%v err=%v", acc, err)
	}
	if out := waitOutcome(t, tks[0]); out.Err != nil || out.Result.Delivered != 42 {
		t.Fatalf("outcome: %+v", out)
	}
	// Lease retired with its last task; a duplicate submission is
	// discarded as expired, never redelivered.
	if acc, err := q.Complete(l.ID, l.Tasks[0].ID, Outcome{Result: want}); acc || !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("dup complete after lease retired: accepted=%v err=%v", acc, err)
	}
	if st := q.Stats(); st.Completed != 1 || st.LateDiscarded != 1 {
		t.Fatalf("stats after dup: %+v", st)
	}
}

func TestDupWithinLiveLeaseIsIdempotent(t *testing.T) {
	q := newTestQueue(t, fastConfig())
	enqueueN(t, q, 2)
	l := claimAll(t, q, "w1", 2) // 2 tasks keep the lease alive after the first completes
	if acc, err := q.Complete(l.ID, l.Tasks[0].ID, Outcome{}); err != nil || !acc {
		t.Fatalf("first complete: %v %v", acc, err)
	}
	if acc, err := q.Complete(l.ID, l.Tasks[0].ID, Outcome{}); err != nil || acc {
		t.Fatalf("dup within live lease: accepted=%v err=%v, want no-op", acc, err)
	}
	if _, err := q.Complete(l.ID, "t9999", Outcome{}); err == nil {
		t.Fatal("foreign task accepted into lease")
	}
}

func TestExpiryRequeuesWithBackoff(t *testing.T) {
	cfg := fastConfig()
	q := newTestQueue(t, cfg)
	tks := enqueueN(t, q, 1)

	l := claimAll(t, q, "w1", 1)
	// No heartbeat: the lease must expire and the task requeue.
	l2, err := q.WaitClaim(context.Background(), "w2", 1, 5*time.Second, false)
	if err != nil || l2 == nil {
		t.Fatalf("reclaim after expiry: %v %v", l2, err)
	}
	if l2.Tasks[0].ID != tks[0].ID || l2.Tasks[0].Attempt != 2 {
		t.Fatalf("requeued task: %+v, want attempt 2", l2.Tasks[0])
	}
	// The zombie's late result is discarded.
	if acc, err := q.Complete(l.ID, tks[0].ID, Outcome{Result: dragonfly.Result{Delivered: 666}}); acc || !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("zombie result: accepted=%v err=%v", acc, err)
	}
	// The live lease's result wins.
	if _, err := q.Complete(l2.ID, tks[0].ID, Outcome{Result: dragonfly.Result{Delivered: 7}}); err != nil {
		t.Fatal(err)
	}
	if out := waitOutcome(t, tks[0]); out.Result.Delivered != 7 {
		t.Fatalf("outcome came from the zombie: %+v", out)
	}
	st := q.Stats()
	if st.ExpiredLeases != 1 || st.Requeues != 1 || st.LateDiscarded != 1 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	cfg := fastConfig()
	q := newTestQueue(t, cfg)
	tks := enqueueN(t, q, 1)
	l := claimAll(t, q, "w1", 1)

	// Heartbeat for 4 lease durations; the task must not requeue.
	deadline := time.Now().Add(4 * cfg.Lease)
	for time.Now().Before(deadline) {
		if _, err := q.Heartbeat(l.ID); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		time.Sleep(cfg.Lease / 4)
	}
	if st := q.Stats(); st.ExpiredLeases != 0 || st.Requeues != 0 {
		t.Fatalf("heartbeated lease expired anyway: %+v", st)
	}
	if _, err := q.Complete(l.ID, tks[0].ID, Outcome{}); err != nil {
		t.Fatalf("complete after heartbeats: %v", err)
	}
	if _, err := q.Heartbeat("l9999"); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("unknown lease heartbeat: %v", err)
	}
}

func TestPoisonQuarantineDistinctWorkers(t *testing.T) {
	cfg := fastConfig() // PoisonWorkers: 2
	q := newTestQueue(t, cfg)
	tks := enqueueN(t, q, 1)

	for _, w := range []string{"w1", "w2"} {
		l, err := q.WaitClaim(context.Background(), w, 1, 5*time.Second, false)
		if err != nil || l == nil {
			t.Fatalf("%s claim: %v %v", w, l, err)
		}
		// Crash: never heartbeat, never complete.
	}
	out := waitOutcome(t, tks[0])
	if !errors.Is(out.Err, ErrPoison) {
		t.Fatalf("outcome err = %v, want ErrPoison", out.Err)
	}
	for _, w := range []string{"w1", "w2"} {
		if !strings.Contains(out.Err.Error(), w) {
			t.Fatalf("poison error %q does not name crasher %s", out.Err, w)
		}
	}
	st := q.Stats()
	if st.Quarantined != 1 || st.Failed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if l, _ := q.Claim("w3", 1, false); l != nil {
		t.Fatalf("quarantined point handed out again: %+v", l)
	}
}

func TestMaxAttemptsQuarantinesLoneWorker(t *testing.T) {
	cfg := fastConfig()
	cfg.PoisonWorkers = 99 // force the attempts cap to trigger first
	cfg.MaxAttempts = 3
	q := newTestQueue(t, cfg)
	tks := enqueueN(t, q, 1)

	for i := 0; i < cfg.MaxAttempts; i++ {
		l, err := q.WaitClaim(context.Background(), "w1", 1, 5*time.Second, false)
		if err != nil || l == nil {
			t.Fatalf("attempt %d claim: %v %v", i, l, err)
		}
	}
	out := waitOutcome(t, tks[0])
	if !errors.Is(out.Err, ErrPoison) {
		t.Fatalf("lone crashing worker never quarantined: %v", out.Err)
	}
}

func TestDrainFailsPendingCollectsLeased(t *testing.T) {
	cause := errors.New("test: draining")
	q := newTestQueue(t, fastConfig())
	tks := enqueueN(t, q, 3)
	l := claimAll(t, q, "w1", 1) // task 0 leased; 1 and 2 pending

	q.Drain(cause)

	for i := 1; i <= 2; i++ {
		if out := waitOutcome(t, tks[i]); !errors.Is(out.Err, cause) {
			t.Fatalf("pending task %d: err=%v, want drain cause", i, out.Err)
		}
	}
	if _, err := q.Claim("w2", 1, false); !errors.Is(err, cause) {
		t.Fatalf("claim while draining: %v", err)
	}
	if _, err := q.Enqueue("late", cfgN(9)); !errors.Is(err, cause) {
		t.Fatalf("enqueue while draining: %v", err)
	}
	// The leased point is still collectable.
	if _, err := q.Heartbeat(l.ID); err != nil {
		t.Fatalf("heartbeat while draining: %v", err)
	}
	if acc, err := q.Complete(l.ID, l.Tasks[0].ID, Outcome{Result: dragonfly.Result{Delivered: 1}}); err != nil || !acc {
		t.Fatalf("collect while draining: %v %v", acc, err)
	}
	if out := waitOutcome(t, tks[0]); out.Err != nil || out.Result.Delivered != 1 {
		t.Fatalf("collected outcome: %+v", out)
	}
}

func TestDrainExpiryDeliversCauseNotRequeue(t *testing.T) {
	cause := errors.New("test: draining")
	q := newTestQueue(t, fastConfig())
	tks := enqueueN(t, q, 1)
	claimAll(t, q, "w1", 1)
	q.Drain(cause)
	// The worker dies during the drain; the point must fail with the
	// drain cause instead of waiting for claims that can never come.
	if out := waitOutcome(t, tks[0]); !errors.Is(out.Err, cause) {
		t.Fatalf("expired-during-drain outcome: %v, want drain cause", out.Err)
	}
}

func TestWaitClaimWakesOnEnqueue(t *testing.T) {
	q := newTestQueue(t, fastConfig())
	got := make(chan *Lease, 1)
	go func() {
		l, _ := q.WaitClaim(context.Background(), "w1", 1, 5*time.Second, false)
		got <- l
	}()
	time.Sleep(20 * time.Millisecond) // let the claimer block
	enqueueN(t, q, 1)
	select {
	case l := <-got:
		if l == nil || len(l.Tasks) != 1 {
			t.Fatalf("woken claim: %+v", l)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitClaim never woke on enqueue")
	}

	// maxWait expiry returns an empty claim, not an error.
	l, err := q.WaitClaim(context.Background(), "w1", 1, 30*time.Millisecond, false)
	if err != nil || l != nil {
		t.Fatalf("timed-out WaitClaim: %v %v", l, err)
	}
	// ctx cancellation surfaces.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.WaitClaim(ctx, "w1", 1, time.Second, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled WaitClaim: %v", err)
	}
}

func TestLocalLeaseNeverExpires(t *testing.T) {
	cfg := fastConfig()
	q := newTestQueue(t, cfg)
	tks := enqueueN(t, q, 1)
	l, err := q.Claim("local", 1, true)
	if err != nil || l == nil {
		t.Fatalf("local claim: %v %v", l, err)
	}
	if !l.Deadline.IsZero() {
		t.Fatalf("local lease has a deadline: %v", l.Deadline)
	}
	time.Sleep(3 * cfg.Lease) // several lease durations, no heartbeat
	if st := q.Stats(); st.ExpiredLeases != 0 {
		t.Fatalf("local lease expired: %+v", st)
	}
	if _, err := q.Complete(l.ID, l.Tasks[0].ID, Outcome{}); err != nil {
		t.Fatalf("complete local: %v", err)
	}
	if out := waitOutcome(t, tks[0]); out.Err != nil {
		t.Fatal(out.Err)
	}
}

func TestStatsWorkers(t *testing.T) {
	q := newTestQueue(t, fastConfig())
	enqueueN(t, q, 2)
	l := claimAll(t, q, "wb", 1)
	claimAll(t, q, "wa", 1)
	st := q.Stats()
	if st.ActiveLeases != 2 || st.LeasedPoints != 2 || st.QueuedPoints != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Workers) != 2 || st.Workers[0].Name != "wa" || st.Workers[1].Name != "wb" {
		t.Fatalf("workers not sorted: %+v", st.Workers)
	}
	if st.Workers[1].ActivePoints != 1 || st.Workers[1].HeartbeatAgeSeconds > 5 {
		t.Fatalf("worker wb stats: %+v", st.Workers[1])
	}
	if _, err := q.Complete(l.ID, l.Tasks[0].ID, Outcome{}); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Workers[1].Completed != 1 {
		t.Fatalf("wb completed not counted: %+v", st)
	}
}

// TestConcurrencySmoke hammers the queue from many producers and
// workers under the race detector: every point must resolve exactly
// once.
func TestConcurrencySmoke(t *testing.T) {
	cfg := fastConfig()
	cfg.Lease = 2 * time.Second // workers here are live, just slow
	q := newTestQueue(t, cfg)

	const producers, points, workers = 4, 25, 6
	outcomes := make(chan Outcome, producers*points)
	var prod sync.WaitGroup
	for p := 0; p < producers; p++ {
		prod.Add(1)
		go func(p int) {
			defer prod.Done()
			for i := 0; i < points; i++ {
				tk, err := q.Enqueue(fmt.Sprintf("p%d-%d", p, i), cfgN(p*points+i))
				if err != nil {
					t.Error(err)
					return
				}
				outcomes <- waitOutcome(t, tk)
			}
		}(p)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var work sync.WaitGroup
	for w := 0; w < workers; w++ {
		work.Add(1)
		go func(w int) {
			defer work.Done()
			name := fmt.Sprintf("w%d", w)
			for ctx.Err() == nil {
				l, err := q.WaitClaim(ctx, name, 3, 50*time.Millisecond, false)
				if err != nil || l == nil {
					continue
				}
				for _, task := range l.Tasks {
					q.Complete(l.ID, task.ID, Outcome{Result: dragonfly.Result{Delivered: 1}}) //nolint:errcheck
				}
			}
		}(w)
	}
	prod.Wait()
	cancel()
	work.Wait()
	close(outcomes)
	n := 0
	for out := range outcomes {
		if out.Err != nil || out.Result.Delivered != 1 {
			t.Fatalf("outcome: %+v", out)
		}
		n++
	}
	if n != producers*points {
		t.Fatalf("%d outcomes, want %d", n, producers*points)
	}
	if st := q.Stats(); st.Completed != producers*points {
		t.Fatalf("completed = %d, want %d", st.Completed, producers*points)
	}
}
