package exp

import (
	"encoding/json"
	"fmt"
	"io"

	dragonfly "repro"
)

// Record is the JSONL line emitted per finished point. Lines stream in
// completion order (Index recovers campaign order) and each line is
// self-contained — config included — so a .jsonl file fully describes a
// campaign and can be filtered, resumed from, or re-plotted on its own.
type Record struct {
	Index   int               `json:"index"`
	Series  string            `json:"series"`
	X       float64           `json:"x"`
	Cached  bool              `json:"cached,omitempty"`
	Seconds float64           `json:"seconds"`
	Error   string            `json:"error,omitempty"`
	Config  dragonfly.Config  `json:"config"`
	Result  *dragonfly.Result `json:"result,omitempty"`
}

// writeRecord emits one outcome as a JSON line.
func writeRecord(w io.Writer, o *Outcome) error {
	rec := Record{
		Index:   o.Index,
		Series:  o.Point.Series,
		X:       o.Point.X,
		Cached:  o.Cached,
		Seconds: o.Seconds,
		Config:  o.Point.Config,
	}
	if o.Err != nil {
		rec.Error = o.Err.Error()
	} else {
		rec.Result = &o.Result
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("exp: encode jsonl record: %w", err)
	}
	if _, err := w.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("exp: write jsonl record: %w", err)
	}
	return nil
}
