package exp

import (
	"encoding/json"
	"fmt"
	"io"

	dragonfly "repro"
)

// Record is the JSONL line emitted per finished point. Lines stream in
// completion order (Index recovers campaign order) and each line is
// self-contained — config included — so a .jsonl file fully describes a
// campaign and can be filtered, resumed from, or re-plotted on its own.
// Under Options.CanonicalJSONL lines are instead emitted in campaign
// order with Cached and Seconds zeroed, making the whole stream a
// deterministic function of the campaign (see that option's doc).
type Record struct {
	Index   int               `json:"index"`
	Series  string            `json:"series"`
	X       float64           `json:"x"`
	Cached  bool              `json:"cached,omitempty"`
	Seconds float64           `json:"seconds"`
	Error   string            `json:"error,omitempty"`
	Config  dragonfly.Config  `json:"config"`
	Result  *dragonfly.Result `json:"result,omitempty"`
}

// recordFor builds the JSONL record of an outcome. Canonical records
// drop the two volatile fields — Seconds (wall time) and Cached (a
// property of the store, not the experiment) — so the line depends only
// on the point and its deterministic result.
func recordFor(o *Outcome, canonical bool) Record {
	rec := Record{
		Index:  o.Index,
		Series: o.Point.Series,
		X:      o.Point.X,
		Config: o.Point.Config,
	}
	if !canonical {
		rec.Cached = o.Cached
		rec.Seconds = o.Seconds
	}
	if o.Err != nil {
		rec.Error = o.Err.Error()
	} else {
		rec.Result = &o.Result
	}
	return rec
}

// writeRecord emits one outcome as a JSON line.
func writeRecord(w io.Writer, o *Outcome, canonical bool) error {
	buf, err := json.Marshal(recordFor(o, canonical))
	if err != nil {
		return fmt.Errorf("exp: encode jsonl record: %w", err)
	}
	if _, err := w.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("exp: write jsonl record: %w", err)
	}
	return nil
}

// WriteCanonicalRecord emits one outcome as a canonical JSON line — the
// same bytes Options.CanonicalJSONL would emit for it. Remote clients
// use it to reproduce a local campaign's JSONL stream byte for byte.
func WriteCanonicalRecord(w io.Writer, o *Outcome) error {
	return writeRecord(w, o, true)
}
