// Package cliutil holds the flag-parsing helpers shared by the dragonsim,
// dfsweep and paperfigs commands, so the three CLIs agree on traffic,
// mechanism and workload-spec syntax instead of each growing its own
// switch statement.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	dragonfly "repro"
	"repro/internal/topology"
)

// Traffic builds a pattern from the classic flag trio (-traffic, -offset,
// -globalpct): kind is UN, ADVG, ADVL or MIX; offset applies to the
// adversarial kinds and globalPct to MIX.
func Traffic(kind string, offset int, globalPct float64) (dragonfly.Traffic, error) {
	switch strings.ToUpper(strings.TrimSpace(kind)) {
	case "UN":
		return dragonfly.Traffic{Kind: dragonfly.UN}, nil
	case "ADVG":
		return dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: offset}, nil
	case "ADVL":
		return dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: offset}, nil
	case "MIX":
		return dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: globalPct}, nil
	}
	return dragonfly.Traffic{}, fmt.Errorf("unknown traffic %q (want UN, ADVG, ADVL or MIX)", kind)
}

// TrafficToken parses the compact single-token pattern syntax of workload
// specs: "UN", "ADVG+4" (offset optional, default 1), "ADVL+1", "MIX" or
// "MIX:60" (percent of global traffic, default 50).
func TrafficToken(tok string) (dragonfly.Traffic, error) {
	t := strings.ToUpper(strings.TrimSpace(tok))
	switch {
	case t == "UN":
		return dragonfly.Traffic{Kind: dragonfly.UN}, nil
	case t == "MIX":
		return dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 50}, nil
	case strings.HasPrefix(t, "MIX:"):
		pct, err := strconv.ParseFloat(t[len("MIX:"):], 64)
		if err != nil {
			return dragonfly.Traffic{}, fmt.Errorf("bad MIX percentage in %q: %v", tok, err)
		}
		return dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: pct}, nil
	case strings.HasPrefix(t, "ADVG") || strings.HasPrefix(t, "ADVL"):
		kind := dragonfly.ADVG
		if t[3] == 'L' {
			kind = dragonfly.ADVL
		}
		rest := t[4:]
		offset := 1
		if rest != "" {
			if !strings.HasPrefix(rest, "+") {
				return dragonfly.Traffic{}, fmt.Errorf("bad pattern %q (want e.g. %s+2)", tok, t[:4])
			}
			n, err := strconv.Atoi(rest[1:])
			if err != nil {
				return dragonfly.Traffic{}, fmt.Errorf("bad offset in %q: %v", tok, err)
			}
			offset = n
		}
		return dragonfly.Traffic{Kind: kind, Offset: offset}, nil
	}
	return dragonfly.Traffic{}, fmt.Errorf("unknown pattern %q (want UN, ADVG+N, ADVL+N or MIX:P)", tok)
}

// TrafficName returns the display label of an already-validated pattern;
// it panics on an invalid kind, which Validate would have rejected first.
func TrafficName(tr dragonfly.Traffic, h int) string {
	name, err := tr.Name(h)
	if err != nil {
		panic(err)
	}
	return name
}

// Mechanisms parses a comma-separated mechanism list.
func Mechanisms(csv string) ([]dragonfly.Mechanism, error) {
	var ms []dragonfly.Mechanism
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := dragonfly.ParseMechanism(name)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("empty mechanism list %q", csv)
	}
	return ms, nil
}

// Floats parses a comma-separated float list (offered loads, percentages).
func Floats(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", s, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty number list %q", csv)
	}
	return out, nil
}

// Phases parses the workload spec mini-language shared by the CLIs:
//
//	spec   := job (";" job)*
//	job    := [first "-" last "="] phase ("," phase)*
//	phase  := pattern "@" rate ["x" duration]
//	rate   := load            steady Bernoulli load in (0, 1], e.g. 0.35
//	        | count "b"       burst of count packets per node, e.g. 200b
//
// pattern uses TrafficToken syntax. A job without a node range covers the
// whole network; the last phase of a job may omit the duration ("rest of
// the run"). Examples:
//
//	UN@0.3x4000,ADVG+4@0.3
//	0-527=UN@0.25;528-1055=ADVG+4@0.5x3000,UN@0.1
func Phases(spec string) ([]dragonfly.JobSpec, error) {
	var jobs []dragonfly.JobSpec
	for _, jobSpec := range strings.Split(spec, ";") {
		jobSpec = strings.TrimSpace(jobSpec)
		if jobSpec == "" {
			continue
		}
		var job dragonfly.JobSpec
		if eq := strings.Index(jobSpec, "="); eq >= 0 {
			lo, hi, ok := strings.Cut(jobSpec[:eq], "-")
			first, err1 := strconv.Atoi(strings.TrimSpace(lo))
			last, err2 := strconv.Atoi(strings.TrimSpace(hi))
			if !ok || err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad node range %q (want first-last=...)", jobSpec[:eq])
			}
			job.FirstNode, job.LastNode = first, last
			jobSpec = jobSpec[eq+1:]
		}
		for _, phSpec := range strings.Split(jobSpec, ",") {
			ph, err := phase(phSpec)
			if err != nil {
				return nil, err
			}
			job.Phases = append(job.Phases, ph)
		}
		jobs = append(jobs, job)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("empty workload spec %q", spec)
	}
	return jobs, nil
}

// Faults parses the fault-scenario mini-language shared by the CLIs:
//
//	spec  := item (";" item)*
//	item  := "g=" frac                       seeded fraction of global links down
//	       | "l=" frac                       seeded fraction of local links down
//	       | link ("," link)*                links down from the start
//	       | event "@" cycle "=" link ("," link)*
//	       | "router=" rf ("," rf)*          whole-router failures (nodes parked)
//	       | "grp=" bf ("," bf)*             correlated bundles (group blackout / local segment)
//	       | "flap@" C "+" P "/" D ["x" N] "=" link ("," link)*
//	event := "kill" | "repair"
//	rf    := router ["@" C ["-" C2]]         fail at C (default 0), revive at C2
//	bf    := G [":" i "-" j] ["@" C ["-" C2]]
//	link  := "r" router "p" port             by router id and output port
//	       | "g" A "-" B                     the global channel between groups A and B
//	       | "l" G ":" i "-" j               the local link between router indices i and j of group G
//
// h sizes the dragonfly the group/local link forms resolve against. A bare
// "grp=G" blacks out group G's whole global-channel bundle (its routers
// with it); "grp=G:i-j" kills the local links among router indices [i, j].
// A flap kills each listed link at cycle C and every P cycles after, for N
// periods (default 8), repairing D cycles into each period. Examples:
//
//	g=0.1
//	g0-4;l2:0-3
//	g=0.05;kill@5000=g0-4;repair@8000=g0-4
//	router=5,12@1000-4000
//	grp=2@500;flap@1000+200/50x20=g0-4
func Faults(spec string, h int) (*dragonfly.FaultSpec, error) {
	p, err := topology.New(h)
	if err != nil {
		return nil, err
	}
	out := &dragonfly.FaultSpec{}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		lower := strings.ToLower(item)
		switch {
		case strings.HasPrefix(lower, "g="), strings.HasPrefix(lower, "l="):
			frac, err := strconv.ParseFloat(strings.TrimSpace(item[2:]), 64)
			if err != nil {
				return nil, fmt.Errorf("bad fault fraction in %q: %v", item, err)
			}
			if lower[0] == 'g' {
				out.GlobalFraction = frac
			} else {
				out.LocalFraction = frac
			}
		case strings.HasPrefix(lower, "router="):
			for _, tok := range strings.Split(item[len("router="):], ",") {
				rf, err := routerFault(p, tok)
				if err != nil {
					return nil, err
				}
				out.Routers = append(out.Routers, rf)
			}
		case strings.HasPrefix(lower, "grp="):
			for _, tok := range strings.Split(item[len("grp="):], ",") {
				bf, err := bundleFault(p, tok)
				if err != nil {
					return nil, err
				}
				out.Bundles = append(out.Bundles, bf)
			}
		case strings.HasPrefix(lower, "flap@"):
			head, linksStr, ok := strings.Cut(item[len("flap@"):], "=")
			if !ok {
				return nil, fmt.Errorf("bad flap %q (want flap@C+P/D[xN]=link)", item)
			}
			atStr, rest, ok := strings.Cut(head, "+")
			perStr, rest2, ok2 := strings.Cut(rest, "/")
			downStr, countStr, hasCount := strings.Cut(rest2, "x")
			if !ok || !ok2 {
				return nil, fmt.Errorf("bad flap %q (want flap@C+P/D[xN]=link)", item)
			}
			at, err1 := strconv.ParseInt(strings.TrimSpace(atStr), 10, 64)
			period, err2 := strconv.ParseInt(strings.TrimSpace(perStr), 10, 64)
			down, err3 := strconv.ParseInt(strings.TrimSpace(downStr), 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("bad flap timing in %q (want flap@C+P/D[xN]=link)", item)
			}
			count := 8
			if hasCount {
				count, err1 = strconv.Atoi(strings.TrimSpace(countStr))
				if err1 != nil {
					return nil, fmt.Errorf("bad flap count in %q: %v", item, err1)
				}
			}
			links, err := faultLinks(p, linksStr)
			if err != nil {
				return nil, err
			}
			for _, l := range links {
				out.Flaps = append(out.Flaps, dragonfly.FlapSpec{
					Link: l, At: at, Period: period, Down: down, Count: count,
				})
			}
		case strings.HasPrefix(lower, "kill@"), strings.HasPrefix(lower, "repair@"):
			repair := lower[0] == 'r'
			rest := item[strings.Index(item, "@")+1:]
			cycleStr, linksStr, ok := strings.Cut(rest, "=")
			if !ok {
				return nil, fmt.Errorf("bad fault event %q (want kill@cycle=link)", item)
			}
			at, err := strconv.ParseInt(strings.TrimSpace(cycleStr), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad cycle in fault event %q: %v", item, err)
			}
			links, err := faultLinks(p, linksStr)
			if err != nil {
				return nil, err
			}
			for _, l := range links {
				out.Events = append(out.Events, dragonfly.FaultEvent{At: at, Repair: repair, Link: l})
			}
		default:
			links, err := faultLinks(p, item)
			if err != nil {
				return nil, err
			}
			out.Links = append(out.Links, links...)
		}
	}
	if len(out.Links) == 0 && len(out.Events) == 0 &&
		len(out.Routers) == 0 && len(out.Bundles) == 0 && len(out.Flaps) == 0 &&
		out.GlobalFraction == 0 && out.LocalFraction == 0 {
		return nil, fmt.Errorf("empty fault spec %q", spec)
	}
	return out, nil
}

// outage splits the optional "@C[-C2]" suffix shared by router and bundle
// tokens, returning the token head and the fail/revive cycles (0 = from
// the start / never).
func outage(tok string) (head string, at, until int64, err error) {
	head = strings.TrimSpace(tok)
	head, when, has := strings.Cut(head, "@")
	head = strings.TrimSpace(head)
	if !has {
		return head, 0, 0, nil
	}
	atStr, untilStr, hasUntil := strings.Cut(when, "-")
	if at, err = strconv.ParseInt(strings.TrimSpace(atStr), 10, 64); err != nil {
		return head, 0, 0, fmt.Errorf("bad cycle in %q: %v", tok, err)
	}
	if hasUntil {
		if until, err = strconv.ParseInt(strings.TrimSpace(untilStr), 10, 64); err != nil {
			return head, 0, 0, fmt.Errorf("bad repair cycle in %q: %v", tok, err)
		}
	}
	return head, at, until, nil
}

// routerFault parses one "R[@C[-C2]]" whole-router failure token.
func routerFault(p *topology.P, tok string) (dragonfly.RouterFault, error) {
	head, at, until, err := outage(tok)
	if err != nil {
		return dragonfly.RouterFault{}, err
	}
	r, err := strconv.Atoi(head)
	if err != nil {
		return dragonfly.RouterFault{}, fmt.Errorf("bad router fault %q (want R[@C[-C2]]): %v", tok, err)
	}
	if r < 0 || r >= p.Routers {
		return dragonfly.RouterFault{}, fmt.Errorf("router fault %q outside the %d routers of h=%d", tok, p.Routers, p.H)
	}
	return dragonfly.RouterFault{Router: r, At: at, Until: until}, nil
}

// bundleFault parses one "G[:i-j][@C[-C2]]" correlated-bundle token: the
// bare form blacks out group G, the ranged form kills the local links
// among router indices [i, j].
func bundleFault(p *topology.P, tok string) (dragonfly.BundleFault, error) {
	head, at, until, err := outage(tok)
	if err != nil {
		return dragonfly.BundleFault{}, err
	}
	gStr, span, ranged := strings.Cut(head, ":")
	g, err := strconv.Atoi(strings.TrimSpace(gStr))
	if err != nil {
		return dragonfly.BundleFault{}, fmt.Errorf("bad bundle %q (want G[:i-j][@C[-C2]]): %v", tok, err)
	}
	if g < 0 || g >= p.Groups {
		return dragonfly.BundleFault{}, fmt.Errorf("bundle %q outside the %d groups of h=%d", tok, p.Groups, p.H)
	}
	bf := dragonfly.BundleFault{Group: g, At: at, Until: until}
	if ranged {
		iStr, jStr, ok := strings.Cut(span, "-")
		i, err1 := strconv.Atoi(strings.TrimSpace(iStr))
		j, err2 := strconv.Atoi(strings.TrimSpace(jStr))
		if !ok || err1 != nil || err2 != nil {
			return dragonfly.BundleFault{}, fmt.Errorf("bad bundle range %q (want G:i-j)", tok)
		}
		bf.First, bf.Last = i, j
	}
	return bf, nil
}

// faultLinks parses a comma-separated list of link tokens.
func faultLinks(p *topology.P, csv string) ([]dragonfly.LinkID, error) {
	var out []dragonfly.LinkID
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		l, err := faultLink(p, tok)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty link list %q", csv)
	}
	return out, nil
}

// faultLink parses one link token ("rNpM", "gA-B" or "lG:i-j").
func faultLink(p *topology.P, tok string) (dragonfly.LinkID, error) {
	t := strings.ToLower(tok)
	switch {
	case strings.HasPrefix(t, "r"):
		rStr, pStr, ok := strings.Cut(t[1:], "p")
		router, err1 := strconv.Atoi(rStr)
		port, err2 := strconv.Atoi(pStr)
		if !ok || err1 != nil || err2 != nil {
			return dragonfly.LinkID{}, fmt.Errorf("bad link %q (want rROUTERpPORT)", tok)
		}
		return dragonfly.LinkID{Router: router, Port: port}, nil
	case strings.HasPrefix(t, "g"):
		aStr, bStr, ok := strings.Cut(t[1:], "-")
		a, err1 := strconv.Atoi(aStr)
		b, err2 := strconv.Atoi(bStr)
		if !ok || err1 != nil || err2 != nil {
			return dragonfly.LinkID{}, fmt.Errorf("bad global link %q (want gA-B)", tok)
		}
		if a == b || a < 0 || b < 0 || a >= p.Groups || b >= p.Groups {
			return dragonfly.LinkID{}, fmt.Errorf("global link %q outside the %d groups of h=%d", tok, p.Groups, p.H)
		}
		idx, port := p.GlobalPortOfChannel(p.ChannelToGroup(a, b))
		return dragonfly.LinkID{Router: p.RouterID(a, idx), Port: port}, nil
	case strings.HasPrefix(t, "l"):
		gStr, rest, ok := strings.Cut(t[1:], ":")
		iStr, jStr, ok2 := strings.Cut(rest, "-")
		g, err1 := strconv.Atoi(gStr)
		i, err2 := strconv.Atoi(iStr)
		j, err3 := strconv.Atoi(jStr)
		if !ok || !ok2 || err1 != nil || err2 != nil || err3 != nil {
			return dragonfly.LinkID{}, fmt.Errorf("bad local link %q (want lG:i-j)", tok)
		}
		if g < 0 || g >= p.Groups || i < 0 || j < 0 || i == j ||
			i >= p.RoutersPerGroup || j >= p.RoutersPerGroup {
			return dragonfly.LinkID{}, fmt.Errorf("local link %q outside group bounds of h=%d", tok, p.H)
		}
		return dragonfly.LinkID{Router: p.RouterID(g, i), Port: p.LocalPort(i, j)}, nil
	}
	return dragonfly.LinkID{}, fmt.Errorf("unknown link %q (want rNpM, gA-B or lG:i-j)", tok)
}

// phase parses one "pattern@rate[xduration]" token.
func phase(spec string) (dragonfly.PhaseSpec, error) {
	spec = strings.TrimSpace(spec)
	pat, rest, ok := strings.Cut(spec, "@")
	if !ok {
		return dragonfly.PhaseSpec{}, fmt.Errorf("bad phase %q (want pattern@rate[xduration])", spec)
	}
	tr, err := TrafficToken(pat)
	if err != nil {
		return dragonfly.PhaseSpec{}, err
	}
	ph := dragonfly.PhaseSpec{Traffic: tr}
	rate := rest
	if rate, rest, ok = strings.Cut(rest, "x"); ok {
		dur, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return dragonfly.PhaseSpec{}, fmt.Errorf("bad duration in phase %q: %v", spec, err)
		}
		ph.Duration = dur
	}
	rate = strings.TrimSpace(rate)
	if n, isBurst := strings.CutSuffix(rate, "b"); isBurst {
		pkts, err := strconv.Atoi(n)
		if err != nil {
			return dragonfly.PhaseSpec{}, fmt.Errorf("bad burst count in phase %q: %v", spec, err)
		}
		ph.BurstPackets = pkts
	} else {
		load, err := strconv.ParseFloat(rate, 64)
		if err != nil {
			return dragonfly.PhaseSpec{}, fmt.Errorf("bad load in phase %q: %v", spec, err)
		}
		ph.Load = load
	}
	return ph, nil
}
