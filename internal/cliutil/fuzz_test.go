package cliutil

import (
	"reflect"
	"testing"

	dragonfly "repro"
)

// FuzzPhases drives the workload-spec parser with arbitrary input: it must
// never panic, and anything it accepts must either validate as a config or
// be rejected by Config.Validate with a proper error — never a crash
// further down the stack.
func FuzzPhases(f *testing.F) {
	for _, seed := range []string{
		"UN@0.3",
		"UN@0.3x4000,ADVG+4@0.3",
		"0-527=UN@0.25;528-1055=ADVG+4@0.5x3000,UN@0.1",
		"MIX:60@0.5x100,ADVL+1@200b",
		"ADVG@1.0;UN@0b",
		"UN@0.0x0",
		"=@x", ";;;", "0-0=UN@0.1", "UN@0.3x-5",
		"ADVG+999@0.5", "MIX:@1", "UN@1e300", "5-2=UN@0.1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		jobs, err := Phases(spec)
		if err != nil {
			return
		}
		if len(jobs) == 0 {
			t.Fatalf("Phases(%q) returned no jobs and no error", spec)
		}
		cfg := dragonfly.Config{H: 2, Workload: jobs}
		_ = cfg.Validate() // must not panic; errors are fine
	})
}

// FuzzFaults drives the fault-spec parser the same way: no input may panic
// it, accepted specs must survive Validate and Canonical, and Canonical
// must be a fixed point — a drifting canonical form would fracture the
// content-addressed result cache.
func FuzzFaults(f *testing.F) {
	for _, seed := range []string{
		"g=0.1",
		"l=0.05",
		"g0-4",
		"l2:0-3",
		"r12p3",
		"g=0.05;kill@5000=g0-4;repair@8000=g0-4",
		"kill@0=r0p0,r1p1;g=0.9",
		"router=5",
		"router=3@1000-2000",
		"router=5,12@1000-4000,0@2000",
		"grp=2",
		"grp=1:0-3",
		"grp=2@500,1:3-0@100-900",
		"flap@1000+200/50=g0-4",
		"flap@0+100/40x3=l1:0-2,r0p3",
		"grp=2@500;flap@1000+200/50x20=g0-4;router=7",
		"g=-1", "g=2", "r-1p0", "g0-0", "l0:1-1", "kill@=g0-1",
		"repair@99999999999999999999=g0-1", "@", "=;=",
		"router=", "router=x@5", "router=1@-2", "grp=1:2-2", "grp=9",
		"flap@1+2=g0-4", "flap@1+0/0=g0-4", "flap@1+100/200=g0-4",
		"flap@1+100/50x0=g0-4", "flap@1+100/50x999999=g0-4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		fs, err := Faults(spec, 2)
		if err != nil {
			return
		}
		if fs == nil {
			t.Fatalf("Faults(%q) returned nil and no error", spec)
		}
		cfg := dragonfly.PaperVCT(2)
		cfg.Load = 0.1
		cfg.Faults = fs
		if err := cfg.Validate(); err != nil {
			return // out-of-range links etc. are Validate's job
		}
		once := cfg.Canonical() // must not panic on validated specs
		if !reflect.DeepEqual(once, once.Canonical()) {
			t.Fatalf("Canonical of Faults(%q) is not a fixed point: %+v", spec, once.Faults)
		}
	})
}

// FuzzTrafficToken covers the compact pattern syntax shared by both spec
// languages.
func FuzzTrafficToken(f *testing.F) {
	for _, seed := range []string{
		"UN", "ADVG", "ADVG+4", "ADVL+1", "MIX", "MIX:60",
		"advg+", "MIX:", "ADVL-1", "A", "", "ADVG+99999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		tr, err := TrafficToken(tok)
		if err != nil {
			return
		}
		if _, err := tr.Name(4); err != nil {
			t.Fatalf("TrafficToken(%q) accepted a pattern Name rejects: %v", tok, err)
		}
	})
}
