package cliutil

import (
	"reflect"
	"testing"

	dragonfly "repro"
)

func TestTrafficTrio(t *testing.T) {
	cases := []struct {
		kind   string
		offset int
		pct    float64
		want   dragonfly.Traffic
	}{
		{"UN", 1, 50, dragonfly.Traffic{Kind: dragonfly.UN}},
		{"advg", 3, 50, dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 3}},
		{"ADVL", 2, 50, dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: 2}},
		{"MIX", 1, 60, dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 60}},
	}
	for _, c := range cases {
		got, err := Traffic(c.kind, c.offset, c.pct)
		if err != nil || got != c.want {
			t.Errorf("Traffic(%q) = %+v, %v; want %+v", c.kind, got, err, c.want)
		}
	}
	if _, err := Traffic("nope", 1, 50); err == nil {
		t.Error("unknown traffic kind accepted")
	}
}

func TestTrafficToken(t *testing.T) {
	cases := []struct {
		tok  string
		want dragonfly.Traffic
	}{
		{"UN", dragonfly.Traffic{Kind: dragonfly.UN}},
		{"ADVG", dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}},
		{"ADVG+4", dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 4}},
		{"advl+2", dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: 2}},
		{"MIX", dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 50}},
		{"MIX:75", dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 75}},
	}
	for _, c := range cases {
		got, err := TrafficToken(c.tok)
		if err != nil || got != c.want {
			t.Errorf("TrafficToken(%q) = %+v, %v; want %+v", c.tok, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "XYZ", "ADVG-2", "ADVG+x", "MIX:abc"} {
		if _, err := TrafficToken(bad); err == nil {
			t.Errorf("TrafficToken(%q) accepted", bad)
		}
	}
}

func TestMechanismsAndFloats(t *testing.T) {
	ms, err := Mechanisms(" RLM, OLM ,Minimal")
	if err != nil {
		t.Fatal(err)
	}
	want := []dragonfly.Mechanism{dragonfly.RLM, dragonfly.OLM, dragonfly.Minimal}
	if !reflect.DeepEqual(ms, want) {
		t.Fatalf("Mechanisms = %v, want %v", ms, want)
	}
	if _, err := Mechanisms("RLM,bogus"); err == nil {
		t.Error("bogus mechanism accepted")
	}
	if _, err := Mechanisms(" , "); err == nil {
		t.Error("empty mechanism list accepted")
	}
	fs, err := Floats("0.1, 0.5,1")
	if err != nil || !reflect.DeepEqual(fs, []float64{0.1, 0.5, 1}) {
		t.Fatalf("Floats = %v, %v", fs, err)
	}
	if _, err := Floats("0.1,zz"); err == nil {
		t.Error("bad float accepted")
	}
}

func TestPhasesSpec(t *testing.T) {
	jobs, err := Phases("UN@0.3x4000,ADVG+4@0.3")
	if err != nil {
		t.Fatal(err)
	}
	want := []dragonfly.JobSpec{{Phases: []dragonfly.PhaseSpec{
		{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, Load: 0.3, Duration: 4000},
		{Traffic: dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 4}, Load: 0.3},
	}}}
	if !reflect.DeepEqual(jobs, want) {
		t.Fatalf("Phases = %+v, want %+v", jobs, want)
	}

	jobs, err = Phases("0-527=UN@0.25;528-1055=ADVG+4@200bx3000,MIX:60@0.1")
	if err != nil {
		t.Fatal(err)
	}
	want = []dragonfly.JobSpec{
		{FirstNode: 0, LastNode: 527, Phases: []dragonfly.PhaseSpec{
			{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, Load: 0.25},
		}},
		{FirstNode: 528, LastNode: 1055, Phases: []dragonfly.PhaseSpec{
			{Traffic: dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 4}, BurstPackets: 200, Duration: 3000},
			{Traffic: dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 60}, Load: 0.1},
		}},
	}
	if !reflect.DeepEqual(jobs, want) {
		t.Fatalf("Phases = %+v, want %+v", jobs, want)
	}

	for _, bad := range []string{
		"", "UN", "UN@", "UN@0.3x", "UN@0.3xzz", "@0.3",
		"1-=UN@0.3", "a-b=UN@0.3", "UN@zzb",
	} {
		if _, err := Phases(bad); err == nil {
			t.Errorf("Phases(%q) accepted", bad)
		}
	}
}

func TestFaultsSpec(t *testing.T) {
	// Fractions, a static group link, and a kill/repair pair.
	fs, err := Faults("g=0.1;l=0.05;g0-4;kill@5000=l1:0-3,r0p1;repair@8000=g0-4", 2)
	if err != nil {
		t.Fatal(err)
	}
	if fs.GlobalFraction != 0.1 || fs.LocalFraction != 0.05 {
		t.Fatalf("fractions %v/%v", fs.GlobalFraction, fs.LocalFraction)
	}
	if len(fs.Links) != 1 || len(fs.Events) != 3 {
		t.Fatalf("%d links, %d events", len(fs.Links), len(fs.Events))
	}
	if fs.Events[0].At != 5000 || fs.Events[0].Repair || fs.Events[2].At != 8000 || !fs.Events[2].Repair {
		t.Fatalf("events %+v", fs.Events)
	}
	// g0-4 resolves to the same link in the static and repair spellings.
	cfg := dragonfly.PaperVCT(2)
	cfg.Load = 0.1
	cfg.Faults = fs
	if err := cfg.Validate(); err != nil {
		t.Fatalf("parsed spec fails validation: %v", err)
	}
	canon := cfg.Canonical().Faults
	if canon.Links[0] != canon.Events[2].Link {
		t.Fatalf("static g0-4 (%+v) and repair g0-4 (%+v) resolved differently",
			canon.Links[0], canon.Events[2].Link)
	}

	// The rNpM form round-trips verbatim.
	fs, err = Faults("r3p2", 2)
	if err != nil || fs.Links[0] != (dragonfly.LinkID{Router: 3, Port: 2}) {
		t.Fatalf("r3p2 -> %+v, %v", fs.Links, err)
	}

	// Whole-router failures: bare, windowed, and a comma list with mixed
	// outage windows.
	fs, err = Faults("router=5,12@1000-4000,0@2000", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []dragonfly.RouterFault{{Router: 5}, {Router: 12, At: 1000, Until: 4000}, {Router: 0, At: 2000}}
	if len(fs.Routers) != 3 || fs.Routers[0] != want[0] || fs.Routers[1] != want[1] || fs.Routers[2] != want[2] {
		t.Fatalf("router list -> %+v", fs.Routers)
	}

	// Bundles: a group blackout and a local backplane segment with a window.
	fs, err = Faults("grp=2@500,1:0-3@100-900", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Bundles) != 2 ||
		fs.Bundles[0] != (dragonfly.BundleFault{Group: 2, At: 500}) ||
		fs.Bundles[1] != (dragonfly.BundleFault{Group: 1, First: 0, Last: 3, At: 100, Until: 900}) {
		t.Fatalf("bundle list -> %+v", fs.Bundles)
	}

	// Flaps: default count is 8, explicit xN sticks, one FlapSpec per link.
	fs, err = Faults("flap@1000+200/50=g0-4;flap@0+100/40x3=l1:0-2,r0p3", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Flaps) != 3 {
		t.Fatalf("flap list -> %+v", fs.Flaps)
	}
	if fs.Flaps[0].At != 1000 || fs.Flaps[0].Period != 200 || fs.Flaps[0].Down != 50 || fs.Flaps[0].Count != 8 {
		t.Fatalf("default-count flap -> %+v", fs.Flaps[0])
	}
	if fs.Flaps[1].Count != 3 || fs.Flaps[2].Count != 3 {
		t.Fatalf("explicit-count flaps -> %+v", fs.Flaps[1:])
	}
	cfg = dragonfly.PaperVCT(2)
	cfg.Load = 0.1
	cfg.Faults = fs
	if err := cfg.Validate(); err != nil {
		t.Fatalf("parsed flap spec fails validation: %v", err)
	}

	for _, bad := range []string{
		"", " ; ", "g=x", "q0-1", "g0-0", "g0-99", "l9:0-1", "l0:0-0", "l0:0-9",
		"r0", "rxp1", "kill@=g0-1", "kill@abc=g0-1", "kill@100=", "g0-1x",
		"router=", "router=x", "router=1@", "router=1@a-b", "router=1@5-x",
		"grp=", "grp=x", "grp=1:", "grp=1:0", "grp=1:a-b",
		"flap@=g0-1", "flap@1=g0-1", "flap@1+2=g0-1", "flap@1+2/x=g0-1",
		"flap@1+2/1x=g0-1", "flap@1+2/1xq=g0-1", "flap@1+100/50=",
	} {
		if _, err := Faults(bad, 2); err == nil {
			t.Errorf("bad fault spec %q accepted", bad)
		}
	}
}
