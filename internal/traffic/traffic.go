// Package traffic implements the synthetic traffic generators used in the
// paper's evaluation: uniform random (UN), adversarial-global (ADVG+N),
// adversarial-local (ADVL+N), the mixed ADVG+8/ADVL+1 pattern, and the two
// injection processes (steady Bernoulli and fixed-size bursts).
package traffic

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/topology"
)

// Pattern picks a destination node for a packet generated at src.
// Implementations must be safe for concurrent use as long as each caller
// passes its own PRNG, which is how the engine drives them.
type Pattern interface {
	// Dest returns the destination node for a packet from node src.
	Dest(src int, r *rng.PCG) int
	// Name returns a short identifier such as "UN" or "ADVG+8".
	Name() string
}

// Uniform sends every packet to a node chosen uniformly at random among all
// nodes except the source itself.
type Uniform struct {
	p *topology.P
}

// NewUniform returns the UN pattern over topology p.
func NewUniform(p *topology.P) *Uniform { return &Uniform{p: p} }

// Dest implements Pattern.
func (u *Uniform) Dest(src int, r *rng.PCG) int {
	d := r.Intn(u.p.Nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (u *Uniform) Name() string { return "UN" }

// AdversarialGlobal is ADVG+N: every node in group i sends to a random node
// of group i+N (mod number of groups).
type AdversarialGlobal struct {
	p      *topology.P
	offset int
}

// NewAdversarialGlobal returns the ADVG+offset pattern. The offset must be
// in [1, groups-1].
func NewAdversarialGlobal(p *topology.P, offset int) (*AdversarialGlobal, error) {
	if offset < 1 || offset >= p.Groups {
		return nil, fmt.Errorf("traffic: ADVG offset %d out of range [1, %d)", offset, p.Groups)
	}
	return &AdversarialGlobal{p: p, offset: offset}, nil
}

// Dest implements Pattern.
func (a *AdversarialGlobal) Dest(src int, r *rng.PCG) int {
	g := a.p.GroupOf(a.p.RouterOfNode(src))
	tg := (g + a.offset) % a.p.Groups
	nodesPerGroup := a.p.RoutersPerGroup * a.p.H
	return tg*nodesPerGroup + r.Intn(nodesPerGroup)
}

// Name implements Pattern.
func (a *AdversarialGlobal) Name() string { return fmt.Sprintf("ADVG+%d", a.offset) }

// AdversarialLocal is ADVL+N: every node of router i sends to a random node
// of router i+N (mod 2h) in the same group.
type AdversarialLocal struct {
	p      *topology.P
	offset int
}

// NewAdversarialLocal returns the ADVL+offset pattern. The offset must be
// in [1, 2h).
func NewAdversarialLocal(p *topology.P, offset int) (*AdversarialLocal, error) {
	if offset < 1 || offset >= p.RoutersPerGroup {
		return nil, fmt.Errorf("traffic: ADVL offset %d out of range [1, %d)", offset, p.RoutersPerGroup)
	}
	return &AdversarialLocal{p: p, offset: offset}, nil
}

// Dest implements Pattern.
func (a *AdversarialLocal) Dest(src int, r *rng.PCG) int {
	router := a.p.RouterOfNode(src)
	g, idx := a.p.GroupOf(router), a.p.IndexInGroup(router)
	tj := (idx + a.offset) % a.p.RoutersPerGroup
	tr := a.p.RouterID(g, tj)
	return a.p.NodeID(tr, r.Intn(a.p.H))
}

// Name implements Pattern.
func (a *AdversarialLocal) Name() string { return fmt.Sprintf("ADVL+%d", a.offset) }

// Mix sends each packet through the Global pattern with probability
// GlobalFrac and through the Local pattern otherwise. The paper's Figures 6
// and 9 use Global = ADVG+8 and Local = ADVL+1 while sweeping GlobalFrac.
type Mix struct {
	Global     Pattern
	Local      Pattern
	GlobalFrac float64
}

// NewMix builds the combined adversarial pattern.
func NewMix(global, local Pattern, globalFrac float64) (*Mix, error) {
	if globalFrac < 0 || globalFrac > 1 {
		return nil, fmt.Errorf("traffic: global fraction %v out of [0,1]", globalFrac)
	}
	return &Mix{Global: global, Local: local, GlobalFrac: globalFrac}, nil
}

// Dest implements Pattern.
func (m *Mix) Dest(src int, r *rng.PCG) int {
	if r.Bernoulli(m.GlobalFrac) {
		return m.Global.Dest(src, r)
	}
	return m.Local.Dest(src, r)
}

// Name implements Pattern.
func (m *Mix) Name() string {
	return fmt.Sprintf("%.0f%%%s/%s", m.GlobalFrac*100, m.Global.Name(), m.Local.Name())
}

// Process is the injection process at one node: it decides when new packets
// are generated.
type Process interface {
	// Generate reports whether node src generates a packet this cycle.
	// The engine calls it once per node and cycle, before checking queue
	// space.
	Generate(src int, cycle int64, r *rng.PCG) bool
	// Consume records that node src actually injected a packet; finite
	// processes count down on it, steady ones ignore it.
	Consume(src int)
	// Finite reports whether the process eventually stops generating
	// (burst experiments); steady-state processes return false.
	Finite() bool
	// Total returns the number of packets a finite process generates in
	// total, or -1 for steady processes.
	Total() int64
	// Done reports whether a finite process has generated everything it
	// will ever generate for node src.
	Done(src int) bool
}

// Bernoulli generates a packet with probability Load/PacketPhits each cycle
// so that the offered load equals Load phits/(node*cycle).
type Bernoulli struct {
	prob float64
}

// NewBernoulli returns a steady injection process with the given offered
// load in phits/(node*cycle) and packet size in phits.
func NewBernoulli(load float64, packetPhits int) (*Bernoulli, error) {
	if load < 0 || packetPhits < 1 {
		return nil, fmt.Errorf("traffic: bad Bernoulli parameters load=%v size=%d", load, packetPhits)
	}
	return &Bernoulli{prob: load / float64(packetPhits)}, nil
}

// Generate implements Process.
func (b *Bernoulli) Generate(_ int, _ int64, r *rng.PCG) bool { return r.Bernoulli(b.prob) }

// Consume implements Process; steady processes ignore it.
func (b *Bernoulli) Consume(int) {}

// Finite implements Process.
func (b *Bernoulli) Finite() bool { return false }

// Total implements Process.
func (b *Bernoulli) Total() int64 { return -1 }

// Done implements Process.
func (b *Bernoulli) Done(int) bool { return false }

// Burst generates exactly PacketsPerNode packets per node as fast as the
// injection queue accepts them, then stops. The paper's burst-consumption
// experiments send 1000 8-phit packets (VCT) or 89 80-phit packets (WH)
// per node.
type Burst struct {
	PacketsPerNode int
	remaining      []int32
}

// NewBurst returns a burst process for nodes nodes.
func NewBurst(packetsPerNode, nodes int) (*Burst, error) {
	if packetsPerNode < 0 || nodes < 1 {
		return nil, fmt.Errorf("traffic: bad burst parameters pkts=%d nodes=%d", packetsPerNode, nodes)
	}
	b := &Burst{PacketsPerNode: packetsPerNode, remaining: make([]int32, nodes)}
	for i := range b.remaining {
		b.remaining[i] = int32(packetsPerNode)
	}
	return b, nil
}

// Generate implements Process. The engine must call Consume after a
// successful injection; Generate itself does not decrement so that a full
// queue does not lose packets.
func (b *Burst) Generate(src int, _ int64, _ *rng.PCG) bool {
	return b.remaining[src] > 0
}

// Consume records that node src actually injected one packet.
func (b *Burst) Consume(src int) { b.remaining[src]-- }

// Finite implements Process.
func (b *Burst) Finite() bool { return true }

// Total implements Process.
func (b *Burst) Total() int64 { return int64(b.PacketsPerNode) * int64(len(b.remaining)) }

// Done implements Process.
func (b *Burst) Done(src int) bool { return b.remaining[src] <= 0 }
