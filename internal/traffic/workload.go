package traffic

import "fmt"

// Phase is one segment of a workload schedule: a traffic pattern and an
// injection process that are active for Duration cycles, after which the
// next phase of the schedule takes over.
type Phase struct {
	Pattern Pattern
	Process Process
	// Duration is the number of cycles the phase is active. Zero means
	// "until the end of the run" and is only legal on the last phase of a
	// schedule.
	Duration int64
	// Label names the phase in digests and figure legends, e.g. "UN@0.30".
	Label string
	// TotalPackets is the number of packets a finite (burst) phase injects
	// across its job's nodes; zero for steady phases. It exists because a
	// Process sized for the whole network over-reports Total() when the
	// phase's job covers only a node subrange.
	TotalPackets int64
}

// Job binds one schedule of phases to a contiguous node range. Nodes
// outside every job's range stay idle (they never generate traffic).
type Job struct {
	// First and Last are the inclusive global node ids of the job's range.
	First, Last int
	// Phases is the job's schedule, in activation order.
	Phases []Phase

	// starts[i] is the first cycle of phase i (starts[0] == 0).
	starts []int64
	// end is the cycle the job falls silent (its last phase's duration
	// expired), or -1 for jobs that generate until the end of the run.
	end int64
	// base is the job's offset into the workload-global phase numbering.
	base int
}

// Nodes returns the number of nodes the job spans.
func (j *Job) Nodes() int { return j.Last - j.First + 1 }

// Start returns the first cycle of phase i.
func (j *Job) Start(i int) int64 { return j.starts[i] }

// Workload is a compiled multi-job phased workload over a network of a
// fixed node count: each job runs its own phase schedule over a disjoint
// node range. The zero value is not usable; build one with NewWorkload.
//
// Phase transitions are pure functions of the cycle number, so a workload
// is deterministic under any worker sharding of the engine.
type Workload struct {
	Jobs []Job

	jobOf  []int16 // node -> job index, -1 for idle nodes
	finite bool
	total  int64
	phases int
}

// NewWorkload compiles jobs over a nodes-node network. Jobs must have
// non-empty schedules and pairwise-disjoint node ranges inside [0, nodes);
// every phase except a schedule's last must have a positive duration.
func NewWorkload(nodes int, jobs ...Job) (*Workload, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("traffic: workload over %d nodes", nodes)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("traffic: workload with no jobs")
	}
	w := &Workload{
		Jobs:   jobs,
		jobOf:  make([]int16, nodes),
		finite: true,
	}
	for i := range w.jobOf {
		w.jobOf[i] = -1
	}
	for ji := range w.Jobs {
		j := &w.Jobs[ji]
		if j.First < 0 || j.Last >= nodes || j.First > j.Last {
			return nil, fmt.Errorf("traffic: job %d node range [%d,%d] outside [0,%d)",
				ji, j.First, j.Last, nodes)
		}
		if len(j.Phases) == 0 {
			return nil, fmt.Errorf("traffic: job %d has no phases", ji)
		}
		for n := j.First; n <= j.Last; n++ {
			if w.jobOf[n] != -1 {
				return nil, fmt.Errorf("traffic: node %d belongs to jobs %d and %d",
					n, w.jobOf[n], ji)
			}
			w.jobOf[n] = int16(ji)
		}
		j.base = w.phases
		j.starts = make([]int64, len(j.Phases))
		j.end = -1
		var at int64
		for pi := range j.Phases {
			ph := &j.Phases[pi]
			if ph.Pattern == nil || ph.Process == nil {
				return nil, fmt.Errorf("traffic: job %d phase %d missing pattern or process", ji, pi)
			}
			j.starts[pi] = at
			last := pi == len(j.Phases)-1
			if ph.Duration < 0 || (!last && ph.Duration == 0) {
				return nil, fmt.Errorf("traffic: job %d phase %d duration %d (non-final phases need a positive duration)",
					ji, pi, ph.Duration)
			}
			at += ph.Duration
			if last && ph.Duration > 0 {
				// A bounded final phase ends the job: its nodes fall
				// silent afterwards instead of generating forever.
				j.end = at
			}
			if ph.Process.Finite() {
				if ph.TotalPackets <= 0 {
					return nil, fmt.Errorf("traffic: job %d phase %d is finite but declares no TotalPackets", ji, pi)
				}
				w.total += ph.TotalPackets
			} else {
				w.finite = false
			}
			w.phases++
		}
	}
	if !w.finite {
		w.total = -1
	}
	return w, nil
}

// NewSingleWorkload wraps the classic pattern+process pair as a one-job,
// one-phase workload over all nodes — the form every pre-workload
// configuration normalizes to.
func NewSingleWorkload(pattern Pattern, process Process, nodes int) (*Workload, error) {
	if pattern == nil || process == nil {
		return nil, fmt.Errorf("traffic: workload needs a pattern and a process")
	}
	ph := Phase{Pattern: pattern, Process: process, Label: pattern.Name()}
	if process.Finite() {
		ph.TotalPackets = process.Total()
	}
	return NewWorkload(nodes, Job{First: 0, Last: nodes - 1, Phases: []Phase{ph}})
}

// JobOf returns the index of the job node belongs to, or -1 for idle nodes.
func (w *Workload) JobOf(node int) int { return int(w.jobOf[node]) }

// Finite reports whether every phase of every job eventually stops
// generating — the run then ends when the network drains, like the classic
// burst experiment.
func (w *Workload) Finite() bool { return w.finite }

// Total returns the number of packets a finite workload generates in
// total, or -1 for workloads with any steady phase.
func (w *Workload) Total() int64 { return w.total }

// TotalPhases returns the number of phases across all jobs; phase ids in
// the workload-global numbering are in [0, TotalPhases).
func (w *Workload) TotalPhases() int { return w.phases }

// PhaseID returns the workload-global id of phase pi of job ji.
func (w *Workload) PhaseID(ji, pi int) int { return w.Jobs[ji].base + pi }

// PhaseAt returns the index (within job ji's schedule) of the phase active
// at cycle and whether the job is still generating (false once a bounded
// final phase has expired). The scan resumes from a caller-maintained
// cursor; cycles must be non-decreasing per cursor, which makes the
// amortized cost O(1), and the cursor is plain caller-owned state, so
// concurrent callers (one per engine worker) never share it.
func (w *Workload) PhaseAt(ji int, cycle int64, cursor *int32) (int, bool) {
	j := &w.Jobs[ji]
	cur := int(*cursor)
	for cur+1 < len(j.Phases) && cycle >= j.starts[cur+1] {
		cur++
	}
	*cursor = int32(cur)
	return cur, j.end < 0 || cycle < j.end
}

// LastChange returns the last cycle at which any job's active phase (or
// activity) changes; after it the set of generating phases is static.
func (w *Workload) LastChange() int64 {
	var last int64
	for ji := range w.Jobs {
		j := &w.Jobs[ji]
		if n := len(j.starts); j.starts[n-1] > last {
			last = j.starts[n-1]
		}
		if j.end > last {
			last = j.end
		}
	}
	return last
}

// NextChange returns the first cycle after cycle at which job ji's active
// phase (or its activity) changes, or -1 when nothing changes anymore.
// Injection hot paths use it to cache phase lookups between transitions.
func (w *Workload) NextChange(ji int, cycle int64) int64 {
	j := &w.Jobs[ji]
	for _, s := range j.starts {
		if s > cycle {
			return s
		}
	}
	if j.end > cycle {
		return j.end
	}
	return -1
}

// Name renders the workload as a compact human-readable label: phase
// labels joined by "→" within a job, jobs joined by "|" with their node
// ranges. A one-job one-phase workload is just its phase label, so classic
// configurations keep their familiar pattern names ("UN", "ADVG+8", ...).
func (w *Workload) Name() string {
	if len(w.Jobs) == 1 && len(w.Jobs[0].Phases) == 1 {
		return w.Jobs[0].Phases[0].Label
	}
	var out []byte
	for ji := range w.Jobs {
		j := &w.Jobs[ji]
		if ji > 0 {
			out = append(out, '|')
		}
		if len(w.Jobs) > 1 {
			out = append(out, fmt.Sprintf("%d-%d:", j.First, j.Last)...)
		}
		for pi := range j.Phases {
			if pi > 0 {
				out = append(out, "→"...)
			}
			out = append(out, j.Phases[pi].Label...)
		}
	}
	return string(out)
}
