package traffic

import (
	"testing"
)

// wlPhase builds a steady test phase over pattern p.
func wlPhase(t *testing.T, p Pattern, load float64, dur int64) Phase {
	t.Helper()
	proc, err := NewBernoulli(load, 8)
	if err != nil {
		t.Fatal(err)
	}
	return Phase{Pattern: p, Process: proc, Duration: dur, Label: p.Name()}
}

func TestWorkloadCompile(t *testing.T) {
	p := topo(t, 2)
	un := NewUniform(p)
	adv, err := NewAdversarialGlobal(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	half := p.Nodes / 2
	w, err := NewWorkload(p.Nodes,
		Job{First: 0, Last: half - 1, Phases: []Phase{
			wlPhase(t, un, 0.2, 1000), wlPhase(t, adv, 0.4, 0),
		}},
		Job{First: half, Last: p.Nodes - 1, Phases: []Phase{
			wlPhase(t, un, 0.1, 0),
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if w.Finite() || w.Total() != -1 {
		t.Fatalf("steady workload reported finite (total %d)", w.Total())
	}
	if w.TotalPhases() != 3 {
		t.Fatalf("TotalPhases = %d, want 3", w.TotalPhases())
	}
	if w.JobOf(0) != 0 || w.JobOf(half-1) != 0 || w.JobOf(half) != 1 || w.JobOf(p.Nodes-1) != 1 {
		t.Fatal("JobOf mapped nodes to the wrong jobs")
	}
	if w.PhaseID(0, 1) != 1 || w.PhaseID(1, 0) != 2 {
		t.Fatalf("global phase ids: %d, %d", w.PhaseID(0, 1), w.PhaseID(1, 0))
	}
	if w.Jobs[0].Start(1) != 1000 {
		t.Fatalf("phase 1 starts at %d, want 1000", w.Jobs[0].Start(1))
	}
}

func TestWorkloadPhaseAt(t *testing.T) {
	p := topo(t, 2)
	un := NewUniform(p)
	w, err := NewWorkload(p.Nodes, Job{First: 0, Last: p.Nodes - 1, Phases: []Phase{
		wlPhase(t, un, 0.2, 100),
		wlPhase(t, un, 0.3, 200),
		wlPhase(t, un, 0.4, 50), // bounded final phase: job ends at 350
	}})
	if err != nil {
		t.Fatal(err)
	}
	var cur int32
	cases := []struct {
		cycle  int64
		phase  int
		active bool
	}{
		{0, 0, true}, {99, 0, true}, {100, 1, true}, {250, 1, true},
		{300, 2, true}, {349, 2, true}, {350, 2, false}, {1000, 2, false},
	}
	for _, c := range cases {
		pi, active := w.PhaseAt(0, c.cycle, &cur)
		if pi != c.phase || active != c.active {
			t.Errorf("PhaseAt(cycle %d) = (%d, %v), want (%d, %v)",
				c.cycle, pi, active, c.phase, c.active)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	p := topo(t, 2)
	un := NewUniform(p)
	ok := wlPhase(t, un, 0.2, 0)
	mid := wlPhase(t, un, 0.2, 100)

	cases := []struct {
		name string
		jobs []Job
	}{
		{"no jobs", nil},
		{"no phases", []Job{{First: 0, Last: 1}}},
		{"bad range", []Job{{First: 5, Last: 2, Phases: []Phase{ok}}}},
		{"range beyond nodes", []Job{{First: 0, Last: p.Nodes, Phases: []Phase{ok}}}},
		{"overlap", []Job{
			{First: 0, Last: 10, Phases: []Phase{ok}},
			{First: 10, Last: 20, Phases: []Phase{ok}},
		}},
		{"zero mid duration", []Job{{First: 0, Last: 1, Phases: []Phase{ok, mid}}}},
	}
	for _, c := range cases {
		if _, err := NewWorkload(p.Nodes, c.jobs...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}

	// A finite phase must declare its per-job packet total.
	burst, err := NewBurst(5, p.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewWorkload(p.Nodes, Job{First: 0, Last: 1, Phases: []Phase{
		{Pattern: un, Process: burst, Label: "b"},
	}})
	if err == nil {
		t.Error("finite phase without TotalPackets accepted")
	}
}

func TestWorkloadFiniteTotals(t *testing.T) {
	p := topo(t, 2)
	un := NewUniform(p)
	mkBurst := func(pkts, nodes int) Phase {
		b, err := NewBurst(pkts, p.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		return Phase{Pattern: un, Process: b, Label: "burst",
			TotalPackets: int64(pkts) * int64(nodes)}
	}
	half := p.Nodes / 2
	w, err := NewWorkload(p.Nodes,
		Job{First: 0, Last: half - 1, Phases: []Phase{mkBurst(3, half)}},
		Job{First: half, Last: p.Nodes - 1, Phases: []Phase{mkBurst(7, p.Nodes-half)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Finite() {
		t.Fatal("all-burst workload not finite")
	}
	want := int64(3*half + 7*(p.Nodes-half))
	if w.Total() != want {
		t.Fatalf("Total = %d, want %d", w.Total(), want)
	}
}

func TestSingleWorkloadWrapsLegacyPair(t *testing.T) {
	p := topo(t, 2)
	un := NewUniform(p)
	burst, err := NewBurst(4, p.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewSingleWorkload(un, burst, p.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Finite() || w.Total() != int64(4*p.Nodes) {
		t.Fatalf("wrapped burst: finite=%v total=%d", w.Finite(), w.Total())
	}
	if w.Name() != "UN" {
		t.Fatalf("one-phase workload name %q, want the pattern name", w.Name())
	}
	if w.TotalPhases() != 1 || w.JobOf(0) != 0 || w.JobOf(p.Nodes-1) != 0 {
		t.Fatal("wrap does not cover all nodes in one phase")
	}
}

func TestWorkloadName(t *testing.T) {
	p := topo(t, 2)
	un := NewUniform(p)
	adv, err := NewAdversarialGlobal(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(p.Nodes, Job{First: 0, Last: p.Nodes - 1, Phases: []Phase{
		wlPhase(t, un, 0.2, 500), wlPhase(t, adv, 0.2, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.Name(), "UN→ADVG+2"; got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	w2, err := NewWorkload(p.Nodes,
		Job{First: 0, Last: 7, Phases: []Phase{wlPhase(t, un, 0.2, 0)}},
		Job{First: 8, Last: 15, Phases: []Phase{wlPhase(t, adv, 0.2, 0)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w2.Name(), "0-7:UN|8-15:ADVG+2"; got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
}
