package traffic

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func topo(t *testing.T, h int) *topology.P {
	t.Helper()
	p, err := topology.New(h)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUniformExcludesSelfAndCovers(t *testing.T) {
	p := topo(t, 2)
	u := NewUniform(p)
	r := rng.New(1, 1)
	const src = 5
	seen := make(map[int]bool)
	for i := 0; i < 20000; i++ {
		d := u.Dest(src, r)
		if d == src {
			t.Fatal("uniform chose the source node")
		}
		if d < 0 || d >= p.Nodes {
			t.Fatalf("destination %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != p.Nodes-1 {
		t.Fatalf("uniform reached %d destinations, want %d", len(seen), p.Nodes-1)
	}
}

func TestUniformIsUniform(t *testing.T) {
	p := topo(t, 2)
	u := NewUniform(p)
	r := rng.New(3, 3)
	counts := make([]int, p.Nodes)
	const draws = 71 * 4000
	for i := 0; i < draws; i++ {
		counts[u.Dest(0, r)]++
	}
	want := float64(draws) / float64(p.Nodes-1)
	for n := 1; n < p.Nodes; n++ {
		if math.Abs(float64(counts[n])-want) > 6*math.Sqrt(want) {
			t.Errorf("node %d drawn %d times, want about %.0f", n, counts[n], want)
		}
	}
}

func TestAdversarialGlobalTargetsGroup(t *testing.T) {
	p := topo(t, 3)
	for _, off := range []int{1, 3, p.Groups - 1} {
		a, err := NewAdversarialGlobal(p, off)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(9, 1)
		for src := 0; src < p.Nodes; src += 7 {
			d := a.Dest(src, r)
			gs := p.GroupOf(p.RouterOfNode(src))
			gd := p.GroupOf(p.RouterOfNode(d))
			if gd != (gs+off)%p.Groups {
				t.Fatalf("ADVG+%d: src group %d dest group %d", off, gs, gd)
			}
		}
	}
}

func TestAdversarialGlobalRejectsBadOffset(t *testing.T) {
	p := topo(t, 2)
	for _, off := range []int{0, -1, p.Groups} {
		if _, err := NewAdversarialGlobal(p, off); err == nil {
			t.Errorf("ADVG offset %d accepted", off)
		}
	}
}

func TestAdversarialLocalTargetsRouter(t *testing.T) {
	p := topo(t, 3)
	a, err := NewAdversarialLocal(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4, 2)
	for src := 0; src < p.Nodes; src++ {
		d := a.Dest(src, r)
		rs, rd := p.RouterOfNode(src), p.RouterOfNode(d)
		if p.GroupOf(rs) != p.GroupOf(rd) {
			t.Fatalf("ADVL left the group: src %d dst %d", src, d)
		}
		if p.IndexInGroup(rd) != (p.IndexInGroup(rs)+1)%p.RoutersPerGroup {
			t.Fatalf("ADVL+1 wrong router: src idx %d dst idx %d",
				p.IndexInGroup(rs), p.IndexInGroup(rd))
		}
	}
}

func TestAdversarialLocalRejectsBadOffset(t *testing.T) {
	p := topo(t, 2)
	for _, off := range []int{0, p.RoutersPerGroup} {
		if _, err := NewAdversarialLocal(p, off); err == nil {
			t.Errorf("ADVL offset %d accepted", off)
		}
	}
}

func TestMixFractions(t *testing.T) {
	p := topo(t, 3)
	g, _ := NewAdversarialGlobal(p, p.H)
	l, _ := NewAdversarialLocal(p, 1)
	for _, frac := range []float64{0, 0.3, 1} {
		m, err := NewMix(g, l, frac)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(8, 8)
		const draws = 20000
		global := 0
		for i := 0; i < draws; i++ {
			src := r.Intn(p.Nodes)
			d := m.Dest(src, r)
			if p.GroupOf(p.RouterOfNode(d)) != p.GroupOf(p.RouterOfNode(src)) {
				global++
			}
		}
		got := float64(global) / draws
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("mix frac %.2f measured %.3f", frac, got)
		}
	}
}

// TestMixComponentDistribution pins down where each side of the MIX split
// actually lands: every global draw must hit exactly group src+h (the
// ADVG+h component), every local draw exactly router idx+1 of the source
// group (ADVL+1), and the split itself must track the configured fraction.
func TestMixComponentDistribution(t *testing.T) {
	p := topo(t, 3)
	g, err := NewAdversarialGlobal(p, p.H)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewAdversarialLocal(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	const frac = 0.6
	m, err := NewMix(g, l, frac)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17, 3)
	const draws = 30000
	global := 0
	src := 5 * p.H // first node of router 5 (group 0, index 5)
	srcRouter := p.RouterOfNode(src)
	srcGroup, srcIdx := p.GroupOf(srcRouter), p.IndexInGroup(srcRouter)
	for i := 0; i < draws; i++ {
		d := m.Dest(src, r)
		dr := p.RouterOfNode(d)
		if p.GroupOf(dr) != srcGroup {
			global++
			if want := (srcGroup + p.H) % p.Groups; p.GroupOf(dr) != want {
				t.Fatalf("global draw landed in group %d, want %d", p.GroupOf(dr), want)
			}
		} else {
			if want := (srcIdx + 1) % p.RoutersPerGroup; p.IndexInGroup(dr) != want {
				t.Fatalf("local draw landed on router index %d, want %d", p.IndexInGroup(dr), want)
			}
		}
	}
	got := float64(global) / draws
	if got < frac-0.02 || got > frac+0.02 {
		t.Fatalf("global fraction %.3f, want about %.2f", got, frac)
	}
}

func TestMixRejectsBadFraction(t *testing.T) {
	p := topo(t, 2)
	g, _ := NewAdversarialGlobal(p, 1)
	l, _ := NewAdversarialLocal(p, 1)
	if _, err := NewMix(g, l, 1.5); err == nil {
		t.Fatal("mix fraction 1.5 accepted")
	}
}

func TestBernoulliRateMatchesLoad(t *testing.T) {
	b, err := NewBernoulli(0.4, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2, 2)
	const cycles = 200000
	gen := 0
	for c := int64(0); c < cycles; c++ {
		if b.Generate(0, c, r) {
			gen += 8
		}
	}
	got := float64(gen) / cycles
	if math.Abs(got-0.4) > 0.01 {
		t.Fatalf("offered load %v, want 0.4", got)
	}
	if b.Finite() {
		t.Fatal("Bernoulli claims to be finite")
	}
}

func TestBernoulliRejectsBadParams(t *testing.T) {
	if _, err := NewBernoulli(-0.1, 8); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := NewBernoulli(0.5, 0); err == nil {
		t.Fatal("zero packet size accepted")
	}
}

func TestBurstCountsDown(t *testing.T) {
	b, err := NewBurst(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Finite() {
		t.Fatal("burst not finite")
	}
	r := rng.New(1, 1)
	for i := 0; i < 3; i++ {
		if !b.Generate(0, 0, r) {
			t.Fatalf("burst refused packet %d", i)
		}
		b.Consume(0)
	}
	if b.Generate(0, 0, r) {
		t.Fatal("burst generated a 4th packet")
	}
	if !b.Done(0) {
		t.Fatal("node 0 not done")
	}
	if b.Done(1) {
		t.Fatal("node 1 done without sending")
	}
}
