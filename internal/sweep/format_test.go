package sweep

import (
	"errors"
	"math"
	"strings"
	"testing"

	dragonfly "repro"
)

func sampleSeries() []Series {
	return []Series{{
		Name: "RLM",
		Points: []Point{
			{X: 0.1, Result: dragonfly.Result{AcceptedLoad: 0.1, AvgTotalLatency: 120, AvgNetworkLatency: 95, ConsumptionCycles: 4000}},
			{X: 0.2, Result: dragonfly.Result{AcceptedLoad: 0.19, AvgTotalLatency: 130, AvgNetworkLatency: 101, ConsumptionCycles: 8000}},
		},
	}}
}

func TestMetricValues(t *testing.T) {
	p := sampleSeries()[0].Points[0]
	cases := []struct {
		metric Metric
		want   float64
	}{
		{AcceptedLoad, 0.1},
		{TotalLatency, 120},
		{NetworkLatency, 95},
		{ConsumptionTime, 4}, // kilocycles
	}
	for _, c := range cases {
		if got := c.metric.value(p); got != c.want {
			t.Fatalf("%s value = %v, want %v", c.metric, got, c.want)
		}
	}
	if v := Metric(99).value(p); !math.IsNaN(v) {
		t.Fatalf("unknown metric value = %v, want NaN", v)
	}
}

// TestFailedPointsRenderAsMissing guards against failed points leaking
// into figure data as plausible-looking zeros.
func TestFailedPointsRenderAsMissing(t *testing.T) {
	series := []Series{{
		Name: "OLM",
		Points: []Point{
			{X: 0.1, Result: dragonfly.Result{AcceptedLoad: 0.1}},
			{X: 0.3, Err: errors.New("boom")},
		},
	}}
	if v := AcceptedLoad.value(series[0].Points[1]); !math.IsNaN(v) {
		t.Fatalf("failed point value = %v, want NaN", v)
	}
	var dat strings.Builder
	if err := WriteDAT(&dat, "load", AcceptedLoad, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dat.String(), "0.3\tNaN") {
		t.Fatalf("failed point not NaN in DAT:\n%s", dat.String())
	}
	var md strings.Builder
	if err := WriteMarkdown(&md, "load", AcceptedLoad, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| error |") {
		t.Fatalf("failed point not marked in markdown:\n%s", md.String())
	}
}

func TestMetricStrings(t *testing.T) {
	for _, m := range []Metric{AcceptedLoad, TotalLatency, NetworkLatency, ConsumptionTime} {
		if m.String() == "unknown" {
			t.Fatalf("metric %d has no name", m)
		}
	}
	if Metric(99).String() != "unknown" {
		t.Fatal("out-of-range metric must name itself unknown")
	}
}

func TestWriteDAT(t *testing.T) {
	var dat strings.Builder
	if err := WriteDAT(&dat, "Offered load", AcceptedLoad, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	got := dat.String()
	for _, want := range []string{
		"# x: Offered load",
		"# y: Accepted load (phits/(node*cycle))",
		"# series: RLM",
		"0.1\t0.1",
		"0.2\t0.19",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("DAT output missing %q:\n%s", want, got)
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	var md strings.Builder
	if err := WriteMarkdown(&md, "load", TotalLatency, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"| load | RLM |", "|---|---|", "| 0.1 | 120 |", "| 0.2 | 130 |"} {
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown missing %q:\n%s", want, md.String())
		}
	}
}

func TestWriteMarkdownEmptyAndRagged(t *testing.T) {
	var md strings.Builder
	if err := WriteMarkdown(&md, "x", AcceptedLoad, nil); err != nil {
		t.Fatal(err)
	}
	if md.Len() != 0 {
		t.Fatalf("empty series produced output: %q", md.String())
	}

	// A short second series must render "-" placeholders, not panic.
	ragged := append(sampleSeries(), Series{Name: "OLM", Points: []Point{
		{X: 0.1, Result: dragonfly.Result{AcceptedLoad: 0.11}},
	}})
	md.Reset()
	if err := WriteMarkdown(&md, "load", AcceptedLoad, ragged); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(md.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, " - |") {
		t.Fatalf("ragged series row lacks placeholder: %q", last)
	}
}

func TestWriteMarkdownAnnotatesDeadlock(t *testing.T) {
	series := []Series{{
		Name: "OFAR",
		Points: []Point{
			{X: 0.5, Result: dragonfly.Result{AcceptedLoad: 0.02, Deadlock: true}},
		},
	}}
	var md strings.Builder
	if err := WriteMarkdown(&md, "load", AcceptedLoad, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "(deadlock!)") {
		t.Fatalf("deadlocked point not annotated:\n%s", md.String())
	}
}

func TestSaturation(t *testing.T) {
	s := Series{Points: []Point{
		{Result: dragonfly.Result{AcceptedLoad: 0.2}},
		{Result: dragonfly.Result{AcceptedLoad: 0.45}},
		{Result: dragonfly.Result{AcceptedLoad: 0.41}},
	}}
	if got := Saturation(s); got != 0.45 {
		t.Fatalf("saturation %v", got)
	}
	if got := Saturation(Series{}); got != 0 {
		t.Fatalf("empty series saturation %v", got)
	}
}

func TestWriteTimelineDAT(t *testing.T) {
	tl := &dragonfly.Timeline{WindowCycles: 100, Windows: []dragonfly.Window{
		{Start: 0, End: 100, AcceptedLoad: 0.2, AvgTotalLatency: 120, P99Latency: 256},
		{Start: 100, End: 150, AcceptedLoad: 0.1, AvgTotalLatency: 300, P99Latency: 512},
	}}
	var buf strings.Builder
	err := WriteTimelineDAT(&buf, WindowAccepted, []TimelineSeries{
		{Name: "OLM", Timeline: tl},
		{Name: "broken", Timeline: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# x: Cycle", "# series: OLM", "# series: broken",
		"50\t0.2", "125\t0.1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline dat missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteTimelineDAT(&buf, WindowLatency, []TimelineSeries{{Name: "x", Timeline: tl}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "50\t120") {
		t.Fatalf("latency metric not rendered:\n%s", buf.String())
	}
}
