package sweep

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	dragonfly "repro"
)

// -update regenerates the golden files from the current writer output:
//
//	go test ./internal/sweep -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenSeries is a fixed, hand-built figure input covering the writer
// edge cases: several series, a failed point (NaN in DAT, "error" in
// markdown), a deadlocked point, and a fault-drop column.
func goldenSeries() []Series {
	res := func(accepted, latency float64, drops int64) dragonfly.Result {
		return dragonfly.Result{
			AcceptedLoad:    accepted,
			AvgTotalLatency: latency,
			Generated:       1000,
			FaultDrops:      drops,
		}
	}
	deadlocked := res(0.05, 9000, 0)
	deadlocked.Deadlock = true
	return []Series{
		{Name: "Minimal", Points: []Point{
			{X: 0.1, Result: res(0.1, 25, 0)},
			{X: 0.5, Result: res(0.42, 310.25, 120)},
			{X: 0.9, Result: deadlocked},
		}},
		{Name: "OLM", Points: []Point{
			{X: 0.1, Result: res(0.1, 27.5, 0)},
			{X: 0.5, Result: res(0.5, 55, 1)},
			{X: 0.9, Err: fmt.Errorf("boom")},
		}},
	}
}

// goldenTimelines is a fixed transient-figure input: two series, one with
// windows (including an empty window), one failed (nil timeline).
func goldenTimelines() []TimelineSeries {
	return []TimelineSeries{
		{Name: "OLM", Timeline: &dragonfly.Timeline{
			WindowCycles: 100,
			Windows: []dragonfly.Window{
				{Start: 0, End: 100, AcceptedLoad: 0.25, AvgTotalLatency: 40, P99Latency: 128},
				{Start: 100, End: 200},
				{Start: 200, End: 250, AcceptedLoad: 0.125, AvgTotalLatency: 60.5, P99Latency: 256},
			},
		}},
		{Name: "Minimal", Timeline: nil},
	}
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update. Golden files pin the exact bytes figure pipelines
// emit, so an accidental format change shows up in review as a diff here
// instead of as churn in downstream plots.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file.\n--- want\n%s--- got\n%s\n(rerun with -update if the change is intentional)",
			name, want, got)
	}
}

func TestGoldenWriteDAT(t *testing.T) {
	for _, m := range []Metric{AcceptedLoad, TotalLatency, FaultDropRate} {
		var buf bytes.Buffer
		if err := WriteDAT(&buf, "Offered load", m, goldenSeries()); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, fmt.Sprintf("dat_metric%d", int(m)), buf.Bytes())
	}
}

func TestGoldenWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, "load", AcceptedLoad, goldenSeries()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "markdown", buf.Bytes())
}

func TestGoldenWriteTimelineDAT(t *testing.T) {
	for _, m := range []TimelineMetric{WindowAccepted, WindowLatency, WindowP99} {
		var buf bytes.Buffer
		if err := WriteTimelineDAT(&buf, m, goldenTimelines()); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, fmt.Sprintf("timeline_metric%d", int(m)), buf.Bytes())
	}
}
