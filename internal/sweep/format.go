package sweep

import (
	"fmt"
	"io"
	"math"
	"strings"

	dragonfly "repro"
)

// Metric selects which y-value of a Point a rendering uses.
type Metric int

// Metrics the paper's figures plot.
const (
	AcceptedLoad     Metric = iota // phits/(node·cycle)
	TotalLatency                   // cycles, generation -> delivery
	NetworkLatency                 // cycles, injection -> delivery
	ConsumptionTime                // kilocycles to drain a burst
	FaultDropRate                  // fault drops per generated packet
	DropSuppressRate               // fault drops + suppressed injections per generated packet
)

// String names the metric as the paper's axis labels do.
func (m Metric) String() string {
	switch m {
	case AcceptedLoad:
		return "Accepted load (phits/(node*cycle))"
	case TotalLatency:
		return "Average latency (cycles)"
	case NetworkLatency:
		return "Average network latency (cycles)"
	case ConsumptionTime:
		return "Burst consumption time (1000 cycles)"
	case FaultDropRate:
		return "Fault drops per generated packet"
	case DropSuppressRate:
		return "Fault drops + suppressed injections per generated packet"
	}
	return "unknown"
}

// value extracts the metric from one point. A failed point yields NaN,
// never a plausible-looking zero: gnuplot treats NaN as missing data, so
// a .dat file re-plotted long after the run still shows the gap.
func (m Metric) value(p Point) float64 {
	if p.Err != nil {
		return math.NaN()
	}
	switch m {
	case AcceptedLoad:
		return p.Result.AcceptedLoad
	case TotalLatency:
		return p.Result.AvgTotalLatency
	case NetworkLatency:
		return p.Result.AvgNetworkLatency
	case ConsumptionTime:
		return float64(p.Result.ConsumptionCycles) / 1000
	case FaultDropRate:
		if p.Result.Generated == 0 {
			return 0
		}
		return float64(p.Result.FaultDrops) / float64(p.Result.Generated)
	case DropSuppressRate:
		if p.Result.Generated == 0 {
			return 0
		}
		return float64(p.Result.FaultDrops+p.Result.Suppressed) / float64(p.Result.Generated)
	}
	return math.NaN()
}

// WriteDAT renders the series as a gnuplot-style data file: one block of
// "x y" lines per series, separated by blank lines and labeled with
// comment headers.
func WriteDAT(w io.Writer, xLabel string, metric Metric, series []Series) error {
	if _, err := fmt.Fprintf(w, "# x: %s\n# y: %s\n", xLabel, metric); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "\n# series: %s\n", s.Name); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%g\t%g\n", p.X, metric.value(p)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteMarkdown renders the series as one markdown table: rows are x
// values, one column per series.
func WriteMarkdown(w io.Writer, xLabel string, metric Metric, series []Series) error {
	if len(series) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteString("| " + xLabel + " |")
	for _, s := range series {
		b.WriteString(" " + s.Name + " |")
	}
	b.WriteString("\n|---|")
	for range series {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for i := range series[0].Points {
		fmt.Fprintf(&b, "| %g |", series[0].Points[i].X)
		for _, s := range series {
			switch {
			case i >= len(s.Points):
				b.WriteString(" - |")
			case s.Points[i].Err != nil:
				b.WriteString(" error |")
			case s.Points[i].Result.Deadlock:
				fmt.Fprintf(&b, " %.4g (deadlock!) |", metric.value(s.Points[i]))
			default:
				fmt.Fprintf(&b, " %.4g |", metric.value(s.Points[i]))
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TimelineMetric selects the per-window y-value of a timeline rendering.
type TimelineMetric int

// Metrics of the transient (time-series) figures.
const (
	WindowAccepted TimelineMetric = iota // phits/(node·cycle) per window
	WindowLatency                        // average latency of the window's deliveries
	WindowP99                            // p99 latency of the window's deliveries
)

// String names the metric as an axis label.
func (m TimelineMetric) String() string {
	switch m {
	case WindowAccepted:
		return "Accepted load (phits/(node*cycle))"
	case WindowLatency:
		return "Average latency (cycles)"
	case WindowP99:
		return "p99 latency (cycles)"
	}
	return "unknown"
}

func (m TimelineMetric) value(w dragonfly.Window) float64 {
	switch m {
	case WindowAccepted:
		return w.AcceptedLoad
	case WindowLatency:
		return w.AvgTotalLatency
	case WindowP99:
		return w.P99Latency
	}
	return math.NaN()
}

// TimelineSeries is one curve of a transient figure: a run's timeline
// under a series label (typically the mechanism name).
type TimelineSeries struct {
	Name     string
	Timeline *dragonfly.Timeline
}

// WriteTimelineDAT renders per-window time series as a gnuplot-style data
// file: one block per series, x = the window's midpoint cycle. Series
// without a timeline (failed points) render as empty blocks.
func WriteTimelineDAT(w io.Writer, metric TimelineMetric, series []TimelineSeries) error {
	if _, err := fmt.Fprintf(w, "# x: Cycle\n# y: %s\n", metric); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "\n# series: %s\n", s.Name); err != nil {
			return err
		}
		if s.Timeline == nil {
			continue
		}
		for _, win := range s.Timeline.Windows {
			mid := float64(win.Start+win.End) / 2
			if _, err := fmt.Fprintf(w, "%g\t%g\n", mid, metric.value(win)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Saturation returns the highest accepted load seen in a series — the
// paper's "maximum throughput" summary number.
func Saturation(s Series) float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Result.AcceptedLoad > best {
			best = p.Result.AcceptedLoad
		}
	}
	return best
}
