package sweep

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	dragonfly "repro"
	"repro/internal/exp"
)

func tinyBase() dragonfly.Config {
	cfg := dragonfly.PaperVCT(2)
	cfg.LatLocal, cfg.LatGlobal = 4, 16
	cfg.Warmup, cfg.Measure = 400, 800
	cfg.Seed = 7
	return cfg
}

func TestLoadSweepShapes(t *testing.T) {
	series, err := LoadSweep(tinyBase(),
		[]dragonfly.Mechanism{dragonfly.Minimal, dragonfly.RLM},
		[]float64{0.1, 0.3}, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Result.Delivered == 0 {
				t.Fatalf("series %s x=%v delivered nothing", s.Name, p.X)
			}
		}
		if s.Points[0].X != 0.1 || s.Points[1].X != 0.3 {
			t.Fatalf("series %s x order wrong: %v %v", s.Name, s.Points[0].X, s.Points[1].X)
		}
	}
}

func TestLoadSweepRejectsEmpty(t *testing.T) {
	if _, err := LoadSweep(tinyBase(), nil, []float64{0.1}, Options{}); err == nil {
		t.Fatal("empty mechanisms accepted")
	}
	if _, err := LoadSweep(tinyBase(), []dragonfly.Mechanism{dragonfly.RLM}, nil, Options{}); err == nil {
		t.Fatal("empty loads accepted")
	}
}

func TestMixSweep(t *testing.T) {
	series, err := MixSweep(tinyBase(),
		[]dragonfly.Mechanism{dragonfly.RLM},
		[]float64{0, 100}, 0.8, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range series[0].Points {
		if p.Result.Delivered == 0 {
			t.Fatalf("mix %v%% delivered nothing", p.X)
		}
	}
}

func TestBurstSweep(t *testing.T) {
	series, err := BurstSweep(tinyBase(),
		[]dragonfly.Mechanism{dragonfly.RLM},
		[]float64{50}, 5, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := series[0].Points[0]
	if p.Result.ConsumptionCycles <= 0 {
		t.Fatalf("consumption cycles %d", p.Result.ConsumptionCycles)
	}
	if _, err := BurstSweep(tinyBase(), []dragonfly.Mechanism{dragonfly.RLM}, []float64{50}, 0, Options{}); err == nil {
		t.Fatal("zero burst size accepted")
	}
}

func TestThresholdSweep(t *testing.T) {
	series, err := ThresholdSweep(tinyBase(), dragonfly.RLM,
		[]float64{0.3, 0.6}, []float64{0.2}, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	if !strings.Contains(series[0].Name, "30%") {
		t.Fatalf("series name %q lacks threshold", series[0].Name)
	}
}

func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	count := 0
	_, err := LoadSweep(tinyBase(), []dragonfly.Mechanism{dragonfly.Minimal},
		[]float64{0.1, 0.2}, Options{Parallelism: 2, Progress: func(string, Point) {
			mu.Lock()
			count++
			mu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("progress called %d times, want 2", count)
	}
}

func TestLoadsGrid(t *testing.T) {
	g := Loads(0.1, 0.9, 5)
	if len(g) != 5 || g[0] != 0.1 || g[4] != 0.9 {
		t.Fatalf("grid %v", g)
	}
	if len(Loads(0.5, 1, 1)) != 1 {
		t.Fatal("n=1 grid")
	}
}

// TestPerPointErrorSurfacing checks the orchestrator-backed sweep keeps
// going past a failing point: the returned series are complete, the bad
// point carries its error, and the sweep error names it.
func TestPerPointErrorSurfacing(t *testing.T) {
	base := tinyBase()
	base.FlowControl = dragonfly.WH
	base.PacketPhits = 40
	// OLM requires VCT, so its points fail while RLM's succeed.
	series, err := LoadSweep(base,
		[]dragonfly.Mechanism{dragonfly.OLM, dragonfly.RLM},
		[]float64{0.1}, Options{Parallelism: 2})
	if err == nil || !strings.Contains(err.Error(), "OLM") {
		t.Fatalf("sweep error %v does not name the failing series", err)
	}
	if series[0].Points[0].Err == nil {
		t.Fatal("failing point has no per-point error")
	}
	if series[1].Points[0].Err != nil || series[1].Points[0].Result.Delivered == 0 {
		t.Fatalf("healthy series poisoned: %+v", series[1].Points[0])
	}
}

func TestSweepUsesCache(t *testing.T) {
	cache, err := exp.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Parallelism: 2, Cache: cache}
	first, err := LoadSweep(tinyBase(), []dragonfly.Mechanism{dragonfly.Minimal}, []float64{0.1, 0.3}, opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := LoadSweep(tinyBase(), []dragonfly.Mechanism{dragonfly.Minimal}, []float64{0.1, 0.3}, opt)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ := cache.Stats()
	if hits != 2 {
		t.Fatalf("%d cache hits on the repeated sweep, want 2", hits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached sweep differs from the original")
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	series, err := LoadSweep(tinyBase(), []dragonfly.Mechanism{dragonfly.Minimal},
		[]float64{0.1}, Options{Context: ctx})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep error = %v", err)
	}
	if series[0].Points[0].Err == nil {
		t.Fatal("canceled point has no error")
	}
}
