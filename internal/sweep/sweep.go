// Package sweep drives the paper's experiments: offered-load sweeps
// (Figures 4, 5, 7, 8 and 10, 11), traffic-mix sweeps (Figures 6a, 9a) and
// burst-consumption experiments (Figures 6b, 9b). Points of a sweep run
// concurrently on a bounded worker pool; each point is an independent,
// deterministic simulation.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	dragonfly "repro"
)

// Point is one simulated configuration together with its x-axis value.
type Point struct {
	X      float64 // offered load, global-traffic percent, or threshold
	Result dragonfly.Result
	Err    error
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Options bound the sweep execution.
type Options struct {
	// Parallelism is the number of concurrently running simulations
	// (default: GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives a line per finished point.
	Progress func(series string, p Point)
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// job couples a pending point with its slot in the output.
type job struct {
	series string
	x      float64
	cfg    dragonfly.Config
	out    *Point
}

// runJobs executes all jobs on the pool.
func runJobs(jobs []job, opt Options) {
	sem := make(chan struct{}, opt.parallelism())
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := dragonfly.Run(j.cfg)
			j.out.X = j.x
			j.out.Result = res
			j.out.Err = err
			if opt.Progress != nil {
				opt.Progress(j.series, *j.out)
			}
		}(&jobs[i])
	}
	wg.Wait()
}

// LoadSweep sweeps offered load for each mechanism over the base
// configuration (base.Traffic, flow control etc. are kept; Load and
// Mechanism vary). It returns one series per mechanism, points ordered as
// in loads.
func LoadSweep(base dragonfly.Config, mechanisms []dragonfly.Mechanism, loads []float64, opt Options) ([]Series, error) {
	if len(mechanisms) == 0 || len(loads) == 0 {
		return nil, fmt.Errorf("sweep: empty mechanism or load list")
	}
	series := make([]Series, len(mechanisms))
	var jobs []job
	for mi, m := range mechanisms {
		series[mi] = Series{Name: m.String(), Points: make([]Point, len(loads))}
		for li, load := range loads {
			cfg := base
			cfg.Mechanism = m
			cfg.Load = load
			cfg.BurstPackets = 0
			jobs = append(jobs, job{
				series: series[mi].Name, x: load, cfg: cfg,
				out: &series[mi].Points[li],
			})
		}
	}
	runJobs(jobs, opt)
	return series, firstErr(series)
}

// MixSweep sweeps the ADVG+h / ADVL+1 traffic mix at fixed offered load
// (the paper uses 1.0) for each mechanism (Figures 6a, 9a).
func MixSweep(base dragonfly.Config, mechanisms []dragonfly.Mechanism, percents []float64, load float64, opt Options) ([]Series, error) {
	if len(mechanisms) == 0 || len(percents) == 0 {
		return nil, fmt.Errorf("sweep: empty mechanism or percent list")
	}
	series := make([]Series, len(mechanisms))
	var jobs []job
	for mi, m := range mechanisms {
		series[mi] = Series{Name: m.String(), Points: make([]Point, len(percents))}
		for pi, pct := range percents {
			cfg := base
			cfg.Mechanism = m
			cfg.Load = load
			cfg.BurstPackets = 0
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: pct}
			jobs = append(jobs, job{
				series: series[mi].Name, x: pct, cfg: cfg,
				out: &series[mi].Points[pi],
			})
		}
	}
	runJobs(jobs, opt)
	return series, firstErr(series)
}

// BurstSweep runs the burst-consumption experiment over the traffic mix:
// every node sends packetsPerNode packets and the consumption time is
// reported (Figures 6b, 9b).
func BurstSweep(base dragonfly.Config, mechanisms []dragonfly.Mechanism, percents []float64, packetsPerNode int, opt Options) ([]Series, error) {
	if packetsPerNode <= 0 {
		return nil, fmt.Errorf("sweep: burst needs packetsPerNode > 0")
	}
	series := make([]Series, len(mechanisms))
	var jobs []job
	for mi, m := range mechanisms {
		series[mi] = Series{Name: m.String(), Points: make([]Point, len(percents))}
		for pi, pct := range percents {
			cfg := base
			cfg.Mechanism = m
			cfg.BurstPackets = packetsPerNode
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: pct}
			jobs = append(jobs, job{
				series: series[mi].Name, x: pct, cfg: cfg,
				out: &series[mi].Points[pi],
			})
		}
	}
	runJobs(jobs, opt)
	return series, firstErr(series)
}

// ThresholdSweep sweeps the misrouting threshold for one mechanism over
// offered load (Figures 10, 11). Thresholds are fractions (0.45 = 45%).
func ThresholdSweep(base dragonfly.Config, mechanism dragonfly.Mechanism, thresholds, loads []float64, opt Options) ([]Series, error) {
	if len(thresholds) == 0 || len(loads) == 0 {
		return nil, fmt.Errorf("sweep: empty threshold or load list")
	}
	series := make([]Series, len(thresholds))
	var jobs []job
	for ti, th := range thresholds {
		series[ti] = Series{
			Name:   fmt.Sprintf("%s th=%.0f%%", mechanism, th*100),
			Points: make([]Point, len(loads)),
		}
		for li, load := range loads {
			cfg := base
			cfg.Mechanism = mechanism
			cfg.Threshold = th
			cfg.Load = load
			cfg.BurstPackets = 0
			jobs = append(jobs, job{
				series: series[ti].Name, x: load, cfg: cfg,
				out: &series[ti].Points[li],
			})
		}
	}
	runJobs(jobs, opt)
	return series, firstErr(series)
}

func firstErr(series []Series) error {
	for _, s := range series {
		for _, p := range s.Points {
			if p.Err != nil {
				return fmt.Errorf("sweep: %s x=%v: %w", s.Name, p.X, p.Err)
			}
		}
	}
	return nil
}

// Loads returns an evenly spaced load grid [from, to] with n points,
// a convenience for figure scripts.
func Loads(from, to float64, n int) []float64 {
	if n < 2 {
		return []float64{from}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = from + (to-from)*float64(i)/float64(n-1)
	}
	return out
}
