// Package sweep builds the point lists behind the paper's experiments:
// offered-load sweeps (Figures 4, 5, 7, 8 and 10, 11), traffic-mix sweeps
// (Figures 6a, 9a) and burst-consumption experiments (Figures 6b, 9b).
// The sweep functions compose the campaign via internal/exp's matrix
// builder, execute it on exp's bounded worker pool — inheriting its
// cancellation, caching and JSONL streaming — and fold the outcomes back
// into per-mechanism Series for the figure renderers in format.go.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"

	dragonfly "repro"
	"repro/internal/exp"
	"repro/internal/topology"
)

// Point is one simulated configuration together with its x-axis value.
type Point struct {
	X      float64 // offered load, global-traffic percent, or threshold
	Result dragonfly.Result
	Err    error
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Options bound the sweep execution.
type Options struct {
	// Parallelism is the number of concurrently running simulations
	// (default: GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives a line per finished point.
	Progress func(series string, p Point)
	// Context, when non-nil, cancels the sweep: in-flight simulations
	// abort at their next cycle check, unstarted points record the
	// context's error.
	Context context.Context
	// Cache, when non-nil, serves repeated points without simulating.
	// Ignored when Remote is set — the server has its own store.
	Cache *exp.Cache
	// JSONL, when non-nil, receives one JSON line per finished point.
	// Sweeps always emit canonical JSONL (campaign order, volatile
	// fields zeroed; see exp.Options.CanonicalJSONL), so the stream for
	// a given campaign is byte-identical across worker counts, cache
	// states, and local versus remote execution.
	JSONL io.Writer
	// Remote, when non-nil, executes the campaign on a dragonsrv server
	// instead of in-process (srv.Client implements this). Progress and
	// JSONL behave exactly as they do locally.
	Remote Runner
}

// Runner executes a campaign with exp.Run's contract. srv.Client is the
// remote implementation; the zero Options use exp.Run itself.
type Runner interface {
	Run(ctx context.Context, camp exp.Campaign, opt exp.Options) ([]exp.Outcome, error)
}

// exec runs the campaign and folds the outcomes into series. The campaign
// must be series-major: len(series)*pointsPer points, the outcomes of
// series si occupying indices [si*pointsPer, (si+1)*pointsPer) — the
// layout exp.Matrix generates when the series axes precede the x axis.
// The returned error joins every per-point failure; the series are
// complete (failed points carry their error) even when it is non-nil.
func exec(camp exp.Campaign, series []Series, pointsPer int, opt Options) ([]Series, error) {
	eopt := exp.Options{
		Workers:        opt.Parallelism,
		Cache:          opt.Cache,
		JSONL:          opt.JSONL,
		CanonicalJSONL: true,
	}
	if opt.Remote != nil {
		eopt.Cache = nil
	}
	if opt.Progress != nil {
		eopt.Progress = func(pr exp.Progress) {
			o := pr.Outcome
			opt.Progress(o.Point.Series, Point{X: o.Point.X, Result: o.Result, Err: o.Err})
		}
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	run := exp.Run
	if opt.Remote != nil {
		run = opt.Remote.Run
	}
	outs, runErr := run(ctx, camp, eopt)
	for _, o := range outs {
		si, pi := o.Index/pointsPer, o.Index%pointsPer
		series[si].Points[pi] = Point{X: o.Point.X, Result: o.Result, Err: o.Err}
	}
	if err := errors.Join(runErr, exp.PointErrors(outs)); err != nil {
		return series, fmt.Errorf("sweep: %w", err)
	}
	return series, nil
}

// newSeries allocates one empty curve per name, pointsPer points each.
func newSeries(names []string, pointsPer int) []Series {
	series := make([]Series, len(names))
	for i, name := range names {
		series[i] = Series{Name: name, Points: make([]Point, pointsPer)}
	}
	return series
}

func mechNames(mechanisms []dragonfly.Mechanism) []string {
	names := make([]string, len(mechanisms))
	for i, m := range mechanisms {
		names[i] = m.String()
	}
	return names
}

// LoadSweep sweeps offered load for each mechanism over the base
// configuration (base.Traffic, flow control etc. are kept; Load and
// Mechanism vary). It returns one series per mechanism, points ordered as
// in loads.
func LoadSweep(base dragonfly.Config, mechanisms []dragonfly.Mechanism, loads []float64, opt Options) ([]Series, error) {
	if len(mechanisms) == 0 || len(loads) == 0 {
		return nil, fmt.Errorf("sweep: empty mechanism or load list")
	}
	camp := exp.NewMatrix(base).
		Mechanisms(mechanisms...).
		Loads(loads...).
		Campaign("load-sweep")
	return exec(camp, newSeries(mechNames(mechanisms), len(loads)), len(loads), opt)
}

// MixSweep sweeps the ADVG+h / ADVL+1 traffic mix at fixed offered load
// (the paper uses 1.0) for each mechanism (Figures 6a, 9a).
func MixSweep(base dragonfly.Config, mechanisms []dragonfly.Mechanism, percents []float64, load float64, opt Options) ([]Series, error) {
	if len(mechanisms) == 0 || len(percents) == 0 {
		return nil, fmt.Errorf("sweep: empty mechanism or percent list")
	}
	base.Load = load
	base.BurstPackets = 0
	camp := exp.NewMatrix(base).
		Mechanisms(mechanisms...).
		GlobalPercents(percents...).
		Campaign("mix-sweep")
	return exec(camp, newSeries(mechNames(mechanisms), len(percents)), len(percents), opt)
}

// BurstSweep runs the burst-consumption experiment over the traffic mix:
// every node sends packetsPerNode packets and the consumption time is
// reported (Figures 6b, 9b).
func BurstSweep(base dragonfly.Config, mechanisms []dragonfly.Mechanism, percents []float64, packetsPerNode int, opt Options) ([]Series, error) {
	if packetsPerNode <= 0 {
		return nil, fmt.Errorf("sweep: burst needs packetsPerNode > 0")
	}
	base.BurstPackets = packetsPerNode
	camp := exp.NewMatrix(base).
		Mechanisms(mechanisms...).
		GlobalPercents(percents...).
		Campaign("burst-sweep")
	return exec(camp, newSeries(mechNames(mechanisms), len(percents)), len(percents), opt)
}

// FaultSweep sweeps the global-link failure fraction at the base config's
// offered load for each mechanism — the resilience figure. Fraction 0 is
// the pristine network; each faulted point draws its failed links
// deterministically from the base seed.
func FaultSweep(base dragonfly.Config, mechanisms []dragonfly.Mechanism, fractions []float64, opt Options) ([]Series, error) {
	if len(mechanisms) == 0 || len(fractions) == 0 {
		return nil, fmt.Errorf("sweep: empty mechanism or fraction list")
	}
	camp := exp.NewMatrix(base).
		Mechanisms(mechanisms...).
		XAxis(fractions, func(c *dragonfly.Config, x float64) {
			if x > 0 {
				c.Faults = &dragonfly.FaultSpec{GlobalFraction: x}
			} else {
				c.Faults = nil
			}
		}).
		Campaign("fault-sweep")
	return exec(camp, newSeries(mechNames(mechanisms), len(fractions)), len(fractions), opt)
}

// DegradationSweep sweeps a composite failure severity for each mechanism
// at the base config's load and traffic — the graceful-degradation figure.
// Severity s kills router index 0 of groups 1..s from the start and flaps
// the base pattern's pathological global channel (group 0's channel to
// group h, the one ADVG+h traffic concentrates on) for s periods across
// the measurement window, so the x axis escalates hard capacity loss and
// routing-table churn together. Severity 0 is the pristine baseline.
// Severities are clamped nowhere: callers keep s+1 <= 2h²+1 groups.
func DegradationSweep(base dragonfly.Config, mechanisms []dragonfly.Mechanism, severities []int, opt Options) ([]Series, error) {
	if len(mechanisms) == 0 || len(severities) == 0 {
		return nil, fmt.Errorf("sweep: empty mechanism or severity list")
	}
	h := base.H
	if h == 0 {
		h = 4 // Config's documented default
	}
	p, err := topology.New(h)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	warmup, measure := base.Warmup, base.Measure
	if warmup == 0 {
		warmup = 3000
	}
	if measure == 0 {
		measure = 6000
	}
	idx, port := p.GlobalPortOfChannel(p.ChannelToGroup(0, h))
	flapLink := dragonfly.LinkID{Router: p.RouterID(0, idx), Port: port}
	period := measure / 8
	if period < 4 {
		period = 4 // keep 0 < Down < Period for toy measurement windows
	}
	xs := make([]float64, len(severities))
	for i, s := range severities {
		xs[i] = float64(s)
	}
	camp := exp.NewMatrix(base).
		Mechanisms(mechanisms...).
		XAxis(xs, func(c *dragonfly.Config, x float64) {
			s := int(x)
			if s <= 0 {
				c.Faults = nil
				return
			}
			spec := &dragonfly.FaultSpec{}
			for g := 1; g <= s && g < p.Groups; g++ {
				spec.Routers = append(spec.Routers, dragonfly.RouterFault{Router: p.RouterID(g, 0)})
			}
			spec.Flaps = []dragonfly.FlapSpec{{
				Link:   flapLink,
				At:     warmup + period/2,
				Period: period,
				Down:   period / 2,
				Count:  s,
			}}
			c.Faults = spec
		}).
		Campaign("degradation-sweep")
	return exec(camp, newSeries(mechNames(mechanisms), len(severities)), len(severities), opt)
}

// ThresholdSweep sweeps the misrouting threshold for one mechanism over
// offered load (Figures 10, 11). Thresholds are fractions (0.45 = 45%).
func ThresholdSweep(base dragonfly.Config, mechanism dragonfly.Mechanism, thresholds, loads []float64, opt Options) ([]Series, error) {
	if len(thresholds) == 0 || len(loads) == 0 {
		return nil, fmt.Errorf("sweep: empty threshold or load list")
	}
	base.Mechanism = mechanism
	names := make([]string, len(thresholds))
	for i, th := range thresholds {
		names[i] = fmt.Sprintf("%s th=%.0f%%", mechanism, th*100)
	}
	camp := exp.NewMatrix(base).
		Axis(len(thresholds),
			func(i int) string { return names[i] },
			func(c *dragonfly.Config, i int) { c.Threshold = thresholds[i] }).
		Loads(loads...).
		Campaign("threshold-sweep")
	return exec(camp, newSeries(names, len(loads)), len(loads), opt)
}

// Loads returns an evenly spaced load grid [from, to] with n points,
// a convenience for figure scripts.
func Loads(from, to float64, n int) []float64 {
	if n < 2 {
		return []float64{from}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = from + (to-from)*float64(i)/float64(n-1)
	}
	return out
}
