package dragonfly_test

// Headline shape tests: the paper's qualitative results, asserted at
// reduced scale (h=3, shortened link latencies) with generous margins.
// EXPERIMENTS.md tracks the quantitative reproduction at larger scale.

import (
	"testing"

	dragonfly "repro"
)

// headline runs one point with shared reduced-scale settings.
func headline(t *testing.T, m dragonfly.Mechanism, tr dragonfly.Traffic, load float64) dragonfly.Result {
	t.Helper()
	cfg := dragonfly.PaperVCT(3)
	cfg.Mechanism = m
	cfg.Traffic = tr
	cfg.Load = load
	cfg.LatLocal, cfg.LatGlobal = 4, 16
	cfg.Warmup, cfg.Measure = 1000, 2500
	cfg.Seed = 2024
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatalf("%v deadlocked under %v", m, tr)
	}
	return res
}

// TestHeadlineMinimalCollapsesUnderADVG: a single global channel between
// group pairs bounds minimal routing near 1/(2h²) (paper Section II).
func TestHeadlineMinimalCollapsesUnderADVG(t *testing.T) {
	advg := dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
	min := headline(t, dragonfly.Minimal, advg, 0.5)
	bound := 1.0 / 18 // 1/(2h²), h=3
	if min.AcceptedLoad > bound*1.6 {
		t.Fatalf("minimal accepted %.4f, should collapse near %.4f", min.AcceptedLoad, bound)
	}
	val := headline(t, dragonfly.Valiant, advg, 0.5)
	if val.AcceptedLoad < 3*min.AcceptedLoad {
		t.Fatalf("valiant %.4f does not dominate minimal %.4f under ADVG",
			val.AcceptedLoad, min.AcceptedLoad)
	}
}

// TestHeadlineInTransitBeatsObliviousUnderADVG: the in-transit adaptive
// trio reaches at least Piggybacking-level throughput under ADVG+1
// (paper Figure 5b).
func TestHeadlineInTransitBeatsObliviousUnderADVG(t *testing.T) {
	advg := dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
	pb := headline(t, dragonfly.Piggybacking, advg, 0.8)
	for _, m := range []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.RLM, dragonfly.OLM} {
		r := headline(t, m, advg, 0.8)
		if r.AcceptedLoad < pb.AcceptedLoad*0.95 {
			t.Errorf("%v accepted %.4f < PB %.4f under ADVG+1",
				m, r.AcceptedLoad, pb.AcceptedLoad)
		}
		if r.GlobalMisrouteRate < 0.5 {
			t.Errorf("%v global misroute rate %.2f; ADVG should trigger Valiant detours",
				m, r.GlobalMisrouteRate)
		}
	}
}

// TestHeadlineLocalMisroutingBreaksADVLCap: minimal routing is capped at
// 1/h under ADVL+1; the local-misrouting mechanisms must exceed the cap
// and Piggybacking escapes through Valiant paths (paper Figure 6a).
func TestHeadlineLocalMisroutingBreaksADVLCap(t *testing.T) {
	advl := dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: 1}
	cap := 1.0 / 3 // 1/h, h=3
	min := headline(t, dragonfly.Minimal, advl, 1.0)
	if min.AcceptedLoad > cap*1.1 {
		t.Fatalf("minimal accepted %.4f above the 1/h cap %.4f", min.AcceptedLoad, cap)
	}
	for _, m := range []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.RLM, dragonfly.OLM} {
		r := headline(t, m, advl, 1.0)
		if r.AcceptedLoad < cap*1.15 {
			t.Errorf("%v accepted %.4f, should break the 1/h cap %.4f",
				m, r.AcceptedLoad, cap)
		}
		if r.LocalMisrouteRate <= 0.1 {
			t.Errorf("%v local misroute rate %.3f; ADVL should trigger local detours",
				m, r.LocalMisrouteRate)
		}
		if r.GlobalMisrouteRate != 0 {
			t.Errorf("%v global-misrouted intra-group traffic (rate %.3f)",
				m, r.GlobalMisrouteRate)
		}
	}
	pbr := headline(t, dragonfly.Piggybacking, advl, 1.0)
	if pbr.AcceptedLoad < cap {
		t.Errorf("PB accepted %.4f; its Valiant escape should lift it to ~0.5", pbr.AcceptedLoad)
	}
	if pbr.GlobalMisrouteRate < 0.3 {
		t.Errorf("PB global misroute rate %.3f; local traffic should escape via Valiant",
			pbr.GlobalMisrouteRate)
	}
}

// TestHeadlineADVGPlusHNeedsLocalMisrouting: under ADVG+h the intermediate
// groups saturate ring-local links, capping Valiant and PB; mechanisms
// with local misrouting do better (paper Figure 5c).
func TestHeadlineADVGPlusHNeedsLocalMisrouting(t *testing.T) {
	advgh := dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 3} // +h, h=3
	val := headline(t, dragonfly.Valiant, advgh, 0.8)
	for _, m := range []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.RLM} {
		r := headline(t, m, advgh, 0.8)
		if r.AcceptedLoad < val.AcceptedLoad*1.1 {
			t.Errorf("%v accepted %.4f, want clearly above Valiant's %.4f under ADVG+h",
				m, r.AcceptedLoad, val.AcceptedLoad)
		}
		if r.LocalMisrouteRate <= 0.05 {
			t.Errorf("%v local misroute rate %.3f under ADVG+h", m, r.LocalMisrouteRate)
		}
	}
	// OLM's intermediate-group misrouting must engage as well.
	olm := headline(t, dragonfly.OLM, advgh, 0.8)
	if olm.AcceptedLoad < val.AcceptedLoad {
		t.Errorf("OLM accepted %.4f below Valiant %.4f under ADVG+h",
			olm.AcceptedLoad, val.AcceptedLoad)
	}
}

// TestHeadlineUniformAdaptiveMatchesMinimal: under UN, on-the-fly adaptive
// routing reaches at least minimal's throughput (paper Figure 5a) and
// Valiant pays roughly double latency.
func TestHeadlineUniformAdaptiveMatchesMinimal(t *testing.T) {
	un := dragonfly.Traffic{Kind: dragonfly.UN}
	min := headline(t, dragonfly.Minimal, un, 0.42)
	for _, m := range []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.RLM, dragonfly.OLM} {
		r := headline(t, m, un, 0.42)
		if r.AcceptedLoad < min.AcceptedLoad*0.97 {
			t.Errorf("%v accepted %.4f well below minimal %.4f under UN",
				m, r.AcceptedLoad, min.AcceptedLoad)
		}
		if r.GlobalMisrouteRate > 0.3 {
			t.Errorf("%v Valiant rate %.2f under UN; should be rare", m, r.GlobalMisrouteRate)
		}
	}
	val := headline(t, dragonfly.Valiant, un, 0.42)
	if val.AvgNetworkLatency < min.AvgNetworkLatency*1.3 {
		t.Errorf("valiant latency %.1f not clearly above minimal %.1f under UN",
			val.AvgNetworkLatency, min.AvgNetworkLatency)
	}
}

// TestHeadlineThresholdTradeoff: higher thresholds misroute more — better
// under adversarial traffic, worse under uniform (paper Figures 10, 11).
func TestHeadlineThresholdTradeoff(t *testing.T) {
	un := dragonfly.Traffic{Kind: dragonfly.UN}
	runTh := func(th float64, tr dragonfly.Traffic, load float64) dragonfly.Result {
		cfg := dragonfly.PaperVCT(3)
		cfg.Mechanism = dragonfly.RLM
		cfg.Threshold = th
		cfg.Traffic = tr
		cfg.Load = load
		cfg.LatLocal, cfg.LatGlobal = 4, 16
		cfg.Warmup, cfg.Measure = 1000, 2500
		cfg.Seed = 7
		res, err := dragonfly.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lo := runTh(0.15, un, 0.5)
	hi := runTh(0.90, un, 0.5)
	if hi.LocalMisrouteRate <= lo.LocalMisrouteRate {
		t.Errorf("threshold 90%% misroutes (%.3f) no more than 15%% (%.3f) under UN",
			hi.LocalMisrouteRate, lo.LocalMisrouteRate)
	}
	advg := dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
	loA := runTh(0.15, advg, 0.6)
	hiA := runTh(0.90, advg, 0.6)
	if hiA.GlobalMisrouteRate <= loA.GlobalMisrouteRate {
		t.Errorf("threshold 90%% global-misroutes (%.3f) no more than 15%% (%.3f) under ADVG",
			hiA.GlobalMisrouteRate, loA.GlobalMisrouteRate)
	}
}

// TestHeadlineBurstAdaptiveBeatsPB: the burst-consumption experiment
// (paper Figures 6b): in-transit adaptive mechanisms drain a mixed
// adversarial burst significantly faster than Piggybacking.
func TestHeadlineBurstAdaptiveBeatsPB(t *testing.T) {
	burst := func(m dragonfly.Mechanism) int64 {
		cfg := dragonfly.PaperVCT(3)
		cfg.Mechanism = m
		cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 30}
		cfg.BurstPackets = 40
		cfg.LatLocal, cfg.LatGlobal = 4, 16
		cfg.Seed = 5
		res, err := dragonfly.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlock {
			t.Fatalf("%v deadlocked draining the burst", m)
		}
		return res.ConsumptionCycles
	}
	pb := burst(dragonfly.Piggybacking)
	for _, m := range []dragonfly.Mechanism{dragonfly.OLM, dragonfly.RLM} {
		if got := burst(m); got > pb*85/100 {
			t.Errorf("%v burst %d cycles, want well below PB's %d", m, got, pb)
		}
	}
}

// TestHeadlineWormholeRLM: under WH with large packets, RLM stays
// deadlock-free and outperforms PB under adversarial traffic
// (paper Figure 8).
func TestHeadlineWormholeRLM(t *testing.T) {
	run := func(m dragonfly.Mechanism) dragonfly.Result {
		cfg := dragonfly.PaperWH(3)
		cfg.Mechanism = m
		cfg.PacketPhits = 40
		cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
		cfg.Load = 0.6
		cfg.LatLocal, cfg.LatGlobal = 4, 16
		cfg.Warmup, cfg.Measure = 1500, 3000
		cfg.Seed = 3
		res, err := dragonfly.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlock {
			t.Fatalf("%v deadlocked under WH", m)
		}
		return res
	}
	pb := run(dragonfly.Piggybacking)
	rlm := run(dragonfly.RLM)
	par := run(dragonfly.PAR62)
	if rlm.AcceptedLoad < pb.AcceptedLoad {
		t.Errorf("RLM/WH accepted %.4f below PB %.4f", rlm.AcceptedLoad, pb.AcceptedLoad)
	}
	if par.AcceptedLoad < pb.AcceptedLoad {
		t.Errorf("PAR-6/2/WH accepted %.4f below PB %.4f", par.AcceptedLoad, pb.AcceptedLoad)
	}
}

// TestHeadlineDeadlockFreedomStress drives every legal mechanism/flow
// combination at saturation with tiny buffers for an extended run; the
// watchdog must stay silent.
func TestHeadlineDeadlockFreedomStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	type combo struct {
		m    dragonfly.Mechanism
		flow dragonfly.FlowControl
		pkt  int
	}
	combos := []combo{
		{dragonfly.PAR62, dragonfly.VCT, 8},
		{dragonfly.RLM, dragonfly.VCT, 8},
		{dragonfly.OLM, dragonfly.VCT, 8},
		{dragonfly.OFAR, dragonfly.VCT, 8},
		{dragonfly.PAR62, dragonfly.WH, 40},
		{dragonfly.RLM, dragonfly.WH, 40},
		{dragonfly.Valiant, dragonfly.WH, 40},
		{dragonfly.Piggybacking, dragonfly.VCT, 8},
	}
	for _, c := range combos {
		cfg := dragonfly.PaperVCT(2)
		cfg.Mechanism = c.m
		cfg.FlowControl = c.flow
		cfg.PacketPhits = c.pkt
		cfg.BufLocal, cfg.BufGlobal = 16, 48
		if c.flow == dragonfly.VCT {
			cfg.BufLocal, cfg.BufGlobal = 16, 48
		}
		cfg.LatLocal, cfg.LatGlobal = 2, 8
		cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 2}
		cfg.Load = 1.0
		cfg.Warmup, cfg.Measure = 0, 12000
		cfg.Watchdog = 4000
		cfg.Seed = 99
		res, err := dragonfly.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlock {
			t.Errorf("%v/%v deadlocked at saturation", c.m, c.flow)
		}
		if res.Delivered == 0 {
			t.Errorf("%v/%v delivered nothing", c.m, c.flow)
		}
	}
}
