package dragonfly_test

// Tests for the phased workload subsystem at the public API level: the
// one-phase ≡ legacy equivalence, full-result (timeline included)
// determinism across worker counts, multi-job partitioning, and the strict
// configuration validation.

import (
	"encoding/json"
	"reflect"
	"testing"

	dragonfly "repro"
)

// phasedConfig is the shared transient scenario: UN switching to ADVG+2
// mid-run, with a timeline.
func phasedConfig(m dragonfly.Mechanism) dragonfly.Config {
	cfg := dragonfly.PaperVCT(2)
	cfg.Mechanism = m
	cfg.LatLocal, cfg.LatGlobal = 4, 16
	cfg.Warmup, cfg.Measure = 500, 1500
	cfg.Seed = 23
	cfg.Phases = []dragonfly.PhaseSpec{
		{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, Load: 0.2, Duration: 1200},
		{Traffic: dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 2}, Load: 0.2},
	}
	cfg.WindowCycles = 200
	return cfg
}

// TestOnePhaseWorkloadEqualsLegacy is the compatibility contract: the
// classic Traffic/Load trio and its one-element Phases spelling are the
// same experiment — same canonical form (so they share cache entries) and
// bit-identical results.
func TestOnePhaseWorkloadEqualsLegacy(t *testing.T) {
	legacy := fast(dragonfly.RLM)
	legacy.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
	legacy.Load = 0.3

	phased := fast(dragonfly.RLM)
	phased.Phases = []dragonfly.PhaseSpec{
		{Traffic: dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, Load: 0.3},
	}

	if !reflect.DeepEqual(legacy.Canonical(), phased.Canonical()) {
		t.Fatalf("canonical forms differ:\n legacy: %+v\n phased: %+v",
			legacy.Canonical(), phased.Canonical())
	}
	a, err := dragonfly.Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dragonfly.Run(phased)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("one-phase workload diverged from legacy config:\n legacy: %+v\n phased: %+v", a, b)
	}
	if a.Delivered == 0 {
		t.Fatal("nothing delivered; the comparison proved nothing")
	}
	if a.Pattern != "ADVG+1" {
		t.Fatalf("one-phase pattern label %q, want the plain pattern name", a.Pattern)
	}
}

// TestPhasedDeterminismAcrossWorkers extends the engine's central
// determinism promise to phased runs: the full Result — timeline windows
// and per-phase digests included — must be bit-identical between serial
// and 4-worker execution.
func TestPhasedDeterminismAcrossWorkers(t *testing.T) {
	for _, m := range []dragonfly.Mechanism{dragonfly.Minimal, dragonfly.OLM} {
		serial := phasedConfig(m)
		serial.Workers = 1
		parallel := phasedConfig(m)
		parallel.Workers = 4
		a, err := dragonfly.Run(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dragonfly.Run(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			t.Fatalf("%v: worker count changed the phased result:\n 1 worker : %s\n 4 workers: %s", m, aj, bj)
		}
		if a.Timeline == nil || len(a.Timeline.Windows) == 0 {
			t.Fatalf("%v: no timeline collected", m)
		}
		if len(a.PhaseDigests) != 2 {
			t.Fatalf("%v: %d phase digests, want 2", m, len(a.PhaseDigests))
		}
		if a.Delivered == 0 {
			t.Fatalf("%v: nothing delivered", m)
		}
	}
}

// TestPhasedRunShape sanity-checks the transient scenario itself: the
// phase digests carry the right spans and labels, and the timeline covers
// the whole run in WindowCycles-wide windows.
func TestPhasedRunShape(t *testing.T) {
	res, err := dragonfly.Run(phasedConfig(dragonfly.OLM))
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := res.PhaseDigests[0], res.PhaseDigests[1]
	if p0.Label != "UN@0.2" || p1.Label != "ADVG+2@0.2" {
		t.Fatalf("phase labels %q, %q", p0.Label, p1.Label)
	}
	if p0.Start != 0 || p0.End != 1200 || p1.Start != 1200 || p1.End != 2000 {
		t.Fatalf("phase spans [%d,%d) and [%d,%d), want [0,1200) and [1200,2000)",
			p0.Start, p0.End, p1.Start, p1.End)
	}
	if p0.Delivered == 0 || p1.Delivered == 0 {
		t.Fatalf("phase deliveries %d, %d", p0.Delivered, p1.Delivered)
	}
	tl := res.Timeline
	if tl.WindowCycles != 200 || len(tl.Windows) != 10 {
		t.Fatalf("timeline: %d-cycle windows × %d, want 200 × 10", tl.WindowCycles, len(tl.Windows))
	}
	var delivered int64
	for i, w := range tl.Windows {
		if w.Start != int64(i)*200 || w.End != w.Start+200 {
			t.Fatalf("window %d spans [%d, %d)", i, w.Start, w.End)
		}
		delivered += w.Delivered
	}
	if delivered == 0 {
		t.Fatal("timeline recorded no deliveries")
	}
	if res.Pattern != "UN@0.2→ADVG+2@0.2" {
		t.Fatalf("phased pattern label %q", res.Pattern)
	}
}

// TestMultiJobWorkload partitions the machine into two jobs with
// independent schedules and checks both actually ran.
func TestMultiJobWorkload(t *testing.T) {
	cfg := fast(dragonfly.OLM)
	_, nodes, _, err := dragonfly.NetworkSize(cfg.H)
	if err != nil {
		t.Fatal(err)
	}
	half := nodes / 2
	cfg.Workload = []dragonfly.JobSpec{
		{FirstNode: 0, LastNode: half - 1, Phases: []dragonfly.PhaseSpec{
			{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, Load: 0.2},
		}},
		{FirstNode: half, LastNode: nodes - 1, Phases: []dragonfly.PhaseSpec{
			{Traffic: dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: 1}, Load: 0.4},
		}},
	}
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseDigests) != 2 {
		t.Fatalf("%d phase digests, want 2", len(res.PhaseDigests))
	}
	for _, ph := range res.PhaseDigests {
		if ph.Nodes != half {
			t.Fatalf("phase %q spans %d nodes, want %d", ph.Label, ph.Nodes, half)
		}
		if ph.Delivered == 0 {
			t.Fatalf("phase %q delivered nothing", ph.Label)
		}
	}
}

// TestBoundedFinalPhaseGoesIdle checks the quiet-tail semantics: after a
// bounded final phase expires its nodes stop generating.
func TestBoundedFinalPhaseGoesIdle(t *testing.T) {
	cfg := fast(dragonfly.Minimal)
	cfg.Warmup, cfg.Measure = 500, 1500 // 2000-cycle run
	cfg.WindowCycles = 500
	cfg.Phases = []dragonfly.PhaseSpec{
		{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, Load: 0.3, Duration: 500},
	}
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wins := res.Timeline.Windows
	if len(wins) != 4 {
		t.Fatalf("%d windows, want 4: the timeline must cover the whole run, quiet tail included", len(wins))
	}
	if wins[0].Generated == 0 {
		t.Fatal("active window generated nothing")
	}
	for _, w := range wins[1:] {
		if w.Generated != 0 {
			t.Fatalf("window [%d, %d) generated %d packets after the job ended",
				w.Start, w.End, w.Generated)
		}
	}
}

// TestTruncatedBurstPhaseDrainsWithoutDeadlock: a burst phase whose
// duration expires before every node finished sending leaves the workload
// total unreachable; the run must still end as a normal drain (no
// deadlock report, no MaxCycles spin).
func TestTruncatedBurstPhaseDrainsWithoutDeadlock(t *testing.T) {
	cfg := fast(dragonfly.RLM)
	cfg.Warmup, cfg.Measure = 0, 0
	cfg.MaxCycles = 500000
	cfg.Phases = []dragonfly.PhaseSpec{
		// 50 packets/node cannot be injected in 5 cycles (1 packet/cycle max).
		{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, BurstPackets: 50, Duration: 5},
		{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, BurstPackets: 5},
	}
	res, err := dragonfly.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatal("truncated burst phase reported as deadlock")
	}
	if res.Cycles >= cfg.MaxCycles {
		t.Fatalf("run spun to MaxCycles (%d cycles)", res.Cycles)
	}
	if res.Delivered == 0 || res.ConsumptionCycles <= 0 {
		t.Fatalf("drain did not complete: %+v", res)
	}
}

// TestStrictValidation exercises the Config.Validate error paths.
func TestStrictValidation(t *testing.T) {
	un := dragonfly.Traffic{Kind: dragonfly.UN}
	cases := []struct {
		name string
		mut  func(*dragonfly.Config)
	}{
		{"load zero", func(c *dragonfly.Config) { c.Load = 0 }},
		{"load negative", func(c *dragonfly.Config) { c.Load = -0.5 }},
		{"load above 1", func(c *dragonfly.Config) { c.Load = 1.5 }},
		{"load and burst", func(c *dragonfly.Config) { c.BurstPackets = 10 }},
		{"unknown kind", func(c *dragonfly.Config) { c.Traffic.Kind = dragonfly.TrafficKind(42) }},
		{"ADVG offset high", func(c *dragonfly.Config) {
			c.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 9999}
		}},
		{"ADVG offset negative", func(c *dragonfly.Config) {
			c.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: -1}
		}},
		{"ADVL offset high", func(c *dragonfly.Config) {
			c.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: 99}
		}},
		{"MIX percent high", func(c *dragonfly.Config) {
			c.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: 150}
		}},
		{"negative window", func(c *dragonfly.Config) { c.WindowCycles = -1 }},
		{"phases and workload", func(c *dragonfly.Config) {
			ph := []dragonfly.PhaseSpec{{Traffic: un, Load: 0.1}}
			c.Load = 0
			c.Phases = ph
			c.Workload = []dragonfly.JobSpec{{Phases: ph}}
		}},
		{"phases plus legacy load", func(c *dragonfly.Config) {
			c.Phases = []dragonfly.PhaseSpec{{Traffic: un, Load: 0.1}}
		}},
		{"mid phase without duration", func(c *dragonfly.Config) {
			c.Load = 0
			c.Phases = []dragonfly.PhaseSpec{
				{Traffic: un, Load: 0.1},
				{Traffic: un, Load: 0.2},
			}
		}},
		{"overlapping jobs", func(c *dragonfly.Config) {
			c.Load = 0
			ph := []dragonfly.PhaseSpec{{Traffic: un, Load: 0.1}}
			c.Workload = []dragonfly.JobSpec{
				{FirstNode: 0, LastNode: 10, Phases: ph},
				{FirstNode: 10, LastNode: 20, Phases: ph},
			}
		}},
		{"job range out of bounds", func(c *dragonfly.Config) {
			c.Load = 0
			c.Workload = []dragonfly.JobSpec{{FirstNode: 5, LastNode: 1 << 30,
				Phases: []dragonfly.PhaseSpec{{Traffic: un, Load: 0.1}}}}
		}},
	}
	for _, c := range cases {
		cfg := fast(dragonfly.Minimal)
		cfg.Traffic = un
		cfg.Load = 0.3
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", c.name)
		}
		if _, err := dragonfly.Run(cfg); err == nil {
			t.Errorf("%s: Run accepted", c.name)
		}
	}

	good := fast(dragonfly.Minimal)
	good.Traffic = un
	good.Load = 0.3
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
