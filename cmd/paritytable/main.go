// Command paritytable prints the parity-sign restriction of Restricted
// Local Misrouting (Table I of the paper), verifies its structural
// properties (deadlock freedom via acyclicity, the h-1 route guarantee)
// and contrasts it with the rejected sign-only restriction.
//
// Usage:
//
//	paritytable [-h N] [-signonly]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	h := flag.Int("h", 4, "dragonfly parameter h (group size 2h)")
	signOnly := flag.Bool("signonly", false, "also analyze the sign-only ablation")
	flag.Parse()
	if *h < 1 {
		fmt.Fprintln(os.Stderr, "paritytable: h must be >= 1")
		os.Exit(2)
	}

	tab := core.NewParityTable()
	types := []core.LinkType{core.OddNeg, core.EvenPos, core.OddPos, core.EvenNeg}

	fmt.Println("Table I — parity-sign 2-hop combinations (first hop, second hop):")
	fmt.Printf("%-8s", "")
	for _, second := range types {
		fmt.Printf("%-8s", second)
	}
	fmt.Println()
	for _, first := range types {
		fmt.Printf("%-8s", first)
		for _, second := range types {
			mark := "NO"
			if tab.Allowed(first, second) {
				mark = "YES"
			}
			fmt.Printf("%-8s", mark)
		}
		fmt.Println()
	}

	n := 2 * *h
	fmt.Printf("\nSupernode size 2h = %d routers.\n", n)
	report(tab, "parity-sign", n, *h)
	if *signOnly {
		report(core.NewSignOnlyTable(), "sign-only (ablation)", n, *h)
	}
}

// intermediateCounter is the common surface of both restrictions.
type intermediateCounter interface {
	Intermediates(dst []int, i, j, routers int) []int
}

func report(tab intermediateCounter, name string, n, h int) {
	minRoutes, maxRoutes := n, 0
	var worst [2]int
	zeroPairs := 0
	var buf []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			buf = tab.Intermediates(buf[:0], i, j, n)
			if len(buf) < minRoutes {
				minRoutes = len(buf)
				worst = [2]int{i, j}
			}
			if len(buf) > maxRoutes {
				maxRoutes = len(buf)
			}
			if len(buf) == 0 {
				zeroPairs++
			}
		}
	}
	fmt.Printf("\n%s restriction:\n", name)
	fmt.Printf("  2-hop routes per ordered pair: min %d (pair %d->%d), max %d\n",
		minRoutes, worst[0], worst[1], maxRoutes)
	fmt.Printf("  pairs with no non-minimal route: %d\n", zeroPairs)
	if minRoutes >= h-1 {
		fmt.Printf("  guarantee met: every pair has >= h-1 = %d routes\n", h-1)
	} else {
		fmt.Printf("  UNBALANCED: below the h-1 = %d guarantee (the paper rejects such schemes)\n", h-1)
	}
}
