// Command paritytable prints the parity-sign restriction of Restricted
// Local Misrouting (Table I of the paper), verifies its structural
// properties (deadlock freedom via acyclicity, the h-1 route guarantee)
// and contrasts it with the rejected sign-only restriction.
//
// With -sim, it backs the structural claims empirically: a small campaign
// on internal/exp's worker pool runs RLM against the sign-only ablation
// under the ADVL+1 pattern — the regime where route balance matters most
// (paper Section III-B) — and reports throughput, misrouting and the
// deadlock watchdog's verdict for each.
//
// Usage:
//
//	paritytable [-h N] [-signonly] [-sim]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	dragonfly "repro"
	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	h := flag.Int("h", 4, "dragonfly parameter h (group size 2h)")
	signOnly := flag.Bool("signonly", false, "also analyze the sign-only ablation")
	sim := flag.Bool("sim", false, "run the empirical RLM vs sign-only campaign")
	flag.Parse()
	if *h < 1 {
		fmt.Fprintln(os.Stderr, "paritytable: h must be >= 1")
		os.Exit(2)
	}

	tab := core.NewParityTable()
	types := []core.LinkType{core.OddNeg, core.EvenPos, core.OddPos, core.EvenNeg}

	fmt.Println("Table I — parity-sign 2-hop combinations (first hop, second hop):")
	fmt.Printf("%-8s", "")
	for _, second := range types {
		fmt.Printf("%-8s", second)
	}
	fmt.Println()
	for _, first := range types {
		fmt.Printf("%-8s", first)
		for _, second := range types {
			mark := "NO"
			if tab.Allowed(first, second) {
				mark = "YES"
			}
			fmt.Printf("%-8s", mark)
		}
		fmt.Println()
	}

	n := 2 * *h
	fmt.Printf("\nSupernode size 2h = %d routers.\n", n)
	report(tab, "parity-sign", n, *h)
	if *signOnly {
		report(core.NewSignOnlyTable(), "sign-only (ablation)", n, *h)
	}
	if *sim {
		if err := simContrast(*h); err != nil {
			fmt.Fprintln(os.Stderr, "paritytable:", err)
			os.Exit(1)
		}
	}
}

// simContrast runs the empirical campaign: both restrictions under ADVL+1
// at full load, all points concurrently on the orchestrator's pool.
func simContrast(h int) error {
	if h < 2 {
		return fmt.Errorf("-sim needs h >= 2 (a well-formed dragonfly)")
	}
	base := dragonfly.PaperVCT(h)
	base.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: 1}
	base.Load = 1.0
	base.LatLocal, base.LatGlobal = 4, 16 // reduced latencies: quick check, same engine work profile
	base.Warmup, base.Measure = 1000, 3000
	base.Seed = 1

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	camp := exp.NewMatrix(base).
		Mechanisms(dragonfly.RLM, dragonfly.RLMSignOnly).
		Campaign("parity-contrast")
	outs, err := exp.Run(ctx, camp, exp.Options{})
	if err != nil {
		return err
	}
	if err := exp.PointErrors(outs); err != nil {
		return err
	}
	fmt.Printf("\nEmpirical contrast under ADVL+1 at load 1.0 (h=%d, VCT):\n", h)
	fmt.Printf("  %-14s %-10s %-14s %s\n", "restriction", "accepted", "local mis/pkt", "deadlock")
	for _, o := range outs {
		r := o.Result
		fmt.Printf("  %-14s %-10.4f %-14.3f %v\n",
			r.Mechanism, r.AcceptedLoad, r.LocalMisrouteRate, r.Deadlock)
	}
	return nil
}

// intermediateCounter is the common surface of both restrictions.
type intermediateCounter interface {
	Intermediates(dst []int, i, j, routers int) []int
}

func report(tab intermediateCounter, name string, n, h int) {
	minRoutes, maxRoutes := n, 0
	var worst [2]int
	zeroPairs := 0
	var buf []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			buf = tab.Intermediates(buf[:0], i, j, n)
			if len(buf) < minRoutes {
				minRoutes = len(buf)
				worst = [2]int{i, j}
			}
			if len(buf) > maxRoutes {
				maxRoutes = len(buf)
			}
			if len(buf) == 0 {
				zeroPairs++
			}
		}
	}
	fmt.Printf("\n%s restriction:\n", name)
	fmt.Printf("  2-hop routes per ordered pair: min %d (pair %d->%d), max %d\n",
		minRoutes, worst[0], worst[1], maxRoutes)
	fmt.Printf("  pairs with no non-minimal route: %d\n", zeroPairs)
	if minRoutes >= h-1 {
		fmt.Printf("  guarantee met: every pair has >= h-1 = %d routes\n", h-1)
	} else {
		fmt.Printf("  UNBALANCED: below the h-1 = %d guarantee (the paper rejects such schemes)\n", h-1)
	}
}
