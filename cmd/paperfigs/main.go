// Command paperfigs regenerates the data behind every figure of the
// paper's evaluation (Figures 4-11) plus Table I, writing one .dat file
// per figure panel and a markdown summary. All points of a figure run
// concurrently on internal/exp's worker pool; with -cache, an interrupted
// or repeated regeneration re-simulates only the points it is missing.
//
// The paper's experiments run at h=8 (16,512 nodes); the default here is a
// reduced h=4 network with the same structure so a full regeneration
// finishes in tens of minutes on a laptop. Pass -h 8 -burstvct 1000
// -burstwh 89 for paper scale.
//
// Usage:
//
//	paperfigs -out results [-h 4] [-figs 4,5,6,7,8,9,10,11] [-cache dir]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	dragonfly "repro"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/exp/srv"
	"repro/internal/sweep"
)

type env struct {
	h        int
	rh       int // network size of the resilience degradation panels
	warmup   int64
	measure  int64
	seed     uint64
	burstVCT int
	burstWH  int
	outDir   string
	opt      sweep.Options
	summary  *strings.Builder
	// pointErrs collects per-point simulation failures across figures so
	// one bad point aborts neither its figure nor the remaining ones;
	// main reports them all and exits non-zero at the end.
	pointErrs []error
}

func main() {
	var (
		h        = flag.Int("h", 4, "dragonfly parameter (paper: 8)")
		out      = flag.String("out", "results", "output directory")
		figsFlag = flag.String("figs", "4,5,6,7,8,9,10,11,transient,resilience", `figures to regenerate ("scaling" — the engine-throughput panels up to h=16 — is opt-in: it needs ~2.5 GiB and tens of minutes)`)
		tmechs   = flag.String("tmechs", "Minimal,Valiant,PiggyBacking,OLM", "mechanisms of the transient traffic-change figure")
		tload    = flag.Float64("tload", 0.2, "offered load of the transient traffic-change figure")
		rmechs   = flag.String("rmechs", "Minimal,Valiant,PiggyBacking,OLM", "mechanisms of the resilience figure")
		rload    = flag.Float64("rload", 0.25, "offered load of the resilience figure")
		rh       = flag.Int("rh", 8, "dragonfly parameter of the degradation panels (paper scale: 8)")
		warmup   = flag.Int64("warmup", 2000, "warmup cycles")
		measure  = flag.Int64("measure", 4000, "measured cycles")
		seed     = flag.Uint64("seed", 1, "random seed")
		burstVCT = flag.Int("burstvct", 200, "VCT burst packets/node (paper: 1000)")
		burstWH  = flag.Int("burstwh", 20, "WH burst packets/node (paper: 89)")
		par      = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		remote   = flag.String("remote", "", "execute campaigns on a dragonsrv server at this base URL (figure scaling still runs locally — it times this machine's engine)")
		cacheDir = flag.String("cache", "", "result cache directory (empty = no cache; ignored with -remote)")
		jsonlOut = flag.String("jsonl", "", "stream per-point JSONL results to this file")
		quiet    = flag.Bool("q", false, "suppress progress")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	e := &env{
		h: *h, rh: *rh, warmup: *warmup, measure: *measure, seed: *seed,
		burstVCT: *burstVCT, burstWH: *burstWH, outDir: *out,
		opt:     sweep.Options{Parallelism: *par, Context: ctx},
		summary: &strings.Builder{},
	}
	var client *srv.Client
	if *remote != "" {
		client = srv.NewClient(*remote)
		e.opt.Remote = client
	}
	if *cacheDir != "" && *remote == "" {
		cache, err := exp.OpenCache(*cacheDir)
		fatalIf(err)
		e.opt.Cache = cache
	}
	if *jsonlOut != "" {
		jf, err := os.Create(*jsonlOut)
		fatalIf(err)
		defer jf.Close()
		e.opt.JSONL = jf
	}
	if !*quiet {
		e.opt.Progress = func(series string, p sweep.Point) {
			if p.Err != nil {
				fmt.Fprintf(os.Stderr, "[%s] FAIL %-18s x=%.3g: %v\n",
					time.Now().Format("15:04:05"), series, p.X, p.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%s] %-18s x=%.3g acc=%.4f lat=%.1f\n",
				time.Now().Format("15:04:05"), series, p.X,
				p.Result.AcceptedLoad, p.Result.AvgTotalLatency)
		}
	}
	routers, nodes, groups, err := dragonfly.NetworkSize(*h)
	fatalIf(err)
	fmt.Fprintf(e.summary, "# Paper figure regeneration\n\n")
	fmt.Fprintf(e.summary, "Network: h=%d (%d routers, %d nodes, %d groups); warmup %d, measure %d cycles; seed %d.\n\n",
		*h, routers, nodes, groups, *warmup, *measure, *seed)

	want := map[string]bool{}
	for _, f := range strings.Split(*figsFlag, ",") {
		want[strings.TrimSpace(f)] = true
	}
	start := time.Now()
	if want["4"] || want["5"] {
		fatalIf(e.figs45())
	}
	if want["6"] {
		fatalIf(e.fig6())
	}
	if want["7"] || want["8"] {
		fatalIf(e.figs78())
	}
	if want["9"] {
		fatalIf(e.fig9())
	}
	if want["10"] {
		fatalIf(e.fig1011(10))
	}
	if want["11"] {
		fatalIf(e.fig1011(11))
	}
	if want["transient"] {
		ms, err := cliutil.Mechanisms(*tmechs)
		fatalIf(err)
		fatalIf(e.figTransient(ctx, ms, *tload))
	}
	if want["resilience"] {
		ms, err := cliutil.Mechanisms(*rmechs)
		fatalIf(err)
		fatalIf(e.figResilience(ms, *rload))
	}
	if want["scaling"] {
		fatalIf(e.figScaling(ctx))
	}
	fmt.Fprintf(e.summary, "\nTotal regeneration time: %s.\n", time.Since(start).Round(time.Second))
	sumPath := filepath.Join(*out, "summary.md")
	fatalIf(os.WriteFile(sumPath, []byte(e.summary.String()), 0o644))
	fmt.Println("summary written to", sumPath)
	if e.opt.Cache != nil {
		hits, misses := e.opt.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses\n", hits, misses)
	}
	if client != nil {
		if st, err := client.StoreStats(ctx); err == nil {
			fmt.Fprintf(os.Stderr, "remote store: %d hits, %d misses, %d entries\n",
				st.Hits, st.Misses, st.Entries)
		}
	}
	if len(e.pointErrs) > 0 {
		fmt.Fprintf(os.Stderr, "paperfigs: %d point(s) failed:\n%v\n",
			len(e.pointErrs), errors.Join(e.pointErrs...))
		os.Exit(1)
	}
}

// record notes a sweep's per-point failures (if any) and reports whether
// the sweep was cut short by cancellation, which does abort the run.
func (e *env) record(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	e.pointErrs = append(e.pointErrs, err)
	return nil
}

// vctBase and whBase give the two experimental environments.
func (e *env) vctBase() dragonfly.Config {
	cfg := dragonfly.PaperVCT(e.h)
	cfg.Warmup, cfg.Measure, cfg.Seed = e.warmup, e.measure, e.seed
	return cfg
}

func (e *env) whBase() dragonfly.Config {
	cfg := dragonfly.PaperWH(e.h)
	cfg.Warmup, cfg.Measure, cfg.Seed = e.warmup, e.measure, e.seed
	return cfg
}

// writePanel stores one figure panel as .dat and appends its markdown.
func (e *env) writePanel(name, title, xlabel string, metric sweep.Metric, series []sweep.Series) error {
	f, err := os.Create(filepath.Join(e.outDir, name+".dat"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sweep.WriteDAT(f, xlabel, metric, series); err != nil {
		return err
	}
	fmt.Fprintf(e.summary, "## %s — %s\n\n", name, title)
	if err := sweep.WriteMarkdown(e.summary, xlabel, metric, series); err != nil {
		return err
	}
	fmt.Fprintln(e.summary)
	return nil
}

// figs45 regenerates Figures 4 (latency) and 5 (throughput) under VCT.
func (e *env) figs45() error {
	type panel struct {
		suffix  string
		traffic dragonfly.Traffic
		mechs   []dragonfly.Mechanism
		loads   []float64
	}
	un := []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.OLM, dragonfly.RLM, dragonfly.Minimal, dragonfly.Piggybacking}
	adv := []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.OLM, dragonfly.RLM, dragonfly.Valiant, dragonfly.Piggybacking}
	panels := []panel{
		{"a_UN", dragonfly.Traffic{Kind: dragonfly.UN}, un, sweep.Loads(0.05, 0.9, 6)},
		{"b_ADVG+1", dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, adv, sweep.Loads(0.05, 1.0, 6)},
		{fmt.Sprintf("c_ADVG+%d", e.h), dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: e.h}, adv, sweep.Loads(0.05, 1.0, 6)},
	}
	for _, p := range panels {
		base := e.vctBase()
		base.Traffic = p.traffic
		series, err := sweep.LoadSweep(base, p.mechs, p.loads, e.opt)
		if err = e.record(err); err != nil {
			return err
		}
		if err := e.writePanel("fig4"+p.suffix, "Latency "+cliutil.TrafficName(p.traffic, e.h)+"/VCT",
			"Offered load", sweep.TotalLatency, series); err != nil {
			return err
		}
		if err := e.writePanel("fig5"+p.suffix, "Throughput "+cliutil.TrafficName(p.traffic, e.h)+"/VCT",
			"Offered load", sweep.AcceptedLoad, series); err != nil {
			return err
		}
	}
	return nil
}

// fig6 regenerates the VCT mix experiment: throughput (6a) and burst
// consumption time (6b) versus the percentage of global traffic.
func (e *env) fig6() error {
	mechs := []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.OLM, dragonfly.RLM, dragonfly.Piggybacking}
	pcts := []float64{0, 20, 40, 60, 80, 100}
	thr, err := sweep.MixSweep(e.vctBase(), mechs, pcts, 1.0, e.opt)
	if err = e.record(err); err != nil {
		return err
	}
	if err := e.writePanel("fig6a", "Throughput, ADVG+h/ADVL+1 mix, VCT",
		"Global traffic (%)", sweep.AcceptedLoad, thr); err != nil {
		return err
	}
	burst, err := sweep.BurstSweep(e.vctBase(), mechs, pcts, e.burstVCT, e.opt)
	if err = e.record(err); err != nil {
		return err
	}
	if err := e.writePanel("fig6b",
		fmt.Sprintf("Burst consumption (%d pkts/node), VCT", e.burstVCT),
		"Global traffic (%)", sweep.ConsumptionTime, burst); err != nil {
		return err
	}
	e.burstRatios("Figure 6b", burst)
	return nil
}

// figs78 regenerates Figures 7 (latency) and 8 (throughput) under WH.
func (e *env) figs78() error {
	un := []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.RLM, dragonfly.Minimal, dragonfly.Piggybacking}
	adv := []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.RLM, dragonfly.Valiant, dragonfly.Piggybacking}
	type panel struct {
		suffix  string
		traffic dragonfly.Traffic
		mechs   []dragonfly.Mechanism
		loads   []float64
	}
	panels := []panel{
		{"a_UN", dragonfly.Traffic{Kind: dragonfly.UN}, un, sweep.Loads(0.05, 0.8, 5)},
		{"b_ADVG+1", dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, adv, sweep.Loads(0.05, 1.0, 5)},
		{fmt.Sprintf("c_ADVG+%d", e.h), dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: e.h}, adv, sweep.Loads(0.05, 1.0, 5)},
	}
	for _, p := range panels {
		base := e.whBase()
		base.Traffic = p.traffic
		series, err := sweep.LoadSweep(base, p.mechs, p.loads, e.opt)
		if err = e.record(err); err != nil {
			return err
		}
		if err := e.writePanel("fig7"+p.suffix, "Latency "+cliutil.TrafficName(p.traffic, e.h)+"/WH",
			"Offered load", sweep.TotalLatency, series); err != nil {
			return err
		}
		if err := e.writePanel("fig8"+p.suffix, "Throughput "+cliutil.TrafficName(p.traffic, e.h)+"/WH",
			"Offered load", sweep.AcceptedLoad, series); err != nil {
			return err
		}
	}
	return nil
}

// fig9 regenerates the WH mix and burst experiments.
func (e *env) fig9() error {
	mechs := []dragonfly.Mechanism{dragonfly.PAR62, dragonfly.RLM, dragonfly.Piggybacking}
	pcts := []float64{0, 25, 50, 75, 100}
	thr, err := sweep.MixSweep(e.whBase(), mechs, pcts, 1.0, e.opt)
	if err = e.record(err); err != nil {
		return err
	}
	if err := e.writePanel("fig9a", "Throughput, ADVG+h/ADVL+1 mix, WH",
		"Global traffic (%)", sweep.AcceptedLoad, thr); err != nil {
		return err
	}
	burst, err := sweep.BurstSweep(e.whBase(), mechs, pcts, e.burstWH, e.opt)
	if err = e.record(err); err != nil {
		return err
	}
	if err := e.writePanel("fig9b",
		fmt.Sprintf("Burst consumption (%d pkts/node), WH", e.burstWH),
		"Global traffic (%)", sweep.ConsumptionTime, burst); err != nil {
		return err
	}
	e.burstRatios("Figure 9b", burst)
	return nil
}

// fig1011 regenerates the RLM threshold sweeps: Figure 10 under UN,
// Figure 11 under ADVG+1 (both VCT).
func (e *env) fig1011(fig int) error {
	base := e.vctBase()
	var loads []float64
	if fig == 10 {
		base.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
		loads = sweep.Loads(0.1, 0.9, 5)
	} else {
		base.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}
		loads = sweep.Loads(0.1, 1.0, 5)
	}
	ths := []float64{0.30, 0.40, 0.45, 0.50, 0.60}
	series, err := sweep.ThresholdSweep(base, dragonfly.RLM, ths, loads, e.opt)
	if err = e.record(err); err != nil {
		return err
	}
	name := fmt.Sprintf("fig%d", fig)
	if err := e.writePanel(name+"a", "RLM threshold sweep latency, "+cliutil.TrafficName(base.Traffic, e.h),
		"Offered load", sweep.TotalLatency, series); err != nil {
		return err
	}
	return e.writePanel(name+"b", "RLM threshold sweep throughput, "+cliutil.TrafficName(base.Traffic, e.h),
		"Offered load", sweep.AcceptedLoad, series)
}

// figTransient produces the transient traffic-change figure: every node
// runs UN until mid-measurement, then abruptly switches to the
// pathological ADVG+h, and the per-window timeline shows how each
// mechanism reacts — adaptive mechanisms recover their accepted load
// within a few windows while Minimal collapses onto the single minimal
// global channel (~1/(2h²)).
func (e *env) figTransient(ctx context.Context, mechs []dragonfly.Mechanism, load float64) error {
	base := e.vctBase()
	switchAt := e.warmup + e.measure/2
	base.Phases = []dragonfly.PhaseSpec{
		{Traffic: dragonfly.Traffic{Kind: dragonfly.UN}, Load: load, Duration: switchAt},
		{Traffic: dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: e.h}, Load: load},
	}
	window := (e.warmup + e.measure) / 30
	if window < 50 {
		window = 50
	}
	base.WindowCycles = window

	camp := exp.NewMatrix(base).Mechanisms(mechs...).Campaign("transient")
	eopt := exp.Options{
		Workers:        e.opt.Parallelism,
		Cache:          e.opt.Cache,
		JSONL:          e.opt.JSONL,
		CanonicalJSONL: true,
	}
	if e.opt.Progress != nil {
		progress := e.opt.Progress
		eopt.Progress = func(pr exp.Progress) {
			o := pr.Outcome
			progress(o.Point.Series, sweep.Point{X: o.Point.X, Result: o.Result, Err: o.Err})
		}
	}
	run := exp.Run
	if e.opt.Remote != nil {
		run = e.opt.Remote.Run
		eopt.Cache = nil
	}
	outs, runErr := run(ctx, camp, eopt)
	if err := e.record(errors.Join(runErr, exp.PointErrors(outs))); err != nil {
		return err
	}

	series := make([]sweep.TimelineSeries, len(outs))
	for i := range outs {
		series[i] = sweep.TimelineSeries{Name: outs[i].Point.Series, Timeline: outs[i].Result.Timeline}
	}
	panels := []struct {
		name   string
		metric sweep.TimelineMetric
	}{
		{"figtransient_a_accepted", sweep.WindowAccepted},
		{"figtransient_b_latency", sweep.WindowLatency},
	}
	for _, p := range panels {
		f, err := os.Create(filepath.Join(e.outDir, p.name+".dat"))
		if err != nil {
			return err
		}
		err = sweep.WriteTimelineDAT(f, p.metric, series)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(e.summary, "## figtransient — UN→ADVG+%d switch at cycle %d (load %.2g, %d-cycle windows)\n\n",
		e.h, switchAt, load, window)
	fmt.Fprintf(e.summary, "| mechanism | accepted before switch | first window after | last window | recovered |\n|---|---|---|---|---|\n")
	for i := range outs {
		o := &outs[i]
		if o.Err != nil || o.Result.Timeline == nil {
			fmt.Fprintf(e.summary, "| %s | error | - | - | - |\n", o.Point.Series)
			continue
		}
		wins := o.Result.Timeline.Windows
		var before, after, last float64
		afterSet := false
		for _, w := range wins {
			if w.End <= switchAt {
				before = w.AcceptedLoad
			}
			if w.Start >= switchAt && !afterSet {
				after = w.AcceptedLoad
				afterSet = true
			}
		}
		if n := len(wins); n > 0 {
			last = wins[n-1].AcceptedLoad
		}
		recovered := "no"
		if before > 0 && last >= 0.8*before {
			recovered = "yes"
		}
		fmt.Fprintf(e.summary, "| %s | %.4f | %.4f | %.4f | %s |\n",
			o.Point.Series, before, after, last, recovered)
	}
	fmt.Fprintln(e.summary)
	return nil
}

// figResilience produces the degraded-topology figure the paper never ran:
// accepted load (and the fault-drop rate) under uniform traffic as the
// fraction of failed global links grows. Adaptive mechanisms — Valiant and
// Piggybacking re-drawing live detours at injection, OLM misrouting around
// dead channels in transit — retain most of their accepted load, while
// Minimal sheds every packet whose only channel died.
func (e *env) figResilience(mechs []dragonfly.Mechanism, load float64) error {
	base := e.vctBase()
	base.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
	base.Load = load
	fracs := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4}
	series, err := sweep.FaultSweep(base, mechs, fracs, e.opt)
	if err = e.record(err); err != nil {
		return err
	}
	if err := e.writePanel("figresilience_a_accepted",
		fmt.Sprintf("Accepted load vs. failed global links, UN@%.2g, VCT", load),
		"Failed global-link fraction", sweep.AcceptedLoad, series); err != nil {
		return err
	}
	if err := e.writePanel("figresilience_b_droprate",
		"Fault-drop rate vs. failed global links",
		"Failed global-link fraction", sweep.FaultDropRate, series); err != nil {
		return err
	}
	// Headline: each mechanism's accepted load at the worst degradation,
	// relative to Minimal's.
	var minimalWorst float64
	for _, s := range series {
		if s.Name == dragonfly.Minimal.String() && len(s.Points) > 0 {
			minimalWorst = s.Points[len(s.Points)-1].Result.AcceptedLoad
		}
	}
	if minimalWorst > 0 {
		fmt.Fprintf(e.summary, "Accepted load at %.0f%% failed global links, relative to Minimal:\n\n",
			100*fracs[len(fracs)-1])
		for _, s := range series {
			if s.Name == dragonfly.Minimal.String() || len(s.Points) == 0 {
				continue
			}
			fmt.Fprintf(e.summary, "- %s: %.0f%%\n",
				s.Name, 100*s.Points[len(s.Points)-1].Result.AcceptedLoad/minimalWorst)
		}
		fmt.Fprintln(e.summary)
	}

	// Degradation panels: the router-failure + flap matrix at paper scale
	// (-rh, default h=8) under the pathological ADVG+h pattern. Severity s
	// kills s whole routers from the start and flaps the adversarial
	// pattern's hot global channel for s periods mid-measurement, so the
	// panels show accepted load and the combined fault-drop + suppressed-
	// injection rate as the fabric degrades (see sweep.DegradationSweep).
	dbase := dragonfly.PaperVCT(e.rh)
	dbase.Warmup, dbase.Measure, dbase.Seed = e.warmup, e.measure, e.seed
	dbase.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: e.rh}
	dbase.Load = load
	severities := []int{0, 1, 2, 4, 8}
	dseries, err := sweep.DegradationSweep(dbase, mechs, severities, e.opt)
	if err = e.record(err); err != nil {
		return err
	}
	if err := e.writePanel("figresilience_c_degradation_accepted",
		fmt.Sprintf("Accepted load vs. failure severity (routers down + flapping channel), ADVG+%d@%.2g h=%d, VCT", e.rh, load, e.rh),
		"Failure severity", sweep.AcceptedLoad, dseries); err != nil {
		return err
	}
	return e.writePanel("figresilience_d_degradation_droprate",
		fmt.Sprintf("Fault-drop + suppressed-injection rate vs. failure severity, ADVG+%d h=%d", e.rh, e.rh),
		"Failure severity", sweep.DropSuppressRate, dseries)
}

// figScaling measures the engine itself rather than the mechanisms: panel
// (a) plots simulated cycles per second against the network size h — the
// paper's h=8 flanked by toy sizes and the beyond-paper h=12 and h=16
// presets — one series per worker count; panel (b) plots the live heap
// per node of the built network (workers do not change it). OLM under
// uniform traffic at 5% load with the paper's link latencies, run lengths
// short enough that h=16 stays in minutes: these are engine-throughput
// curves, not mechanism results, and 800 cycles of a quarter-million-node
// network average over plenty of work. Each point is timed one at a time
// (never through the worker pool) and reports the fastest of two runs.
func (e *env) figScaling(ctx context.Context) error {
	hs := []int{2, 4, dragonfly.PaperH, dragonfly.ScaleH12, dragonfly.ScaleH16}
	workerSet := []int{1, 2, 4, 8}
	const (
		scaleWarmup  = 200
		scaleMeasure = 600
		scaleReps    = 2
	)
	cps := make(map[[2]int]float64)
	bytesPerNode := make(map[int]float64)
	for _, h := range hs {
		_, nodes, _, err := dragonfly.NetworkSize(h)
		if err != nil {
			return err
		}
		for _, w := range workerSet {
			cfg := dragonfly.ScaleVCT(h)
			cfg.Warmup, cfg.Measure, cfg.Seed = scaleWarmup, scaleMeasure, e.seed
			cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
			cfg.Load = 0.05
			cfg.Workers = w
			var best float64
			var heap uint64
			var res dragonfly.Result
			for r := 0; r < scaleReps; r++ {
				sim, err := dragonfly.Prepare(cfg)
				if err != nil {
					return err
				}
				start := time.Now()
				rr, err := sim.RunContext(ctx)
				wall := time.Since(start).Seconds()
				if err != nil {
					return err
				}
				// Live heap with the simulator still reachable: the
				// resident cost of the network state, lazy buffers
				// included.
				var ms runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&ms)
				if r == 0 || wall < best {
					best, heap, res = wall, ms.HeapAlloc, rr
					cps[[2]int{h, w}] = float64(sim.Cycles()) / wall
				}
				runtime.KeepAlive(sim)
			}
			if w == 1 {
				bytesPerNode[h] = float64(heap) / float64(nodes)
			}
			if e.opt.Progress != nil {
				e.opt.Progress(fmt.Sprintf("scaling h=%d w=%d", h, w),
					sweep.Point{X: float64(h), Result: res})
			}
		}
	}

	a, err := os.Create(filepath.Join(e.outDir, "figscaling_a_cyclespersec.dat"))
	if err != nil {
		return err
	}
	defer a.Close()
	fmt.Fprintf(a, "# x: h (network size; nodes = h*2h*(2h^2+1))\n# y: Simulated cycles per second\n")
	for _, w := range workerSet {
		fmt.Fprintf(a, "\n# series: workers=%d\n", w)
		for _, h := range hs {
			fmt.Fprintf(a, "%d\t%g\n", h, cps[[2]int{h, w}])
		}
	}
	b, err := os.Create(filepath.Join(e.outDir, "figscaling_b_bytespernode.dat"))
	if err != nil {
		return err
	}
	defer b.Close()
	fmt.Fprintf(b, "# x: h (network size)\n# y: Live heap per node (bytes), workers=1\n\n# series: heap/node\n")
	for _, h := range hs {
		fmt.Fprintf(b, "%d\t%g\n", h, bytesPerNode[h])
	}

	fmt.Fprintf(e.summary, "## figscaling — engine throughput and memory vs. network size (OLM, UN@0.05)\n\n")
	fmt.Fprintf(e.summary, "| h | nodes | cycles/s w=1 | w=2 | w=4 | w=8 | heap bytes/node |\n|---|---|---|---|---|---|---|\n")
	for _, h := range hs {
		_, nodes, _, _ := dragonfly.NetworkSize(h)
		fmt.Fprintf(e.summary, "| %d | %d |", h, nodes)
		for _, w := range workerSet {
			fmt.Fprintf(e.summary, " %.0f |", cps[[2]int{h, w}])
		}
		fmt.Fprintf(e.summary, " %.0f |\n", bytesPerNode[h])
	}
	fmt.Fprintln(e.summary)
	return nil
}

// burstRatios appends the paper's burst headline numbers: each mechanism's
// average consumption time as a fraction of Piggybacking's.
func (e *env) burstRatios(label string, series []sweep.Series) {
	var pbAvg float64
	for _, s := range series {
		if s.Name == dragonfly.Piggybacking.String() {
			pbAvg = avgConsumption(s)
		}
	}
	if pbAvg <= 0 {
		return
	}
	fmt.Fprintf(e.summary, "%s consumption time relative to PiggyBacking (paper: OLM 36%%, RLM 42.5%% on 6b; RLM 43%% on 9b):\n\n", label)
	for _, s := range series {
		if s.Name == dragonfly.Piggybacking.String() {
			continue
		}
		fmt.Fprintf(e.summary, "- %s: %.0f%%\n", s.Name, 100*avgConsumption(s)/pbAvg)
	}
	fmt.Fprintln(e.summary)
}

func avgConsumption(s sweep.Series) float64 {
	var sum float64
	var n int
	for _, p := range s.Points {
		if p.Result.ConsumptionCycles > 0 {
			sum += float64(p.Result.ConsumptionCycles)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
