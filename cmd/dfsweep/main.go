// Command dfsweep runs an offered-load sweep for a set of mechanisms and
// prints the latency/throughput series as a gnuplot-style .dat stream or a
// markdown table. Points run concurrently on internal/exp's worker pool;
// Ctrl-C cancels the sweep mid-point.
//
// Example:
//
//	dfsweep -h 4 -mechs RLM,OLM,Valiant -traffic ADVG -offset 1 \
//	        -loads 0.05,0.1,0.2,0.3,0.4,0.5 -metric accepted -format md \
//	        -cache ~/.cache/dfsweep -jsonl points.jsonl
//
// With -remote the campaign executes on a dragonsrv server instead of
// in-process; output — including -jsonl — is byte-identical to a local
// run of the same sweep:
//
//	dfsweep -h 4 -mechs RLM,OLM -loads 0.1,0.3 -remote http://127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	dragonfly "repro"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/exp/srv"
	"repro/internal/sweep"
)

func main() {
	var (
		h         = flag.Int("h", 4, "dragonfly parameter (paper: 8; scale presets: 12, 16)")
		mechs     = flag.String("mechs", "Minimal,PiggyBacking,PAR-6/2,RLM,OLM", "comma-separated mechanisms")
		flow      = flag.String("flow", "VCT", "flow control: VCT or WH")
		trafficK  = flag.String("traffic", "UN", "traffic pattern: UN, ADVG, ADVL, MIX")
		offset    = flag.Int("offset", 1, "ADVG/ADVL offset")
		globalPct = flag.Float64("globalpct", 50, "MIX: percent of ADVG+h traffic")
		loads     = flag.String("loads", "0.1,0.2,0.3,0.4,0.5,0.6,0.8,1.0", "comma-separated offered loads")
		faults    = flag.String("faults", "", `fault scenario applied to every point, e.g. "g=0.1" or "router=5;flap@2000+400/100=g0-4" (see README)`)
		stale     = flag.Int64("stale", 0, "cycles the routing view lags behind fault events (stale link state)")
		metric    = flag.String("metric", "accepted", "metric: accepted, latency, netlatency")
		format    = flag.String("format", "dat", "output format: dat or md")
		warmup    = flag.Int64("warmup", 2000, "warmup cycles")
		measure   = flag.Int64("measure", 4000, "measured cycles")
		seed      = flag.Uint64("seed", 1, "random seed")
		par       = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		remote    = flag.String("remote", "", "execute on a dragonsrv server at this base URL (e.g. http://127.0.0.1:8080) instead of in-process")
		cacheDir  = flag.String("cache", "", "result cache directory (empty = no cache; ignored with -remote)")
		jsonlOut  = flag.String("jsonl", "", "stream per-point JSONL results to this file")
		quiet     = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	f, err := dragonfly.ParseFlowControl(*flow)
	fatalIf(err)
	base := dragonfly.PaperVCT(*h)
	if f == dragonfly.WH {
		base = dragonfly.PaperWH(*h)
	}
	base.Warmup, base.Measure = *warmup, *measure
	base.Seed = *seed
	base.Traffic, err = cliutil.Traffic(*trafficK, *offset, *globalPct)
	fatalIf(err)
	if *faults != "" {
		base.Faults, err = cliutil.Faults(*faults, *h)
		fatalIf(err)
	}
	base.StaleCycles = *stale

	ms, err := cliutil.Mechanisms(*mechs)
	fatalIf(err)
	ls, err := cliutil.Floats(*loads)
	fatalIf(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opt := sweep.Options{Parallelism: *par, Context: ctx}
	var client *srv.Client
	if *remote != "" {
		client = srv.NewClient(*remote)
		opt.Remote = client
	}
	if *cacheDir != "" && *remote == "" {
		cache, err := exp.OpenCache(*cacheDir)
		fatalIf(err)
		opt.Cache = cache
	}
	if *jsonlOut != "" {
		jf, err := os.Create(*jsonlOut)
		fatalIf(err)
		defer jf.Close()
		opt.JSONL = jf
	}
	if !*quiet {
		opt.Progress = func(series string, p sweep.Point) {
			if p.Err != nil {
				fmt.Fprintf(os.Stderr, "FAIL %-14s load=%.3f: %v\n", series, p.X, p.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "done %-14s load=%.3f accepted=%.4f lat=%.1f\n",
				series, p.X, p.Result.AcceptedLoad, p.Result.AvgTotalLatency)
		}
	}
	series, sweepErr := sweep.LoadSweep(base, ms, ls, opt)
	if series == nil {
		fatalIf(sweepErr)
	}

	var m sweep.Metric
	switch *metric {
	case "accepted":
		m = sweep.AcceptedLoad
	case "latency":
		m = sweep.TotalLatency
	case "netlatency":
		m = sweep.NetworkLatency
	default:
		fatalIf(fmt.Errorf("unknown metric %q", *metric))
	}
	switch *format {
	case "dat":
		fatalIf(sweep.WriteDAT(os.Stdout, "Offered load (phits/(node*cycle))", m, series))
	case "md":
		fatalIf(sweep.WriteMarkdown(os.Stdout, "load", m, series))
	default:
		fatalIf(fmt.Errorf("unknown format %q", *format))
	}
	if opt.Cache != nil {
		hits, misses := opt.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses\n", hits, misses)
	}
	if client != nil {
		st := client.LastStatus()
		fmt.Fprintf(os.Stderr, "remote: campaign %s: %d simulated, %d from store, %d deduped\n",
			st.ID, st.Executed, st.FromStore, st.Deduped)
	}
	// Per-point failures were reported by the progress callback as they
	// happened; the joined error decides the exit code after the partial
	// results have been written.
	fatalIf(sweepErr)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfsweep:", err)
		os.Exit(1)
	}
}
