// Command dfbench runs a fixed matrix of simulation scenarios and reports
// engine throughput — simulated cycles per wall-clock second and crossbar
// phits per second — plus stepping-phase allocation counts for each point,
// as JSON. The matrix is held constant across PRs (h ∈ {2,3}, VCT and WH,
// seven mechanisms — RLM and OLM joined in BENCH_2 — uniform and
// adversarial traffic, low and saturation load, serial and 4-worker
// execution) so successive BENCH_<n>.json files track the engine's
// performance trajectory over time.
//
// With -scale, a second matrix of large-network points is appended:
// h ∈ {8, 12, 16} (the paper's full size and the two beyond-paper scale
// presets) under OLM, uniform traffic at 5% load and the paper's link
// latencies, across workers ∈ {1, 2, 4, 8}, each point also reporting
// heap_bytes — the live heap of the built network.
//
// The matrix is built and driven by internal/exp; the orchestrator runs
// one point at a time by default (wall-clock timing stays clean), with
// -parallel for smoke runs where timing fidelity does not matter.
//
// With -baseline, the run is compared point-by-point against a previous
// report: single-point regressions beyond -maxregress are report-only
// warnings (benchmark noise), but a median regression beyond -maxregress
// across the matrix fails the run — the CI perf gate.
//
// Usage:
//
//	go run ./cmd/dfbench -o BENCH_1.json
//	go run ./cmd/dfbench -quick -reps 1 -o /dev/null -baseline BENCH_1.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"time"

	dragonfly "repro"
	"repro/internal/cliutil"
	"repro/internal/exp"
)

// Point is one benchmark measurement.
type Point struct {
	H         int     `json:"h"`
	Flow      string  `json:"flow"`
	Mechanism string  `json:"mechanism"`
	Pattern   string  `json:"pattern"`
	Load      float64 `json:"load"`
	Workers   int     `json:"workers"`

	Cycles       int64   `json:"cycles"`
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"sim_cycles_per_sec"`
	PhitsMoved   int64   `json:"phits_moved"`
	PhitsPerSec  float64 `json:"phits_per_sec"`

	// AllocBytes and Allocs are the heap traffic of the reported (fastest)
	// repetition's stepping phase, from runtime.ReadMemStats deltas —
	// construction (Prepare) excluded. They surface allocation regressions
	// that wall time alone can hide.
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`

	// HeapBytes is the live heap after the run (runtime.GC + HeapAlloc)
	// with the simulator still reachable — the resident cost of the
	// network state. Only the -scale points report it; for the tiny fixed
	// matrix the number is all Go runtime, not router state.
	HeapBytes uint64 `json:"heap_bytes,omitempty"`

	AcceptedLoad float64 `json:"accepted_load"`
	Deadlock     bool    `json:"deadlock"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Warmup     int64   `json:"warmup_cycles"`
	Measure    int64   `json:"measure_cycles"`
	Points     []Point `json:"points"`
}

func main() {
	out := flag.String("o", "BENCH_1.json", "output JSON path (- for stdout)")
	warmup := flag.Int64("warmup", 500, "warmup cycles per point")
	measure := flag.Int64("measure", 1500, "measured cycles per point")
	reps := flag.Int("reps", 3, "repetitions per point; the fastest is reported")
	quick := flag.Bool("quick", false, "h=2 serial subset only (CI smoke)")
	par := flag.Int("parallel", 1, "concurrent points (>1 ruins timing; smoke runs only)")
	baseline := flag.String("baseline", "", "previous report to compare sim_cycles_per_sec against")
	maxRegress := flag.Float64("maxregress", 0.30, "median regression fraction that fails a -baseline comparison")
	verbose := flag.Bool("v", false, "print each point as it completes")
	scale := flag.Bool("scale", false, "append the large-network scale matrix (h in {8,12,16}, workers in {1,2,4,8})")
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}

	hs := []int{2, 3}
	workerSet := []int{1, 4}
	if *quick {
		hs = []int{2}
		workerSet = []int{1}
	}
	type patternPoint struct {
		tr   dragonfly.Traffic
		load float64
	}
	patterns := []patternPoint{
		{dragonfly.Traffic{Kind: dragonfly.UN}, 0.05},
		{dragonfly.Traffic{Kind: dragonfly.UN}, 1.0},
		{dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, 0.05},
		{dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, 1.0},
	}
	// RLM and OLM (the paper's contributions, and the most route-
	// evaluation-bound mechanisms) joined the matrix in BENCH_2; baseline
	// comparisons simply skip points absent from older reports.
	mechs := []dragonfly.Mechanism{
		dragonfly.Minimal, dragonfly.Valiant, dragonfly.PAR62,
		dragonfly.Piggybacking, dragonfly.RLM, dragonfly.OLM, dragonfly.OFAR,
	}

	// The fixed benchmark matrix, declaratively. Reduced link latencies
	// keep point runtimes manageable while preserving the engine's work
	// profile; the WH packet size (40 phits) fits the default 256-phit
	// global buffers. The Filter drops VCT-only mechanisms under WH.
	camp := exp.NewMatrix(dragonfly.Config{
		Warmup: *warmup, Measure: *measure, Seed: 1,
		LatLocal: 4, LatGlobal: 16,
	}).
		Axis(len(hs),
			func(i int) string { return fmt.Sprintf("h=%d", hs[i]) },
			func(c *dragonfly.Config, i int) { c.H = hs[i] }).
		Axis(2,
			func(i int) string { return []string{"VCT", "WH"}[i] },
			func(c *dragonfly.Config, i int) {
				if i == 1 {
					c.FlowControl = dragonfly.WH
					c.PacketPhits = 40
				}
			}).
		Mechanisms(mechs...).
		Axis(len(patterns),
			func(i int) string {
				return fmt.Sprintf("%s/%.2f", cliutil.TrafficName(patterns[i].tr, 0), patterns[i].load)
			},
			func(c *dragonfly.Config, i int) {
				c.Traffic = patterns[i].tr
				c.Load = patterns[i].load
			}).
		Axis(len(workerSet),
			func(i int) string { return fmt.Sprintf("w=%d", workerSet[i]) },
			func(c *dragonfly.Config, i int) { c.Workers = workerSet[i] }).
		Filter(func(c dragonfly.Config) bool {
			return !(c.Mechanism.RequiresVCT() && c.FlowControl == dragonfly.WH)
		}).
		Campaign("dfbench")

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Warmup:     *warmup,
		Measure:    *measure,
	}

	// The custom runner times the stepping loop itself (build excluded)
	// and keeps the fastest of -reps repetitions: the simulation is
	// deterministic, so repetitions only sample scheduler and cache noise
	// and the minimum is the cleanest estimate.
	walls := make([]float64, len(camp.Points))
	cycles := make([]int64, len(camp.Points))
	allocBytes := make([]uint64, len(camp.Points))
	allocs := make([]uint64, len(camp.Points))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opt := exp.Options{
		Workers: *par,
		Run: func(ctx context.Context, index int, p exp.Point) (dragonfly.Result, error) {
			var best dragonfly.Result
			var ms0, ms1 runtime.MemStats
			for i := 0; i < *reps; i++ {
				sim, err := dragonfly.Prepare(p.Config)
				if err != nil {
					return dragonfly.Result{}, err
				}
				// Allocation accounting brackets the stepping phase only
				// (Prepare excluded); both ReadMemStats probes sit outside
				// the wall-clock window.
				runtime.ReadMemStats(&ms0)
				start := time.Now()
				res, err := sim.RunContext(ctx)
				wall := time.Since(start).Seconds()
				if err != nil {
					return dragonfly.Result{}, err
				}
				runtime.ReadMemStats(&ms1)
				if i == 0 || wall < walls[index] {
					// Cycles actually simulated: warmup+measure unless a
					// watchdog ended the run early, in which case the
					// throughput covers the truncated run.
					walls[index], cycles[index], best = wall, sim.Cycles(), res
					allocBytes[index] = ms1.TotalAlloc - ms0.TotalAlloc
					allocs[index] = ms1.Mallocs - ms0.Mallocs
				}
			}
			return best, nil
		},
	}
	if *verbose {
		opt.Progress = func(pr exp.Progress) {
			o := pr.Outcome
			if o.Err != nil {
				fmt.Fprintf(os.Stderr, "[%d/%d] %s: %v\n", pr.Done, pr.Total, o.Point.Series, o.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s: %.0f cycles/s\n",
				pr.Done, pr.Total, o.Point.Series, float64(cycles[o.Index])/walls[o.Index])
		}
	}
	outs, runErr := exp.Run(ctx, camp, opt)
	fatalIf(runErr)
	fatalIf(exp.PointErrors(outs))
	for _, o := range outs {
		cfg, res := o.Point.Config, o.Result
		rep.Points = append(rep.Points, Point{
			H:         cfg.H,
			Flow:      cfg.FlowControl.String(),
			Mechanism: res.Mechanism,
			Pattern:   res.Pattern,
			Load:      cfg.Load,
			Workers:   cfg.Workers,

			Cycles:       cycles[o.Index],
			WallSeconds:  walls[o.Index],
			CyclesPerSec: float64(cycles[o.Index]) / walls[o.Index],
			PhitsMoved:   res.PhitsMoved,
			PhitsPerSec:  float64(res.PhitsMoved) / walls[o.Index],
			AllocBytes:   allocBytes[o.Index],
			Allocs:       allocs[o.Index],

			AcceptedLoad: res.AcceptedLoad,
			Deadlock:     res.Deadlock,
		})
	}

	if *scale {
		pts, err := runScale(ctx, *reps, *verbose)
		fatalIf(err)
		rep.Points = append(rep.Points, pts...)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatalIf(err)
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		fatalIf(os.WriteFile(*out, buf, 0o644))
		fmt.Printf("dfbench: wrote %d points to %s\n", len(rep.Points), *out)
	}

	// With -o -, stdout carries the JSON document; the comparison output
	// must not corrupt the stream.
	cmpOut := os.Stdout
	if *out == "-" {
		cmpOut = os.Stderr
	}
	if *baseline != "" && !compareBaseline(cmpOut, rep, *baseline, *maxRegress) {
		os.Exit(1)
	}
}

// Scale-matrix run lengths. Shorter than the fixed matrix because each
// cycle moves three to forty times more routers; long enough that the
// per-cycle work dwarfs the loop overhead being measured.
const (
	scaleWarmup  = 200
	scaleMeasure = 600
)

// runScale measures the large-network scale matrix: the paper's h = 8
// system plus the beyond-paper h = 12 and h = 16 presets, OLM under
// uniform traffic at 5% load with the paper's 10/100-cycle latencies,
// across worker counts. These points track how the engine behaves at
// sizes where memory layout and parallel stepping actually matter; they
// additionally report heap_bytes, the live heap of the built network.
func runScale(ctx context.Context, reps int, verbose bool) ([]Point, error) {
	hs := []int{dragonfly.PaperH, dragonfly.ScaleH12, dragonfly.ScaleH16}
	workerSet := []int{1, 2, 4, 8}

	base := dragonfly.ScaleVCT(hs[0])
	base.Warmup, base.Measure, base.Seed = scaleWarmup, scaleMeasure, 1
	base.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
	base.Load = 0.05
	camp := exp.NewMatrix(base).
		Axis(len(hs),
			func(i int) string { return fmt.Sprintf("h=%d", hs[i]) },
			func(c *dragonfly.Config, i int) { c.H = hs[i] }).
		Mechanisms(dragonfly.OLM).
		Axis(len(workerSet),
			func(i int) string { return fmt.Sprintf("w=%d", workerSet[i]) },
			func(c *dragonfly.Config, i int) { c.Workers = workerSet[i] }).
		Campaign("dfbench-scale")

	walls := make([]float64, len(camp.Points))
	cycles := make([]int64, len(camp.Points))
	heap := make([]uint64, len(camp.Points))
	opt := exp.Options{
		// Strictly one point at a time: a second h=16 network in flight
		// would double the peak heap and corrupt both timings.
		Workers: 1,
		Run: func(ctx context.Context, index int, p exp.Point) (dragonfly.Result, error) {
			var best dragonfly.Result
			var ms runtime.MemStats
			for i := 0; i < reps; i++ {
				sim, err := dragonfly.Prepare(p.Config)
				if err != nil {
					return dragonfly.Result{}, err
				}
				start := time.Now()
				res, err := sim.RunContext(ctx)
				wall := time.Since(start).Seconds()
				if err != nil {
					return dragonfly.Result{}, err
				}
				// Live heap with the simulator still reachable: what the
				// network state costs, lazily-allocated buffers included.
				runtime.GC()
				runtime.ReadMemStats(&ms)
				if i == 0 || wall < walls[index] {
					walls[index], cycles[index], best = wall, sim.Cycles(), res
					heap[index] = ms.HeapAlloc
				}
				runtime.KeepAlive(sim)
			}
			return best, nil
		},
	}
	if verbose {
		opt.Progress = func(pr exp.Progress) {
			o := pr.Outcome
			if o.Err != nil {
				fmt.Fprintf(os.Stderr, "[scale %d/%d] %s: %v\n", pr.Done, pr.Total, o.Point.Series, o.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[scale %d/%d] %s: %.0f cycles/s, %.0f MiB\n",
				pr.Done, pr.Total, o.Point.Series,
				float64(cycles[o.Index])/walls[o.Index], float64(heap[o.Index])/(1<<20))
		}
	}
	outs, err := exp.Run(ctx, camp, opt)
	if err != nil {
		return nil, err
	}
	if err := exp.PointErrors(outs); err != nil {
		return nil, err
	}
	pts := make([]Point, 0, len(outs))
	for _, o := range outs {
		cfg, res := o.Point.Config, o.Result
		pts = append(pts, Point{
			H:         cfg.H,
			Flow:      cfg.FlowControl.String(),
			Mechanism: res.Mechanism,
			Pattern:   res.Pattern,
			Load:      cfg.Load,
			Workers:   cfg.Workers,

			Cycles:       cycles[o.Index],
			WallSeconds:  walls[o.Index],
			CyclesPerSec: float64(cycles[o.Index]) / walls[o.Index],
			PhitsMoved:   res.PhitsMoved,
			PhitsPerSec:  float64(res.PhitsMoved) / walls[o.Index],
			HeapBytes:    heap[o.Index],

			AcceptedLoad: res.AcceptedLoad,
			Deadlock:     res.Deadlock,
		})
	}
	return pts, nil
}

// pointKey identifies a matrix point across reports.
type pointKey struct {
	H         int
	Flow      string
	Mechanism string
	Pattern   string
	Load      float64
	Workers   int
}

func (p Point) key() pointKey {
	return pointKey{p.H, p.Flow, p.Mechanism, p.Pattern, p.Load, p.Workers}
}

// compareBaseline checks rep's sim_cycles_per_sec against an earlier
// report. Per-point regressions beyond maxRegress print report-only
// warnings (single points are noisy); the verdict is the median ratio
// over all matched points, which cancels point noise but not a real
// engine slowdown. Returns false — fail — when the median regresses by
// more than maxRegress, and also when no baseline point matches this
// matrix at all (a gate that compares nothing must not pass silently).
// Output uses GitHub Actions annotation syntax so regressions surface on
// the workflow summary.
func compareBaseline(w io.Writer, rep Report, path string, maxRegress float64) bool {
	buf, err := os.ReadFile(path)
	fatalIf(err)
	var base Report
	fatalIf(json.Unmarshal(buf, &base))
	old := make(map[pointKey]Point, len(base.Points))
	for _, p := range base.Points {
		old[p.key()] = p
	}

	var ratios, allocRatios []float64
	floor := 1 - maxRegress
	for _, p := range rep.Points {
		was, ok := old[p.key()]
		if !ok || was.CyclesPerSec <= 0 || p.CyclesPerSec <= 0 {
			continue
		}
		ratio := p.CyclesPerSec / was.CyclesPerSec
		ratios = append(ratios, ratio)
		if ratio < floor {
			fmt.Fprintf(w, "::warning title=dfbench point regression::%s %s %s load=%.2f w=%d: %.0f -> %.0f cycles/s (%.0f%%)\n",
				p.Flow, p.Mechanism, p.Pattern, p.Load, p.Workers,
				was.CyclesPerSec, p.CyclesPerSec, 100*ratio)
		}
		// Allocation comparison is report-only: stepping is expected to
		// run allocation-free, so any growth is worth a look, but GC
		// timing makes single points too noisy to gate on.
		if was.AllocBytes > 0 && p.AllocBytes > 0 {
			allocRatios = append(allocRatios, float64(p.AllocBytes)/float64(was.AllocBytes))
		}
	}
	if len(ratios) == 0 {
		fmt.Fprintf(w, "::error title=dfbench perf regression::no points of %s match this matrix; regenerate the baseline\n", path)
		return false
	}
	sort.Float64s(ratios)
	median := medianOf(ratios)
	fmt.Fprintf(w, "dfbench: %d points vs %s: median %.0f%%, min %.0f%%, max %.0f%% of baseline sim_cycles_per_sec\n",
		len(ratios), path, 100*median, 100*ratios[0], 100*ratios[len(ratios)-1])
	if len(allocRatios) > 0 {
		sort.Float64s(allocRatios)
		fmt.Fprintf(w, "dfbench: stepping allocations vs %s: median %.0f%%, max %.0f%% of baseline alloc_bytes\n",
			path, 100*medianOf(allocRatios), 100*allocRatios[len(allocRatios)-1])
	}
	if median < floor {
		fmt.Fprintf(w, "::error title=dfbench perf regression::median sim_cycles_per_sec is %.0f%% of %s (floor %.0f%%)\n",
			100*median, path, 100*floor)
		return false
	}
	return true
}

// medianOf returns the median of an already-sorted slice.
func medianOf(xs []float64) float64 {
	m := xs[len(xs)/2]
	if len(xs)%2 == 0 {
		m = (xs[len(xs)/2-1] + xs[len(xs)/2]) / 2
	}
	return m
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
		os.Exit(1)
	}
}
