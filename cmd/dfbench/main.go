// Command dfbench runs a fixed matrix of simulation scenarios and reports
// engine throughput — simulated cycles per wall-clock second and crossbar
// phits per second — for each point, as JSON. The matrix is held constant
// across PRs (h ∈ {2,3}, VCT and WH, five mechanisms, uniform and
// adversarial traffic, low and saturation load, serial and 4-worker
// execution) so successive BENCH_<n>.json files track the engine's
// performance trajectory over time.
//
// Usage:
//
//	go run ./cmd/dfbench -o BENCH_1.json
//	go run ./cmd/dfbench -quick          # h=2 subset, for smoke tests
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	dragonfly "repro"
)

// Point is one benchmark measurement.
type Point struct {
	H         int     `json:"h"`
	Flow      string  `json:"flow"`
	Mechanism string  `json:"mechanism"`
	Pattern   string  `json:"pattern"`
	Load      float64 `json:"load"`
	Workers   int     `json:"workers"`

	Cycles       int64   `json:"cycles"`
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"sim_cycles_per_sec"`
	PhitsMoved   int64   `json:"phits_moved"`
	PhitsPerSec  float64 `json:"phits_per_sec"`

	AcceptedLoad float64 `json:"accepted_load"`
	Deadlock     bool    `json:"deadlock"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Warmup     int64   `json:"warmup_cycles"`
	Measure    int64   `json:"measure_cycles"`
	Points     []Point `json:"points"`
}

func main() {
	out := flag.String("o", "BENCH_1.json", "output JSON path (- for stdout)")
	warmup := flag.Int64("warmup", 500, "warmup cycles per point")
	measure := flag.Int64("measure", 1500, "measured cycles per point")
	reps := flag.Int("reps", 3, "repetitions per point; the fastest is reported")
	quick := flag.Bool("quick", false, "h=2 serial subset only (CI smoke)")
	verbose := flag.Bool("v", false, "print each point as it completes")
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}

	hs := []int{2, 3}
	workerSet := []int{1, 4}
	if *quick {
		hs = []int{2}
		workerSet = []int{1}
	}
	flows := []dragonfly.FlowControl{dragonfly.VCT, dragonfly.WH}
	mechs := []dragonfly.Mechanism{
		dragonfly.Minimal, dragonfly.Valiant, dragonfly.PAR62,
		dragonfly.Piggybacking, dragonfly.OFAR,
	}
	type patternPoint struct {
		tr   dragonfly.Traffic
		load float64
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Warmup:     *warmup,
		Measure:    *measure,
	}
	for _, h := range hs {
		patterns := []patternPoint{
			{dragonfly.Traffic{Kind: dragonfly.UN}, 0.05},
			{dragonfly.Traffic{Kind: dragonfly.UN}, 1.0},
			{dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, 0.05},
			{dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1}, 1.0},
		}
		for _, flow := range flows {
			for _, m := range mechs {
				if m.RequiresVCT() && flow == dragonfly.WH {
					continue
				}
				for _, pp := range patterns {
					for _, w := range workerSet {
						pt, err := bestOf(*reps, h, flow, m, pp.tr, pp.load, w, *warmup, *measure)
						if err != nil {
							fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
							os.Exit(1)
						}
						if *verbose {
							fmt.Fprintf(os.Stderr, "h=%d %s %-5s %-7s load=%.2f w=%d: %.0f cycles/s, %.0f phits/s\n",
								pt.H, pt.Flow, pt.Mechanism, pt.Pattern, pt.Load, pt.Workers,
								pt.CyclesPerSec, pt.PhitsPerSec)
						}
						rep.Points = append(rep.Points, pt)
					}
				}
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dfbench: wrote %d points to %s\n", len(rep.Points), *out)
}

// bestOf runs a point reps times and keeps the fastest wall time: the
// simulation itself is deterministic, so repetitions only sample scheduler
// and cache noise and the minimum is the cleanest estimate.
func bestOf(reps, h int, flow dragonfly.FlowControl, m dragonfly.Mechanism, tr dragonfly.Traffic, load float64, workers int, warmup, measure int64) (Point, error) {
	var best Point
	for i := 0; i < reps; i++ {
		pt, err := runPoint(h, flow, m, tr, load, workers, warmup, measure)
		if err != nil {
			return Point{}, err
		}
		if i == 0 || pt.WallSeconds < best.WallSeconds {
			best = pt
		}
	}
	return best, nil
}

func runPoint(h int, flow dragonfly.FlowControl, m dragonfly.Mechanism, tr dragonfly.Traffic, load float64, workers int, warmup, measure int64) (Point, error) {
	cfg := dragonfly.Config{
		H:           h,
		Mechanism:   m,
		FlowControl: flow,
		Traffic:     tr,
		Load:        load,
		Warmup:      warmup,
		Measure:     measure,
		Seed:        1,
		Workers:     workers,
		// Reduced link latencies keep point runtimes manageable while
		// preserving the engine's work profile.
		LatLocal:  4,
		LatGlobal: 16,
	}
	if flow == dragonfly.WH {
		cfg.PacketPhits = 40 // fits the default 256-phit global buffers
	}
	// Build outside the timer: the wall clock covers only simulation
	// stepping, so the reported throughput measures the engine, not the
	// allocator.
	sim, err := dragonfly.Prepare(cfg)
	if err != nil {
		return Point{}, fmt.Errorf("h=%d %s %s: %w", h, flow, m, err)
	}
	start := time.Now()
	res, err := sim.Run()
	if err != nil {
		return Point{}, fmt.Errorf("h=%d %s %s: %w", h, flow, m, err)
	}
	wall := time.Since(start).Seconds()
	// The cycles actually simulated: equals warmup+measure unless a
	// watchdog ended the run early, in which case the throughput must be
	// computed over the truncated run.
	cycles := sim.Cycles()
	return Point{
		H:         h,
		Flow:      flow.String(),
		Mechanism: res.Mechanism,
		Pattern:   res.Pattern,
		Load:      load,
		Workers:   workers,

		Cycles:       cycles,
		WallSeconds:  wall,
		CyclesPerSec: float64(cycles) / wall,
		PhitsMoved:   res.PhitsMoved,
		PhitsPerSec:  float64(res.PhitsMoved) / wall,

		AcceptedLoad: res.AcceptedLoad,
		Deadlock:     res.Deadlock,
	}, nil
}
