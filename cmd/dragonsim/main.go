// Command dragonsim runs one dragonfly simulation and prints its metrics.
//
// Examples:
//
//	dragonsim -h 4 -mech OLM -traffic ADVG -offset 1 -load 0.5
//	dragonsim -h 8 -mech RLM -flow WH -packet 80 -traffic UN -load 0.3
//	dragonsim -h 4 -mech RLM -traffic MIX -globalpct 60 -burst 1000
//
// With -phases the run follows a phased workload instead of one static
// pattern; -window adds a per-window timeline to the output:
//
//	dragonsim -h 4 -mech OLM -phases "UN@0.3x4000,ADVG+4@0.3" -window 250
//	dragonsim -h 4 -mech OLM -phases "0-527=UN@0.25;528-1055=ADVG+4@0.5" -window 500
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	dragonfly "repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		h         = flag.Int("h", 4, "dragonfly parameter (paper: 8; scale presets: 12, 16)")
		mech      = flag.String("mech", "OLM", "routing mechanism: Minimal, Valiant, PiggyBacking, PAR-6/2, RLM, OLM, RLM-signonly, OFAR")
		flow      = flag.String("flow", "VCT", "flow control: VCT or WH")
		packet    = flag.Int("packet", 0, "packet size in phits (default: 8 for VCT, 80 for WH)")
		trafficK  = flag.String("traffic", "UN", "traffic pattern: UN, ADVG, ADVL, MIX")
		offset    = flag.Int("offset", 1, "ADVG/ADVL offset")
		globalPct = flag.Float64("globalpct", 50, "MIX: percent of ADVG+h traffic")
		load      = flag.Float64("load", 0.5, "offered load in phits/(node*cycle)")
		burst     = flag.Int("burst", 0, "burst packets per node (0 = steady state)")
		phases    = flag.String("phases", "", `phased workload spec, e.g. "UN@0.3x4000,ADVG+4@0.3" (overrides -traffic/-load/-burst; see README)`)
		faults    = flag.String("faults", "", `fault scenario spec, e.g. "g=0.1;kill@5000=g0-4", "router=5@1000-4000", "grp=2" or "flap@2000+400/100=g0-4" (see README)`)
		window    = flag.Int64("window", 0, "timeline window width in cycles (0 = no timeline)")
		threshold = flag.Float64("threshold", 0.45, "misrouting threshold fraction")
		warmup    = flag.Int64("warmup", 3000, "warmup cycles")
		measure   = flag.Int64("measure", 6000, "measured cycles")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 1, "intra-simulation worker count")
		stale     = flag.Int64("stale", 0, "cycles the routing view lags behind fault events (stale link state)")
		asJSON    = flag.Bool("json", false, "print the result as JSON")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()

	m, err := dragonfly.ParseMechanism(*mech)
	fatalIf(err)
	f, err := dragonfly.ParseFlowControl(*flow)
	fatalIf(err)

	cfg := dragonfly.PaperVCT(*h)
	if f == dragonfly.WH {
		cfg = dragonfly.PaperWH(*h)
	}
	cfg.Mechanism = m
	if *packet > 0 {
		cfg.PacketPhits = *packet
	}
	cfg.Threshold = *threshold
	cfg.Warmup, cfg.Measure = *warmup, *measure
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.WindowCycles = *window
	cfg.StaleCycles = *stale

	if *faults != "" {
		cfg.Faults, err = cliutil.Faults(*faults, *h)
		fatalIf(err)
	}
	if *phases != "" {
		cfg.Workload, err = cliutil.Phases(*phases)
		fatalIf(err)
	} else {
		cfg.Traffic, err = cliutil.Traffic(*trafficK, *offset, *globalPct)
		fatalIf(err)
		if *burst > 0 {
			cfg.BurstPackets = *burst
		} else {
			cfg.Load = *load
		}
	}
	fatalIf(cfg.Validate())

	routers, nodes, groups, err := dragonfly.NetworkSize(*h)
	fatalIf(err)
	if !*asJSON {
		fmt.Printf("dragonfly h=%d: %d routers, %d nodes, %d groups; %s/%s\n",
			*h, routers, nodes, groups, m, f)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		fatalIf(err)
		fatalIf(pprof.StartCPUProfile(f))
	}
	res, err := dragonfly.Run(cfg)
	fatalIf(err)
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		fatalIf(err)
		runtime.GC() // surface live heap, not garbage
		fatalIf(pprof.WriteHeapProfile(f))
		fatalIf(f.Close())
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(res))
		return
	}
	fmt.Printf("pattern            %s\n", res.Pattern)
	fmt.Printf("offered load       %.4f phits/(node*cycle)\n", res.OfferedLoad)
	fmt.Printf("accepted load      %.4f phits/(node*cycle)\n", res.AcceptedLoad)
	fmt.Printf("avg latency        %.1f cycles (network %.1f, p50 %.0f, p99 %.0f)\n",
		res.AvgTotalLatency, res.AvgNetworkLatency, res.P50Latency, res.P99Latency)
	fmt.Printf("hops/packet        %.2f local, %.2f global\n", res.AvgLocalHops, res.AvgGlobalHops)
	fmt.Printf("misroutes/packet   %.3f local, %.3f global\n", res.LocalMisrouteRate, res.GlobalMisrouteRate)
	fmt.Printf("delivered          %d packets over %d cycles\n", res.Delivered, res.Cycles)
	if res.FaultDrops > 0 {
		fmt.Printf("fault drops        %d packets (no surviving route)\n", res.FaultDrops)
	}
	fmt.Printf("link utilization   %.3f local, %.3f global\n", res.LocalLinkUtil, res.GlobalLinkUtil)
	if res.ConsumptionCycles > 0 {
		fmt.Printf("burst consumption  %d cycles\n", res.ConsumptionCycles)
	}
	for _, ph := range res.PhaseDigests {
		fmt.Printf("phase %-2d %-22s cycles [%d, %d): accepted %.4f lat %.1f misroutes %.3f/%.3f\n",
			ph.Index, ph.Label, ph.Start, ph.End,
			ph.AcceptedLoad, ph.AvgTotalLatency, ph.LocalMisrouteRate, ph.GlobalMisrouteRate)
	}
	if res.Timeline != nil {
		fmt.Printf("timeline (%d-cycle windows):\n", res.Timeline.WindowCycles)
		fmt.Printf("  %10s %10s %10s %10s %10s\n", "cycle", "accepted", "latency", "p99", "delivered")
		for _, w := range res.Timeline.Windows {
			fmt.Printf("  %10d %10.4f %10.1f %10.0f %10d\n",
				w.Start, w.AcceptedLoad, w.AvgTotalLatency, w.P99Latency, w.Delivered)
		}
	}
	if res.Deadlock {
		fmt.Println("DEADLOCK detected by the watchdog")
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dragonsim:", err)
		os.Exit(1)
	}
}
