// Command dragonsim runs one dragonfly simulation and prints its metrics.
//
// Examples:
//
//	dragonsim -h 4 -mech OLM -traffic ADVG -offset 1 -load 0.5
//	dragonsim -h 8 -mech RLM -flow WH -packet 80 -traffic UN -load 0.3
//	dragonsim -h 4 -mech RLM -traffic MIX -globalpct 60 -burst 1000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	dragonfly "repro"
)

func main() {
	var (
		h         = flag.Int("h", 4, "dragonfly parameter (paper: 8)")
		mech      = flag.String("mech", "OLM", "routing mechanism: Minimal, Valiant, PiggyBacking, PAR-6/2, RLM, OLM, RLM-signonly, OFAR")
		flow      = flag.String("flow", "VCT", "flow control: VCT or WH")
		packet    = flag.Int("packet", 0, "packet size in phits (default: 8 for VCT, 80 for WH)")
		trafficK  = flag.String("traffic", "UN", "traffic pattern: UN, ADVG, ADVL, MIX")
		offset    = flag.Int("offset", 1, "ADVG/ADVL offset")
		globalPct = flag.Float64("globalpct", 50, "MIX: percent of ADVG+h traffic")
		load      = flag.Float64("load", 0.5, "offered load in phits/(node*cycle)")
		burst     = flag.Int("burst", 0, "burst packets per node (0 = steady state)")
		threshold = flag.Float64("threshold", 0.45, "misrouting threshold fraction")
		warmup    = flag.Int64("warmup", 3000, "warmup cycles")
		measure   = flag.Int64("measure", 6000, "measured cycles")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 1, "intra-simulation worker count")
		asJSON    = flag.Bool("json", false, "print the result as JSON")
	)
	flag.Parse()

	m, err := dragonfly.ParseMechanism(*mech)
	fatalIf(err)
	f, err := dragonfly.ParseFlowControl(*flow)
	fatalIf(err)

	cfg := dragonfly.PaperVCT(*h)
	if f == dragonfly.WH {
		cfg = dragonfly.PaperWH(*h)
	}
	cfg.Mechanism = m
	if *packet > 0 {
		cfg.PacketPhits = *packet
	}
	cfg.Threshold = *threshold
	cfg.Load = *load
	cfg.BurstPackets = *burst
	cfg.Warmup, cfg.Measure = *warmup, *measure
	cfg.Seed = *seed
	cfg.Workers = *workers

	switch *trafficK {
	case "UN":
		cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.UN}
	case "ADVG":
		cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: *offset}
	case "ADVL":
		cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.ADVL, Offset: *offset}
	case "MIX":
		cfg.Traffic = dragonfly.Traffic{Kind: dragonfly.MIX, GlobalPercent: *globalPct}
	default:
		fatalIf(fmt.Errorf("unknown traffic %q", *trafficK))
	}

	routers, nodes, groups, err := dragonfly.NetworkSize(*h)
	fatalIf(err)
	if !*asJSON {
		fmt.Printf("dragonfly h=%d: %d routers, %d nodes, %d groups; %s/%s\n",
			*h, routers, nodes, groups, m, f)
	}

	res, err := dragonfly.Run(cfg)
	fatalIf(err)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(res))
		return
	}
	fmt.Printf("pattern            %s\n", res.Pattern)
	fmt.Printf("offered load       %.4f phits/(node*cycle)\n", res.OfferedLoad)
	fmt.Printf("accepted load      %.4f phits/(node*cycle)\n", res.AcceptedLoad)
	fmt.Printf("avg latency        %.1f cycles (network %.1f, p50 %.0f, p99 %.0f)\n",
		res.AvgTotalLatency, res.AvgNetworkLatency, res.P50Latency, res.P99Latency)
	fmt.Printf("hops/packet        %.2f local, %.2f global\n", res.AvgLocalHops, res.AvgGlobalHops)
	fmt.Printf("misroutes/packet   %.3f local, %.3f global\n", res.LocalMisrouteRate, res.GlobalMisrouteRate)
	fmt.Printf("delivered          %d packets over %d cycles\n", res.Delivered, res.Cycles)
	fmt.Printf("link utilization   %.3f local, %.3f global\n", res.LocalLinkUtil, res.GlobalLinkUtil)
	if res.ConsumptionCycles > 0 {
		fmt.Printf("burst consumption  %d cycles\n", res.ConsumptionCycles)
	}
	if res.Deadlock {
		fmt.Println("DEADLOCK detected by the watchdog")
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dragonsim:", err)
		os.Exit(1)
	}
}
