// Command dragonsrv serves internal/exp as a long-running campaign
// service: clients POST campaigns to its HTTP/JSON API (dfsweep and
// paperfigs do so via -remote), identical points submitted concurrently
// share one simulation, and finished results persist in a size-bounded
// LRU store so warm resubmissions execute zero simulations. Progress
// streams over SSE; / serves a plain-HTML results browser.
//
//	dragonsrv -addr :8080 -store ~/.cache/dragonsrv -maxstore 512MiB
//
// The same binary is also the fleet worker. Pointed at a coordinator it
// claims leased batches of points, executes them locally (with its own
// result store), streams outcomes back, and heartbeats its leases; it
// survives coordinator restarts and unreachability by backing off and
// rejoining, and exits only on SIGTERM/SIGINT:
//
//	dragonsrv -worker http://coordinator:8080 -name rack7 -store .dragonwrk
//
// A coordinator that should not simulate anything itself (fleet-only)
// runs with -sims -1.
//
// SIGTERM or SIGINT drains gracefully: new submissions are rejected, no
// new leases are issued, queued points that have not started fail fast,
// in-flight simulations — local and leased to workers — finish and
// persist, JSONL mirrors are flushed, and the process exits 0. A second
// signal — or the -draintimeout deadline — aborts the remaining
// simulations instead of waiting for them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/exp/queue"
	"repro/internal/exp/srv"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address (coordinator mode)")
		storeDir     = flag.String("store", ".dragonsrv", "result store directory")
		maxStore     = flag.String("maxstore", "", `store size budget with LRU eviction, e.g. "512MiB", "2GiB" or a byte count (empty = unbounded)`)
		sims         = flag.Int("sims", 0, "max concurrent simulations (0 = GOMAXPROCS; -1 = coordinator dispatches to workers only)")
		jsonlDir     = flag.String("jsonldir", "", "mirror each campaign's canonical JSONL to this directory (empty = off)")
		drainTimeout = flag.Duration("draintimeout", 15*time.Minute, "how long a drain waits for in-flight simulations before aborting them")
		lease        = flag.Duration("lease", 30*time.Second, "fleet lease duration; a worker silent this long has its points requeued")
		worker       = flag.String("worker", "", "run as a fleet worker against this coordinator URL instead of serving")
		name         = flag.String("name", "", "worker name (default hostname-pid); distinct workers need distinct names")
		batch        = flag.Int("batch", 4, "worker: max points claimed per lease")
		poll         = flag.Duration("poll", 15*time.Second, "worker: long-poll wait when the queue is idle")
		quiet        = flag.Bool("q", false, "suppress operational log lines")
	)
	flag.Parse()

	maxBytes, err := parseBytes(*maxStore)
	fatalIf(err)
	store, err := exp.OpenStore(*storeDir, maxBytes)
	fatalIf(err)

	logger := log.New(os.Stderr, "dragonsrv: ", log.LstdFlags)
	if *worker != "" {
		runWorker(store, *worker, *name, *sims, *batch, *poll, *quiet, logger)
		return
	}

	cfg := srv.Config{
		Store:      store,
		SimWorkers: *sims,
		JSONLDir:   *jsonlDir,
		Fleet:      queue.Config{Lease: *lease},
	}
	if !*quiet {
		cfg.Log = logger
	}
	server, err := srv.New(cfg)
	fatalIf(err)

	ln, err := net.Listen("tcp", *addr)
	fatalIf(err)
	hs := &http.Server{
		Handler: server.Handler(),
		// A slowloris client must not pin the daemon: bound how long a
		// request may dribble its headers and how long an idle keep-alive
		// connection is kept. No overall write timeout — SSE streams and
		// blocking results endpoints are long-lived by design; per-write
		// deadlines inside the SSE handler cover wedged subscribers.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	logger.Printf("listening on %s (store %s, budget %s, lease %s)",
		ln.Addr(), *storeDir, budgetString(maxBytes), *lease)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		logger.Printf("%s: draining (timeout %s; signal again to abort in-flight simulations)", sig, *drainTimeout)
	case err := <-httpDone:
		fatalIf(err) // listener died before any signal
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sigs
		logger.Printf("second signal: aborting in-flight simulations")
		cancel()
	}()
	if err := server.Drain(drainCtx); err != nil {
		logger.Printf("drain cut short: %v", err)
	}
	cancel()

	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	st := store.Stats()
	logger.Printf("drained; store: %d entries, %d bytes, %d hits, %d misses, %d evictions",
		st.Entries, st.Bytes, st.Hits, st.Misses, st.Evictions)
}

// runWorker runs the fleet-worker loop until SIGTERM/SIGINT.
func runWorker(store *exp.Store, coordinator, name string, sims, batch int, poll time.Duration, quiet bool, logger *log.Logger) {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	cfg := srv.WorkerConfig{
		Coordinator: coordinator,
		Name:        name,
		Store:       store,
		Sims:        sims,
		Batch:       batch,
		Poll:        poll,
	}
	if !quiet {
		cfg.Log = logger
	}
	wk, err := srv.NewWorker(cfg)
	fatalIf(err)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	logger.Printf("worker %s: pulling from %s (batch %d, poll %s)", name, coordinator, batch, poll)
	wk.Run(ctx) //nolint:errcheck // only ever ctx.Err()
	logger.Printf("worker %s: stopped after %d simulation(s)", name, wk.Executed())
}

// parseBytes parses a byte budget: a plain integer, or an integer with
// a KB/MB/GB (decimal) or KiB/MiB/GiB (binary) suffix. Empty means 0,
// i.e. unbounded.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	units := []struct {
		suffix string
		mult   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9},
		{"B", 1},
	}
	mult := int64(1)
	num := s
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			num = strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			break
		}
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q (want e.g. 512MiB, 2GiB, or a byte count)", s)
	}
	return n * mult, nil
}

func budgetString(n int64) string {
	if n <= 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%d bytes", n)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dragonsrv:", err)
		os.Exit(1)
	}
}
