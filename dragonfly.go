// Package dragonfly is a cycle-accurate simulator of Dragonfly
// interconnection networks with the deadlock-free adaptive routing
// mechanisms of García, Vallejo, Beivide, Odriozola and Valero,
// "Efficient Routing Mechanisms for Dragonfly Networks" (ICPP 2013).
//
// It models the canonical well-balanced dragonfly (groups of 2h routers in
// a complete graph, 2h²+1 groups in a complete graph, h nodes per router)
// with FIFO input-buffered routers, credit-based virtual cut-through or
// wormhole flow control, and phit-granularity links — the same abstraction
// level as the paper's in-house simulator. Six routing mechanisms are
// provided: Minimal, Valiant, Piggybacking, PAR-6/2, RLM and OLM (plus a
// sign-only RLM ablation), together with the paper's synthetic traffic
// patterns (uniform, ADVG+N, ADVL+N, mixed, bursts).
//
// # Quick start
//
//	cfg := dragonfly.Config{
//		H:         4,
//		Mechanism: dragonfly.OLM,
//		Traffic:   dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1},
//		Load:      0.5,
//	}
//	res, err := dragonfly.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.AcceptedLoad, res.AvgTotalLatency)
package dragonfly

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Mechanism selects the routing algorithm.
type Mechanism int

// The routing mechanisms of the paper. RLMSignOnly is the rejected
// restriction discussed (and dismissed) in Section III-B, kept as an
// ablation; OFAR is the escape-ring predecessor of Section II
// (García et al., ICPP 2012) the paper positions RLM and OLM against.
const (
	Minimal Mechanism = iota
	Valiant
	Piggybacking
	PAR62
	RLM
	OLM
	RLMSignOnly
	OFAR
)

// Mechanisms lists all supported mechanisms in presentation order.
var Mechanisms = []Mechanism{Minimal, Valiant, Piggybacking, PAR62, RLM, OLM, RLMSignOnly, OFAR}

// String returns the paper's name for the mechanism.
func (m Mechanism) String() string { return m.spec().String() }

func (m Mechanism) spec() core.Spec { return core.Spec(m) }

// ParseMechanism resolves a mechanism by its String name.
func ParseMechanism(name string) (Mechanism, error) {
	s, err := core.ParseSpec(name)
	if err != nil {
		return 0, err
	}
	return Mechanism(s), nil
}

// RequiresVCT reports whether the mechanism only works under virtual
// cut-through flow control (true for OLM and for OFAR, whose escape-ring
// bubble needs whole-packet buffering).
func (m Mechanism) RequiresVCT() bool { return m == OLM || m == OFAR }

// VCs returns the number of virtual channels the mechanism needs on local
// and global ports ("3/2" for everything but PAR-6/2's "6/2").
func (m Mechanism) VCs() (local, global int) { return core.VCsFor(m.spec()) }

// FlowControl selects the link-level flow control.
type FlowControl int

// Flow control disciplines.
const (
	VCT FlowControl = iota // virtual cut-through
	WH                     // wormhole
)

// String returns "VCT" or "WH".
func (f FlowControl) String() string { return engine.FlowControl(f).String() }

// ParseFlowControl resolves "VCT" or "WH".
func ParseFlowControl(s string) (FlowControl, error) {
	f, err := engine.ParseFlowControl(s)
	return FlowControl(f), err
}

// TrafficKind selects the synthetic traffic pattern family.
type TrafficKind int

// Traffic pattern kinds of the paper's evaluation.
const (
	UN   TrafficKind = iota // uniform random
	ADVG                    // adversarial global: group i -> group i+Offset
	ADVL                    // adversarial local: router i -> router i+Offset
	MIX                     // GlobalPercent% ADVG+h mixed with ADVL+1
)

// Traffic describes the workload.
type Traffic struct {
	Kind TrafficKind
	// Offset is the +N of ADVG/ADVL patterns (default 1; the paper's
	// pathological global pattern is ADVG+h).
	Offset int
	// GlobalPercent is, for MIX, the percentage of traffic following
	// ADVG+h; the rest follows ADVL+1 (paper Figures 6 and 9).
	GlobalPercent float64
}

// Name returns the paper's label for the pattern, or an error for an
// unknown kind. Config.Validate surfaces that error before any simulation
// runs, so a label in results output is always a real pattern name.
func (tr Traffic) Name(h int) (string, error) {
	switch tr.Kind {
	case UN:
		return "UN", nil
	case ADVG:
		return fmt.Sprintf("ADVG+%d", tr.offset()), nil
	case ADVL:
		return fmt.Sprintf("ADVL+%d", tr.offset()), nil
	case MIX:
		return fmt.Sprintf("%.0f%%ADVG+%d/ADVL+1", tr.GlobalPercent, h), nil
	}
	return "", fmt.Errorf("dragonfly: unknown traffic kind %d", tr.Kind)
}

// validate checks the pattern parameters against the topology bounds of a
// well-balanced dragonfly of size h (2h²+1 groups of 2h routers).
func (tr Traffic) validate(h int) error {
	name, err := tr.Name(h)
	if err != nil {
		return err
	}
	switch tr.Kind {
	case ADVG:
		if groups := 2*h*h + 1; tr.offset() < 1 || tr.offset() >= groups {
			return fmt.Errorf("dragonfly: %s offset out of range [1, %d) for h=%d", name, groups, h)
		}
	case ADVL:
		if rpg := 2 * h; tr.offset() < 1 || tr.offset() >= rpg {
			return fmt.Errorf("dragonfly: %s offset out of range [1, %d) for h=%d", name, rpg, h)
		}
	case MIX:
		if tr.GlobalPercent < 0 || tr.GlobalPercent > 100 {
			return fmt.Errorf("dragonfly: MIX global percentage %v outside [0, 100]", tr.GlobalPercent)
		}
	}
	return nil
}

func (tr Traffic) offset() int {
	if tr.Offset == 0 {
		return 1
	}
	return tr.Offset
}

// PhaseSpec describes one phase of a workload schedule: a traffic pattern
// driven either at a steady offered Load (Bernoulli injection) or as a
// burst of BurstPackets packets per node, active for Duration cycles.
type PhaseSpec struct {
	Traffic Traffic
	// Load is the phase's offered load in phits/(node·cycle); steady
	// phases require it in (0, 1] and must leave BurstPackets zero.
	Load float64
	// BurstPackets, when positive, makes this a burst phase: every node of
	// the job sends this many packets, then falls silent.
	BurstPackets int
	// Duration is the number of cycles the phase is active, counted on the
	// absolute simulation clock (warmup included). Zero means "until the
	// end of the run" and is only legal on the last phase of a schedule.
	Duration int64
}

// JobSpec binds a phase schedule to a contiguous node range, so disjoint
// partitions of the machine can run independent workloads (multi-job
// interference scenarios). The zero range means "all nodes".
type JobSpec struct {
	// FirstNode and LastNode are inclusive global node ids. Leaving both
	// zero selects the whole network.
	FirstNode int
	LastNode  int
	Phases    []PhaseSpec
}

// LinkID names one full-duplex physical link by either of its ends: the
// output port of the router driving one direction. Failing a link always
// removes both directions. Canonicalization reduces the two spellings of a
// link to the end with the smaller router id.
type LinkID struct {
	Router int
	Port   int
}

// FaultEvent is one scheduled link state change: Link fails (or, with
// Repair true, comes back) at the start of cycle At on the absolute
// simulation clock, warmup included. Kills take effect for routing
// immediately; traffic already committed to the link drains, and packets
// elsewhere that lost their only surviving route are dropped and counted
// in Result.FaultDrops.
type FaultEvent struct {
	At     int64
	Repair bool
	Link   LinkID
}

// RouterFault fails a whole router: every link port dies as one event and
// the attached nodes are parked — their generation events are suppressed at
// the source (counted in Result.Suppressed, separate from drops) and
// packets arriving for them drain through the drop sink. At schedules the
// failure on the absolute clock (zero or negative = failed from the
// start); Until, when positive, revives the router at that cycle. Reviving
// restores exactly the links with no other reason to stay down.
type RouterFault struct {
	Router int
	At     int64 `json:",omitempty"`
	Until  int64 `json:",omitempty"`
}

// BundleFault fails a correlated cable bundle of group Group as one event,
// in either of two forms:
//
//   - First == Last == 0: a whole-group blackout. The group's entire
//     global-channel set is one physical bundle in the model; cutting it
//     isolates the group (every global channel of a group lands in a
//     distinct other group, so there is no detour), which is why the
//     blackout takes the group's 2h routers down with it — parked nodes
//     and all — instead of leaving an unreachable island behind.
//   - otherwise: a local backplane segment. Every local link among router
//     indices [First, Last] of the group dies together; the routers stay
//     up and route around it.
//
// At and Until schedule the outage like RouterFault's.
type BundleFault struct {
	Group int
	First int   `json:",omitempty"`
	Last  int   `json:",omitempty"`
	At    int64 `json:",omitempty"`
	Until int64 `json:",omitempty"`
}

// FlapSpec schedules a transient link instability: Link dies at cycles
// At + k*Period and recovers Down cycles later, for k in [0, Count) — an
// unstable cable rather than a hard failure. Flaps expand into the
// ordinary fault-event stream at build time, so determinism and the
// serial-section application path are untouched; every kill and repair
// recomputes the (possibly StaleCycles-stale) routing view through the
// incremental epoch machinery.
type FlapSpec struct {
	Link   LinkID
	At     int64
	Period int64
	Down   int64
	Count  int
}

// FaultSpec describes a degraded dragonfly: links failed from the start
// (explicitly, or as deterministic seeded fractions per link class),
// whole-router and correlated-bundle failures, plus dynamic mid-run
// failures, repairs and flaps. The zero value means a pristine network and
// changes nothing — fault-free runs are bit-identical to a config with no
// FaultSpec at all.
type FaultSpec struct {
	// Links lists links failed from cycle 0.
	Links []LinkID `json:",omitempty"`
	// GlobalFraction and LocalFraction fail a deterministic pseudo-random
	// selection of that fraction of global/local links, drawn from the
	// run's Seed; both must be in [0, 1). The same (H, fraction, Seed)
	// always fails the same links, so results stay content-addressable.
	GlobalFraction float64 `json:",omitempty"`
	LocalFraction  float64 `json:",omitempty"`
	// Events schedules mid-run kills and repairs, applied in At order
	// (ties in canonical link order, kills before repairs).
	Events []FaultEvent `json:",omitempty"`
	// Routers fails whole routers, parked nodes included.
	Routers []RouterFault `json:",omitempty"`
	// Bundles fails correlated cable bundles: whole-group blackouts or
	// local backplane segments.
	Bundles []BundleFault `json:",omitempty"`
	// Flaps schedules transient kill+repair bursts per link.
	Flaps []FlapSpec `json:",omitempty"`
}

// empty reports whether the spec describes a pristine network.
func (f *FaultSpec) empty() bool {
	return f == nil || (len(f.Links) == 0 && len(f.Events) == 0 &&
		len(f.Routers) == 0 && len(f.Bundles) == 0 && len(f.Flaps) == 0 &&
		f.GlobalFraction == 0 && f.LocalFraction == 0)
}

// dynamic reports whether the spec changes fault state mid-run — the only
// case where routing-view staleness can matter.
func (f *FaultSpec) dynamic() bool {
	if f == nil {
		return false
	}
	if len(f.Events) > 0 || len(f.Flaps) > 0 {
		return true
	}
	for _, r := range f.Routers {
		if r.At > 0 || r.Until > 0 {
			return true
		}
	}
	for _, b := range f.Bundles {
		if b.At > 0 || b.Until > 0 {
			return true
		}
	}
	return false
}

// Config describes one simulation experiment. Zero fields take the paper's
// defaults (see the field comments).
type Config struct {
	// H is the dragonfly sizing parameter: groups of 2h routers,
	// 2h²+1 groups, h nodes per router. The paper evaluates h=8
	// (16,512 nodes); h=4 is a fast reduced-scale default.
	H int

	// Mechanism selects the routing mechanism under test (default
	// Minimal; see Mechanisms for the full roster).
	Mechanism Mechanism
	// FlowControl selects virtual cut-through or wormhole switching
	// (default VCT, the paper's Section IV-A environment).
	FlowControl FlowControl

	// PacketPhits is the packet size: 8 in the paper's VCT experiments,
	// 80 (8 flits of 10 phits) in the WH ones. Default: 8 for VCT,
	// 80 for WH.
	PacketPhits int

	// Threshold is the misrouting trigger percentage expressed as a
	// fraction (default 0.45, the paper's choice).
	Threshold float64
	// PBThreshold is Piggybacking's congestion-bit occupancy fraction
	// (default 0.35).
	PBThreshold float64
	// RemoteCandidates is how many remote global channels are sampled as
	// additional global-misrouting candidates (default 2; -1 restricts
	// global misrouting to the router's own global ports).
	RemoteCandidates int

	BufLocal        int // phits per local VC buffer (default 32)
	BufGlobal       int // phits per global VC buffer (default 256)
	InjQueuePackets int // injection queue depth in packets (default 16)
	LatLocal        int // local link latency, cycles (default 10)
	LatGlobal       int // global link latency, cycles (default 100)

	// Traffic selects the traffic pattern (default UN, uniform random).
	Traffic Traffic
	// Load is the offered load in phits/(node·cycle) for steady-state
	// (Bernoulli) experiments.
	Load float64
	// BurstPackets, when positive, switches to the paper's burst
	// consumption experiment: every node sends this many packets and the
	// run measures the cycles needed to drain them all.
	BurstPackets int

	// Phases, when non-empty, replaces the Traffic/Load/BurstPackets trio
	// with a phase schedule over all nodes: each phase binds a pattern and
	// injection process for its Duration, so a run can, e.g., switch from
	// UN to ADVG mid-measurement to study how mechanisms react. The trio
	// is exactly equivalent to a one-element Phases schedule.
	Phases []PhaseSpec
	// Workload generalizes Phases to node-partitioned multi-job schedules
	// (disjoint node ranges running independent phase schedules). At most
	// one of Phases and Workload may be set.
	Workload []JobSpec
	// WindowCycles, when positive, adds a Timeline of fixed-width window
	// snapshots (accepted load, latency, misroute rates per window) to the
	// Result, covering the whole run including warmup.
	WindowCycles int64

	// Faults, when non-nil and non-empty, degrades the network: the
	// listed (or seed-drawn) links are failed and the scheduled events
	// kill/repair links mid-run. Configurations whose surviving links do
	// not connect every router are rejected at build time. Mechanisms
	// fall back to surviving candidates where their routing discipline
	// allows; packets with no surviving route are dropped and counted in
	// Result.FaultDrops.
	Faults *FaultSpec `json:",omitempty"`

	// StaleCycles delays the routing view of every fault event by this
	// many cycles: a link killed (or repaired) at cycle C stops (or
	// resumes) carrying traffic immediately, but the routing tables the
	// mechanisms consult only learn of it at C+StaleCycles — modeling a
	// fabric manager that needs time to detect the event, broadcast it
	// and recompute the tables. During the stale window packets keep
	// steering toward dead links (they wait, then drop once the tables
	// catch up) and avoid repaired ones. Zero — the default — models
	// instantaneous link-state knowledge and is bit-identical to the
	// behavior before this knob existed. It only affects runs with
	// Faults.Events; initial faults are always known at boot.
	StaleCycles int64 `json:",omitempty"`

	Warmup  int64 // steady-state warmup cycles (default 3000)
	Measure int64 // steady-state measured cycles (default 6000)

	// Seed seeds every random stream in the run (traffic, fault
	// sampling, routing tie-breaks); equal configurations with equal
	// seeds reproduce bit-identical results.
	Seed uint64
	// Workers is the parallel-stepping width (default 1, serial). The
	// engine clamps it to runtime.GOMAXPROCS(0) and to the router count;
	// results are bit-identical for any value, so it is purely a
	// wall-clock knob and Canonical() drops it from the cache key.
	Workers int

	// MaxCycles bounds burst-mode runs that fail to drain (default
	// 50×(Warmup+Measure+20000)).
	MaxCycles int64
	// Watchdog is how many cycles without forward progress declare a
	// deadlock (default 20000).
	Watchdog int64
}

// Result is the digest of one run; fields mirror the paper's reported
// metrics.
type Result struct {
	Mechanism   string
	Pattern     string
	FlowControl string
	OfferedLoad float64 // phits/(node·cycle)

	AcceptedLoad      float64 // phits/(node·cycle) delivered
	AvgTotalLatency   float64 // generation -> delivery, cycles
	AvgNetworkLatency float64 // injection -> delivery, cycles
	P50Latency        float64
	P99Latency        float64

	AvgLocalHops       float64
	AvgGlobalHops      float64
	LocalMisrouteRate  float64 // local misroutes per delivered packet
	GlobalMisrouteRate float64 // Valiant commitments per delivered packet
	EscapeHopRate      float64 // OFAR escape-ring hops per delivered packet

	Delivered     int64
	Generated     int64
	InjectionLost int64
	// Suppressed counts generation events suppressed at the source
	// because the node's router was dead at the time — parked capacity,
	// separate from in-network drops (always zero without router
	// failures). Conservation: Generated == Injected + InjectionLost +
	// Suppressed.
	Suppressed int64 `json:",omitempty"`
	// FaultDrops counts packets discarded in-network because link
	// failures left them without a surviving route (always zero on
	// fault-free runs).
	FaultDrops int64
	Cycles     int64
	Nodes      int

	// PhitsMoved is the total number of crossbar phit movements over the
	// whole run (warmup included) — the engine's raw unit of work.
	PhitsMoved int64

	LocalLinkUtil  float64
	GlobalLinkUtil float64

	// ConsumptionCycles is the burst drain time (burst runs only).
	ConsumptionCycles int64
	// Deadlock reports that the watchdog detected no forward progress.
	Deadlock bool

	// Timeline is the windowed time series of the run (nil unless
	// Config.WindowCycles was positive).
	Timeline *Timeline `json:",omitempty"`
	// PhaseDigests summarizes each workload phase separately (nil for
	// single-phase runs).
	PhaseDigests []PhaseDigest `json:",omitempty"`
}

// Window is one fixed-width snapshot of a run's Timeline: the packets
// delivered (and generation events) in [Start, End) on the absolute
// simulation clock, warmup included.
type Window struct {
	Start int64
	End   int64

	AcceptedLoad       float64 // phits/(node·cycle) delivered in the window
	AvgTotalLatency    float64 // of packets delivered in the window; 0 when none
	P99Latency         float64
	LocalMisrouteRate  float64
	GlobalMisrouteRate float64

	Delivered     int64
	Generated     int64
	InjectionLost int64
	Suppressed    int64 `json:",omitempty"`
	FaultDrops    int64
}

// Timeline is a run's windowed time series — the raw material of the
// transient traffic-change figures.
type Timeline struct {
	WindowCycles int64
	Windows      []Window
}

// PhaseDigest summarizes the packets generated during one workload phase,
// wherever in the run they were delivered. AcceptedLoad normalizes by the
// phase's activity span and its job's node count.
type PhaseDigest struct {
	Index int
	Label string
	Nodes int
	Start int64
	End   int64

	AcceptedLoad       float64
	AvgTotalLatency    float64
	AvgNetworkLatency  float64
	LocalMisrouteRate  float64
	GlobalMisrouteRate float64

	Generated     int64
	InjectionLost int64
	Suppressed    int64 `json:",omitempty"`
	Delivered     int64
	FaultDrops    int64
}

// normalize fills defaults; it returns a copy.
func (c Config) normalize() Config {
	if c.H == 0 {
		c.H = 4
	}
	if c.PacketPhits == 0 {
		if c.FlowControl == WH {
			c.PacketPhits = 80
		} else {
			c.PacketPhits = 8
		}
	}
	if c.Warmup == 0 {
		c.Warmup = 3000
	}
	if c.Measure == 0 {
		c.Measure = 6000
	}
	return c
}

// jobSpecs returns the workload in its general multi-job form, whatever
// way it was specified: Workload verbatim, Phases as a single whole-network
// job, or the classic Traffic/Load/BurstPackets trio as a single job with
// a single phase.
func (c Config) jobSpecs() []JobSpec {
	if len(c.Workload) > 0 {
		return c.Workload
	}
	if len(c.Phases) > 0 {
		return []JobSpec{{Phases: c.Phases}}
	}
	return []JobSpec{{Phases: []PhaseSpec{{
		Traffic:      c.Traffic,
		Load:         c.Load,
		BurstPackets: c.BurstPackets,
	}}}}
}

// singlePhase returns the workload's only phase when it consists of one
// whole-network job — the implicit zero range or the explicit
// [0, nodes-1] spelling — with one phase, or nil. c must be normalized.
func (c Config) singlePhase() *PhaseSpec {
	jobs := c.jobSpecs()
	if len(jobs) != 1 || len(jobs[0].Phases) != 1 || jobs[0].FirstNode != 0 {
		return nil
	}
	if last := jobs[0].LastNode; last != 0 {
		nodes := 2 * c.H * (2*c.H*c.H + 1) * c.H
		if last != nodes-1 {
			return nil
		}
	}
	return &jobs[0].Phases[0]
}

// Validate rejects inconsistent configurations with a descriptive error
// before any network is built: out-of-range offered loads, Load and
// BurstPackets both set, adversarial offsets outside the topology, unknown
// traffic kinds, overlapping workload jobs and malformed phase schedules.
// Run, Prepare and the CLIs all call it; it is exported so tools can check
// configurations they are about to store or enqueue.
func (c Config) Validate() error {
	c = c.normalize()
	if c.H < 1 {
		return fmt.Errorf("dragonfly: h must be >= 1, got %d", c.H)
	}
	if c.WindowCycles < 0 {
		return fmt.Errorf("dragonfly: negative WindowCycles %d", c.WindowCycles)
	}
	if c.StaleCycles < 0 {
		return fmt.Errorf("dragonfly: negative StaleCycles %d", c.StaleCycles)
	}
	if len(c.Phases) > 0 && len(c.Workload) > 0 {
		return fmt.Errorf("dragonfly: Phases and Workload are mutually exclusive")
	}
	if len(c.Phases) > 0 || len(c.Workload) > 0 {
		if c.Load != 0 || c.BurstPackets != 0 {
			return fmt.Errorf("dragonfly: Load/BurstPackets must be zero when a phased workload is set")
		}
	}
	if !c.Faults.empty() {
		f := c.Faults
		// The negated >=-and-< form rejects NaN too, which would otherwise
		// pass every comparison, defeat empty(), and then break the JSON
		// cache key while drawing no faults at all.
		if !(f.GlobalFraction >= 0 && f.GlobalFraction < 1) ||
			!(f.LocalFraction >= 0 && f.LocalFraction < 1) {
			return fmt.Errorf("dragonfly: fault fractions %v/%v outside [0, 1)",
				f.GlobalFraction, f.LocalFraction)
		}
		p, err := topology.New(c.H)
		if err != nil {
			return err
		}
		checkLink := func(l LinkID, where string) error {
			if l.Router < 0 || l.Router >= p.Routers ||
				!(p.IsLocalPort(l.Port) || p.IsGlobalPort(l.Port)) {
				return fmt.Errorf("dragonfly: %s names no link of an h=%d dragonfly (router %d, port %d)",
					where, c.H, l.Router, l.Port)
			}
			return nil
		}
		for i, l := range f.Links {
			if err := checkLink(l, fmt.Sprintf("fault link %d", i)); err != nil {
				return err
			}
		}
		for i, ev := range f.Events {
			if ev.At < 0 {
				return fmt.Errorf("dragonfly: fault event %d at negative cycle %d", i, ev.At)
			}
			if err := checkLink(ev.Link, fmt.Sprintf("fault event %d", i)); err != nil {
				return err
			}
		}
		checkOutage := func(at, until int64, where string) error {
			if at < 0 {
				return fmt.Errorf("dragonfly: %s at negative cycle %d", where, at)
			}
			if until != 0 && until <= at {
				return fmt.Errorf("dragonfly: %s repairs at cycle %d, not after its failure at %d",
					where, until, at)
			}
			return nil
		}
		for i, rf := range f.Routers {
			where := fmt.Sprintf("router fault %d", i)
			if rf.Router < 0 || rf.Router >= p.Routers {
				return fmt.Errorf("dragonfly: %s names no router of an h=%d dragonfly (router %d)",
					where, c.H, rf.Router)
			}
			if err := checkOutage(rf.At, rf.Until, where); err != nil {
				return err
			}
		}
		for i, b := range f.Bundles {
			where := fmt.Sprintf("bundle fault %d", i)
			if b.Group < 0 || b.Group >= p.Groups {
				return fmt.Errorf("dragonfly: %s names no group of an h=%d dragonfly (group %d)",
					where, c.H, b.Group)
			}
			if b.First != 0 || b.Last != 0 {
				lo, hi := b.First, b.Last
				if lo > hi {
					lo, hi = hi, lo
				}
				if lo < 0 || hi >= p.RoutersPerGroup || lo == hi {
					return fmt.Errorf("dragonfly: %s local range [%d, %d] needs two distinct router indices in [0, %d)",
						where, b.First, b.Last, p.RoutersPerGroup)
				}
			}
			if err := checkOutage(b.At, b.Until, where); err != nil {
				return err
			}
		}
		for i, fl := range f.Flaps {
			where := fmt.Sprintf("flap %d", i)
			if err := checkLink(fl.Link, where); err != nil {
				return err
			}
			// The cycle bound keeps the expanded schedule (At + Count*Period)
			// comfortably inside int64 for any allowed Count.
			const maxFlapCycle = int64(1) << 40
			if fl.At < 0 || fl.At > maxFlapCycle || fl.Period <= 0 || fl.Period > maxFlapCycle ||
				fl.Down <= 0 || fl.Down >= fl.Period {
				return fmt.Errorf("dragonfly: %s needs At >= 0 and 0 < Down < Period (at %d, period %d, down %d)",
					where, fl.At, fl.Period, fl.Down)
			}
			if fl.Count < 1 || fl.Count > 100000 {
				return fmt.Errorf("dragonfly: %s repeats %d times (want 1..100000)", where, fl.Count)
			}
		}
	}
	nodes := 2 * c.H * (2*c.H*c.H + 1) * c.H // routers × h
	jobs := c.jobSpecs()
	type span struct{ first, last int }
	spans := make([]span, 0, len(jobs))
	for ji, job := range jobs {
		first, last := job.FirstNode, job.LastNode
		if first == 0 && last == 0 {
			last = nodes - 1
		}
		if first < 0 || last >= nodes || first > last {
			return fmt.Errorf("dragonfly: job %d node range [%d, %d] outside [0, %d)",
				ji, job.FirstNode, job.LastNode, nodes)
		}
		for _, s := range spans {
			if first <= s.last && last >= s.first {
				return fmt.Errorf("dragonfly: job %d nodes [%d, %d] overlap another job's [%d, %d]",
					ji, first, last, s.first, s.last)
			}
		}
		spans = append(spans, span{first, last})
		if len(job.Phases) == 0 {
			return fmt.Errorf("dragonfly: job %d has no phases", ji)
		}
		for pi, ph := range job.Phases {
			where := fmt.Sprintf("job %d phase %d", ji, pi)
			if len(c.Phases) == 0 && len(c.Workload) == 0 {
				where = "config"
			}
			if err := ph.Traffic.validate(c.H); err != nil {
				return fmt.Errorf("%w (%s)", err, where)
			}
			switch {
			case ph.BurstPackets < 0:
				return fmt.Errorf("dragonfly: %s: negative BurstPackets %d", where, ph.BurstPackets)
			case ph.BurstPackets > 0 && ph.Load != 0:
				return fmt.Errorf("dragonfly: %s: Load (%v) and BurstPackets (%d) are mutually exclusive",
					where, ph.Load, ph.BurstPackets)
			case ph.BurstPackets == 0 && (ph.Load <= 0 || ph.Load > 1):
				return fmt.Errorf("dragonfly: %s: offered load %v outside (0, 1]", where, ph.Load)
			}
			last := pi == len(job.Phases)-1
			if ph.Duration < 0 || (!last && ph.Duration == 0) {
				return fmt.Errorf("dragonfly: %s: duration %d (non-final phases need a positive duration)",
					where, ph.Duration)
			}
		}
	}
	return nil
}

// canonicalTraffic reduces a pattern description to its meaningful fields.
func canonicalTraffic(tr Traffic) Traffic {
	switch tr.Kind {
	case UN:
		return Traffic{Kind: UN}
	case ADVG, ADVL:
		return Traffic{Kind: tr.Kind, Offset: tr.offset()}
	case MIX:
		return Traffic{Kind: MIX, GlobalPercent: tr.GlobalPercent}
	}
	return tr
}

// Canonical returns the configuration with every defaulted field filled
// in, result-irrelevant fields zeroed, and the traffic description reduced
// to its meaningful fields. Two configurations with equal Canonical()
// values produce identical Results: Workers is cleared because the engine
// is bit-identical for any worker count, Load is cleared for burst runs
// (the burst process ignores it), and unused Traffic fields are dropped.
// The workload is canonicalized too: a one-element Phases schedule (or a
// one-job one-phase Workload over all nodes) reduces to the classic
// Traffic/Load/BurstPackets trio, while genuinely phased workloads land in
// Workload form with explicit node ranges — so equivalent spellings share
// cache entries. Result caches (internal/exp) hash the canonical form as
// their key.
func (c Config) Canonical() Config {
	c = c.normalize()
	// Mirror the engine's and router core's own defaulting so that a
	// zero field and its explicit default hash identically.
	if c.Threshold <= 0 {
		c.Threshold = 0.45
	}
	if c.PBThreshold <= 0 {
		c.PBThreshold = 0.35
	}
	if c.RemoteCandidates == 0 {
		c.RemoteCandidates = 2
	}
	if c.BufLocal == 0 {
		c.BufLocal = 32
	}
	if c.BufGlobal == 0 {
		c.BufGlobal = 256
	}
	if c.InjQueuePackets == 0 {
		c.InjQueuePackets = 16
	}
	if c.LatLocal == 0 {
		c.LatLocal = 10
	}
	if c.LatGlobal == 0 {
		c.LatGlobal = 100
	}
	if c.Watchdog == 0 {
		c.Watchdog = 20000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50 * (c.Warmup + c.Measure + 20000)
	}
	if c.WindowCycles < 0 {
		c.WindowCycles = 0
	}
	if ph := c.singlePhase(); ph != nil && ph.Duration == 0 {
		// One whole-network phase: the classic trio form is canonical.
		c.Traffic = canonicalTraffic(ph.Traffic)
		c.Load = ph.Load
		c.BurstPackets = ph.BurstPackets
		c.Phases, c.Workload = nil, nil
	} else {
		jobs := c.jobSpecs()
		canon := make([]JobSpec, len(jobs))
		nodes := 2 * c.H * (2*c.H*c.H + 1) * c.H
		for ji, job := range jobs {
			cj := JobSpec{FirstNode: job.FirstNode, LastNode: job.LastNode}
			if cj.FirstNode == 0 && cj.LastNode == 0 {
				cj.LastNode = nodes - 1
			}
			cj.Phases = make([]PhaseSpec, len(job.Phases))
			for pi, ph := range job.Phases {
				cp := PhaseSpec{
					Traffic:  canonicalTraffic(ph.Traffic),
					Load:     ph.Load,
					Duration: ph.Duration,
				}
				if ph.BurstPackets > 0 {
					cp.Load = 0
					cp.BurstPackets = ph.BurstPackets
				}
				cj.Phases[pi] = cp
			}
			canon[ji] = cj
		}
		c.Workload = canon
		c.Phases = nil
		c.Traffic = Traffic{}
		c.Load, c.BurstPackets = 0, 0
	}
	if c.BurstPackets > 0 {
		c.Load = 0
	}
	if c.Faults.empty() {
		c.Faults = nil // a pristine network hashes like no spec at all
	} else {
		c.Faults = c.Faults.canonical(c.H)
	}
	if !c.Faults.dynamic() {
		// Staleness only delays the routing view of mid-run changes;
		// without any it cannot affect results, so equivalent configs
		// share cache keys.
		c.StaleCycles = 0
	}
	c.Workers = 0
	return c
}

// canonicalLink reduces a link name to the end with the smaller router id.
// Invalid links are returned unchanged; Validate reports them.
func canonicalLink(p *topology.P, l LinkID) LinkID {
	if l.Router < 0 || l.Router >= p.Routers || !(p.IsLocalPort(l.Port) || p.IsGlobalPort(l.Port)) {
		return l
	}
	if rr, rp := p.LinkTarget(l.Router, l.Port); rr < l.Router {
		return LinkID{Router: rr, Port: rp}
	}
	return l
}

// canonical returns the spec with links named from their lower-id end,
// duplicates removed, links sorted, events ordered by (cycle, link, kills
// first) — the order compile feeds the engine — and router, bundle and
// flap lists normalized, deduplicated and sorted, so two spellings of one
// scenario hash and simulate identically.
func (f *FaultSpec) canonical(h int) *FaultSpec {
	out := &FaultSpec{GlobalFraction: f.GlobalFraction, LocalFraction: f.LocalFraction}
	p, err := topology.New(h)
	if err != nil {
		out.Links = append([]LinkID(nil), f.Links...)
		out.Events = append([]FaultEvent(nil), f.Events...)
		out.Routers = append([]RouterFault(nil), f.Routers...)
		out.Bundles = append([]BundleFault(nil), f.Bundles...)
		out.Flaps = append([]FlapSpec(nil), f.Flaps...)
		return out
	}
	seen := make(map[LinkID]bool, len(f.Links))
	for _, l := range f.Links {
		cl := canonicalLink(p, l)
		if !seen[cl] {
			seen[cl] = true
			out.Links = append(out.Links, cl)
		}
	}
	sort.Slice(out.Links, func(i, j int) bool {
		a, b := out.Links[i], out.Links[j]
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		return a.Port < b.Port
	})
	if len(f.Events) > 0 {
		out.Events = make([]FaultEvent, len(f.Events))
		for i, ev := range f.Events {
			ev.Link = canonicalLink(p, ev.Link)
			out.Events[i] = ev
		}
		sort.SliceStable(out.Events, func(i, j int) bool {
			a, b := out.Events[i], out.Events[j]
			if a.At != b.At {
				return a.At < b.At
			}
			if a.Link.Router != b.Link.Router {
				return a.Link.Router < b.Link.Router
			}
			if a.Link.Port != b.Link.Port {
				return a.Link.Port < b.Link.Port
			}
			return !a.Repair && b.Repair
		})
	}
	if len(f.Routers) > 0 {
		rs := make([]RouterFault, len(f.Routers))
		for i, rf := range f.Routers {
			if rf.At < 0 {
				rf.At = 0 // "failed from the start" has one spelling
			}
			rs[i] = rf
		}
		sort.Slice(rs, func(i, j int) bool {
			a, b := rs[i], rs[j]
			if a.Router != b.Router {
				return a.Router < b.Router
			}
			if a.At != b.At {
				return a.At < b.At
			}
			return a.Until < b.Until
		})
		for i, rf := range rs {
			if i == 0 || rf != rs[i-1] {
				out.Routers = append(out.Routers, rf)
			}
		}
	}
	if len(f.Bundles) > 0 {
		bs := make([]BundleFault, len(f.Bundles))
		for i, b := range f.Bundles {
			if b.First > b.Last {
				b.First, b.Last = b.Last, b.First
			}
			if b.At < 0 {
				b.At = 0
			}
			bs[i] = b
		}
		sort.Slice(bs, func(i, j int) bool {
			a, b := bs[i], bs[j]
			if a.Group != b.Group {
				return a.Group < b.Group
			}
			if a.First != b.First {
				return a.First < b.First
			}
			if a.Last != b.Last {
				return a.Last < b.Last
			}
			if a.At != b.At {
				return a.At < b.At
			}
			return a.Until < b.Until
		})
		for i, b := range bs {
			if i == 0 || b != bs[i-1] {
				out.Bundles = append(out.Bundles, b)
			}
		}
	}
	if len(f.Flaps) > 0 {
		fs := make([]FlapSpec, len(f.Flaps))
		for i, fl := range f.Flaps {
			fl.Link = canonicalLink(p, fl.Link)
			fs[i] = fl
		}
		sort.Slice(fs, func(i, j int) bool {
			a, b := fs[i], fs[j]
			if a.Link.Router != b.Link.Router {
				return a.Link.Router < b.Link.Router
			}
			if a.Link.Port != b.Link.Port {
				return a.Link.Port < b.Link.Port
			}
			if a.At != b.At {
				return a.At < b.At
			}
			if a.Period != b.Period {
				return a.Period < b.Period
			}
			if a.Down != b.Down {
				return a.Down < b.Down
			}
			return a.Count < b.Count
		})
		for i, fl := range fs {
			if i == 0 || fl != fs[i-1] {
				out.Flaps = append(out.Flaps, fl)
			}
		}
	}
	return out
}

// partitionError renders the witness of a failed connectivity probe: the
// first unreachable live router pair, or the everything-failed case.
func partitionError(set *topology.FaultSet, a, b int, when string) error {
	if a < 0 {
		return fmt.Errorf("dragonfly: %s fail every router", when)
	}
	return fmt.Errorf("dragonfly: %s partition the network: router %d cannot reach router %d (%d global, %d local links down, %d routers failed)",
		when, a, b, set.DownGlobal(), set.DownLocal(), set.DownRouters())
}

// compile builds the engine's initial fault set and event list: fractions
// drawn from seed, explicit links and failed-from-start routers/bundles
// applied, scheduled outages and flaps expanded into the event stream, and
// the whole schedule checked for connectivity (a partitioned network
// cannot be simulated meaningfully, so such configs are rejected here).
func (f *FaultSpec) compile(p *topology.P, seed uint64) (*topology.FaultSet, []engine.FaultEvent, error) {
	cf := f.canonical(p.H)
	set := topology.NewFaultSet(p)
	if cf.GlobalFraction > 0 || cf.LocalFraction > 0 {
		if err := topology.RandomFaults(set, cf.GlobalFraction, cf.LocalFraction, seed); err != nil {
			return nil, nil, fmt.Errorf("dragonfly: %w", err)
		}
	}
	for _, l := range cf.Links {
		set.SetLink(l.Router, l.Port, true)
	}
	var evs []engine.FaultEvent
	link := func(at int64, repair bool, router, port int) {
		evs = append(evs, engine.FaultEvent{At: at, Repair: repair, Router: router, Port: port})
	}
	router := func(r int, at, until int64) {
		if at <= 0 {
			set.SetRouter(r, true)
		} else {
			evs = append(evs, engine.FaultEvent{At: at, Router: r, Port: engine.WholeRouter})
		}
		if until > 0 {
			evs = append(evs, engine.FaultEvent{At: until, Repair: true, Router: r, Port: engine.WholeRouter})
		}
	}
	for _, rf := range cf.Routers {
		router(rf.Router, rf.At, rf.Until)
	}
	for _, b := range cf.Bundles {
		if b.First == 0 && b.Last == 0 {
			// Whole-group blackout: the routers go down with their
			// global-channel bundle (see BundleFault).
			for i := 0; i < p.RoutersPerGroup; i++ {
				router(p.RouterID(b.Group, i), b.At, b.Until)
			}
			continue
		}
		for i := b.First; i < b.Last; i++ {
			for j := i + 1; j <= b.Last; j++ {
				r, port := p.RouterID(b.Group, i), p.LocalPort(i, j)
				if b.At <= 0 {
					set.SetLink(r, port, true)
				} else {
					link(b.At, false, r, port)
				}
				if b.Until > 0 {
					link(b.Until, true, r, port)
				}
			}
		}
	}
	for _, fl := range cf.Flaps {
		for k := 0; k < fl.Count; k++ {
			at := fl.At + int64(k)*fl.Period
			link(at, false, fl.Link.Router, fl.Link.Port)
			link(at+fl.Down, true, fl.Link.Router, fl.Link.Port)
		}
	}
	for _, ev := range cf.Events {
		link(ev.At, ev.Repair, ev.Link.Router, ev.Link.Port)
	}
	// Merge order mirrors the canonical event order — (cycle, router, port
	// with whole-router events first, kills before repairs) — so every
	// expansion of one scenario feeds the engine the same stream.
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return !a.Repair && b.Repair
	})
	if a, b, part := set.Partition(); part {
		return nil, nil, partitionError(set, a, b, "fault set would")
	}
	if len(evs) > 0 {
		probe := set.Clone()
		// Identical intermediate states share one connectivity probe: a
		// flap schedule alternates between a handful of states, so the
		// validation work stays O(distinct states), not O(events).
		checked := map[string]bool{probe.StateKey(): true}
		for i, ev := range evs {
			if ev.Port == engine.WholeRouter {
				probe.SetRouter(ev.Router, !ev.Repair)
			} else {
				probe.SetLink(ev.Router, ev.Port, !ev.Repair)
			}
			// The engine applies every event due at one cycle before any
			// routing runs, so only the state at each cycle boundary must
			// stay connected — probe it after the last event of each At.
			if i+1 < len(evs) && evs[i+1].At == ev.At {
				continue
			}
			if key := probe.StateKey(); !checked[key] {
				checked[key] = true
				if a, b, part := probe.Partition(); part {
					return nil, nil, fmt.Errorf("%w at cycle %d",
						partitionError(probe, a, b, "fault events"), ev.At)
				}
			}
		}
	}
	return set, evs, nil
}

// Build validates the configuration and assembles the simulator inputs.
// Most callers use Run; Build is exposed for tools that need the topology.
func (c Config) build() (engine.Config, *topology.P, error) {
	c = c.normalize()
	if err := c.Validate(); err != nil {
		return engine.Config{}, nil, err
	}
	p, err := topology.New(c.H)
	if err != nil {
		return engine.Config{}, nil, err
	}
	w, err := c.buildWorkload(p)
	if err != nil {
		return engine.Config{}, nil, err
	}
	ec := engine.Config{
		Topo: p,
		Spec: c.Mechanism.spec(),
		Routing: core.Config{
			Threshold:        c.Threshold,
			PBThreshold:      c.PBThreshold,
			RemoteCandidates: c.RemoteCandidates,
		},
		Flow:            engine.FlowControl(c.FlowControl),
		PacketPhits:     c.PacketPhits,
		BufLocal:        c.BufLocal,
		BufGlobal:       c.BufGlobal,
		InjQueuePackets: c.InjQueuePackets,
		LatLocal:        c.LatLocal,
		LatGlobal:       c.LatGlobal,
		Seed:            c.Seed,
		Workers:         c.Workers,
		Workload:        w,
		WindowCycles:    c.WindowCycles,
		StaleCycles:     c.StaleCycles,
		Warmup:          c.Warmup,
		Measure:         c.Measure,
		MaxCycles:       c.MaxCycles,
		Watchdog:        c.Watchdog,
	}
	if !c.Faults.empty() {
		fs, evs, err := c.Faults.compile(p, c.Seed)
		if err != nil {
			return engine.Config{}, nil, err
		}
		ec.Faults = fs
		ec.FaultEvents = evs
	}
	return ec, p, nil
}

// buildWorkload assembles the compiled traffic.Workload behind whichever
// of the three configuration forms (trio, Phases, Workload) was used.
func (c Config) buildWorkload(p *topology.P) (*traffic.Workload, error) {
	specs := c.jobSpecs()
	multi := false
	if len(specs) > 1 || len(specs[0].Phases) > 1 {
		multi = true
	}
	jobs := make([]traffic.Job, len(specs))
	for ji, spec := range specs {
		first, last := spec.FirstNode, spec.LastNode
		if first == 0 && last == 0 {
			last = p.Nodes - 1
		}
		job := traffic.Job{First: first, Last: last}
		for _, ps := range spec.Phases {
			pattern, err := buildPattern(p, ps.Traffic)
			if err != nil {
				return nil, err
			}
			name, err := ps.Traffic.Name(c.H)
			if err != nil {
				return nil, err
			}
			ph := traffic.Phase{Pattern: pattern, Duration: ps.Duration, Label: name}
			if ps.BurstPackets > 0 {
				ph.Process, err = traffic.NewBurst(ps.BurstPackets, p.Nodes)
				ph.TotalPackets = int64(ps.BurstPackets) * int64(last-first+1)
				if multi {
					ph.Label = fmt.Sprintf("%s!%dpkts", name, ps.BurstPackets)
				}
			} else {
				ph.Process, err = traffic.NewBernoulli(ps.Load, c.PacketPhits)
				if multi {
					ph.Label = fmt.Sprintf("%s@%.3g", name, ps.Load)
				}
			}
			if err != nil {
				return nil, err
			}
			job.Phases = append(job.Phases, ph)
		}
		jobs[ji] = job
	}
	return traffic.NewWorkload(p.Nodes, jobs...)
}

func buildPattern(p *topology.P, tr Traffic) (traffic.Pattern, error) {
	switch tr.Kind {
	case UN:
		return traffic.NewUniform(p), nil
	case ADVG:
		return traffic.NewAdversarialGlobal(p, tr.offset())
	case ADVL:
		return traffic.NewAdversarialLocal(p, tr.offset())
	case MIX:
		g, err := traffic.NewAdversarialGlobal(p, p.H)
		if err != nil {
			return nil, err
		}
		l, err := traffic.NewAdversarialLocal(p, 1)
		if err != nil {
			return nil, err
		}
		return traffic.NewMix(g, l, tr.GlobalPercent/100)
	}
	return nil, fmt.Errorf("dragonfly: unknown traffic kind %d", tr.Kind)
}

// Sim is a prepared simulation: topology built, buffers and link rings
// allocated, ready to run exactly once. Prepare/Run separate construction
// cost from stepping cost so tools (cmd/dfbench in particular) can time
// the engine without the allocator.
type Sim struct {
	sim *engine.Sim
	cfg Config
}

// Prepare validates the configuration and builds the network without
// running it.
func Prepare(c Config) (*Sim, error) {
	ec, _, err := c.build()
	if err != nil {
		return nil, err
	}
	es, err := engine.New(ec)
	if err != nil {
		return nil, err
	}
	return &Sim{sim: es, cfg: c.normalize()}, nil
}

// Run executes the prepared simulation; like the package-level Run it can
// be called once per Sim.
func (s *Sim) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the engine polls ctx
// every 1024 cycles and aborts the run with ctx's error, so campaign
// drivers can stop a simulation mid-point.
func (s *Sim) RunContext(ctx context.Context) (Result, error) {
	m, err := s.sim.RunContext(ctx)
	if err != nil {
		return Result{}, err
	}
	res := fromMetrics(m, s.cfg)
	res.Timeline = timelineFromMetrics(s.sim.Timeline())
	res.PhaseDigests = phasesFromMetrics(s.sim.PhaseDigests())
	return res, nil
}

// Cycles returns the number of cycles actually simulated so far — after
// Run, the true run length even when a watchdog or burst drain ended the
// run away from the nominal warmup+measure window.
func (s *Sim) Cycles() int64 { return s.sim.Cycle() }

// Run executes one experiment and returns its metrics. Deadlocks detected
// by the watchdog are reported via Result.Deadlock rather than an error so
// sweeps can record them.
func Run(c Config) (Result, error) {
	return RunContext(context.Background(), c)
}

// RunContext is Run with cooperative cancellation (see Sim.RunContext).
func RunContext(ctx context.Context, c Config) (Result, error) {
	s, err := Prepare(c)
	if err != nil {
		return Result{}, err
	}
	return s.RunContext(ctx)
}

// NetworkSize returns (routers, nodes, groups) for a given h, for sizing
// reports and tools.
func NetworkSize(h int) (routers, nodes, groups int, err error) {
	p, err := topology.New(h)
	if err != nil {
		return 0, 0, 0, err
	}
	return p.Routers, p.Nodes, p.Groups, nil
}

// timelineFromMetrics mirrors the internal timeline into the public type.
func timelineFromMetrics(t *metrics.Timeline) *Timeline {
	if t == nil {
		return nil
	}
	out := &Timeline{WindowCycles: t.WindowCycles, Windows: make([]Window, len(t.Windows))}
	for i, w := range t.Windows {
		out.Windows[i] = Window{
			Start:              w.Start,
			End:                w.End,
			AcceptedLoad:       w.AcceptedLoad,
			AvgTotalLatency:    w.AvgTotalLatency,
			P99Latency:         w.P99Latency,
			LocalMisrouteRate:  w.LocalMisrouteRate,
			GlobalMisrouteRate: w.GlobalMisrouteRate,
			Delivered:          w.Delivered,
			Generated:          w.Generated,
			InjectionLost:      w.InjectionLost,
			Suppressed:         w.Suppressed,
			FaultDrops:         w.FaultDrops,
		}
	}
	return out
}

// phasesFromMetrics mirrors the internal per-phase digests into the public
// type.
func phasesFromMetrics(ds []metrics.PhaseDigest) []PhaseDigest {
	if len(ds) == 0 {
		return nil
	}
	out := make([]PhaseDigest, len(ds))
	for i, d := range ds {
		out[i] = PhaseDigest{
			Index:              d.Index,
			Label:              d.Label,
			Nodes:              d.Nodes,
			Start:              d.Start,
			End:                d.End,
			AcceptedLoad:       d.AcceptedLoad,
			AvgTotalLatency:    d.AvgTotalLatency,
			AvgNetworkLatency:  d.AvgNetworkLatency,
			LocalMisrouteRate:  d.LocalMisrouteRate,
			GlobalMisrouteRate: d.GlobalMisrouteRate,
			Generated:          d.Generated,
			InjectionLost:      d.InjectionLost,
			Suppressed:         d.Suppressed,
			Delivered:          d.Delivered,
			FaultDrops:         d.FaultDrops,
		}
	}
	return out
}

// offeredLoad is the load reported in Result.OfferedLoad: the configured
// load for classic and one-phase configurations, zero for multi-phase
// workloads (whose per-phase loads live in the phase digests).
func (c Config) offeredLoad() float64 {
	if len(c.Phases) == 0 && len(c.Workload) == 0 {
		return c.Load
	}
	if ph := c.singlePhase(); ph != nil {
		return ph.Load
	}
	return 0
}

func fromMetrics(m metrics.Result, c Config) Result {
	return Result{
		Mechanism:          m.Mechanism,
		Pattern:            m.Pattern,
		FlowControl:        engine.FlowControl(c.FlowControl).String(),
		OfferedLoad:        c.offeredLoad(),
		AcceptedLoad:       m.AcceptedLoad,
		AvgTotalLatency:    m.AvgTotalLatency,
		AvgNetworkLatency:  m.AvgNetworkLatency,
		P50Latency:         m.P50Latency,
		P99Latency:         m.P99Latency,
		AvgLocalHops:       m.AvgLocalHops,
		AvgGlobalHops:      m.AvgGlobalHops,
		LocalMisrouteRate:  m.LocalMisrouteRate,
		GlobalMisrouteRate: m.GlobalMisrouteRate,
		EscapeHopRate:      m.EscapeHopRate,
		Delivered:          m.Delivered,
		Generated:          m.Generated,
		InjectionLost:      m.InjectionLost,
		Suppressed:         m.Suppressed,
		FaultDrops:         m.FaultDrops,
		PhitsMoved:         m.PhitsMoved,
		Cycles:             m.Cycles,
		Nodes:              m.Nodes,
		LocalLinkUtil:      m.LocalLinkUtil,
		GlobalLinkUtil:     m.GlobalLinkUtil,
		ConsumptionCycles:  m.ConsumptionCycles,
		Deadlock:           m.Deadlock,
	}
}
