// Package dragonfly is a cycle-accurate simulator of Dragonfly
// interconnection networks with the deadlock-free adaptive routing
// mechanisms of García, Vallejo, Beivide, Odriozola and Valero,
// "Efficient Routing Mechanisms for Dragonfly Networks" (ICPP 2013).
//
// It models the canonical well-balanced dragonfly (groups of 2h routers in
// a complete graph, 2h²+1 groups in a complete graph, h nodes per router)
// with FIFO input-buffered routers, credit-based virtual cut-through or
// wormhole flow control, and phit-granularity links — the same abstraction
// level as the paper's in-house simulator. Six routing mechanisms are
// provided: Minimal, Valiant, Piggybacking, PAR-6/2, RLM and OLM (plus a
// sign-only RLM ablation), together with the paper's synthetic traffic
// patterns (uniform, ADVG+N, ADVL+N, mixed, bursts).
//
// # Quick start
//
//	cfg := dragonfly.Config{
//		H:         4,
//		Mechanism: dragonfly.OLM,
//		Traffic:   dragonfly.Traffic{Kind: dragonfly.ADVG, Offset: 1},
//		Load:      0.5,
//	}
//	res, err := dragonfly.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.AcceptedLoad, res.AvgTotalLatency)
package dragonfly

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Mechanism selects the routing algorithm.
type Mechanism int

// The routing mechanisms of the paper. RLMSignOnly is the rejected
// restriction discussed (and dismissed) in Section III-B, kept as an
// ablation; OFAR is the escape-ring predecessor of Section II
// (García et al., ICPP 2012) the paper positions RLM and OLM against.
const (
	Minimal Mechanism = iota
	Valiant
	Piggybacking
	PAR62
	RLM
	OLM
	RLMSignOnly
	OFAR
)

// Mechanisms lists all supported mechanisms in presentation order.
var Mechanisms = []Mechanism{Minimal, Valiant, Piggybacking, PAR62, RLM, OLM, RLMSignOnly, OFAR}

// String returns the paper's name for the mechanism.
func (m Mechanism) String() string { return m.spec().String() }

func (m Mechanism) spec() core.Spec { return core.Spec(m) }

// ParseMechanism resolves a mechanism by its String name.
func ParseMechanism(name string) (Mechanism, error) {
	s, err := core.ParseSpec(name)
	if err != nil {
		return 0, err
	}
	return Mechanism(s), nil
}

// RequiresVCT reports whether the mechanism only works under virtual
// cut-through flow control (true for OLM and for OFAR, whose escape-ring
// bubble needs whole-packet buffering).
func (m Mechanism) RequiresVCT() bool { return m == OLM || m == OFAR }

// VCs returns the number of virtual channels the mechanism needs on local
// and global ports ("3/2" for everything but PAR-6/2's "6/2").
func (m Mechanism) VCs() (local, global int) { return core.VCsFor(m.spec()) }

// FlowControl selects the link-level flow control.
type FlowControl int

// Flow control disciplines.
const (
	VCT FlowControl = iota // virtual cut-through
	WH                     // wormhole
)

// String returns "VCT" or "WH".
func (f FlowControl) String() string { return engine.FlowControl(f).String() }

// ParseFlowControl resolves "VCT" or "WH".
func ParseFlowControl(s string) (FlowControl, error) {
	f, err := engine.ParseFlowControl(s)
	return FlowControl(f), err
}

// TrafficKind selects the synthetic traffic pattern family.
type TrafficKind int

// Traffic pattern kinds of the paper's evaluation.
const (
	UN   TrafficKind = iota // uniform random
	ADVG                    // adversarial global: group i -> group i+Offset
	ADVL                    // adversarial local: router i -> router i+Offset
	MIX                     // GlobalPercent% ADVG+h mixed with ADVL+1
)

// Traffic describes the workload.
type Traffic struct {
	Kind TrafficKind
	// Offset is the +N of ADVG/ADVL patterns (default 1; the paper's
	// pathological global pattern is ADVG+h).
	Offset int
	// GlobalPercent is, for MIX, the percentage of traffic following
	// ADVG+h; the rest follows ADVL+1 (paper Figures 6 and 9).
	GlobalPercent float64
}

// Name returns the paper's label for the pattern.
func (tr Traffic) Name(h int) string {
	switch tr.Kind {
	case UN:
		return "UN"
	case ADVG:
		return fmt.Sprintf("ADVG+%d", tr.offset())
	case ADVL:
		return fmt.Sprintf("ADVL+%d", tr.offset())
	case MIX:
		return fmt.Sprintf("%.0f%%ADVG+%d/ADVL+1", tr.GlobalPercent, h)
	}
	return "unknown"
}

func (tr Traffic) offset() int {
	if tr.Offset == 0 {
		return 1
	}
	return tr.Offset
}

// Config describes one simulation experiment. Zero fields take the paper's
// defaults (see the field comments).
type Config struct {
	// H is the dragonfly sizing parameter: groups of 2h routers,
	// 2h²+1 groups, h nodes per router. The paper evaluates h=8
	// (16,512 nodes); h=4 is a fast reduced-scale default.
	H int

	Mechanism   Mechanism
	FlowControl FlowControl

	// PacketPhits is the packet size: 8 in the paper's VCT experiments,
	// 80 (8 flits of 10 phits) in the WH ones. Default: 8 for VCT,
	// 80 for WH.
	PacketPhits int

	// Threshold is the misrouting trigger percentage expressed as a
	// fraction (default 0.45, the paper's choice).
	Threshold float64
	// PBThreshold is Piggybacking's congestion-bit occupancy fraction
	// (default 0.35).
	PBThreshold float64
	// RemoteCandidates is how many remote global channels are sampled as
	// additional global-misrouting candidates (default 2; -1 restricts
	// global misrouting to the router's own global ports).
	RemoteCandidates int

	BufLocal        int // phits per local VC buffer (default 32)
	BufGlobal       int // phits per global VC buffer (default 256)
	InjQueuePackets int // injection queue depth in packets (default 16)
	LatLocal        int // local link latency, cycles (default 10)
	LatGlobal       int // global link latency, cycles (default 100)

	Traffic Traffic
	// Load is the offered load in phits/(node·cycle) for steady-state
	// (Bernoulli) experiments.
	Load float64
	// BurstPackets, when positive, switches to the paper's burst
	// consumption experiment: every node sends this many packets and the
	// run measures the cycles needed to drain them all.
	BurstPackets int

	Warmup  int64 // steady-state warmup cycles (default 3000)
	Measure int64 // steady-state measured cycles (default 6000)

	Seed    uint64
	Workers int // intra-simulation parallelism (default 1; results are
	// identical for any worker count)

	MaxCycles int64 // burst safety bound
	Watchdog  int64 // deadlock watchdog quiet-cycle threshold
}

// Result is the digest of one run; fields mirror the paper's reported
// metrics.
type Result struct {
	Mechanism   string
	Pattern     string
	FlowControl string
	OfferedLoad float64 // phits/(node·cycle)

	AcceptedLoad      float64 // phits/(node·cycle) delivered
	AvgTotalLatency   float64 // generation -> delivery, cycles
	AvgNetworkLatency float64 // injection -> delivery, cycles
	P50Latency        float64
	P99Latency        float64

	AvgLocalHops       float64
	AvgGlobalHops      float64
	LocalMisrouteRate  float64 // local misroutes per delivered packet
	GlobalMisrouteRate float64 // Valiant commitments per delivered packet
	EscapeHopRate      float64 // OFAR escape-ring hops per delivered packet

	Delivered     int64
	Generated     int64
	InjectionLost int64
	Cycles        int64
	Nodes         int

	// PhitsMoved is the total number of crossbar phit movements over the
	// whole run (warmup included) — the engine's raw unit of work.
	PhitsMoved int64

	LocalLinkUtil  float64
	GlobalLinkUtil float64

	// ConsumptionCycles is the burst drain time (burst runs only).
	ConsumptionCycles int64
	// Deadlock reports that the watchdog detected no forward progress.
	Deadlock bool
}

// normalize fills defaults; it returns a copy.
func (c Config) normalize() Config {
	if c.H == 0 {
		c.H = 4
	}
	if c.PacketPhits == 0 {
		if c.FlowControl == WH {
			c.PacketPhits = 80
		} else {
			c.PacketPhits = 8
		}
	}
	if c.Warmup == 0 {
		c.Warmup = 3000
	}
	if c.Measure == 0 {
		c.Measure = 6000
	}
	return c
}

// Canonical returns the configuration with every defaulted field filled
// in, result-irrelevant fields zeroed, and the traffic description reduced
// to its meaningful fields. Two configurations with equal Canonical()
// values produce identical Results: Workers is cleared because the engine
// is bit-identical for any worker count, Load is cleared for burst runs
// (the burst process ignores it), and unused Traffic fields are dropped.
// Result caches (internal/exp) hash the canonical form as their key.
func (c Config) Canonical() Config {
	c = c.normalize()
	// Mirror the engine's and router core's own defaulting so that a
	// zero field and its explicit default hash identically.
	if c.Threshold <= 0 {
		c.Threshold = 0.45
	}
	if c.PBThreshold <= 0 {
		c.PBThreshold = 0.35
	}
	if c.RemoteCandidates == 0 {
		c.RemoteCandidates = 2
	}
	if c.BufLocal == 0 {
		c.BufLocal = 32
	}
	if c.BufGlobal == 0 {
		c.BufGlobal = 256
	}
	if c.InjQueuePackets == 0 {
		c.InjQueuePackets = 16
	}
	if c.LatLocal == 0 {
		c.LatLocal = 10
	}
	if c.LatGlobal == 0 {
		c.LatGlobal = 100
	}
	if c.Watchdog == 0 {
		c.Watchdog = 20000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50 * (c.Warmup + c.Measure + 20000)
	}
	switch c.Traffic.Kind {
	case UN:
		c.Traffic = Traffic{Kind: UN}
	case ADVG, ADVL:
		c.Traffic = Traffic{Kind: c.Traffic.Kind, Offset: c.Traffic.offset()}
	case MIX:
		c.Traffic = Traffic{Kind: MIX, GlobalPercent: c.Traffic.GlobalPercent}
	}
	if c.BurstPackets > 0 {
		c.Load = 0
	}
	c.Workers = 0
	return c
}

// Build validates the configuration and assembles the simulator inputs.
// Most callers use Run; Build is exposed for tools that need the topology.
func (c Config) build() (engine.Config, *topology.P, error) {
	c = c.normalize()
	p, err := topology.New(c.H)
	if err != nil {
		return engine.Config{}, nil, err
	}
	pattern, err := c.buildPattern(p)
	if err != nil {
		return engine.Config{}, nil, err
	}
	var process traffic.Process
	if c.BurstPackets > 0 {
		process, err = traffic.NewBurst(c.BurstPackets, p.Nodes)
	} else {
		process, err = traffic.NewBernoulli(c.Load, c.PacketPhits)
	}
	if err != nil {
		return engine.Config{}, nil, err
	}
	ec := engine.Config{
		Topo: p,
		Spec: c.Mechanism.spec(),
		Routing: core.Config{
			Threshold:        c.Threshold,
			PBThreshold:      c.PBThreshold,
			RemoteCandidates: c.RemoteCandidates,
		},
		Flow:            engine.FlowControl(c.FlowControl),
		PacketPhits:     c.PacketPhits,
		BufLocal:        c.BufLocal,
		BufGlobal:       c.BufGlobal,
		InjQueuePackets: c.InjQueuePackets,
		LatLocal:        c.LatLocal,
		LatGlobal:       c.LatGlobal,
		Seed:            c.Seed,
		Workers:         c.Workers,
		Pattern:         pattern,
		Process:         process,
		Warmup:          c.Warmup,
		Measure:         c.Measure,
		MaxCycles:       c.MaxCycles,
		Watchdog:        c.Watchdog,
	}
	return ec, p, nil
}

func (c Config) buildPattern(p *topology.P) (traffic.Pattern, error) {
	switch c.Traffic.Kind {
	case UN:
		return traffic.NewUniform(p), nil
	case ADVG:
		return traffic.NewAdversarialGlobal(p, c.Traffic.offset())
	case ADVL:
		return traffic.NewAdversarialLocal(p, c.Traffic.offset())
	case MIX:
		g, err := traffic.NewAdversarialGlobal(p, p.H)
		if err != nil {
			return nil, err
		}
		l, err := traffic.NewAdversarialLocal(p, 1)
		if err != nil {
			return nil, err
		}
		return traffic.NewMix(g, l, c.Traffic.GlobalPercent/100)
	}
	return nil, fmt.Errorf("dragonfly: unknown traffic kind %d", c.Traffic.Kind)
}

// Sim is a prepared simulation: topology built, buffers and link rings
// allocated, ready to run exactly once. Prepare/Run separate construction
// cost from stepping cost so tools (cmd/dfbench in particular) can time
// the engine without the allocator.
type Sim struct {
	sim *engine.Sim
	cfg Config
}

// Prepare validates the configuration and builds the network without
// running it.
func Prepare(c Config) (*Sim, error) {
	ec, _, err := c.build()
	if err != nil {
		return nil, err
	}
	es, err := engine.New(ec)
	if err != nil {
		return nil, err
	}
	return &Sim{sim: es, cfg: c.normalize()}, nil
}

// Run executes the prepared simulation; like the package-level Run it can
// be called once per Sim.
func (s *Sim) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the engine polls ctx
// every 1024 cycles and aborts the run with ctx's error, so campaign
// drivers can stop a simulation mid-point.
func (s *Sim) RunContext(ctx context.Context) (Result, error) {
	m, err := s.sim.RunContext(ctx)
	if err != nil {
		return Result{}, err
	}
	return fromMetrics(m, s.cfg), nil
}

// Cycles returns the number of cycles actually simulated so far — after
// Run, the true run length even when a watchdog or burst drain ended the
// run away from the nominal warmup+measure window.
func (s *Sim) Cycles() int64 { return s.sim.Cycle() }

// Run executes one experiment and returns its metrics. Deadlocks detected
// by the watchdog are reported via Result.Deadlock rather than an error so
// sweeps can record them.
func Run(c Config) (Result, error) {
	return RunContext(context.Background(), c)
}

// RunContext is Run with cooperative cancellation (see Sim.RunContext).
func RunContext(ctx context.Context, c Config) (Result, error) {
	s, err := Prepare(c)
	if err != nil {
		return Result{}, err
	}
	return s.RunContext(ctx)
}

// NetworkSize returns (routers, nodes, groups) for a given h, for sizing
// reports and tools.
func NetworkSize(h int) (routers, nodes, groups int, err error) {
	p, err := topology.New(h)
	if err != nil {
		return 0, 0, 0, err
	}
	return p.Routers, p.Nodes, p.Groups, nil
}

func fromMetrics(m metrics.Result, c Config) Result {
	return Result{
		Mechanism:          m.Mechanism,
		Pattern:            m.Pattern,
		FlowControl:        engine.FlowControl(c.FlowControl).String(),
		OfferedLoad:        c.Load,
		AcceptedLoad:       m.AcceptedLoad,
		AvgTotalLatency:    m.AvgTotalLatency,
		AvgNetworkLatency:  m.AvgNetworkLatency,
		P50Latency:         m.P50Latency,
		P99Latency:         m.P99Latency,
		AvgLocalHops:       m.AvgLocalHops,
		AvgGlobalHops:      m.AvgGlobalHops,
		LocalMisrouteRate:  m.LocalMisrouteRate,
		GlobalMisrouteRate: m.GlobalMisrouteRate,
		EscapeHopRate:      m.EscapeHopRate,
		Delivered:          m.Delivered,
		Generated:          m.Generated,
		InjectionLost:      m.InjectionLost,
		PhitsMoved:         m.PhitsMoved,
		Cycles:             m.Cycles,
		Nodes:              m.Nodes,
		LocalLinkUtil:      m.LocalLinkUtil,
		GlobalLinkUtil:     m.GlobalLinkUtil,
		ConsumptionCycles:  m.ConsumptionCycles,
		Deadlock:           m.Deadlock,
	}
}
