package dragonfly

// Presets reproducing the paper's two experimental environments.
//
// The paper's simulator models a maximum-size dragonfly with h = 8
// (129 supernodes of 16 routers, 16,512 nodes), 10/100-cycle local/global
// link latencies and 32/256-phit local/global buffers. PaperVCT is the
// Cray-Cascade-like small-packet VCT setting of Section IV-A; PaperWH is
// the PERCS-like large-packet wormhole setting of Section IV-B.

// PaperH is the paper's network size parameter.
const PaperH = 8

// PaperThreshold is the misrouting threshold the paper selects (45%).
const PaperThreshold = 0.45

// PaperVCT returns the Section IV-A environment (VCT, 8-phit packets) at
// size h. Pass PaperH for the paper's full 16,512-node system or a smaller
// h (e.g. 4) for a reduced-scale run with the same structure.
func PaperVCT(h int) Config {
	return Config{
		H:           h,
		FlowControl: VCT,
		PacketPhits: 8,
		Threshold:   PaperThreshold,
		BufLocal:    32,
		BufGlobal:   256,
		LatLocal:    10,
		LatGlobal:   100,
	}
}

// PaperWH returns the Section IV-B environment (wormhole, 80-phit packets
// — the paper's 8 flits of 10 phits) at size h.
func PaperWH(h int) Config {
	return Config{
		H:           h,
		FlowControl: WH,
		PacketPhits: 80,
		Threshold:   PaperThreshold,
		BufLocal:    32,
		BufGlobal:   256,
		LatLocal:    10,
		LatGlobal:   100,
	}
}

// Scale presets beyond the paper.
//
// The paper stops at h = 8. The sizes below follow the same a = 2h,
// p = h construction: h = 12 is a 289-group, 83,232-node system and
// h = 16 — the largest size the engine's 63-port activity masks admit —
// is a 513-group, 262,656-node system. Router state at these sizes is
// dominated by per-VC buffers and link rings, which the engine allocates
// lazily on first use, so a low-load h = 16 run fits in a few GiB; see
// docs/PERFORMANCE.md for the memory model.

// ScaleH12 is the h = 12 scale preset size (6,936 routers, 83,232 nodes).
const ScaleH12 = 12

// ScaleH16 is the h = 16 scale preset size (16,416 routers, 262,656
// nodes), the largest dragonfly this engine supports.
const ScaleH16 = 16

// ScaleVCT returns the Section IV-A environment scaled past the paper to
// size h (use ScaleH12 or ScaleH16). It is PaperVCT's configuration —
// only the network is larger.
func ScaleVCT(h int) Config { return PaperVCT(h) }

// ScaleWH returns the Section IV-B wormhole environment scaled past the
// paper to size h (use ScaleH12 or ScaleH16).
func ScaleWH(h int) Config { return PaperWH(h) }

// PaperBurstVCT is the number of packets per node in the VCT burst
// experiment (Figure 6b).
const PaperBurstVCT = 1000

// PaperBurstWH is the number of packets per node in the WH burst
// experiment (Figure 9b); 89 × 80-phit packets carry roughly the same
// payload as 1000 × 8-phit packets.
const PaperBurstWH = 89
