package dragonfly

// Presets reproducing the paper's two experimental environments.
//
// The paper's simulator models a maximum-size dragonfly with h = 8
// (129 supernodes of 16 routers, 16,512 nodes), 10/100-cycle local/global
// link latencies and 32/256-phit local/global buffers. PaperVCT is the
// Cray-Cascade-like small-packet VCT setting of Section IV-A; PaperWH is
// the PERCS-like large-packet wormhole setting of Section IV-B.

// PaperH is the paper's network size parameter.
const PaperH = 8

// PaperThreshold is the misrouting threshold the paper selects (45%).
const PaperThreshold = 0.45

// PaperVCT returns the Section IV-A environment (VCT, 8-phit packets) at
// size h. Pass PaperH for the paper's full 16,512-node system or a smaller
// h (e.g. 4) for a reduced-scale run with the same structure.
func PaperVCT(h int) Config {
	return Config{
		H:           h,
		FlowControl: VCT,
		PacketPhits: 8,
		Threshold:   PaperThreshold,
		BufLocal:    32,
		BufGlobal:   256,
		LatLocal:    10,
		LatGlobal:   100,
	}
}

// PaperWH returns the Section IV-B environment (wormhole, 80-phit packets
// — the paper's 8 flits of 10 phits) at size h.
func PaperWH(h int) Config {
	return Config{
		H:           h,
		FlowControl: WH,
		PacketPhits: 80,
		Threshold:   PaperThreshold,
		BufLocal:    32,
		BufGlobal:   256,
		LatLocal:    10,
		LatGlobal:   100,
	}
}

// PaperBurstVCT is the number of packets per node in the VCT burst
// experiment (Figure 6b).
const PaperBurstVCT = 1000

// PaperBurstWH is the number of packets per node in the WH burst
// experiment (Figure 9b); 89 × 80-phit packets carry roughly the same
// payload as 1000 × 8-phit packets.
const PaperBurstWH = 89
